file(REMOVE_RECURSE
  "CMakeFiles/pasched_cluster.dir/cluster.cpp.o"
  "CMakeFiles/pasched_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/pasched_cluster.dir/node.cpp.o"
  "CMakeFiles/pasched_cluster.dir/node.cpp.o.d"
  "libpasched_cluster.a"
  "libpasched_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
