# Empty compiler generated dependencies file for pasched_cluster.
# This may be replaced when dependencies are built.
