file(REMOVE_RECURSE
  "libpasched_cluster.a"
)
