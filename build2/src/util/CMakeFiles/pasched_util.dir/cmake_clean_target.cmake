file(REMOVE_RECURSE
  "libpasched_util.a"
)
