# Empty dependencies file for pasched_util.
# This may be replaced when dependencies are built.
