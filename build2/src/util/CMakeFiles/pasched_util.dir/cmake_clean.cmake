file(REMOVE_RECURSE
  "CMakeFiles/pasched_util.dir/config.cpp.o"
  "CMakeFiles/pasched_util.dir/config.cpp.o.d"
  "CMakeFiles/pasched_util.dir/flags.cpp.o"
  "CMakeFiles/pasched_util.dir/flags.cpp.o.d"
  "CMakeFiles/pasched_util.dir/histogram.cpp.o"
  "CMakeFiles/pasched_util.dir/histogram.cpp.o.d"
  "CMakeFiles/pasched_util.dir/stats.cpp.o"
  "CMakeFiles/pasched_util.dir/stats.cpp.o.d"
  "CMakeFiles/pasched_util.dir/strings.cpp.o"
  "CMakeFiles/pasched_util.dir/strings.cpp.o.d"
  "CMakeFiles/pasched_util.dir/table.cpp.o"
  "CMakeFiles/pasched_util.dir/table.cpp.o.d"
  "libpasched_util.a"
  "libpasched_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
