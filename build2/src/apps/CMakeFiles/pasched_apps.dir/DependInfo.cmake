
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/aggregate_trace.cpp" "src/apps/CMakeFiles/pasched_apps.dir/aggregate_trace.cpp.o" "gcc" "src/apps/CMakeFiles/pasched_apps.dir/aggregate_trace.cpp.o.d"
  "/root/repo/src/apps/ale3d_proxy.cpp" "src/apps/CMakeFiles/pasched_apps.dir/ale3d_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/pasched_apps.dir/ale3d_proxy.cpp.o.d"
  "/root/repo/src/apps/bsp.cpp" "src/apps/CMakeFiles/pasched_apps.dir/bsp.cpp.o" "gcc" "src/apps/CMakeFiles/pasched_apps.dir/bsp.cpp.o.d"
  "/root/repo/src/apps/implicit_cg.cpp" "src/apps/CMakeFiles/pasched_apps.dir/implicit_cg.cpp.o" "gcc" "src/apps/CMakeFiles/pasched_apps.dir/implicit_cg.cpp.o.d"
  "/root/repo/src/apps/sweep3d_proxy.cpp" "src/apps/CMakeFiles/pasched_apps.dir/sweep3d_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/pasched_apps.dir/sweep3d_proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/mpi/CMakeFiles/pasched_mpi.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/pasched_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/pasched_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/cluster/CMakeFiles/pasched_cluster.dir/DependInfo.cmake"
  "/root/repo/build2/src/net/CMakeFiles/pasched_net.dir/DependInfo.cmake"
  "/root/repo/build2/src/daemons/CMakeFiles/pasched_daemons.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/pasched_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/kern/CMakeFiles/pasched_kern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
