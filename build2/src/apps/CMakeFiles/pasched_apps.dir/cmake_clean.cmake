file(REMOVE_RECURSE
  "CMakeFiles/pasched_apps.dir/aggregate_trace.cpp.o"
  "CMakeFiles/pasched_apps.dir/aggregate_trace.cpp.o.d"
  "CMakeFiles/pasched_apps.dir/ale3d_proxy.cpp.o"
  "CMakeFiles/pasched_apps.dir/ale3d_proxy.cpp.o.d"
  "CMakeFiles/pasched_apps.dir/bsp.cpp.o"
  "CMakeFiles/pasched_apps.dir/bsp.cpp.o.d"
  "CMakeFiles/pasched_apps.dir/implicit_cg.cpp.o"
  "CMakeFiles/pasched_apps.dir/implicit_cg.cpp.o.d"
  "CMakeFiles/pasched_apps.dir/sweep3d_proxy.cpp.o"
  "CMakeFiles/pasched_apps.dir/sweep3d_proxy.cpp.o.d"
  "libpasched_apps.a"
  "libpasched_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
