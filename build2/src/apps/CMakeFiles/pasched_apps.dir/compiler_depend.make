# Empty compiler generated dependencies file for pasched_apps.
# This may be replaced when dependencies are built.
