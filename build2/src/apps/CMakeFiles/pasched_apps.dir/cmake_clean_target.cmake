file(REMOVE_RECURSE
  "libpasched_apps.a"
)
