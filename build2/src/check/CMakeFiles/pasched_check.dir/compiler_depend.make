# Empty compiler generated dependencies file for pasched_check.
# This may be replaced when dependencies are built.
