file(REMOVE_RECURSE
  "libpasched_check.a"
)
