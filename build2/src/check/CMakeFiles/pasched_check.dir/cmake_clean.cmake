file(REMOVE_RECURSE
  "CMakeFiles/pasched_check.dir/audit.cpp.o"
  "CMakeFiles/pasched_check.dir/audit.cpp.o.d"
  "libpasched_check.a"
  "libpasched_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
