file(REMOVE_RECURSE
  "libpasched_sim.a"
)
