# Empty dependencies file for pasched_sim.
# This may be replaced when dependencies are built.
