file(REMOVE_RECURSE
  "CMakeFiles/pasched_sim.dir/engine.cpp.o"
  "CMakeFiles/pasched_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pasched_sim.dir/random.cpp.o"
  "CMakeFiles/pasched_sim.dir/random.cpp.o.d"
  "CMakeFiles/pasched_sim.dir/time.cpp.o"
  "CMakeFiles/pasched_sim.dir/time.cpp.o.d"
  "libpasched_sim.a"
  "libpasched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
