file(REMOVE_RECURSE
  "libpasched_daemons.a"
)
