file(REMOVE_RECURSE
  "CMakeFiles/pasched_daemons.dir/daemon.cpp.o"
  "CMakeFiles/pasched_daemons.dir/daemon.cpp.o.d"
  "CMakeFiles/pasched_daemons.dir/io_service.cpp.o"
  "CMakeFiles/pasched_daemons.dir/io_service.cpp.o.d"
  "CMakeFiles/pasched_daemons.dir/registry.cpp.o"
  "CMakeFiles/pasched_daemons.dir/registry.cpp.o.d"
  "libpasched_daemons.a"
  "libpasched_daemons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_daemons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
