# Empty dependencies file for pasched_daemons.
# This may be replaced when dependencies are built.
