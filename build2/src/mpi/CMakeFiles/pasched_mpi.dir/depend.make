# Empty dependencies file for pasched_mpi.
# This may be replaced when dependencies are built.
