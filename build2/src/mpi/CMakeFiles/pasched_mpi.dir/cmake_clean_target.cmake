file(REMOVE_RECURSE
  "libpasched_mpi.a"
)
