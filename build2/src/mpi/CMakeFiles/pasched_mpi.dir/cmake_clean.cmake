file(REMOVE_RECURSE
  "CMakeFiles/pasched_mpi.dir/aux_thread.cpp.o"
  "CMakeFiles/pasched_mpi.dir/aux_thread.cpp.o.d"
  "CMakeFiles/pasched_mpi.dir/collectives.cpp.o"
  "CMakeFiles/pasched_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/pasched_mpi.dir/job.cpp.o"
  "CMakeFiles/pasched_mpi.dir/job.cpp.o.d"
  "CMakeFiles/pasched_mpi.dir/task.cpp.o"
  "CMakeFiles/pasched_mpi.dir/task.cpp.o.d"
  "libpasched_mpi.a"
  "libpasched_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
