file(REMOVE_RECURSE
  "libpasched_analysis.a"
)
