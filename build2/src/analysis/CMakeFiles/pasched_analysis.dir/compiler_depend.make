# Empty compiler generated dependencies file for pasched_analysis.
# This may be replaced when dependencies are built.
