file(REMOVE_RECURSE
  "CMakeFiles/pasched_analysis.dir/analyzer.cpp.o"
  "CMakeFiles/pasched_analysis.dir/analyzer.cpp.o.d"
  "CMakeFiles/pasched_analysis.dir/diagnostic.cpp.o"
  "CMakeFiles/pasched_analysis.dir/diagnostic.cpp.o.d"
  "CMakeFiles/pasched_analysis.dir/hb.cpp.o"
  "CMakeFiles/pasched_analysis.dir/hb.cpp.o.d"
  "CMakeFiles/pasched_analysis.dir/lint.cpp.o"
  "CMakeFiles/pasched_analysis.dir/lint.cpp.o.d"
  "libpasched_analysis.a"
  "libpasched_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
