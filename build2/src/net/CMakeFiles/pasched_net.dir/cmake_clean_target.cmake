file(REMOVE_RECURSE
  "libpasched_net.a"
)
