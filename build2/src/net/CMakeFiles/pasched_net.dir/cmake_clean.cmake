file(REMOVE_RECURSE
  "CMakeFiles/pasched_net.dir/clock_sync.cpp.o"
  "CMakeFiles/pasched_net.dir/clock_sync.cpp.o.d"
  "CMakeFiles/pasched_net.dir/fabric.cpp.o"
  "CMakeFiles/pasched_net.dir/fabric.cpp.o.d"
  "libpasched_net.a"
  "libpasched_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
