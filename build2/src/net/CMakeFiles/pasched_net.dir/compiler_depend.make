# Empty compiler generated dependencies file for pasched_net.
# This may be replaced when dependencies are built.
