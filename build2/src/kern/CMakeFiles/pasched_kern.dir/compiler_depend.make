# Empty compiler generated dependencies file for pasched_kern.
# This may be replaced when dependencies are built.
