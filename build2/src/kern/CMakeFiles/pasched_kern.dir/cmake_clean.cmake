file(REMOVE_RECURSE
  "CMakeFiles/pasched_kern.dir/kernel.cpp.o"
  "CMakeFiles/pasched_kern.dir/kernel.cpp.o.d"
  "CMakeFiles/pasched_kern.dir/schedtune.cpp.o"
  "CMakeFiles/pasched_kern.dir/schedtune.cpp.o.d"
  "CMakeFiles/pasched_kern.dir/thread.cpp.o"
  "CMakeFiles/pasched_kern.dir/thread.cpp.o.d"
  "libpasched_kern.a"
  "libpasched_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
