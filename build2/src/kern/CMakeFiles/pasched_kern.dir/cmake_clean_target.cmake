file(REMOVE_RECURSE
  "libpasched_kern.a"
)
