# Empty dependencies file for pasched_core.
# This may be replaced when dependencies are built.
