file(REMOVE_RECURSE
  "CMakeFiles/pasched_core.dir/admin.cpp.o"
  "CMakeFiles/pasched_core.dir/admin.cpp.o.d"
  "CMakeFiles/pasched_core.dir/coscheduler.cpp.o"
  "CMakeFiles/pasched_core.dir/coscheduler.cpp.o.d"
  "CMakeFiles/pasched_core.dir/presets.cpp.o"
  "CMakeFiles/pasched_core.dir/presets.cpp.o.d"
  "CMakeFiles/pasched_core.dir/simulation.cpp.o"
  "CMakeFiles/pasched_core.dir/simulation.cpp.o.d"
  "libpasched_core.a"
  "libpasched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
