file(REMOVE_RECURSE
  "libpasched_core.a"
)
