# Empty compiler generated dependencies file for pasched_trace.
# This may be replaced when dependencies are built.
