file(REMOVE_RECURSE
  "CMakeFiles/pasched_trace.dir/events.cpp.o"
  "CMakeFiles/pasched_trace.dir/events.cpp.o.d"
  "CMakeFiles/pasched_trace.dir/trace.cpp.o"
  "CMakeFiles/pasched_trace.dir/trace.cpp.o.d"
  "libpasched_trace.a"
  "libpasched_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
