file(REMOVE_RECURSE
  "libpasched_trace.a"
)
