# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/test_util_stats[1]_include.cmake")
include("/root/repo/build2/tests/test_util_config[1]_include.cmake")
include("/root/repo/build2/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build2/tests/test_sim_callback[1]_include.cmake")
include("/root/repo/build2/tests/test_kern_sched[1]_include.cmake")
include("/root/repo/build2/tests/test_kern_properties[1]_include.cmake")
include("/root/repo/build2/tests/test_kern_ticks[1]_include.cmake")
include("/root/repo/build2/tests/test_check[1]_include.cmake")
include("/root/repo/build2/tests/test_check_macros[1]_include.cmake")
include("/root/repo/build2/tests/test_check_off[1]_include.cmake")
include("/root/repo/build2/tests/test_daemons[1]_include.cmake")
include("/root/repo/build2/tests/test_net_cluster[1]_include.cmake")
include("/root/repo/build2/tests/test_mpi_collectives[1]_include.cmake")
include("/root/repo/build2/tests/test_mpi_runtime[1]_include.cmake")
include("/root/repo/build2/tests/test_trace[1]_include.cmake")
include("/root/repo/build2/tests/test_analysis_lint[1]_include.cmake")
include("/root/repo/build2/tests/test_analysis_trace[1]_include.cmake")
include("/root/repo/build2/tests/test_core_admin[1]_include.cmake")
include("/root/repo/build2/tests/test_core_cosched[1]_include.cmake")
include("/root/repo/build2/tests/test_core_simulation[1]_include.cmake")
include("/root/repo/build2/tests/test_apps[1]_include.cmake")
include("/root/repo/build2/tests/test_apps_extra[1]_include.cmake")
include("/root/repo/build2/tests/test_integration[1]_include.cmake")
include("/root/repo/build2/tests/test_extensions[1]_include.cmake")
