# Empty compiler generated dependencies file for test_core_admin.
# This may be replaced when dependencies are built.
