file(REMOVE_RECURSE
  "CMakeFiles/test_core_admin.dir/test_core_admin.cpp.o"
  "CMakeFiles/test_core_admin.dir/test_core_admin.cpp.o.d"
  "test_core_admin"
  "test_core_admin.pdb"
  "test_core_admin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
