# Empty compiler generated dependencies file for test_core_cosched.
# This may be replaced when dependencies are built.
