file(REMOVE_RECURSE
  "CMakeFiles/test_core_cosched.dir/test_core_cosched.cpp.o"
  "CMakeFiles/test_core_cosched.dir/test_core_cosched.cpp.o.d"
  "test_core_cosched"
  "test_core_cosched.pdb"
  "test_core_cosched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cosched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
