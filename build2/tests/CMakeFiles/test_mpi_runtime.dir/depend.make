# Empty dependencies file for test_mpi_runtime.
# This may be replaced when dependencies are built.
