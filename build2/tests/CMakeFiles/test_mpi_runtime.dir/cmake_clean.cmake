file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_runtime.dir/test_mpi_runtime.cpp.o"
  "CMakeFiles/test_mpi_runtime.dir/test_mpi_runtime.cpp.o.d"
  "test_mpi_runtime"
  "test_mpi_runtime.pdb"
  "test_mpi_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
