# Empty dependencies file for test_apps_extra.
# This may be replaced when dependencies are built.
