file(REMOVE_RECURSE
  "CMakeFiles/test_apps_extra.dir/test_apps_extra.cpp.o"
  "CMakeFiles/test_apps_extra.dir/test_apps_extra.cpp.o.d"
  "test_apps_extra"
  "test_apps_extra.pdb"
  "test_apps_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
