# Empty dependencies file for test_net_cluster.
# This may be replaced when dependencies are built.
