file(REMOVE_RECURSE
  "CMakeFiles/test_net_cluster.dir/test_net_cluster.cpp.o"
  "CMakeFiles/test_net_cluster.dir/test_net_cluster.cpp.o.d"
  "test_net_cluster"
  "test_net_cluster.pdb"
  "test_net_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
