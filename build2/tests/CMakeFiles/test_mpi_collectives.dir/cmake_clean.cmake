file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_collectives.dir/test_mpi_collectives.cpp.o"
  "CMakeFiles/test_mpi_collectives.dir/test_mpi_collectives.cpp.o.d"
  "test_mpi_collectives"
  "test_mpi_collectives.pdb"
  "test_mpi_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
