# Empty dependencies file for test_mpi_collectives.
# This may be replaced when dependencies are built.
