file(REMOVE_RECURSE
  "CMakeFiles/test_kern_properties.dir/test_kern_properties.cpp.o"
  "CMakeFiles/test_kern_properties.dir/test_kern_properties.cpp.o.d"
  "test_kern_properties"
  "test_kern_properties.pdb"
  "test_kern_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
