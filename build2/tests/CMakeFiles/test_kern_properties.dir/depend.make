# Empty dependencies file for test_kern_properties.
# This may be replaced when dependencies are built.
