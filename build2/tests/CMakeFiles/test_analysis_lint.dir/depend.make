# Empty dependencies file for test_analysis_lint.
# This may be replaced when dependencies are built.
