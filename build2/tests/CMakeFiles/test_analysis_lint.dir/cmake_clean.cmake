file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_lint.dir/test_analysis_lint.cpp.o"
  "CMakeFiles/test_analysis_lint.dir/test_analysis_lint.cpp.o.d"
  "test_analysis_lint"
  "test_analysis_lint.pdb"
  "test_analysis_lint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
