file(REMOVE_RECURSE
  "CMakeFiles/test_kern_ticks.dir/test_kern_ticks.cpp.o"
  "CMakeFiles/test_kern_ticks.dir/test_kern_ticks.cpp.o.d"
  "test_kern_ticks"
  "test_kern_ticks.pdb"
  "test_kern_ticks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern_ticks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
