# Empty dependencies file for test_kern_ticks.
# This may be replaced when dependencies are built.
