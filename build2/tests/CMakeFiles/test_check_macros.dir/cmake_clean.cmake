file(REMOVE_RECURSE
  "CMakeFiles/test_check_macros.dir/test_check_macros.cpp.o"
  "CMakeFiles/test_check_macros.dir/test_check_macros.cpp.o.d"
  "test_check_macros"
  "test_check_macros.pdb"
  "test_check_macros[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_check_macros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
