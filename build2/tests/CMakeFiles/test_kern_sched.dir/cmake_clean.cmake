file(REMOVE_RECURSE
  "CMakeFiles/test_kern_sched.dir/test_kern_sched.cpp.o"
  "CMakeFiles/test_kern_sched.dir/test_kern_sched.cpp.o.d"
  "test_kern_sched"
  "test_kern_sched.pdb"
  "test_kern_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
