# Empty compiler generated dependencies file for test_kern_sched.
# This may be replaced when dependencies are built.
