# Empty compiler generated dependencies file for test_analysis_trace.
# This may be replaced when dependencies are built.
