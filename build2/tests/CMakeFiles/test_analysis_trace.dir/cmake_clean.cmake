file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_trace.dir/test_analysis_trace.cpp.o"
  "CMakeFiles/test_analysis_trace.dir/test_analysis_trace.cpp.o.d"
  "test_analysis_trace"
  "test_analysis_trace.pdb"
  "test_analysis_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
