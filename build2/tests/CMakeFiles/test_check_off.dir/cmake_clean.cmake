file(REMOVE_RECURSE
  "CMakeFiles/test_check_off.dir/test_check_off.cpp.o"
  "CMakeFiles/test_check_off.dir/test_check_off.cpp.o.d"
  "test_check_off"
  "test_check_off.pdb"
  "test_check_off[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_check_off.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
