# Empty compiler generated dependencies file for test_check_off.
# This may be replaced when dependencies are built.
