file(REMOVE_RECURSE
  "CMakeFiles/test_util_config.dir/test_util_config.cpp.o"
  "CMakeFiles/test_util_config.dir/test_util_config.cpp.o.d"
  "test_util_config"
  "test_util_config.pdb"
  "test_util_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
