
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_util_config.cpp" "tests/CMakeFiles/test_util_config.dir/test_util_config.cpp.o" "gcc" "tests/CMakeFiles/test_util_config.dir/test_util_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/check/CMakeFiles/pasched_check.dir/DependInfo.cmake"
  "/root/repo/build2/src/analysis/CMakeFiles/pasched_analysis.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/pasched_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/apps/CMakeFiles/pasched_apps.dir/DependInfo.cmake"
  "/root/repo/build2/src/mpi/CMakeFiles/pasched_mpi.dir/DependInfo.cmake"
  "/root/repo/build2/src/cluster/CMakeFiles/pasched_cluster.dir/DependInfo.cmake"
  "/root/repo/build2/src/net/CMakeFiles/pasched_net.dir/DependInfo.cmake"
  "/root/repo/build2/src/daemons/CMakeFiles/pasched_daemons.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/pasched_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/kern/CMakeFiles/pasched_kern.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/pasched_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/pasched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
