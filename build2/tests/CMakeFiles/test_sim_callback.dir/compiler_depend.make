# Empty compiler generated dependencies file for test_sim_callback.
# This may be replaced when dependencies are built.
