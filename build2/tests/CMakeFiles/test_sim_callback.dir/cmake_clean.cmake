file(REMOVE_RECURSE
  "CMakeFiles/test_sim_callback.dir/test_sim_callback.cpp.o"
  "CMakeFiles/test_sim_callback.dir/test_sim_callback.cpp.o.d"
  "test_sim_callback"
  "test_sim_callback.pdb"
  "test_sim_callback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_callback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
