# Empty compiler generated dependencies file for pasched-audit.
# This may be replaced when dependencies are built.
