file(REMOVE_RECURSE
  "CMakeFiles/pasched-audit.dir/pasched_audit.cpp.o"
  "CMakeFiles/pasched-audit.dir/pasched_audit.cpp.o.d"
  "pasched-audit"
  "pasched-audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched-audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
