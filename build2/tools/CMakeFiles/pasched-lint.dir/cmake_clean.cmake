file(REMOVE_RECURSE
  "CMakeFiles/pasched-lint.dir/pasched_lint.cpp.o"
  "CMakeFiles/pasched-lint.dir/pasched_lint.cpp.o.d"
  "pasched-lint"
  "pasched-lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched-lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
