# Empty dependencies file for pasched-lint.
# This may be replaced when dependencies are built.
