# Empty compiler generated dependencies file for aggregate_trace_study.
# This may be replaced when dependencies are built.
