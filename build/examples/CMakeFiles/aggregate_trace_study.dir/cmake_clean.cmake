file(REMOVE_RECURSE
  "CMakeFiles/aggregate_trace_study.dir/aggregate_trace_study.cpp.o"
  "CMakeFiles/aggregate_trace_study.dir/aggregate_trace_study.cpp.o.d"
  "aggregate_trace_study"
  "aggregate_trace_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_trace_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
