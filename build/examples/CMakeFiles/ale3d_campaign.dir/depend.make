# Empty dependencies file for ale3d_campaign.
# This may be replaced when dependencies are built.
