file(REMOVE_RECURSE
  "CMakeFiles/ale3d_campaign.dir/ale3d_campaign.cpp.o"
  "CMakeFiles/ale3d_campaign.dir/ale3d_campaign.cpp.o.d"
  "ale3d_campaign"
  "ale3d_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ale3d_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
