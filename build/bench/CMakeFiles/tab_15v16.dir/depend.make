# Empty dependencies file for tab_15v16.
# This may be replaced when dependencies are built.
