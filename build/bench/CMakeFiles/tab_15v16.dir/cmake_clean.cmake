file(REMOVE_RECURSE
  "CMakeFiles/tab_15v16.dir/tab_15v16.cpp.o"
  "CMakeFiles/tab_15v16.dir/tab_15v16.cpp.o.d"
  "tab_15v16"
  "tab_15v16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_15v16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
