file(REMOVE_RECURSE
  "CMakeFiles/ext_app_sweep.dir/ext_app_sweep.cpp.o"
  "CMakeFiles/ext_app_sweep.dir/ext_app_sweep.cpp.o.d"
  "ext_app_sweep"
  "ext_app_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_app_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
