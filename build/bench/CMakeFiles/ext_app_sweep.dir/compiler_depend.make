# Empty compiler generated dependencies file for ext_app_sweep.
# This may be replaced when dependencies are built.
