file(REMOVE_RECURSE
  "CMakeFiles/abl_kernel_features.dir/abl_kernel_features.cpp.o"
  "CMakeFiles/abl_kernel_features.dir/abl_kernel_features.cpp.o.d"
  "abl_kernel_features"
  "abl_kernel_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_kernel_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
