# Empty dependencies file for abl_kernel_features.
# This may be replaced when dependencies are built.
