file(REMOVE_RECURSE
  "CMakeFiles/fig_allreduce_fraction.dir/fig_allreduce_fraction.cpp.o"
  "CMakeFiles/fig_allreduce_fraction.dir/fig_allreduce_fraction.cpp.o.d"
  "fig_allreduce_fraction"
  "fig_allreduce_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_allreduce_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
