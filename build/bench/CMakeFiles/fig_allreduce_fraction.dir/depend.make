# Empty dependencies file for fig_allreduce_fraction.
# This may be replaced when dependencies are built.
