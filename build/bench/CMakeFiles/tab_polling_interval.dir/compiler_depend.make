# Empty compiler generated dependencies file for tab_polling_interval.
# This may be replaced when dependencies are built.
