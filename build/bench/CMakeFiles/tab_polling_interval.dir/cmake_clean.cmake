file(REMOVE_RECURSE
  "CMakeFiles/tab_polling_interval.dir/tab_polling_interval.cpp.o"
  "CMakeFiles/tab_polling_interval.dir/tab_polling_interval.cpp.o.d"
  "tab_polling_interval"
  "tab_polling_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_polling_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
