file(REMOVE_RECURSE
  "CMakeFiles/abl_clock_sync.dir/abl_clock_sync.cpp.o"
  "CMakeFiles/abl_clock_sync.dir/abl_clock_sync.cpp.o.d"
  "abl_clock_sync"
  "abl_clock_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_clock_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
