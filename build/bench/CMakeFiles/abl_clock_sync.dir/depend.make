# Empty dependencies file for abl_clock_sync.
# This may be replaced when dependencies are built.
