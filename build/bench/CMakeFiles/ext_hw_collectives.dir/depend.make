# Empty dependencies file for ext_hw_collectives.
# This may be replaced when dependencies are built.
