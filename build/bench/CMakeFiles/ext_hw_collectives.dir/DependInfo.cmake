
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_hw_collectives.cpp" "bench/CMakeFiles/ext_hw_collectives.dir/ext_hw_collectives.cpp.o" "gcc" "bench/CMakeFiles/ext_hw_collectives.dir/ext_hw_collectives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pasched_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pasched_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pasched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pasched_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/pasched_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pasched_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pasched_net.dir/DependInfo.cmake"
  "/root/repo/build/src/daemons/CMakeFiles/pasched_daemons.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/pasched_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pasched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pasched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
