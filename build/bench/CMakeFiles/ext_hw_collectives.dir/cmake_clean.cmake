file(REMOVE_RECURSE
  "CMakeFiles/ext_hw_collectives.dir/ext_hw_collectives.cpp.o"
  "CMakeFiles/ext_hw_collectives.dir/ext_hw_collectives.cpp.o.d"
  "ext_hw_collectives"
  "ext_hw_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hw_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
