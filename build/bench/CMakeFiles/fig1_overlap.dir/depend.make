# Empty dependencies file for fig1_overlap.
# This may be replaced when dependencies are built.
