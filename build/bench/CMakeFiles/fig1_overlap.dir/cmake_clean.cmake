file(REMOVE_RECURSE
  "CMakeFiles/fig1_overlap.dir/fig1_overlap.cpp.o"
  "CMakeFiles/fig1_overlap.dir/fig1_overlap.cpp.o.d"
  "fig1_overlap"
  "fig1_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
