# Empty dependencies file for pasched_bench_common.
# This may be replaced when dependencies are built.
