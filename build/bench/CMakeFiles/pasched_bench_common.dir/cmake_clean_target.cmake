file(REMOVE_RECURSE
  "libpasched_bench_common.a"
)
