file(REMOVE_RECURSE
  "CMakeFiles/pasched_bench_common.dir/common.cpp.o"
  "CMakeFiles/pasched_bench_common.dir/common.cpp.o.d"
  "libpasched_bench_common.a"
  "libpasched_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasched_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
