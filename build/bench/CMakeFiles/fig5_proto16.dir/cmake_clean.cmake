file(REMOVE_RECURSE
  "CMakeFiles/fig5_proto16.dir/fig5_proto16.cpp.o"
  "CMakeFiles/fig5_proto16.dir/fig5_proto16.cpp.o.d"
  "fig5_proto16"
  "fig5_proto16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_proto16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
