# Empty compiler generated dependencies file for fig5_proto16.
# This may be replaced when dependencies are built.
