# Empty dependencies file for fig3_vanilla16.
# This may be replaced when dependencies are built.
