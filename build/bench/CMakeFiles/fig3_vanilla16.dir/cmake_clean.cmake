file(REMOVE_RECURSE
  "CMakeFiles/fig3_vanilla16.dir/fig3_vanilla16.cpp.o"
  "CMakeFiles/fig3_vanilla16.dir/fig3_vanilla16.cpp.o.d"
  "fig3_vanilla16"
  "fig3_vanilla16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vanilla16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
