file(REMOVE_RECURSE
  "CMakeFiles/tab_os_overhead.dir/tab_os_overhead.cpp.o"
  "CMakeFiles/tab_os_overhead.dir/tab_os_overhead.cpp.o.d"
  "tab_os_overhead"
  "tab_os_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_os_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
