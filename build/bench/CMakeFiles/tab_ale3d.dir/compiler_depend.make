# Empty compiler generated dependencies file for tab_ale3d.
# This may be replaced when dependencies are built.
