file(REMOVE_RECURSE
  "CMakeFiles/tab_ale3d.dir/tab_ale3d.cpp.o"
  "CMakeFiles/tab_ale3d.dir/tab_ale3d.cpp.o.d"
  "tab_ale3d"
  "tab_ale3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ale3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
