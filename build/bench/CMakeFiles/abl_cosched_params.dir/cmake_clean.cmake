file(REMOVE_RECURSE
  "CMakeFiles/abl_cosched_params.dir/abl_cosched_params.cpp.o"
  "CMakeFiles/abl_cosched_params.dir/abl_cosched_params.cpp.o.d"
  "abl_cosched_params"
  "abl_cosched_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cosched_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
