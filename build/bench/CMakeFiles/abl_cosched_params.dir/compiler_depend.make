# Empty compiler generated dependencies file for abl_cosched_params.
# This may be replaced when dependencies are built.
