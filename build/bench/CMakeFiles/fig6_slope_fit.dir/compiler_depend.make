# Empty compiler generated dependencies file for fig6_slope_fit.
# This may be replaced when dependencies are built.
