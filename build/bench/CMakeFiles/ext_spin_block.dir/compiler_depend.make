# Empty compiler generated dependencies file for ext_spin_block.
# This may be replaced when dependencies are built.
