file(REMOVE_RECURSE
  "CMakeFiles/ext_spin_block.dir/ext_spin_block.cpp.o"
  "CMakeFiles/ext_spin_block.dir/ext_spin_block.cpp.o.d"
  "ext_spin_block"
  "ext_spin_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spin_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
