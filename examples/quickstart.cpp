// Quickstart: run the paper's synthetic Allreduce benchmark on a small
// simulated cluster twice — stock AIX-style kernel vs. the prototype kernel
// plus co-scheduler — and compare mean per-Allreduce time.
//
//   ./quickstart [--nodes=8] [--tasks-per-node=16] [--calls=400] [--seed=1]
//               [--parallel=N]
//
// --parallel=0 (default) runs the classic single event queue; N >= 1 runs
// the partitioned per-node-shard engine with N worker threads. The results
// are bit-identical either way — only wall-clock time may differ.
#include <iostream>

#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

namespace {

struct RunOutcome {
  double mean_us;
  double max_us;
  double elapsed_s;
};

RunOutcome run_once(int nodes, int tpn, int calls, std::uint64_t seed,
                    bool prototype, int parallel) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(nodes);
  cfg.cluster.seed = seed;
  cfg.cluster.node.tunables =
      prototype ? core::prototype_kernel() : core::vanilla_kernel();
  cfg.job.ntasks = nodes * tpn;
  cfg.job.tasks_per_node = tpn;
  cfg.use_coscheduler = prototype;
  cfg.cosched = core::paper_cosched();
  cfg.parallel = parallel;

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = calls;
  at.warmup = sim::Duration::sec(6);  // let the first cosched window engage
  core::Simulation sim(cfg, apps::aggregate_trace(at));
  const auto result = sim.run();
  if (!result.completed) {
    std::cerr << "warning: job did not complete within the horizon\n";
  }
  const auto& ch = sim.job().channel(apps::kChanAllreduce);
  return RunOutcome{ch.all_us.mean(), ch.all_us.max(),
                    result.elapsed.to_seconds()};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 8));
  const int tpn = static_cast<int>(flags.get_int("tasks-per-node", 16));
  const int calls = static_cast<int>(flags.get_int("calls", 400));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int parallel = static_cast<int>(flags.get_int("parallel", 0));

  std::cout << "pasched quickstart: " << nodes << " nodes x " << tpn
            << " tasks, " << calls << " Allreduces";
  if (parallel > 0) std::cout << " (partitioned, " << parallel << " workers)";
  std::cout << "\n\n";

  const RunOutcome vanilla = run_once(nodes, tpn, calls, seed, false, parallel);
  const RunOutcome proto = run_once(nodes, tpn, calls, seed, true, parallel);

  util::Table t({"configuration", "mean allreduce (us)", "worst (us)",
                 "job time (s)"});
  t.add_row({"vanilla kernel", util::Table::cell(vanilla.mean_us, 1),
             util::Table::cell(vanilla.max_us, 1),
             util::Table::cell(vanilla.elapsed_s, 3)});
  t.add_row({"prototype + cosched", util::Table::cell(proto.mean_us, 1),
             util::Table::cell(proto.max_us, 1),
             util::Table::cell(proto.elapsed_s, 3)});
  t.print(std::cout);
  std::cout << "\nspeedup on mean allreduce: "
            << util::format_double(vanilla.mean_us / proto.mean_us, 2)
            << "x\n";
  return 0;
}
