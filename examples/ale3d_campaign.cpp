// Run the ALE3D proxy application under a chosen scheduling regime and
// report the per-phase breakdown — the workflow a performance engineer would
// use to decide co-scheduler settings for an I/O-heavy production code.
//
//   ./ale3d_campaign --mode=tuned --nodes=24 --steps=30
//       [--checkpoint-every=8] [--seed=3]
//   modes: vanilla | naive | tuned
#include <iostream>

#include "apps/ale3d_proxy.hpp"
#include "apps/channels.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::string mode = flags.get("mode", "tuned");
  const int nodes = static_cast<int>(flags.get_int("nodes", 24));
  const int steps = static_cast<int>(flags.get_int("steps", 30));
  const int ckpt = static_cast<int>(flags.get_int("checkpoint-every", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(nodes);
  cfg.cluster.seed = seed;
  cfg.job.ntasks = nodes * 16;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = seed + 1;
  cfg.horizon = sim::Duration::sec(1800);

  apps::Ale3dConfig app;
  app.timesteps = steps;
  app.checkpoint_every = ckpt;

  if (mode == "vanilla") {
    cfg.use_coscheduler = false;
    app.detach_for_io = false;
  } else if (mode == "naive") {
    cfg.cluster.node.tunables = core::prototype_kernel();
    cfg.use_coscheduler = true;
    cfg.cosched = core::paper_cosched();
    app.detach_for_io = false;
  } else if (mode == "tuned") {
    cfg.cluster.node.tunables = core::prototype_kernel();
    cfg.use_coscheduler = true;
    cfg.cosched = core::io_aware_cosched(40);
    app.detach_for_io = true;
  } else {
    std::cerr << "unknown --mode (use vanilla | naive | tuned)\n";
    return 1;
  }

  std::cout << "ALE3D proxy campaign — mode=" << mode << ", " << nodes
            << " nodes x 16 tasks, " << steps << " timesteps\n\n";
  core::Simulation sim(cfg, apps::ale3d_proxy(app));
  const auto res = sim.run();

  const auto& step = sim.job().channel(apps::kChanStep);
  const auto& io = sim.job().channel(apps::kChanIo);
  const auto& ar = sim.job().channel(apps::kChanAllreduce);

  util::Table t({"phase", "spans", "mean (ms)", "max (ms)"});
  t.add_row({"timestep", util::Table::cell(step.all_us.count()),
             util::Table::cell(step.all_us.mean() / 1000.0, 2),
             util::Table::cell(step.all_us.max() / 1000.0, 2)});
  t.add_row({"I/O phase", util::Table::cell(io.all_us.count()),
             util::Table::cell(io.all_us.mean() / 1000.0, 2),
             util::Table::cell(io.all_us.max() / 1000.0, 2)});
  t.add_row({"allreduce", util::Table::cell(ar.all_us.count()),
             util::Table::cell(ar.all_us.mean() / 1000.0, 3),
             util::Table::cell(ar.all_us.max() / 1000.0, 2)});
  t.print(std::cout);

  std::cout << "\njob wall time : " << util::format_double(res.elapsed.to_seconds(), 2)
            << " s" << (res.completed ? "" : "  (HIT HORIZON)") << "\n";
  if (sim.cosched() != nullptr) {
    std::cout << "cosched       : " << sim.cosched()->total_stats().windows
              << " windows, " << sim.cosched()->total_stats().flips
              << " priority flips, clock sync residual "
              << sim.cosched()->sync_residual().str() << "\n";
  }
  std::cout << "node health   : "
            << (res.any_node_evicted ? "EVICTION (daemons starved!)"
                                     : "all membership daemons healthy")
            << "\n";
  return 0;
}
