// Outlier forensics with the trace facility: run a noisy vanilla-kernel
// job with tracing enabled, show the latency distribution of the
// synchronizing collective, then attribute the worst outliers to the
// system threads that ran during them — the §5.3 methodology as a tool.
//
//   ./trace_forensics [--nodes=12] [--calls=800] [--seed=5] [--outliers=3]
#include <algorithm>
#include <iostream>

#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 12));
  const int calls = static_cast<int>(flags.get_int("calls", 800));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const int outliers = static_cast<int>(flags.get_int("outliers", 3));

  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(nodes);
  cfg.cluster.seed = seed;
  // Arm the admin cron so the demo reliably has a big outlier to explain.
  cfg.cluster.node.daemons.cron_first_due = sim::Duration::sec(7);
  cfg.job.ntasks = nodes * 16;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = seed + 2;

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = calls;
  at.warmup = sim::Duration::sec(6);

  core::Simulation sim(cfg, apps::aggregate_trace(at));
  trace::Tracer tracer(-1);
  for (int n = 0; n < nodes; ++n) tracer.attach(sim.cluster().node(n).kernel());
  tracer.enable(sim.engine().now());
  const auto res = sim.run();
  tracer.disable(sim.engine().now());

  const auto& ch = sim.job().channel(apps::kChanAllreduce);
  const util::Summary s(ch.recorded_us);
  std::cout << "trace forensics — " << nodes << " nodes, " << calls
            << " Allreduces on the vanilla kernel\n\n"
            << "mean " << util::format_double(s.mean(), 1) << " us, median "
            << util::format_double(s.median(), 1) << " us, p99 "
            << util::format_double(s.percentile(99), 1) << " us, max "
            << util::format_double(s.max(), 1) << " us\n\n";

  util::LogHistogram hist(std::max(1.0, s.min() * 0.9), s.max() * 1.1, 14);
  for (double x : ch.recorded_us) hist.add(x);
  std::cout << "latency distribution (us):\n" << hist.render(40) << "\n";

  // Rank calls by duration, explain the slowest few.
  std::vector<std::size_t> idx(ch.recorded_us.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return ch.recorded_us[a] > ch.recorded_us[b];
  });
  for (int k = 0; k < outliers && k < static_cast<int>(idx.size()); ++k) {
    const std::size_t i = idx[static_cast<std::size_t>(k)];
    const sim::Time w0 = ch.recorded_begin[i];
    const sim::Time w1 =
        w0 + sim::Duration::ns(
                 static_cast<std::int64_t>(ch.recorded_us[i] * 1000.0));
    std::cout << "outlier #" << (k + 1) << ": call " << i << " took "
              << util::format_double(ch.recorded_us[i], 0)
              << " us — non-app CPU during it:\n";
    const auto blame = trace::attribute(tracer.intervals(), -1, w0, w1, true);
    int shown = 0;
    for (const auto& a : blame) {
      if (shown++ >= 5) break;
      std::cout << "    " << a.name << " (" << kern::to_string(a.cls)
                << "): " << a.cpu_time.str() << "\n";
    }
    if (blame.empty()) std::cout << "    (nothing traced in the window)\n";
  }
  std::cout << "\ntrace counters: " << tracer.counts().dispatches
            << " dispatches, " << tracer.counts().preemptions
            << " preemptions, " << tracer.counts().ipis << " IPIs, "
            << tracer.counts().ticks << " ticks"
            << (res.completed ? "" : "  (run hit horizon)") << "\n";
  return 0;
}
