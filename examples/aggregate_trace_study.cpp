// A configurable scaling study with the paper's synthetic benchmark: sweep
// processor counts under any combination of kernel preset, co-scheduler
// parameters and MPI settings, and print per-point statistics plus a linear
// fit — the workflow behind Figures 3/5/6, exposed as a tool.
//
//   ./aggregate_trace_study --kernel=prototype --cosched=true
//       --procs=32,64,128,256 --calls=800 --duty=0.9 --period=5
//       --polling-ms=400 --tasks-per-node=16 --seed=1
#include <iostream>
#include <vector>

#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::string kernel = flags.get("kernel", "vanilla");
  const bool cosched = flags.get_bool("cosched", kernel == "prototype");
  const int tpn = static_cast<int>(flags.get_int("tasks-per-node", 16));
  const int calls = static_cast<int>(flags.get_int("calls", 600));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double duty = flags.get_double("duty", 0.90);
  const double period_s = flags.get_double("period", 5.0);
  const double polling_ms = flags.get_double("polling-ms", 400.0);

  std::vector<int> procs;
  for (const auto& tok : util::split(flags.get("procs", "32,64,128,256"), ','))
    if (const auto v = util::parse_int(tok)) procs.push_back(static_cast<int>(*v));

  std::cout << "aggregate_trace scaling study — kernel=" << kernel
            << " cosched=" << (cosched ? "on" : "off") << " " << tpn
            << " tasks/node, " << calls << " calls/point\n\n";

  util::Table t({"procs", "mean us", "median us", "p99 us", "max us", "cv"});
  std::vector<double> xs, ys;
  for (const int p : procs) {
    core::SimulationConfig cfg;
    cfg.cluster = cluster::presets::frost((p + tpn - 1) / tpn);
    cfg.cluster.seed = seed + static_cast<std::uint64_t>(p);
    cfg.cluster.node.tunables = (kernel == "prototype")
                                    ? core::prototype_kernel()
                                    : core::vanilla_kernel();
    cfg.job.ntasks = p;
    cfg.job.tasks_per_node = tpn;
    cfg.job.seed = seed * 13 + static_cast<std::uint64_t>(p);
    cfg.job.mpi.polling_interval =
        sim::Duration::from_seconds(polling_ms / 1000.0);
    cfg.use_coscheduler = cosched;
    cfg.cosched = core::paper_cosched();
    cfg.cosched.duty = duty;
    cfg.cosched.period = sim::Duration::from_seconds(period_s);

    apps::AggregateTraceConfig at;
    at.loops = 1;
    at.calls_per_loop = calls;
    at.warmup = sim::Duration::from_seconds(period_s + 1.0);
    core::Simulation sim(cfg, apps::aggregate_trace(at));
    const auto res = sim.run();
    if (!res.completed) std::cerr << "warning: point " << p << " hit horizon\n";
    const util::Summary s(sim.job().channel(apps::kChanAllreduce).recorded_us);
    t.add_row({util::Table::cell(static_cast<long long>(p)),
               util::Table::cell(s.mean(), 1), util::Table::cell(s.median(), 1),
               util::Table::cell(s.percentile(99), 1),
               util::Table::cell(s.max(), 1), util::Table::cell(s.cv(), 2)});
    xs.push_back(p);
    ys.push_back(s.mean());
  }
  t.print(std::cout);
  if (xs.size() >= 2) {
    const auto fit = util::fit_line(xs, ys);
    std::cout << "\nfit: y = " << util::format_double(fit.slope, 3)
              << " * procs + " << util::format_double(fit.intercept, 1)
              << "  (R^2 = " << util::format_double(fit.r_squared, 3) << ")\n";
  }
  return 0;
}
