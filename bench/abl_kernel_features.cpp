// Ablation: which §3 kernel change buys what? Starting from the vanilla
// kernel we enable one prototype feature at a time (big ticks, simultaneous
// ticks, daemon global-queue dispatch, fixed RT preemption), then the full
// prototype kernel without and with the co-scheduler. The paper presents
// these only in combination; this bench separates the design choices
// DESIGN.md calls out.
//
//   ./abl_kernel_features [--nodes=30] [--calls=N] [--seeds=N]
#include <iostream>

#include "common.hpp"
#include "core/presets.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 30));
  const int calls = static_cast<int>(flags.get_int("calls", 2500));
  const int seeds = static_cast<int>(flags.get_int("seeds", 2));

  bench::banner("Ablation — prototype-kernel features in isolation",
                "SC'03 Jones et al., §3 (design-choice breakdown)");

  // The §3 kernel changes are building blocks *for the co-scheduler's
  // priority-swapping scheme*, so the informative ablation is leave-one-out
  // with the co-scheduler engaged (plus the no-cosched endpoints).
  struct Variant {
    const char* name;
    kern::Tunables tun;
    bool cosched;
  };
  std::vector<Variant> variants;
  variants.push_back({"vanilla kernel, no cosched", core::vanilla_kernel(),
                      false});
  variants.push_back({"full prototype, no cosched", core::prototype_kernel(),
                      false});
  variants.push_back({"vanilla kernel + cosched", core::vanilla_kernel(),
                      true});
  {
    auto t = core::prototype_kernel();
    t.big_tick = 1;
    variants.push_back({"prototype+cosched, minus big tick", t, true});
  }
  {
    auto t = core::prototype_kernel();
    t.synchronized_ticks = false;
    t.cluster_aligned_ticks = false;
    variants.push_back({"prototype+cosched, minus simultaneous ticks", t,
                        true});
  }
  {
    auto t = core::prototype_kernel();
    t.daemon_global_queue = false;
    variants.push_back({"prototype+cosched, minus daemon global queue", t,
                        true});
  }
  {
    auto t = core::prototype_kernel();
    t.rt_scheduling = false;
    t.rt_reverse_preemption = false;
    t.rt_multi_ipi = false;
    variants.push_back({"prototype+cosched, minus RT preemption fixes", t,
                        true});
  }
  {
    auto t = core::prototype_kernel();
    t.rt_multi_ipi = false;
    t.rt_reverse_preemption = false;
    variants.push_back({"prototype+cosched, stock RT option only", t, true});
  }
  variants.push_back({"full prototype + cosched", core::prototype_kernel(),
                      true});

  util::Table t({"variant", "mean us", "max us", "cv"});
  for (const auto& v : variants) {
    bench::RunSpec spec;
    spec.nodes = nodes;
    spec.calls = calls;
    spec.seed = 808;
    spec.tunables = v.tun;
    spec.use_cosched = v.cosched;
    spec.cosched = core::paper_cosched();
    // A 2 s window (vs the paper's 5 s) lets the measured loop integrate
    // over several full windows without an hour of simulated time; the
    // inter-call compute stretches the loop to ~2 periods.
    spec.cosched.period = sim::Duration::sec(2);
    spec.inter_call_compute = sim::Duration::us(1600);
    spec.mpi.polling_interval = sim::Duration::sec(400);
    const auto runs = bench::run_seeds(spec, seeds);
    t.add_row({v.name,
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::mean_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::max_us), 1),
               util::Table::cell(bench::mean_field(runs, &bench::RunResult::cv),
                                 2)});
  }
  t.print(std::cout);
  std::cout << "\nshape target: the kernel changes alone move little — they "
               "are building blocks; with the co-scheduler engaged, removing "
               "a block (especially the RT preemption fixes) costs "
               "performance, and the full combination is best.\n";
  return 0;
}
