// Figure 6: vanilla vs. prototype kernel on the same axes, with fitted
// lines. Paper: y_vanilla = 0.70x + 166, y_prototype = 0.22x + 210 — "the
// slope indicates ~3x improvement". The headline claim ("speedup of over
// 300% on synchronizing collectives") is the per-Allreduce ratio at scale.
//
//   ./fig6_slope_fit [--full] [--calls=N] [--seeds=N]
#include <iostream>

#include "common.hpp"
#include "core/presets.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int calls = static_cast<int>(flags.get_int("calls", 1000));
  const int seeds = static_cast<int>(flags.get_int("seeds", 2));
  const bool full = flags.get_bool("full", false);

  bench::banner("Figure 6 — vanilla vs. prototype kernel: fitted scaling lines",
                "SC'03 Jones et al., Figure 6");

  const auto sweep = bench::default_proc_sweep(full);
  std::vector<double> xs, y_vanilla, y_proto;
  util::Table t({"procs", "vanilla us", "prototype us", "ratio"});
  for (const int procs : sweep) {
    bench::RunSpec vspec;
    vspec.nodes = (procs + 15) / 16;
    vspec.calls = calls;
    vspec.seed = 60000 + static_cast<std::uint64_t>(procs);
    // Figure 6 came from the final test shots, for which the machines were
    // deliberately quieted (§5.2.4: GPFS use limited, daemons tuned); the
    // full-noise configuration is what Figures 3/4 show.
    vspec.daemon_intensity = 0.5;

    bench::RunSpec pspec = vspec;
    pspec.tunables = core::prototype_kernel();
    pspec.use_cosched = true;
    pspec.cosched = core::paper_cosched();
    pspec.mpi.polling_interval = sim::Duration::sec(400);

    const double v = bench::mean_field(bench::run_seeds(vspec, seeds),
                                       &bench::RunResult::mean_us);
    const double p = bench::mean_field(bench::run_seeds(pspec, seeds),
                                       &bench::RunResult::mean_us);
    xs.push_back(procs);
    y_vanilla.push_back(v);
    y_proto.push_back(p);
    t.add_row({util::Table::cell(static_cast<long long>(procs)),
               util::Table::cell(v, 1), util::Table::cell(p, 1),
               util::Table::cell(v / p, 2)});
  }
  t.print(std::cout);

  const auto fv = util::fit_line(xs, y_vanilla);
  const auto fp = util::fit_line(xs, y_proto);
  std::cout << "\nfit, vanilla   : y = " << util::format_double(fv.slope, 3)
            << " * procs + " << util::format_double(fv.intercept, 1)
            << "  (paper: 0.70x + 166)\n"
            << "fit, prototype : y = " << util::format_double(fp.slope, 3)
            << " * procs + " << util::format_double(fp.intercept, 1)
            << "  (paper: 0.22x + 210)\n"
            << "slope ratio    : " << util::format_double(fv.slope / fp.slope, 2)
            << "x  (paper: ~3.2x; claim: >300% speedup on synchronizing "
               "collectives)\n";
  const double at_scale = y_vanilla.back() / y_proto.back();
  std::cout << "mean-allreduce ratio at " << xs.back()
            << " procs: " << util::format_double(at_scale, 2) << "x\n";
  return 0;
}
