// Baseline comparison (related work, §6 category 3): NOW-style demand-based
// co-scheduling — tasks spin briefly then block, and message arrival wakes
// the receiver — versus the paper's dedicated-use model (pure spinning) and
// versus dedicated-job co-scheduling. The paper's argument: on a dedicated
// machine, fair-share/demand techniques pay a wakeup on every message of a
// fine-grain collective, while priority-window co-scheduling removes the
// interference without touching the critical path.
//
//   ./ext_spin_block [--nodes=30] [--calls=N] [--seeds=N]
#include <iostream>

#include "common.hpp"
#include "core/presets.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 30));
  const int calls = static_cast<int>(flags.get_int("calls", 800));
  const int seeds = static_cast<int>(flags.get_int("seeds", 2));

  bench::banner("Baseline — demand-based (spin-block) co-scheduling vs "
                "dedicated-job co-scheduling",
                "SC'03 Jones et al., §6 (Fair Share Co-Schedulers vs "
                "Dedicated Job Co-Schedulers)");

  struct Variant {
    const char* name;
    mpi::RecvWait wait;
    sim::Duration threshold;
    bool cosched;
  };
  const Variant variants[] = {
      {"spin (dedicated use), vanilla", mpi::RecvWait::Spin, {}, false},
      {"spin-block 50 us (NOW-style), vanilla", mpi::RecvWait::SpinBlock,
       sim::Duration::us(50), false},
      {"block immediately, vanilla", mpi::RecvWait::SpinBlock,
       sim::Duration::zero(), false},
      {"spin + prototype + cosched (the paper)", mpi::RecvWait::Spin, {},
       true},
  };

  util::Table t({"variant", "mean us", "p99 us", "max us", "cv"});
  for (const auto& v : variants) {
    bench::RunSpec spec;
    spec.nodes = nodes;
    spec.calls = calls;
    spec.seed = 606;
    spec.mpi.recv_wait = v.wait;
    spec.mpi.spin_threshold = v.threshold;
    if (v.cosched) {
      spec.tunables = core::prototype_kernel();
      spec.use_cosched = true;
      spec.cosched = core::paper_cosched();
      spec.mpi.polling_interval = sim::Duration::sec(400);
    }
    const auto runs = bench::run_seeds(spec, seeds);
    t.add_row({v.name,
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::mean_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::p99_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::max_us), 1),
               util::Table::cell(bench::mean_field(runs, &bench::RunResult::cv),
                                 2)});
  }
  t.print(std::cout);
  std::cout << "\nshape target: blocking frees CPUs for daemons (smaller "
               "outliers than pure spinning on the vanilla kernel) but puts "
               "a wakeup on every tree edge (higher base cost); dedicated-"
               "job co-scheduling beats both — the paper's §6 positioning.\n";
  return 0;
}
