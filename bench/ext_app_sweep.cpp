// Extension bench (§7 future work): "Future work is needed to examine the
// benefit of this research on a wide range of parallel applications." We run
// four application classes — collective-dense implicit solver, explicit
// hydro (ALE3D proxy), pipelined wavefront (Sweep3D class), and coarse BSP —
// under the vanilla kernel and under the prototype+co-scheduler, and report
// the wall-time speedup per class. Expectation from the paper's analysis:
// benefit tracks how much of each code's time lives in fine-grain
// synchronization.
//
//   ./ext_app_sweep [--nodes=16] [--seed=N]
#include <iostream>

#include "apps/ale3d_proxy.hpp"
#include "apps/bsp.hpp"
#include "apps/implicit_cg.hpp"
#include "apps/sweep3d_proxy.hpp"
#include "common.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

namespace {

double run_app(const mpi::WorkloadFactory& factory, int nodes,
               std::uint64_t seed, bool proto, bool io_aware,
               sim::Duration period) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(nodes);
  cfg.cluster.seed = seed;
  cfg.job.ntasks = nodes * 16;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = seed + 3;
  cfg.horizon = sim::Duration::sec(1800);
  if (proto) {
    cfg.cluster.node.tunables = core::prototype_kernel();
    cfg.use_coscheduler = true;
    cfg.cosched = io_aware ? core::io_aware_cosched(40) : core::paper_cosched();
    cfg.cosched.period = period;
    cfg.job.mpi.polling_interval = sim::Duration::sec(400);
  }
  core::Simulation sim(cfg, factory);
  const auto r = sim.run();
  if (!r.completed) std::cerr << "warning: run hit the horizon\n";
  return r.elapsed.to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 44));

  bench::banner("Extension — benefit across application classes",
                "SC'03 Jones et al., §7 ('a wide range of parallel "
                "applications', implemented)");

  struct AppCase {
    const char* name;
    mpi::WorkloadFactory factory;
    bool io_aware;
    // Co-scheduler window; must be tick-aligned with the 250 ms big tick.
    // I/O-phase-heavy codes want the paper's longer windows (fewer
    // unfavored-phase crossings of their barriers).
    sim::Duration period;
  };
  apps::ImplicitCgConfig cg;
  cg.timesteps = 25;
  apps::Ale3dConfig ale;
  ale.timesteps = 60;
  ale.checkpoint_every = 15;
  apps::Sweep3dConfig sw;
  sw.timesteps = 80;
  apps::BspConfig bsp;
  bsp.steps = 160;
  bsp.compute_mean = sim::Duration::ms(20);  // coarse-grain: 20 ms per step

  const AppCase cases[] = {
      {"implicit solver (CG, 80 dots/step)", apps::implicit_cg(cg), false,
       sim::Duration::ms(2500)},
      {"explicit hydro + I/O (ALE3D proxy)", apps::ale3d_proxy(ale), true,
       sim::Duration::sec(5)},
      {"pipelined wavefront (Sweep3D class)", apps::sweep3d_proxy(sw), false,
       sim::Duration::ms(2500)},
      {"coarse-grain BSP (20 ms steps)", apps::bsp(bsp), false,
       sim::Duration::ms(2500)},
  };

  util::Table t({"application class", "vanilla (s)", "prototype+cosched (s)",
                 "speedup"});
  for (const auto& c : cases) {
    const double v = run_app(c.factory, nodes, seed, false, c.io_aware, c.period);
    const double p = run_app(c.factory, nodes, seed, true, c.io_aware, c.period);
    t.add_row({c.name, util::Table::cell(v, 2), util::Table::cell(p, 2),
               util::Table::cell(v / p, 2)});
  }
  t.print(std::cout);
  std::cout << "\nshape target: among compute-bound classes the benefit is "
               "ordered by fine-grain-synchronization density (implicit "
               "solver > wavefront > coarse BSP, the §2 argument); the "
               "I/O-phase-heavy code gains least because its bottleneck "
               "*depends on* daemons — the §5.3 ALE3D lesson, which is why "
               "it runs with the I/O-aware priorities and the escape API.\n";
  return 0;
}
