// §2's measured baseline: "typical operating system and daemon activity
// consumes 0.2% to 1.1% of each CPU for large dedicated RS/6000 SP systems
// with 16 processors per node" [Jones03]. We run idle nodes (no job) for a
// stretch of simulated time and account CPU by class.
//
//   ./tab_os_overhead [--nodes=4] [--seconds=300]
#include <iostream>

#include "cluster/cluster.hpp"
#include "common.hpp"
#include "core/presets.hpp"
#include "sim/engine.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 4));
  const int seconds = static_cast<int>(flags.get_int("seconds", 300));

  bench::banner("OS / daemon background load on idle 16-way nodes",
                "SC'03 Jones et al., §2 (0.2%–1.1% of each CPU, [Jones03])");

  sim::Engine engine;
  cluster::ClusterConfig ccfg = cluster::presets::frost(nodes);
  ccfg.seed = 99;
  cluster::Cluster cluster(engine, ccfg);
  cluster.start();
  engine.run_until(engine.now() + sim::Duration::sec(seconds));

  const double total_cpu_s =
      static_cast<double>(seconds) * 16.0;  // per node CPU-seconds available
  util::Table t({"node", "daemon %/cpu", "tick %/cpu", "total %/cpu",
                 "activations", "in paper band"});
  double worst = 0, best = 1e9;
  for (int n = 0; n < nodes; ++n) {
    const auto& acct = cluster.node(n).kernel().accounting();
    const double daemon_pct =
        100.0 * acct.of(kern::ThreadClass::Daemon).to_seconds() / total_cpu_s;
    const double tick_pct = 100.0 * acct.tick_cpu.to_seconds() / total_cpu_s;
    const double total = daemon_pct + tick_pct;
    worst = std::max(worst, total);
    best = std::min(best, total);
    std::uint64_t acts = 0;
    for (const auto& d : cluster.node(n).daemons()->daemons())
      acts += d->stats().activations;
    t.add_row({util::Table::cell(static_cast<long long>(n)),
               util::Table::cell(daemon_pct, 3), util::Table::cell(tick_pct, 3),
               util::Table::cell(total, 3),
               util::Table::cell(static_cast<long long>(acts)),
               (total >= 0.2 && total <= 1.1) ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nrange across nodes: " << util::format_double(best, 3)
            << "% .. " << util::format_double(worst, 3)
            << "% of each CPU (paper band: 0.2% .. 1.1%)\n";
  return 0;
}
