// Extension bench (§7 future work): "combine the techniques described in
// this paper with complementary techniques designed to improve fine-grain
// parallel processing (e.g., hardware assisted collectives)". We compare the
// software tree allreduce against a switch-offloaded hardware allreduce,
// each with and without parallel-aware scheduling. The punchline the paper
// anticipates: hardware collectives remove the software tree, but the
// *slowest contributor* still gates the operation, so OS interference
// remains visible until co-scheduling removes it too.
//
//   ./ext_hw_collectives [--nodes=30] [--calls=N] [--seeds=N]
#include <iostream>

#include "common.hpp"
#include "core/presets.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 30));
  const int calls = static_cast<int>(flags.get_int("calls", 1000));
  const int seeds = static_cast<int>(flags.get_int("seeds", 2));

  bench::banner("Extension — hardware-assisted collectives x parallel-aware "
                "scheduling",
                "SC'03 Jones et al., §7 (future work, implemented)");

  struct Variant {
    const char* name;
    mpi::AllreduceAlg alg;
    bool proto;
  };
  const Variant variants[] = {
      {"software tree, vanilla", mpi::AllreduceAlg::BinomialTree, false},
      {"hardware switch, vanilla", mpi::AllreduceAlg::HardwareSwitch, false},
      {"software tree, prototype+cosched", mpi::AllreduceAlg::BinomialTree,
       true},
      {"hardware switch, prototype+cosched",
       mpi::AllreduceAlg::HardwareSwitch, true},
  };

  util::Table t({"variant", "mean us", "p99 us", "max us", "cv"});
  for (const auto& v : variants) {
    bench::RunSpec spec;
    spec.nodes = nodes;
    spec.calls = calls;
    spec.seed = 909;
    spec.mpi.allreduce_alg = v.alg;
    if (v.proto) {
      spec.tunables = core::prototype_kernel();
      spec.use_cosched = true;
      spec.cosched = core::paper_cosched();
      spec.mpi.polling_interval = sim::Duration::sec(400);
    }
    const auto runs = bench::run_seeds(spec, seeds);
    t.add_row({v.name,
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::mean_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::p99_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::max_us), 1),
               util::Table::cell(bench::mean_field(runs, &bench::RunResult::cv),
                                 2)});
  }
  t.print(std::cout);
  std::cout << "\nshape target: hardware offload slashes the base cost, but "
               "vanilla scheduling still shows heavy tails (the laggard "
               "gates the switch); combining both is best — the paper's §7 "
               "conjecture.\n";
  return 0;
}
