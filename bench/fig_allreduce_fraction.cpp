// §2's motivation numbers: on ASCI White / ASCI Q, Allreduce consumed more
// than 50% of total application time at 1728 processors ([Dawson03],
// [Hoisie03] reports ~50% at 1728 and >70% at 4096). We run the BSP workload
// with fixed per-task compute and report the fraction of wall time spent in
// synchronizing collectives as the task count grows, on the vanilla kernel.
//
//   ./fig_allreduce_fraction [--full] [--steps=N]
#include <iostream>

#include "apps/bsp.hpp"
#include "apps/channels.hpp"
#include "common.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

namespace {

double allreduce_fraction(int procs, int steps, std::uint64_t seed,
                          bool prototype) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost((procs + 15) / 16);
  cfg.cluster.seed = seed;
  cfg.cluster.node.tunables =
      prototype ? core::prototype_kernel() : core::vanilla_kernel();
  cfg.job.ntasks = procs;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = seed + 1;
  cfg.use_coscheduler = prototype;
  cfg.cosched = core::paper_cosched();
  cfg.cosched.period = sim::Duration::sec(2);

  apps::BspConfig app;
  app.steps = steps;
  app.compute_mean = sim::Duration::ms(2);
  app.allreduces_per_step = 2;
  core::Simulation sim(cfg, apps::bsp(app));
  const auto res = sim.run();
  const auto& ar = sim.job().channel(apps::kChanAllreduce);
  // Mean Allreduce seconds per task over the job's wall time.
  const double ar_s_per_task =
      ar.all_us.sum() / 1e6 / static_cast<double>(procs);
  return ar_s_per_task / res.elapsed.to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const int steps = static_cast<int>(flags.get_int("steps", 400));

  bench::banner("Fraction of runtime consumed by synchronizing collectives "
                "vs. processor count (BSP app)",
                "SC'03 Jones et al., §2 ([Dawson03]/[Hoisie03]: >50% at 1728)");

  std::vector<int> sweep{64, 256, 512, 944};
  if (full) sweep = {64, 128, 256, 512, 944, 1264, 1728};

  util::Table t({"procs", "vanilla allreduce %", "prototype allreduce %"});
  for (const int procs : sweep) {
    const double v = allreduce_fraction(procs, steps, 31, false);
    const double p = allreduce_fraction(procs, steps, 31, true);
    t.add_row({util::Table::cell(static_cast<long long>(procs)),
               util::Table::cell(100.0 * v, 1),
               util::Table::cell(100.0 * p, 1)});
  }
  t.print(std::cout);
  std::cout << "\nshape target: the vanilla fraction grows steeply with task "
               "count (toward the ~50% @1728 the paper cites); parallel-aware "
               "scheduling flattens it.\n";
  return 0;
}
