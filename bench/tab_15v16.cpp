// The 15-vs-16 tasks-per-node study (§2, §5.3): users leave one CPU idle per
// node to absorb daemons. Paper findings:
//   * 15 t/n on the standard kernel: better absolute performance and much
//     less variability than 16 t/n (daemons use the spare CPU), but scaling
//     is still linear (MPI timer threads + decrementer interrupts remain);
//   * 100 fully-populated nodes on the prototype kernel beat 100 nodes at
//     15 t/n on the standard kernel ("154% speedup") — co-scheduling removes
//     the efficiency ceiling without forfeiting a CPU per node.
//
//   ./tab_15v16 [--nodes=59] [--calls=N] [--seeds=N]
#include <iostream>

#include "common.hpp"
#include "core/presets.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 59));
  const int calls = static_cast<int>(flags.get_int("calls", 1200));
  const int seeds = static_cast<int>(flags.get_int("seeds", 2));

  bench::banner("15 vs 16 tasks/node — the idle-CPU convention vs parallel-"
                "aware scheduling",
                "SC'03 Jones et al., §2 & §5.3");

  struct Config {
    const char* name;
    int tpn;
    bool proto;
  };
  const Config configs[] = {
      {"vanilla, 16 t/n", 16, false},
      {"vanilla, 15 t/n", 15, false},
      {"prototype+cosched, 16 t/n", 16, true},
  };

  util::Table t({"configuration", "procs", "mean us", "max us", "cv"});
  double vanilla15 = 0, proto16 = 0, vanilla16 = 0;
  for (const auto& c : configs) {
    bench::RunSpec spec;
    spec.nodes = nodes;
    spec.tasks_per_node = c.tpn;
    spec.calls = calls;
    spec.seed = 77 + static_cast<std::uint64_t>(c.tpn) +
                (c.proto ? 1000u : 0u);
    if (c.proto) {
      spec.tunables = core::prototype_kernel();
      spec.use_cosched = true;
      spec.cosched = core::paper_cosched();
      spec.mpi.polling_interval = sim::Duration::sec(400);
    }
    const auto runs = bench::run_seeds(spec, seeds);
    const double mean = bench::mean_field(runs, &bench::RunResult::mean_us);
    t.add_row({c.name, util::Table::cell(static_cast<long long>(nodes * c.tpn)),
               util::Table::cell(mean, 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::max_us), 1),
               util::Table::cell(bench::mean_field(runs, &bench::RunResult::cv),
                                 2)});
    if (c.proto) {
      proto16 = mean;
    } else if (c.tpn == 15) {
      vanilla15 = mean;
    } else {
      vanilla16 = mean;
    }
  }
  t.print(std::cout);

  std::cout << "\nvanilla 15 t/n vs vanilla 16 t/n : "
            << util::format_double(vanilla16 / vanilla15, 2)
            << "x faster per allreduce (paper: clearly better + less "
               "variable)\n";
  // Throughput comparison uses per-allreduce time and CPU count: the
  // prototype run synchronizes 16/15 more processes per node.
  const double speedup = (vanilla15 / proto16) * (16.0 / 15.0);
  std::cout << "prototype 16 t/n vs vanilla 15 t/n (work-adjusted): "
            << util::format_double(100.0 * speedup, 0)
            << "% of baseline throughput (paper: '154% speedup' on fully "
               "populated nodes)\n";
  return 0;
}
