// Figure 4: sorted per-Allreduce times sampled from one node of a
// 944-processor run on the standard kernel, plus the trace-based outlier
// attribution of §5.3. Paper findings on this sample:
//   * the benchmark model predicts ~350 us; the fastest calls come within
//     ~10% of it;
//   * the median is another ~25% higher;
//   * the mean (2240 us) is ~6x the model — dominated by a handful of
//     outliers;
//   * the slowest call (an administrative cron job ran during it, ~600 ms of
//     priority-56 utility work) accounts for more than half the total time.
//
//   ./fig4_sorted_times [--calls=N] [--samples=448] [--seed=N]
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "core/simulation.hpp"
#include "mpi/collectives.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int calls = static_cast<int>(flags.get_int("calls", 2000));
  const int samples = static_cast<int>(flags.get_int("samples", 448));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 4));

  bench::banner("Figure 4 — sorted Allreduce times from one node @944 procs, "
                "vanilla kernel (+ outlier attribution)",
                "SC'03 Jones et al., Figure 4 and §5.3 trace analysis");

  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(59);
  cfg.cluster.seed = seed;
  // Arm the 15-minute administrative health check to fire mid-run, as it did
  // during the paper's traced run.
  cfg.cluster.node.daemons.cron_first_due = sim::Duration::sec(7);
  cfg.job.ntasks = 59 * 16;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = seed * 31 + 5;

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = calls;
  at.warmup = sim::Duration::sec(6);
  core::Simulation sim(cfg, apps::aggregate_trace(at));

  // AIX-style trace on every node: with a synchronizing collective the
  // laggard can be anywhere, and the paper's analysis needed traces from
  // multiple nodes to find the cron job.
  const int traced_nodes = sim.cluster().size();
  trace::Tracer tracer(/*node_filter=*/-1);
  for (int n = 0; n < traced_nodes; ++n)
    tracer.attach(sim.cluster().node(n).kernel());
  tracer.enable(sim.engine().now());

  const auto res = sim.run();
  if (!res.completed) std::cout << "warning: run hit the horizon\n";
  tracer.disable(sim.engine().now());

  const auto& ch = sim.job().channel(apps::kChanAllreduce);
  std::vector<double> all = ch.recorded_us;
  // Subsample evenly to the figure's 448 points, then sort.
  std::vector<double> sample;
  const std::size_t n = all.size();
  for (int i = 0; i < samples && n > 0; ++i)
    sample.push_back(all[static_cast<std::size_t>(i) * n /
                         static_cast<std::size_t>(samples)]);
  std::sort(sample.begin(), sample.end());

  const util::Summary s(sample);
  const double model =
      mpi::ideal_allreduce(944, cfg.job.mpi, cfg.cluster.fabric.inter_node_latency,
                           cfg.cluster.fabric.per_byte, 8)
          .to_us();

  util::Table t({"quantity", "value (us)", "vs model", "paper"});
  t.add_row({"model (no interference)", util::Table::cell(model, 1), "1.00x",
             "~350 us"});
  t.add_row({"fastest", util::Table::cell(s.min(), 1),
             util::Table::cell(s.min() / model, 2), "~+10%"});
  t.add_row({"median", util::Table::cell(s.median(), 1),
             util::Table::cell(s.median() / model, 2), "fast +25%"});
  t.add_row({"mean", util::Table::cell(s.mean(), 1),
             util::Table::cell(s.mean() / model, 2), "2240 us (~6x)"});
  t.add_row({"p90", util::Table::cell(s.percentile(90), 1),
             util::Table::cell(s.percentile(90) / model, 2), "outlier region"});
  t.add_row({"slowest", util::Table::cell(s.max(), 1),
             util::Table::cell(s.max() / model, 2), ">1/2 of total"});
  t.print(std::cout);
  std::cout << "slowest / total sample time: "
            << util::format_double(100.0 * s.max() / s.total(), 1)
            << "%  (paper: >50% with the cron hit)\n";

  // Sorted-sample curve: print every 32nd point (the figure's shape).
  std::cout << "\nsorted sample (every 32nd of " << sample.size()
            << " points), us:\n  ";
  for (std::size_t i = 0; i < sample.size(); i += 32)
    std::cout << util::format_double(sample[i], 0) << " ";
  std::cout << "... " << util::format_double(sample.back(), 0) << "\n";

  // Outlier attribution: what ran on node 0 during the slowest recorded call?
  std::size_t worst = 0;
  for (std::size_t i = 1; i < ch.recorded_us.size(); ++i)
    if (ch.recorded_us[i] > ch.recorded_us[worst]) worst = i;
  const sim::Time w0 = ch.recorded_begin[worst];
  const sim::Time w1 =
      w0 + sim::Duration::ns(static_cast<std::int64_t>(
               ch.recorded_us[worst] * 1000.0));
  std::cout << "\ntrace attribution for the slowest call ("
            << util::format_double(ch.recorded_us[worst], 0)
            << " us) across the " << traced_nodes
            << " traced nodes — non-application CPU time:\n";
  const auto blame =
      trace::attribute(tracer.intervals(), -1, w0, w1, /*exclude_app=*/true);
  int shown = 0;
  for (const auto& a : blame) {
    if (shown++ >= 8) break;
    std::cout << "  " << a.name << " (" << kern::to_string(a.cls)
              << "): " << a.cpu_time.str() << "\n";
  }
  if (blame.empty())
    std::cout << "  (no non-app activity on this node during the window; the "
                 "outlier originated on another node)\n";
  return 0;
}
