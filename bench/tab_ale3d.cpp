// The ALE3D application study (§5.3), on the ALE3D proxy app:
//   * vanilla kernel, no co-scheduler        — baseline (paper: 1315 s @944);
//   * naive co-scheduling (favored 30, no escape API) — *slower* than the
//     baseline: 10% of a 5 s window starves the I/O daemons;
//   * tuned co-scheduling — favored priority placed just above mmfsd
//     (mmfsd = 40, favored = 41) plus the detach/attach escape around I/O
//     phases — paper: 1152 s, a 1315 -> 1152 s improvement.
//
//   ./tab_ale3d [--nodes=59] [--steps=N] [--seed=N]
#include <iostream>

#include "apps/ale3d_proxy.hpp"
#include "apps/channels.hpp"
#include "common.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

namespace {

struct Outcome {
  double wall_s = 0;
  double io_mean_ms = 0;
  double step_mean_ms = 0;
  bool completed = false;
};

Outcome run_ale3d(int nodes, int steps, std::uint64_t seed, int mode) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(nodes);
  cfg.cluster.seed = seed;
  cfg.job.ntasks = nodes * 16;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = seed * 17 + 3;
  cfg.horizon = sim::Duration::sec(1800);

  apps::Ale3dConfig app;
  app.timesteps = steps;
  app.checkpoint_every = steps / 4;

  switch (mode) {
    case 0:  // vanilla, no co-scheduler
      cfg.cluster.node.tunables = core::vanilla_kernel();
      cfg.use_coscheduler = false;
      app.detach_for_io = false;
      break;
    case 1:  // naive co-scheduling: benchmark settings, no escape API
      cfg.cluster.node.tunables = core::prototype_kernel();
      cfg.use_coscheduler = true;
      cfg.cosched = core::paper_cosched();  // favored 30 < mmfsd 40
      app.detach_for_io = false;
      break;
    case 2:  // tuned: favored just above mmfsd + detach/attach escape
      cfg.cluster.node.tunables = core::prototype_kernel();
      cfg.use_coscheduler = true;
      cfg.cosched = core::io_aware_cosched(/*io_priority=*/40);
      app.detach_for_io = true;
      break;
    default:
      break;
  }

  core::Simulation sim(cfg, apps::ale3d_proxy(app));
  const auto res = sim.run();
  Outcome o;
  o.completed = res.completed;
  o.wall_s = res.elapsed.to_seconds();
  const auto& io = sim.job().channel(apps::kChanIo);
  const auto& step = sim.job().channel(apps::kChanStep);
  o.io_mean_ms = io.all_us.mean() / 1000.0;
  o.step_mean_ms = step.all_us.mean() / 1000.0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 59));
  const int steps = static_cast<int>(flags.get_int("steps", 40));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));

  bench::banner("ALE3D proxy — I/O-aware co-scheduling (naive cosched hurts, "
                "tuned cosched helps)",
                "SC'03 Jones et al., §5.3 ALE3D runs (1315 s -> 1152 s @944)");

  const char* names[] = {"vanilla kernel", "naive cosched (favored 30)",
                         "tuned cosched (favored 41 > mmfsd 40 + detach)"};
  util::Table t({"configuration", "wall time (s)", "mean I/O phase (ms)",
                 "mean timestep (ms)", "completed"});
  double wall[3] = {0, 0, 0};
  for (int mode = 0; mode < 3; ++mode) {
    const Outcome o = run_ale3d(nodes, steps, seed, mode);
    wall[mode] = o.wall_s;
    t.add_row({names[mode], util::Table::cell(o.wall_s, 2),
               util::Table::cell(o.io_mean_ms, 1),
               util::Table::cell(o.step_mean_ms, 2),
               o.completed ? "yes" : "NO (horizon)"});
  }
  t.print(std::cout);
  std::cout << "\nnaive vs vanilla : "
            << util::format_double(100.0 * (wall[1] / wall[0] - 1.0), 1)
            << "% slower (paper: co-scheduler slowed ALE3D down)\n"
            << "tuned vs vanilla : "
            << util::format_double(100.0 * (1.0 - wall[2] / wall[0]), 1)
            << "% faster (paper: 1315 s -> 1152 s, i.e. 12.4% less wall time; "
               "the text calls it a 24% drop)\n";
  return 0;
}
