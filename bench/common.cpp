#include "common.hpp"

#include <cstdio>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "analysis/lint.hpp"
#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "contend/ledger.hpp"
#include "mpi/collectives.hpp"
#include "race/monitor.hpp"
#include "scale/monitor.hpp"
#include "sim/shard.hpp"
#include "util/seam.hpp"
#include "util/stats.hpp"

namespace bench {

using namespace pasched;

RunResult run_aggregate(const RunSpec& spec) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(spec.nodes);
  cfg.cluster.seed = spec.seed;
  cfg.cluster.node.tunables = spec.tunables;
  cfg.cluster.node.daemons.intensity = spec.daemon_intensity;
  cfg.cluster.node.daemons.cron_first_due = spec.cron_first_due;
  cfg.cluster.node.max_clock_offset = spec.max_clock_offset;
  cfg.cluster.node.install_daemons = spec.install_daemons;
  cfg.job.ntasks = spec.nodes * spec.tasks_per_node;
  cfg.job.tasks_per_node = spec.tasks_per_node;
  cfg.job.mpi = spec.mpi;
  cfg.job.seed = spec.seed * 7919 + 13;
  cfg.use_coscheduler = spec.use_cosched;
  cfg.cosched = spec.cosched;
  cfg.parallel = spec.parallel;
  cfg.planner = spec.planner;

  if (spec.lint_before_run) {
    analysis::LintConfig lc;
    lc.tunables = spec.tunables;
    if (spec.use_cosched) lc.cosched = spec.cosched;
    lc.daemons = cfg.cluster.node.daemons;
    lc.daemons_installed = spec.install_daemons;
    lc.mpi = spec.mpi;
    const std::vector<analysis::Diagnostic> diags = analysis::lint(lc);
    for (const analysis::Diagnostic& d : diags)
      std::cerr << "lint: " << d.str() << "\n";
    if (analysis::any_errors(diags))
      throw std::logic_error("bench RunSpec failed pasched-lint with ERRORs");
  }

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = spec.calls;
  at.inter_call_compute = spec.inter_call_compute;
  at.alg = spec.mpi.allreduce_alg;
  at.warmup = spec.warmup;

  if (spec.audit && spec.profile_scale)
    throw std::logic_error(
        "RunSpec::audit and RunSpec::profile_scale both want the single "
        "shard-monitor slot; run them as separate passes");

  core::Simulation sim(cfg, apps::aggregate_trace(at));
  std::unique_ptr<race::Monitor> monitor;
  std::unique_ptr<scale::RunMonitor> profiler;
  if (spec.audit) {
    sim::ShardedEngine* sh = sim.sharded();
    if (sh == nullptr)
      throw std::logic_error("RunSpec::audit requires parallel >= 1");
    monitor = std::make_unique<race::Monitor>(sh->partitions());
    sh->set_monitor(monitor.get());
    race::install_sink(monitor.get());
  }
  if (spec.profile_scale) {
    sim::ShardedEngine* sh = sim.sharded();
    if (sh == nullptr)
      throw std::logic_error("RunSpec::profile_scale requires parallel >= 1");
    profiler = std::make_unique<scale::RunMonitor>(
        scale::build_lookahead_matrix(cfg.cluster.fabric, cfg.cluster.nodes),
        *sh);
    sh->set_monitor(profiler.get());
  }
  std::unique_ptr<contend::Ledger> ledger;
  if (spec.ledger) {
    if (sim.sharded() == nullptr)
      throw std::logic_error("RunSpec::ledger requires parallel >= 1");
    ledger = std::make_unique<contend::Ledger>();
    util::install_seam_observer(ledger.get());
  }
  const auto sres = sim.run();
  if (ledger) util::install_seam_observer(nullptr);
  if (monitor) race::install_sink(nullptr);
  if (profiler) profiler->finalize();

  const auto& ch = sim.job().channel(apps::kChanAllreduce);
  RunResult r;
  if (monitor) r.audit_violations = monitor->stats().violations;
  r.completed = sres.completed;
  r.procs = cfg.job.ntasks;
  r.elapsed_s = sres.elapsed.to_seconds();
  r.events = sres.events;
  r.events_at_completion = sres.events_at_completion;
  if (profiler) {
    const scale::SpeedupModel model;
    r.predicted_max_speedup = model.predicted_speedup(profiler->windows(), 8);
    r.lookahead_violations = profiler->violations();
    r.windows = profiler->windows();
  }
  if (sim.sharded() != nullptr) {
    const sim::PlannerStats ps = sim.sharded()->planner_stats();
    r.planner_rounds = ps.rounds;
    r.planner_chained = ps.windows;
    r.planner_coalesced = ps.coalesced;
    r.ring_posts = ps.ring_posts;
    r.ring_overflows = ps.ring_overflows;
  }
  if (ledger) {
#if PASCHED_VALIDATE_ENABLED
    r.ledger_enabled = true;
#endif
    const contend::LedgerReport lrep = ledger->report();
    r.barrier_wait_share = lrep.barrier_wait_share;
    std::uint64_t bwait = 0, bacq = 0;
    for (const contend::SiteSummary& s : lrep.sites) {
      if (s.kind != util::SeamKind::Barrier) continue;
      bwait += s.wait_ns;
      bacq += s.acquires;
    }
    if (bacq > 0)
      r.measured_barrier_cost_ns =
          2.0 * static_cast<double>(bwait) / static_cast<double>(bacq);
    for (const contend::SiteSummary& s : lrep.sites) {
      if (r.top_wait_sites.size() == 3) break;
      LedgerSiteRow row;
      row.site = s.name;
      row.acquires = s.acquires;
      row.wait_ms = static_cast<double>(s.wait_ns) / 1e6;
      row.wait_share = s.wait_share;
      r.top_wait_sites.push_back(std::move(row));
    }
  }
  r.recorded = ch.recorded_us;
  if (!r.recorded.empty()) {
    const util::Summary s(r.recorded);
    r.mean_us = s.mean();
    r.median_us = s.median();
    r.min_us = s.min();
    r.max_us = s.max();
    r.p99_us = s.percentile(99);
    r.cv = s.cv();
    std::size_t outliers = 0;
    for (const double x : r.recorded)
      if (x > 2.0 * r.median_us) ++outliers;
    r.outlier_frac =
        static_cast<double>(outliers) / static_cast<double>(r.recorded.size());
    const auto& sorted = s.sorted();
    const std::size_t k = std::min<std::size_t>(20, sorted.size());
    double tail = 0;
    for (std::size_t i = sorted.size() - k; i < sorted.size(); ++i)
      tail += sorted[i];
    r.tail20_us = k ? tail / static_cast<double>(k) : 0.0;
  }
  r.ideal_us =
      mpi::ideal_allreduce(cfg.job.ntasks, spec.mpi,
                           cfg.cluster.fabric.inter_node_latency,
                           cfg.cluster.fabric.per_byte, 8)
          .to_us();
  return r;
}

std::vector<RunResult> run_seeds(RunSpec spec, int seeds) {
  std::vector<RunResult> out;
  for (int s = 0; s < seeds; ++s) {
    spec.seed = spec.seed * 31 + static_cast<std::uint64_t>(s) + 1;
    out.push_back(run_aggregate(spec));
  }
  return out;
}

double mean_field(const std::vector<RunResult>& rs, double RunResult::* field) {
  if (rs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : rs) sum += r.*field;
  return sum / static_cast<double>(rs.size());
}

std::vector<int> default_proc_sweep(bool full) {
  if (full) return {32, 64, 128, 256, 512, 768, 944, 1024, 1280, 1536};
  return {32, 64, 128, 256, 512, 944};
}

std::string git_commit() {
  std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[64] = {};
  std::string out;
  if (std::fgets(buf, sizeof buf, p) != nullptr) out = buf;
  ::pclose(p);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out.empty() ? "unknown" : out;
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "==============================================================\n";
}

}  // namespace bench
