// Microbenchmark of partitioned execution: a fig5-style run (prototype
// kernel + co-scheduler, aggregate_trace workload) on a 64-node cluster,
// executed under the classic single event queue and under --parallel=N for
// N in {1, 2, 4, 8}. Reports wall-clock time and event throughput per mode
// and writes BENCH_shard.json next to the binary's working directory.
//
// The speedup column is only meaningful on a machine with enough cores;
// hardware_concurrency is recorded in the JSON so results are interpreted
// honestly (on a single-core container --parallel=8 *cannot* beat legacy).
//
// The profiled pass runs twice — per-pair planner and legacy global
// planner — so the JSON carries the sync-round reduction (n_windows_ratio)
// the per-pair window chain buys. The speedup prediction is priced with
// *measured* constants: event cost from the legacy row's own wall clock,
// barrier cost from the contention ledger — but only when the 8-worker
// ledger pass was not oversubscribed (an oversubscribed barrier wait
// measures kernel thread churn, not the barrier; barrier_cost_source in
// the JSON records which constant was used).
//
//   ./micro_shard [--nodes=8] [--tasks-per-node=16] [--calls=120] [--seed=1]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/presets.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

struct ModeResult {
  std::string name;
  int parallel = 0;
  /// Worker threads this mode actually uses (legacy = 1).
  int cores_used = 1;
  /// False when the mode asks for more workers than the machine has
  /// hardware threads — its speedup column is a measurement of
  /// oversubscription, not of the partitioned core.
  bool speedup_valid = true;
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t events_at_completion = 0;  // must agree across modes
  bool completed = false;
  double mean_us = 0;  // per-Allreduce mean: must agree across modes
  bool audited = false;
  std::uint64_t audit_violations = 0;
};

ModeResult run_mode(bench::RunSpec spec, const std::string& name,
                    int parallel, bool audit = false) {
  spec.parallel = parallel;
  spec.audit = audit;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::RunResult r = bench::run_aggregate(spec);
  const auto t1 = std::chrono::steady_clock::now();
  ModeResult m;
  m.name = name;
  m.parallel = parallel;
  m.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  m.cores_used = parallel > 0 ? parallel : 1;
  m.events = r.events;
  m.events_at_completion = r.events_at_completion;
  m.completed = r.completed;
  m.mean_us = r.mean_us;
  m.audited = audit;
  m.audit_violations = r.audit_violations;
  const unsigned hw = std::thread::hardware_concurrency();
  m.speedup_valid = hw > 0 && static_cast<unsigned>(m.cores_used) <= hw;
  if (!m.speedup_valid)
    std::cerr << "micro_shard: WARNING: mode " << name << " wants "
              << m.cores_used << " workers but the machine has " << hw
              << " hardware threads; its speedup column measures "
                 "oversubscription, not the partitioned core\n";
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  bench::RunSpec spec;
  // fig5's geometry (8 nodes, 120 calls): the configuration the ROADMAP
  // scalability targets are stated against.
  spec.nodes = static_cast<int>(flags.get_int("nodes", 8));
  spec.tasks_per_node = static_cast<int>(flags.get_int("tasks-per-node", 16));
  spec.calls = static_cast<int>(flags.get_int("calls", 120));
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.tunables = core::prototype_kernel();
  spec.use_cosched = true;
  spec.cosched = core::paper_cosched();
  spec.warmup = sim::Duration::ms(500);  // keep the sweep snappy

  const unsigned hw = std::thread::hardware_concurrency();
  bench::banner("micro_shard: partitioned-core scaling",
                "engine microbenchmark (no paper figure)");
  std::cout << "nodes=" << spec.nodes << " tasks=" << spec.nodes * spec.tasks_per_node
            << " calls=" << spec.calls << " hardware_concurrency=" << hw
            << "\n\n";

  std::vector<ModeResult> modes;
  modes.push_back(run_mode(spec, "legacy", 0));
  for (const int n : {1, 2, 4, 8})
    modes.push_back(run_mode(spec, "parallel" + std::to_string(n), n));
  // Full pasched-race audit (seam monitor + ownership sink) on 4 workers:
  // the delta against the bare parallel4 row prices the *dynamic* checker;
  // the annotation layer's own cost is the cross-build delta of this whole
  // file under -DPASCHED_VALIDATE=ON vs OFF (see "validate_enabled" below).
  modes.push_back(run_mode(spec, "parallel4+audit", 4, /*audit=*/true));

  const double legacy_ms = modes.front().wall_ms;
  const auto speedup = [legacy_ms](const ModeResult& m) {
    return m.wall_ms > 0 ? legacy_ms / m.wall_ms : 0.0;
  };

  std::cout
      << "mode             wall_ms   events     ev/ms    mean_us   speedup\n";
  for (const ModeResult& m : modes) {
    std::cout << m.name << std::string(m.name.size() < 16 ? 16 - m.name.size() : 1, ' ')
              << m.wall_ms << "  " << m.events << "  "
              << (m.wall_ms > 0 ? static_cast<double>(m.events) / m.wall_ms : 0)
              << "  " << m.mean_us << "  " << speedup(m) << "x"
              << (m.completed ? "" : "  [INCOMPLETE]") << "\n";
  }
  const ModeResult& par4 = modes[3];  // legacy, p1, p2, p4, p8, p4+audit
  const ModeResult& par8 = modes[4];
  const ModeResult& audited = modes.back();
  const double speedup8 = speedup(par8);
  const bool speedup8_valid = par8.speedup_valid;
  const double audit_overhead =
      par4.wall_ms > 0 ? audited.wall_ms / par4.wall_ms : 0.0;

  // Separate profiled pass: the pasched-scale window profiler predicts the
  // speedup ceiling of this workload's conservative windows. Kept out of
  // the timed modes above so the monitor's bookkeeping never pollutes the
  // wall-clock columns; one worker suffices (windows are worker-invariant).
  bench::RunSpec profile_spec = spec;
  profile_spec.parallel = 1;
  profile_spec.profile_scale = true;
  const bench::RunResult profiled = bench::run_aggregate(profile_spec);

  // Same profile under the legacy global planner: the two sync-round counts
  // are schedule-derived (deterministic), and their ratio is the window
  // reduction the per-pair chain buys — the CI scalability smoke's figure.
  bench::RunSpec global_spec = profile_spec;
  global_spec.planner = sim::PlannerMode::Global;
  const bench::RunResult profiled_global = bench::run_aggregate(global_spec);
  const std::uint64_t n_windows_perpair = profiled.planner_rounds;
  const std::uint64_t n_windows_global = profiled_global.planner_rounds;
  const double n_windows_ratio =
      n_windows_perpair > 0
          ? static_cast<double>(n_windows_global) /
                static_cast<double>(n_windows_perpair)
          : 0.0;

  // Separate contention-ledger pass on 8 workers (pasched-contend's runtime
  // half): ranks the engine's serialization sites by recorded seam wait.
  // Also kept out of the timed modes — the observer callbacks cost time on
  // exactly the paths being measured. Under -DPASCHED_VALIDATE=OFF the
  // seams never notify and the ranking is empty (ledger_enabled records
  // which, so the JSON stays honest).
  bench::RunSpec ledger_spec = spec;
  ledger_spec.parallel = 8;
  ledger_spec.ledger = true;
  const bench::RunResult ledgered = bench::run_aggregate(ledger_spec);

  // Price the window model with measured constants: event cost from the
  // legacy row's wall clock (what one event of *this* workload costs on
  // *this* box), barrier cost from the ledger's per-round figure. The
  // barrier measurement only transfers when the 8-worker ledger pass had 8
  // hardware threads to run on — oversubscribed, each crossing waits for
  // the kernel to schedule the other workers sequentially, which inflates
  // the figure by the oversubscription factor and would poison the
  // prediction. Falls back to the model defaults otherwise (the JSON
  // records which via barrier_cost_source).
  scale::SpeedupModel measured_model;
  if (modes.front().events > 0 && legacy_ms > 0)
    measured_model.event_cost_ns =
        legacy_ms * 1e6 / static_cast<double>(modes.front().events);
  std::string barrier_cost_source = "default";
  if (ledgered.measured_barrier_cost_ns >= 0) {
    if (hw >= 8) {
      measured_model.barrier_cost_ns = ledgered.measured_barrier_cost_ns;
      barrier_cost_source = "measured";
    } else {
      barrier_cost_source = "default (oversubscribed ledger pass)";
    }
  }
  const double predicted =
      measured_model.predicted_speedup(profiled.windows, 8);
  const double predicted_default_model = profiled.predicted_max_speedup;

  std::cout << "\nspeedup parallel8 vs legacy: " << speedup8 << "x (on " << hw
            << " hardware threads"
            << (speedup8_valid ? "" : "; OVERSUBSCRIBED, not meaningful")
            << ")\n"
            << "predicted ceiling (barrier-cost model, 8 workers): "
            << predicted << "x over " << profiled.events_at_completion
            << " events (" << predicted_default_model
            << "x with default constants; event cost "
            << measured_model.event_cost_ns << " ns, barrier cost "
            << measured_model.barrier_cost_ns << " ns ["
            << barrier_cost_source << "]; "
            << profiled.lookahead_violations << " lookahead violations)\n"
            << "sync rounds: perpair " << n_windows_perpair << " vs global "
            << n_windows_global << " = " << n_windows_ratio
            << "x reduction (batch " << sim::kDefaultWindowBatch << ", "
            << profiled.planner_chained << " chained / "
            << profiled.planner_coalesced << " coalesced windows, ring "
            << profiled.ring_posts << " posts / " << profiled.ring_overflows
            << " overflows)\n"
            << "race-audit overhead vs parallel4: " << audit_overhead
            << "x wall (" << audited.audit_violations << " violations)\n";
  if (ledgered.ledger_enabled) {
    std::cout << "contention ledger (parallel8): barrier wait share "
              << ledgered.barrier_wait_share << ", top sites:";
    for (const bench::LedgerSiteRow& s : ledgered.top_wait_sites)
      std::cout << " " << s.site << "(" << s.wait_share << ")";
    std::cout << "\n";
  } else {
    std::cout << "contention ledger: unavailable (seams uninstrumented "
                 "under -DPASCHED_VALIDATE=OFF)\n";
  }
  std::cout
            << "validate (ownership annotations compiled in): "
#if PASCHED_VALIDATE_ENABLED
            << "on\n";
#else
            << "off\n";
#endif

  std::ofstream js("BENCH_shard.json");
  js << "{\n  \"bench\": \"micro_shard\",\n"
     << "  \"git_commit\": \"" << bench::git_commit() << "\",\n"
     << "  \"nodes\": " << spec.nodes << ",\n"
     << "  \"tasks\": " << spec.nodes * spec.tasks_per_node << ",\n"
     << "  \"calls\": " << spec.calls << ",\n"
     << "  \"hardware_concurrency\": " << hw << ",\n"
     << "  \"speedup_valid_note\": \"speedup columns are only meaningful "
        "when cores <= hardware_concurrency; oversubscribed rows measure "
        "thread churn, not the partitioned core\",\n"
#if PASCHED_VALIDATE_ENABLED
     << "  \"validate_enabled\": true,\n"
#else
     << "  \"validate_enabled\": false,\n"
#endif
     << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    js << "    {\"mode\": \"" << m.name << "\", \"parallel\": " << m.parallel
       << ", \"cores\": " << m.cores_used
       << ", \"speedup_valid\": " << (m.speedup_valid ? "true" : "false")
       << ", \"wall_ms\": " << m.wall_ms << ", \"events\": " << m.events
       << ", \"events_at_completion\": " << m.events_at_completion
       << ", \"speedup_vs_legacy\": " << speedup(m)
       << ", \"audited\": " << (m.audited ? "true" : "false")
       << ", \"audit_violations\": " << m.audit_violations
       << ", \"completed\": " << (m.completed ? "true" : "false") << "}"
       << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  js << "  ],\n  \"speedup_parallel8_vs_legacy\": " << speedup8
     << ",\n  \"speedup_valid\": " << (speedup8_valid ? "true" : "false")
     << ",\n  \"predicted_max_speedup\": " << predicted
     << ",\n  \"predicted_max_speedup_default_model\": "
     << predicted_default_model
     << ",\n  \"model_event_cost_ns\": " << measured_model.event_cost_ns
     << ",\n  \"model_barrier_cost_ns\": " << measured_model.barrier_cost_ns
     << ",\n  \"barrier_cost_source\": \"" << barrier_cost_source
     << "\",\n  \"window_batch\": " << sim::kDefaultWindowBatch
     << ",\n  \"n_windows_perpair\": " << n_windows_perpair
     << ",\n  \"n_windows_global\": " << n_windows_global
     << ",\n  \"n_windows_ratio\": " << n_windows_ratio
     << ",\n  \"chained_windows\": " << profiled.planner_chained
     << ",\n  \"coalesced_windows\": " << profiled.planner_coalesced
     << ",\n  \"ring_posts\": " << profiled.ring_posts
     << ",\n  \"ring_overflows\": " << profiled.ring_overflows
     << ",\n  \"lookahead_violations\": " << profiled.lookahead_violations
     << ",\n  \"audit_overhead_vs_parallel4\": " << audit_overhead
     << ",\n  \"ledger_enabled\": "
     << (ledgered.ledger_enabled ? "true" : "false")
     << ",\n  \"barrier_wait_share\": " << ledgered.barrier_wait_share
     << ",\n  \"top_wait_sites\": [\n";
  for (std::size_t i = 0; i < ledgered.top_wait_sites.size(); ++i) {
    const bench::LedgerSiteRow& s = ledgered.top_wait_sites[i];
    js << "    {\"site\": \"" << s.site << "\", \"acquires\": " << s.acquires
       << ", \"wait_ms\": " << s.wait_ms
       << ", \"wait_share\": " << s.wait_share << "}"
       << (i + 1 < ledgered.top_wait_sites.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::cout << "wrote BENCH_shard.json\n";

  // Cross-mode sanity: the simulated physics must not depend on the mode.
  for (const ModeResult& m : modes) {
    if (!m.completed) {
      std::cerr << "micro_shard: mode " << m.name << " did not complete\n";
      return 1;
    }
    if (m.mean_us != modes[1].mean_us) {
      std::cerr << "micro_shard: mode " << m.name
                << " disagrees with parallel1 on mean Allreduce time\n";
      return 1;
    }
    // The raw event counters legitimately differ (the partitioned core
    // drains its final window past the completing event); the normalized
    // below-completion counter must not.
    if (m.events_at_completion != modes[1].events_at_completion) {
      std::cerr << "micro_shard: mode " << m.name << " counted "
                << m.events_at_completion
                << " events below completion but parallel1 counted "
                << modes[1].events_at_completion
                << "; the modes executed different histories\n";
      return 1;
    }
    if (m.audit_violations != 0) {
      std::cerr << "micro_shard: audited mode " << m.name << " reported "
                << m.audit_violations << " ownership violations\n";
      return 1;
    }
  }
  return 0;
}
