// Figure 1: the overlap argument. Two schedulings of the same 8-way parallel
// application carry the same total system activity ("red"), but when that
// activity is co-scheduled (overlapped), far more wall time has the
// application running on ALL CPUs ("green"). We measure the green fraction
// with the trace facility on one node under (a) uncoordinated daemons and
// (b) the prototype kernel + co-scheduler, and verify the red totals match.
//
//   ./fig1_overlap [--cpus=8] [--seconds=30] [--seed=N]
#include <iostream>

#include "apps/bsp.hpp"
#include "common.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

namespace {

struct Overlap {
  double green_fraction = 0;   // all CPUs running app
  double red_cpu_seconds = 0;  // daemon CPU consumed
  double wall_s = 0;
};

Overlap run_once(int cpus, int steps, std::uint64_t seed, bool coordinated) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(1);
  cfg.cluster.node.ncpus = cpus;
  cfg.cluster.seed = seed;
  // A deliberately noisy node so the figure's red/green contrast is visible
  // at a glance (the paper's figure is an illustration, not a measurement).
  cfg.cluster.node.daemons.intensity = 6.0;
  cfg.cluster.node.tunables =
      coordinated ? core::prototype_kernel() : core::vanilla_kernel();
  cfg.job.ntasks = cpus;
  cfg.job.tasks_per_node = cpus;
  cfg.job.seed = seed + 5;
  cfg.use_coscheduler = coordinated;
  cfg.cosched = core::paper_cosched();
  cfg.cosched.period = sim::Duration::sec(2);  // several windows per run

  apps::BspConfig app;
  app.steps = steps;
  app.compute_mean = sim::Duration::ms(5);
  core::Simulation sim(cfg, apps::bsp(app));

  trace::Tracer tracer(/*node_filter=*/0);
  tracer.attach(sim.cluster().node(0).kernel());
  tracer.enable(sim.engine().now());
  const auto res = sim.run();
  tracer.disable(sim.engine().now());

  Overlap o;
  o.wall_s = res.elapsed.to_seconds();
  o.green_fraction = trace::all_cpus_app_fraction(
      tracer.intervals(), 0, cpus, sim.job().launch_time(),
      sim.job().completion_time());
  o.red_cpu_seconds = sim.cluster()
                          .node(0)
                          .kernel()
                          .accounting()
                          .of(kern::ThreadClass::Daemon)
                          .to_seconds();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int cpus = static_cast<int>(flags.get_int("cpus", 8));
  const int steps = static_cast<int>(flags.get_int("steps", 4000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));

  bench::banner("Figure 1 — overlapped vs. uncoordinated system activity on "
                "one 8-way node",
                "SC'03 Jones et al., Figure 1");

  const Overlap random = run_once(cpus, steps, seed, false);
  const Overlap coord = run_once(cpus, steps, seed, true);

  util::Table t({"scheduling", "green fraction", "red (daemon cpu-s)",
                 "wall (s)"});
  t.add_row({"uncoordinated (top of Fig. 1)",
             util::Table::cell(random.green_fraction, 4),
             util::Table::cell(random.red_cpu_seconds, 3),
             util::Table::cell(random.wall_s, 2)});
  t.add_row({"co-scheduled (bottom of Fig. 1)",
             util::Table::cell(coord.green_fraction, 4),
             util::Table::cell(coord.red_cpu_seconds, 3),
             util::Table::cell(coord.wall_s, 2)});
  t.print(std::cout);
  std::cout << "\nshape target: a larger green fraction and shorter wall time "
               "when co-scheduled, with red (daemon) work of the same order — "
               "deferral batches daemon activations, so some periodic work "
               "coalesces rather than disappearing.\n";
  return 0;
}
