// micro_engine: single-shard event-throughput microbench — the baseline
// for ROADMAP open item 2 (event-engine hot-path work).
//
// Two modes run the identical workload (K concurrent self-rescheduling
// event chains advancing in fixed steps until ~N total events fire):
//
//   legacy     the classic sim::Engine drives the chains directly
//   parallel1  the same chains run inside a single-node ShardedEngine
//              under run_until(workers=1) — pricing the conservative-
//              window machinery (drain, plan, barrier) per event
//
// Both paths fire the same events in the same order, so the throughput
// ratio isolates the partitioned core's per-event overhead. Results are
// written as JSON to BENCH_engine.json (schema documented in README.md)
// so successive PRs can diff events/sec across engine changes.
//
//   ./micro_engine [--chains=K] [--events=N] [--repeats=R]
//       [--spacing-ns=S] [--out=FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/shard.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

struct Config {
  int chains = 64;
  std::uint64_t events = 1'000'000;
  int repeats = 5;
  std::int64_t spacing_ns = 1'000;
  std::string out = "BENCH_engine.json";
};

struct ModeResult {
  std::string mode;
  std::uint64_t events = 0;
  std::vector<double> runs_events_per_sec;
  double best = 0;
  double median = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Arms `chains` self-rescheduling chains on `e`; each fire bumps the
/// shared counter and re-arms `spacing` later while budget remains, so
/// both modes execute the same event stream. Returns the fired count.
std::uint64_t drive_chains(sim::Engine& e, const Config& cfg,
                           const std::function<void(sim::Time)>& run_to) {
  std::uint64_t fired = 0;
  const sim::Duration spacing = sim::Duration::ns(cfg.spacing_ns);
  std::function<void()> tick = [&] {
    if (++fired + static_cast<std::uint64_t>(cfg.chains) <= cfg.events)
      e.schedule_after(spacing, tick);
  };
  for (int c = 0; c < cfg.chains; ++c) e.schedule_at(e.now() + spacing, tick);
  // Horizon covering every re-arm: events/chains steps plus slack.
  const std::int64_t steps = static_cast<std::int64_t>(
      cfg.events / static_cast<std::uint64_t>(cfg.chains)) + 2;
  run_to(e.now() + spacing * steps);
  return fired;
}

double run_legacy_once(const Config& cfg) {
  sim::Engine e;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t fired =
      drive_chains(e, cfg, [&](sim::Time until) { e.run_until(until); });
  return static_cast<double>(fired) / seconds_since(t0);
}

double run_parallel1_once(const Config& cfg) {
  // One node => one shard, no hub: the same event stream, but every window
  // pays drain_inbox + plan_round + the barrier phases.
  sim::ShardedEngine sh(1, sim::Duration::us(10));
  sim::Engine& e = sh.engine_of(0);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t fired = drive_chains(
      e, cfg, [&](sim::Time until) { sh.run_until(until, 1); });
  return static_cast<double>(fired) / seconds_since(t0);
}

ModeResult measure(const std::string& mode, const Config& cfg,
                   double (*once)(const Config&)) {
  ModeResult r;
  r.mode = mode;
  r.events = cfg.events;
  for (int i = 0; i < cfg.repeats; ++i) {
    const double eps = once(cfg);
    r.runs_events_per_sec.push_back(eps);
    std::cout << "  " << mode << " run " << (i + 1) << "/" << cfg.repeats
              << ": " << static_cast<std::uint64_t>(eps) << " events/s\n";
  }
  std::vector<double> sorted = r.runs_events_per_sec;
  std::sort(sorted.begin(), sorted.end());
  r.best = sorted.back();
  r.median = sorted[sorted.size() / 2];
  return r;
}

void emit_mode(std::ostream& os, const ModeResult& r, bool last) {
  os << "    {\"mode\": \"" << r.mode << "\", \"events\": " << r.events
     << ", \"best_events_per_sec\": " << static_cast<std::uint64_t>(r.best)
     << ", \"median_events_per_sec\": " << static_cast<std::uint64_t>(r.median)
     << ", \"runs\": [";
  for (std::size_t i = 0; i < r.runs_events_per_sec.size(); ++i)
    os << (i ? ", " : "")
       << static_cast<std::uint64_t>(r.runs_events_per_sec[i]);
  os << "]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto typos =
      flags.unknown({"chains", "events", "repeats", "spacing-ns", "out"});
  if (!typos.empty()) {
    std::cerr << "micro_engine: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: micro_engine [--chains=K] [--events=N]"
                 " [--repeats=R] [--spacing-ns=S] [--out=FILE]\n";
    return 64;
  }
  Config cfg;
  cfg.chains = static_cast<int>(flags.get_int("chains", cfg.chains));
  cfg.events = static_cast<std::uint64_t>(
      flags.get_int("events", static_cast<long long>(cfg.events)));
  cfg.repeats = static_cast<int>(flags.get_int("repeats", cfg.repeats));
  cfg.spacing_ns = flags.get_int("spacing-ns", cfg.spacing_ns);
  cfg.out = flags.get("out", cfg.out);
  if (cfg.chains < 1 || cfg.events < static_cast<std::uint64_t>(cfg.chains) ||
      cfg.repeats < 1 || cfg.spacing_ns < 1) {
    std::cerr << "micro_engine: need chains >= 1, events >= chains, "
                 "repeats >= 1, spacing-ns >= 1\n";
    return 64;
  }

  std::cout << "micro_engine: " << cfg.chains << " chains, " << cfg.events
            << " events/run, " << cfg.repeats << " repeats\n";
  const ModeResult legacy = measure("legacy", cfg, run_legacy_once);
  const ModeResult par1 = measure("parallel1", cfg, run_parallel1_once);
  const double ratio = legacy.median > 0 ? par1.median / legacy.median : 0;

  std::ostringstream os;
  os << "{\n  \"bench\": \"micro_engine\",\n"
     << "  \"config\": {\"chains\": " << cfg.chains
     << ", \"events\": " << cfg.events << ", \"repeats\": " << cfg.repeats
     << ", \"spacing_ns\": " << cfg.spacing_ns << "},\n"
     << "  \"modes\": [\n";
  emit_mode(os, legacy, false);
  emit_mode(os, par1, true);
  os << "  ],\n  \"parallel1_over_legacy_median\": " << ratio << "\n}\n";
  std::ofstream out(cfg.out);
  out << os.str();
  std::cout << os.str() << "written to " << cfg.out << "\n";
  return 0;
}
