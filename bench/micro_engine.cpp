// micro_engine: single-shard event-throughput microbench — the baseline
// for ROADMAP open item 2 (event-engine hot-path work).
//
// Modes run the same event budget (K concurrent self-rescheduling event
// chains advancing in fixed steps until ~N total events fire):
//
//   legacy      the classic sim::Engine drives the chains directly
//   parallel1   the same chains run inside a single-node ShardedEngine
//               under run_until(workers=1) — pricing the conservative-
//               window machinery (drain, plan, barrier) per event
//   parallel2/4/8  the chains hop shard-to-shard through post() on an
//               N-node ShardedEngine with N workers — every event crosses
//               a pair ring and rides the per-pair horizon chain, so these
//               rows price the cross-shard path under real thread
//               parallelism (events/sec-per-core is the honest column on
//               an oversubscribed box)
//
// legacy and parallel1 fire the same events in the same order, so their
// ratio isolates the partitioned core's per-event overhead. Results are
// written as JSON to BENCH_engine.json (schema documented in README.md)
// so successive PRs can diff events/sec across engine changes; the JSON is
// stamped with the git commit and hardware_concurrency, and each row
// carries speedup_valid (false when the row wants more workers than the
// machine has hardware threads).
//
//   ./micro_engine [--chains=K] [--events=N] [--repeats=R]
//       [--spacing-ns=S] [--out=FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "alloc/ledger.hpp"
#include "common.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

struct Config {
  int chains = 64;
  std::uint64_t events = 1'000'000;
  int repeats = 5;
  std::int64_t spacing_ns = 1'000;
  std::string out = "BENCH_engine.json";
};

struct ModeResult {
  std::string mode;
  std::uint64_t events = 0;
  /// Worker threads the mode runs (legacy/parallel1 = 1).
  int cores = 1;
  /// False when the row wants more workers than hardware threads — its
  /// absolute throughput then measures oversubscription.
  bool speedup_valid = true;
  std::vector<double> runs_events_per_sec;
  double best = 0;
  double median = 0;

  [[nodiscard]] double median_per_core() const {
    return cores > 0 ? median / cores : 0.0;
  }
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One self-rescheduling chain step. Trivially copyable and well inside
/// Engine::Callback's inline buffer, so re-arming copies a few words into
/// the event slot — no per-event heap traffic from the workload itself (a
/// captured std::function here used to malloc on every single event,
/// drowning the engine cost this bench exists to measure).
struct ChainTick {
  sim::Engine* e;
  std::uint64_t* fired;
  std::uint64_t chains;
  std::uint64_t budget;
  sim::Duration spacing;

  void operator()() const {
    if (++*fired + chains <= budget) e->schedule_after(spacing, *this);
  }
};
static_assert(std::is_trivially_copyable_v<ChainTick> &&
                  sizeof(ChainTick) <= 48,
              "ChainTick must stay inline in Engine::Callback");

/// Arms `chains` self-rescheduling chains on `e`; each fire bumps the
/// shared counter and re-arms `spacing` later while budget remains, so
/// both modes execute the same event stream. Returns the fired count.
std::uint64_t drive_chains(sim::Engine& e, const Config& cfg,
                           const std::function<void(sim::Time)>& run_to) {
  std::uint64_t fired = 0;
  const sim::Duration spacing = sim::Duration::ns(cfg.spacing_ns);
  const ChainTick tick{&e, &fired, static_cast<std::uint64_t>(cfg.chains),
                       cfg.events, spacing};
  for (int c = 0; c < cfg.chains; ++c) e.schedule_at(e.now() + spacing, tick);
  // Horizon covering every re-arm: events/chains steps plus slack.
  const std::int64_t steps = static_cast<std::int64_t>(
      cfg.events / static_cast<std::uint64_t>(cfg.chains)) + 2;
  run_to(e.now() + spacing * steps);
  return fired;
}

double run_legacy_once(const Config& cfg) {
  sim::Engine e;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t fired =
      drive_chains(e, cfg, [&](sim::Time until) { e.run_until(until); });
  return static_cast<double>(fired) / seconds_since(t0);
}

double run_parallel1_once(const Config& cfg) {
  // One node => one shard, no hub: the same event stream, but every window
  // pays drain_inbox + plan_round + the barrier phases.
  sim::ShardedEngine sh(1, sim::Duration::us(10));
  sim::Engine& e = sh.engine_of(0);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t fired = drive_chains(
      e, cfg, [&](sim::Time until) { sh.run_until(until, 1); });
  return static_cast<double>(fired) / seconds_since(t0);
}

/// Cross-shard mode: the chains hop shard s -> s+1 (mod nodes) through
/// post(), one hop per spacing, run by `nodes` workers. Every event
/// crosses a pair ring and is gated by the per-pair horizon chain — the
/// partitioned core's cross-shard path under real thread parallelism. The
/// pair lookahead equals the hop spacing, so each chained window carries
/// one hop per chain.
double run_parallelN_once(const Config& cfg, int nodes) {
  const sim::Duration spacing = sim::Duration::ns(cfg.spacing_ns);
  sim::ShardedEngine sh(nodes, spacing);
  std::atomic<std::uint64_t> fired{0};
  const std::uint64_t budget = cfg.events;
  const auto chains = static_cast<std::uint64_t>(cfg.chains);
  std::function<void(int)> hop = [&](int s) {
    if (fired.fetch_add(1, std::memory_order_relaxed) + 1 + chains > budget)
      return;
    const int dst = (s + 1) % nodes;
    sh.post(s, dst, sh.engine_of(s).now() + spacing,
            [&hop, dst] { hop(dst); });
  };
  for (int c = 0; c < cfg.chains; ++c) {
    const int s = c % nodes;
    sim::Engine& e = sh.engine_of(s);
    e.schedule_at(e.now() + spacing, [&hop, s] { hop(s); });
  }
  const std::int64_t steps = static_cast<std::int64_t>(
      cfg.events / static_cast<std::uint64_t>(cfg.chains)) + 2;
  const auto t0 = std::chrono::steady_clock::now();
  sh.run_until(sh.engine_of(0).now() + spacing * (steps + 2), nodes);
  return static_cast<double>(fired.load(std::memory_order_relaxed)) /
         seconds_since(t0);
}

/// Allocation columns for the engine hot path, from one instrumented
/// legacy pass with the alloc ledger counting (throughput is NOT measured
/// on this pass — counting perturbs it). `hot_window_allocs` sums
/// hot-phase allocations on Core (engine bookkeeping) sites: the event
/// slab / scratch-reuse discipline holds it at zero, and the nightly CI
/// gate fails if a regression puts malloc back on the event path.
struct AllocProbe {
  bool enabled = false;
  std::uint64_t events = 0;
  std::uint64_t hot_window_allocs = 0;
  std::uint64_t total_allocs = 0;
  std::uint64_t total_bytes = 0;

  [[nodiscard]] double allocs_per_event() const {
    return events > 0 ? static_cast<double>(total_allocs) /
                            static_cast<double>(events)
                      : 0.0;
  }
  [[nodiscard]] double bytes_per_event() const {
    return events > 0 ? static_cast<double>(total_bytes) /
                            static_cast<double>(events)
                      : 0.0;
  }
};

AllocProbe run_alloc_probe(const Config& cfg) {
  AllocProbe p;
  if (!alloc::Ledger::available()) return p;
  alloc::Ledger ledger;
  sim::Engine e;
  ledger.reset();
  ledger.install();
  p.events = drive_chains(e, cfg,
                          [&](sim::Time until) { e.run_until(until); });
  ledger.remove();
  const alloc::AllocLedgerReport rep = ledger.report();
  p.enabled = rep.enabled;
  p.hot_window_allocs = rep.hot_window_allocs;
  p.total_allocs = rep.total_allocs;
  p.total_bytes = rep.total_bytes;
  ledger.reset();
  return p;
}

ModeResult measure(const std::string& mode, const Config& cfg, int cores,
                   const std::function<double()>& once) {
  ModeResult r;
  r.mode = mode;
  r.events = cfg.events;
  r.cores = cores;
  const unsigned hw = std::thread::hardware_concurrency();
  r.speedup_valid = hw > 0 && static_cast<unsigned>(cores) <= hw;
  if (!r.speedup_valid)
    std::cerr << "micro_engine: WARNING: mode " << mode << " wants " << cores
              << " workers but the machine has " << hw
              << " hardware threads; its speedup column measures "
                 "oversubscription, not the partitioned core\n";
  for (int i = 0; i < cfg.repeats; ++i) {
    const double eps = once();
    r.runs_events_per_sec.push_back(eps);
    std::cout << "  " << mode << " run " << (i + 1) << "/" << cfg.repeats
              << ": " << static_cast<std::uint64_t>(eps) << " events/s\n";
  }
  std::vector<double> sorted = r.runs_events_per_sec;
  std::sort(sorted.begin(), sorted.end());
  r.best = sorted.back();
  r.median = sorted[sorted.size() / 2];
  return r;
}

void emit_mode(std::ostream& os, const ModeResult& r, bool last) {
  os << "    {\"mode\": \"" << r.mode << "\", \"events\": " << r.events
     << ", \"cores\": " << r.cores
     << ", \"speedup_valid\": " << (r.speedup_valid ? "true" : "false")
     << ", \"best_events_per_sec\": " << static_cast<std::uint64_t>(r.best)
     << ", \"median_events_per_sec\": " << static_cast<std::uint64_t>(r.median)
     << ", \"median_events_per_sec_per_core\": "
     << static_cast<std::uint64_t>(r.median_per_core())
     << ", \"runs\": [";
  for (std::size_t i = 0; i < r.runs_events_per_sec.size(); ++i)
    os << (i ? ", " : "")
       << static_cast<std::uint64_t>(r.runs_events_per_sec[i]);
  os << "]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto typos =
      flags.unknown({"chains", "events", "repeats", "spacing-ns", "out"});
  if (!typos.empty()) {
    std::cerr << "micro_engine: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: micro_engine [--chains=K] [--events=N]"
                 " [--repeats=R] [--spacing-ns=S] [--out=FILE]\n";
    return 64;
  }
  Config cfg;
  cfg.chains = static_cast<int>(flags.get_int("chains", cfg.chains));
  cfg.events = static_cast<std::uint64_t>(
      flags.get_int("events", static_cast<long long>(cfg.events)));
  cfg.repeats = static_cast<int>(flags.get_int("repeats", cfg.repeats));
  cfg.spacing_ns = flags.get_int("spacing-ns", cfg.spacing_ns);
  cfg.out = flags.get("out", cfg.out);
  if (cfg.chains < 1 || cfg.events < static_cast<std::uint64_t>(cfg.chains) ||
      cfg.repeats < 1 || cfg.spacing_ns < 1) {
    std::cerr << "micro_engine: need chains >= 1, events >= chains, "
                 "repeats >= 1, spacing-ns >= 1\n";
    return 64;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "micro_engine: " << cfg.chains << " chains, " << cfg.events
            << " events/run, " << cfg.repeats
            << " repeats, hardware_concurrency=" << hw << "\n";
  std::vector<ModeResult> modes;
  modes.push_back(
      measure("legacy", cfg, 1, [&cfg] { return run_legacy_once(cfg); }));
  modes.push_back(measure("parallel1", cfg, 1,
                          [&cfg] { return run_parallel1_once(cfg); }));
  for (const int n : {2, 4, 8})
    modes.push_back(measure("parallel" + std::to_string(n), cfg, n,
                            [&cfg, n] { return run_parallelN_once(cfg, n); }));
  const ModeResult& legacy = modes[0];
  const ModeResult& par1 = modes[1];
  const double ratio = legacy.median > 0 ? par1.median / legacy.median : 0;

  const AllocProbe ap = run_alloc_probe(cfg);
  if (ap.enabled)
    std::cout << "alloc probe: " << ap.events << " events, "
              << ap.total_allocs << " allocs (" << ap.total_bytes
              << " B) total, hot_window_allocs=" << ap.hot_window_allocs
              << "\n";
  else
    std::cout << "alloc probe: skipped (ledger unavailable under "
                 "-DPASCHED_VALIDATE=OFF)\n";

  std::cout << "\nmode        cores  median_ev/s  ev/s-per-core  valid\n";
  for (const ModeResult& m : modes)
    std::cout << m.mode
              << std::string(m.mode.size() < 12 ? 12 - m.mode.size() : 1, ' ')
              << m.cores << "      " << static_cast<std::uint64_t>(m.median)
              << "      " << static_cast<std::uint64_t>(m.median_per_core())
              << "      " << (m.speedup_valid ? "yes" : "OVERSUBSCRIBED")
              << "\n";

  std::ostringstream os;
  os << "{\n  \"bench\": \"micro_engine\",\n"
     << "  \"git_commit\": \"" << bench::git_commit() << "\",\n"
     << "  \"hardware_concurrency\": " << hw << ",\n"
     << "  \"speedup_valid_note\": \"rows with cores > hardware_concurrency "
        "measure oversubscription; compare median_events_per_sec_per_core "
        "only across speedup_valid rows\",\n"
     << "  \"config\": {\"chains\": " << cfg.chains
     << ", \"events\": " << cfg.events << ", \"repeats\": " << cfg.repeats
     << ", \"spacing_ns\": " << cfg.spacing_ns << "},\n"
     << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i)
    emit_mode(os, modes[i], i + 1 == modes.size());
  os << "  ],\n  \"parallel1_over_legacy_median\": " << ratio << ",\n"
     << "  \"alloc\": {\"ledger_enabled\": "
     << (ap.enabled ? "true" : "false") << ", \"events\": " << ap.events
     << ", \"allocs_per_event\": " << ap.allocs_per_event()
     << ", \"bytes_per_event\": " << ap.bytes_per_event()
     << ", \"hot_window_allocs\": " << ap.hot_window_allocs << "}\n}\n";
  std::ofstream out(cfg.out);
  out << os.str();
  std::cout << os.str() << "written to " << cfg.out << "\n";
  return 0;
}
