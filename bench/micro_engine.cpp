// Microbenchmarks of the simulator substrate itself (google-benchmark):
// event-queue throughput, cancellation, and kernel tick machinery. These
// guard the simulator's performance, which bounds how large a cluster the
// reproduction benches can sweep.
#include <benchmark/benchmark.h>

#include <functional>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

using namespace pasched;
using namespace pasched::sim::literals;

namespace {

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t sink = 0;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      e.schedule_at(sim::Time::zero() + sim::Duration::ns(i), [&sink] { ++sink; });
    }
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScheduleFire)->Arg(1000)->Arg(100000);

void BM_EngineSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t count = 0;
    const std::uint64_t limit = static_cast<std::uint64_t>(state.range(0));
    std::function<void()> tick = [&] {
      if (++count < limit) e.schedule_after(1_us, [&] { tick(); });
    };
    e.schedule_after(1_us, [&] { tick(); });
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineSelfRescheduling)->Arg(100000);

void BM_EngineCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    std::vector<sim::EventId> ids;
    const int n = static_cast<int>(state.range(0));
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      ids.push_back(
          e.schedule_at(sim::Time::zero() + sim::Duration::ns(i), [] {}));
    for (int i = 0; i < n; i += 2) e.cancel(ids[static_cast<std::size_t>(i)]);
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineCancelHeavy)->Arg(100000);

void BM_IdleNodeTicks(benchmark::State& state) {
  // Cost of simulating one second of an idle 16-way node (ticks + daemons).
  for (auto _ : state) {
    sim::Engine e;
    cluster::ClusterConfig cfg = cluster::presets::frost(1);
    cluster::Cluster c(e, cfg);
    c.start();
    e.run_until(sim::Time::zero() + 1_s);
    benchmark::DoNotOptimize(e.events_processed());
  }
}
BENCHMARK(BM_IdleNodeTicks);

void BM_RngThroughput(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngThroughput);

}  // namespace

BENCHMARK_MAIN();
