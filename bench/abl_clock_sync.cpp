// Ablation: the switch-clock synchronization and period-boundary alignment
// of §4. The co-scheduler relies on a globally synchronized time base so
// every node flips priorities at the same instant with *no* inter-node
// communication. Without sync (or without alignment), windows drift apart
// across nodes and an Allreduce always straddles someone's unfavored phase.
//
//   ./abl_clock_sync [--nodes=24] [--calls=N]
#include <iostream>

#include "common.hpp"
#include "core/presets.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 16));
  const int calls = static_cast<int>(flags.get_int("calls", 2500));

  bench::banner("Ablation — switch-clock sync & window alignment",
                "SC'03 Jones et al., §4 (synchronized time base)");

  struct Variant {
    const char* name;
    bool sync;
    bool align;
  };
  const Variant variants[] = {
      {"synced clocks + aligned windows (paper)", true, true},
      {"synced clocks, unaligned windows", true, false},
      {"unsynced clocks, aligned windows", false, true},
      {"unsynced clocks, unaligned windows", false, false},
  };

  util::Table t({"variant", "mean us", "p99 us", "max us", "cv"});
  for (const auto& v : variants) {
    bench::RunSpec spec;
    spec.nodes = nodes;
    spec.calls = calls;
    spec.seed = 737;
    spec.tunables = core::prototype_kernel();
    // Cluster-wide tick alignment is part of the sync story too.
    spec.tunables.cluster_aligned_ticks = v.sync;
    // Without the switch-clock sync the nodes' time-of-day clocks differ by
    // whatever boot skew and drift left behind (seconds, not milliseconds).
    if (!v.sync) spec.max_clock_offset = sim::Duration::sec(8);
    // Long enough that every node is in window steady state when the
    // measured loop starts, whatever its clock offset.
    spec.warmup = sim::Duration::sec(14);
    spec.use_cosched = true;
    spec.cosched = core::paper_cosched();
    // A 2 s window (vs the paper's 5 s) lets the measured loop integrate
    // over several full windows without an hour of simulated time; the
    // inter-call compute stretches the loop to ~2 periods.
    spec.cosched.period = sim::Duration::sec(2);
    spec.inter_call_compute = sim::Duration::us(1600);
    spec.cosched.sync_clocks = v.sync;
    spec.cosched.align_to_period_boundary = v.align;
    spec.mpi.polling_interval = sim::Duration::sec(400);
    const auto runs = bench::run_seeds(spec, 2);
    t.add_row({v.name,
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::mean_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::p99_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::max_us), 1),
               util::Table::cell(bench::mean_field(runs, &bench::RunResult::cv),
                                 2)});
  }
  t.print(std::cout);
  std::cout << "\nshape target: the paper configuration (synced + aligned) "
               "gives the lowest mean and tail; losing either sync or "
               "alignment leaves unfavored windows uncoordinated across "
               "nodes.\n";
  return 0;
}
