// Ablation: co-scheduler window/duty-cycle choice, including the starvation
// boundary. §4 warns that over-aggressive settings starve system daemons
// ("the only way to recover control was to reboot the node"); we track the
// membership heartbeat's deadline misses as the eviction signal. §4 also
// reports ~10 s windows at 90–95% duty work well.
//
//   ./abl_cosched_params [--nodes=16] [--calls=N]
#include <iostream>

#include "common.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace pasched;

namespace {

struct Outcome {
  double mean_us = 0;
  double max_us = 0;
  bool evicted = false;
  std::uint64_t heartbeat_misses = 0;
};

Outcome run_params(int nodes, sim::Duration period, double duty,
                   std::uint64_t seed) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(nodes);
  cfg.cluster.seed = seed;
  cfg.cluster.node.tunables = core::prototype_kernel();
  // Stock membership timeout (without the §4 "parameter adjustments to
  // extend their timeout tolerance") so the starvation boundary is visible.
  cfg.cluster.node.daemons.heartbeat_deadline = sim::Duration::sec(3);
  cfg.job.ntasks = nodes * 16;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = seed + 9;
  cfg.use_coscheduler = true;
  cfg.cosched = core::paper_cosched();
  cfg.cosched.period = period;
  cfg.cosched.duty = duty;
  cfg.horizon = sim::Duration::sec(600);

  apps::AggregateTraceConfig at;
  at.loops = 1;
  // Stretch the measured loop over ~1.7 windows so duty-cycle effects (and
  // the unfavored phases) are integrated, whatever the period.
  at.inter_call_compute = sim::Duration::ms(2);
  at.calls_per_loop = static_cast<int>(
      std::max<std::int64_t>(500, (period * 17 / 10) / at.inter_call_compute));
  at.warmup = period + sim::Duration::sec(1);
  core::Simulation sim(cfg, apps::aggregate_trace(at));
  const auto res = sim.run();
  (void)res;

  Outcome o;
  const auto& ch = sim.job().channel(apps::kChanAllreduce);
  if (!ch.recorded_us.empty()) {
    const util::Summary s(ch.recorded_us);
    o.mean_us = s.mean();
    o.max_us = s.max();
  }
  o.evicted = sim.cluster().any_node_evicted();
  for (int n = 0; n < nodes; ++n) {
    o.heartbeat_misses +=
        sim.cluster().node(n).daemons()->heartbeat().stats().deadline_misses;
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 8));

  bench::banner("Ablation — co-scheduler period and duty cycle (incl. the "
                "starvation boundary)",
                "SC'03 Jones et al., §4 (window/duty guidance, reboot anecdote)");

  struct P {
    double period_s;
    double duty;
  };
  const P params[] = {{1, 0.90},  {5, 0.70},  {5, 0.90}, {5, 0.95},
                      {10, 0.90}, {10, 0.95}, {20, 0.995}};

  util::Table t({"period (s)", "duty", "mean us", "max us",
                 "heartbeat misses", "node evicted"});
  for (const auto& p : params) {
    const Outcome o = run_params(
        nodes, sim::Duration::from_seconds(p.period_s), p.duty, 515);
    t.add_row({util::Table::cell(p.period_s, 0), util::Table::cell(p.duty, 3),
               util::Table::cell(o.mean_us, 1), util::Table::cell(o.max_us, 1),
               util::Table::cell(static_cast<long long>(o.heartbeat_misses)),
               o.evicted ? "YES" : "no"});
  }
  t.print(std::cout);
  std::cout << "\nshape target: aggressive duty cycles starve the membership "
               "heartbeat (eviction = the paper's reboot-the-node failure); "
               "~90% duty balances application speed and daemon liveness.\n";
  return 0;
}
