// The MPI timer-thread ("progress engine") study of §5.3: the auxiliary
// threads run every 400 ms by default and disrupt tightly synchronized
// Allreduces; raising MP_POLLING_INTERVAL (to ~400 s) removes that source.
// Measured at 15 tasks/node on the vanilla kernel, where daemons are
// absorbed by the idle CPU and the timer threads dominate the residue.
//
//   ./tab_polling_interval [--nodes=40] [--calls=N] [--seeds=N]
#include <iostream>

#include "common.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 40));
  const int calls = static_cast<int>(flags.get_int("calls", 4000));
  const int seeds = static_cast<int>(flags.get_int("seeds", 2));

  bench::banner("MP_POLLING_INTERVAL — progress-engine interference",
                "SC'03 Jones et al., §5.3 (MPI timer threads)");

  struct Variant {
    const char* name;
    bool engine;
    sim::Duration interval;
  };
  const Variant variants[] = {
      {"default 400 ms", true, sim::Duration::ms(400)},
      {"4 s", true, sim::Duration::sec(4)},
      {"400 s (paper's fix)", true, sim::Duration::sec(400)},
      {"progress engine off", false, sim::Duration::ms(400)},
  };

  util::Table t({"polling interval", "mean us", "p99 us",
                 "slowest-20 mean us", "max us"});
  for (const auto& v : variants) {
    bench::RunSpec spec;
    spec.nodes = nodes;
    spec.tasks_per_node = 16;
    // Sterile nodes: the idealized endpoint of what 15 t/n + a quieted
    // system achieved — only the MPI timer threads remain as interference.
    spec.install_daemons = false;
    spec.calls = calls;
    spec.seed = 4242;
    spec.mpi.progress_engine = v.engine;
    spec.mpi.polling_interval = v.interval;
    const auto runs = bench::run_seeds(spec, seeds);
    t.add_row({v.name,
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::mean_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::p99_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::tail20_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::max_us), 1)});
  }
  t.print(std::cout);
  std::cout << "\nshape target: the 400 s setting matches 'progress engine "
               "off'; the 400 ms default shows extra tail latency.\n";
  return 0;
}
