// Figure 5: Allreduce microseconds vs. processor count, 16 tasks/node on the
// prototype kernel with the co-scheduler engaged (favored 30, unfavored 100,
// 5 s window, 90% duty, 250 ms big tick — the settings of §5.3). Paper
// finding: much faster and far less variable than Figure 3, though still not
// logarithmic.
//
//   ./fig5_proto16 [--full] [--calls=N] [--seeds=N]
#include <iostream>

#include "common.hpp"
#include "core/presets.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pasched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int calls = static_cast<int>(flags.get_int("calls", 1000));
  const int seeds = static_cast<int>(flags.get_int("seeds", 2));
  const bool full = flags.get_bool("full", false);

  bench::banner("Figure 5 — Allreduce us vs. processors, prototype kernel + "
                "co-scheduler, 16 tasks/node",
                "SC'03 Jones et al., Figure 5");

  util::Table t({"procs", "mean us", "median us", "min us", "max us", "cv",
                 "ideal us"});
  std::vector<double> xs, ys;
  for (const int procs : bench::default_proc_sweep(full)) {
    bench::RunSpec spec;
    spec.nodes = (procs + 15) / 16;
    spec.tasks_per_node = 16;
    spec.calls = calls;
    spec.seed = 5000 + static_cast<std::uint64_t>(procs);
    spec.tunables = core::prototype_kernel();
    spec.use_cosched = true;
    spec.cosched = core::paper_cosched();
    // The paper's serious runs also neutralized the MPI timer threads
    // (MP_POLLING_INTERVAL = 400 s).
    spec.mpi.polling_interval = sim::Duration::sec(400);
    // This is the headline configuration — refuse to measure it if it ever
    // drifts into one of the lint rules' pathologies.
    spec.lint_before_run = true;
    const auto runs = bench::run_seeds(spec, seeds);
    const double mean = bench::mean_field(runs, &bench::RunResult::mean_us);
    t.add_row({util::Table::cell(static_cast<long long>(procs)),
               util::Table::cell(mean, 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::median_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::min_us), 1),
               util::Table::cell(
                   bench::mean_field(runs, &bench::RunResult::max_us), 1),
               util::Table::cell(bench::mean_field(runs, &bench::RunResult::cv),
                                 2),
               util::Table::cell(runs.front().ideal_us, 1)});
    xs.push_back(procs);
    ys.push_back(mean);
  }
  t.print(std::cout);
  const auto fit = util::fit_line(xs, ys);
  std::cout << "\nlinear fit: y = " << util::format_double(fit.slope, 3)
            << " * procs + " << util::format_double(fit.intercept, 1)
            << "   (R^2 = " << util::format_double(fit.r_squared, 3) << ")\n"
            << "paper's prototype fit: y = 0.22x + 210 (shape target: small "
               "slope, small variability)\n";
  return 0;
}
