// Shared experiment harness for the reproduction benches: configure a run of
// the aggregate_trace benchmark (or a sweep over processor counts), execute
// it, and summarize per-Allreduce timings the way the paper reports them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/coscheduler.hpp"
#include "core/simulation.hpp"
#include "kern/tunables.hpp"
#include "mpi/config.hpp"
#include "scale/windows.hpp"
#include "sim/planner.hpp"
#include "sim/time.hpp"

namespace bench {

struct RunSpec {
  int nodes = 4;
  int tasks_per_node = 16;
  int calls = 200;
  std::uint64_t seed = 1;
  pasched::kern::Tunables tunables;  // vanilla by default
  bool use_cosched = false;
  pasched::core::CoschedConfig cosched;
  pasched::mpi::MpiConfig mpi;
  double daemon_intensity = 1.0;
  /// false = sterile nodes (no daemons at all) — used to isolate a single
  /// interference source.
  bool install_daemons = true;
  /// Local time of the cron health check's first run; negative = random.
  pasched::sim::Duration cron_first_due = pasched::sim::Duration::ns(-1);
  pasched::sim::Duration inter_call_compute = pasched::sim::Duration::us(100);
  /// Max boot-time offset of node time-of-day clocks from global time.
  pasched::sim::Duration max_clock_offset = pasched::sim::Duration::ms(100);
  /// Untimed lead-in so the co-scheduler's first aligned window engages
  /// before measurement (and daemon phases randomize fairly).
  pasched::sim::Duration warmup = pasched::sim::Duration::sec(6);
  /// Opt-in: run pasched-lint's config rules over this spec before the
  /// simulation. Findings print to stderr; ERROR findings throw — a bench
  /// must not silently measure a configuration the paper calls broken.
  bool lint_before_run = false;
  /// 0 = classic single event queue; N >= 1 = partitioned execution with N
  /// worker threads (see SimulationConfig::parallel).
  int parallel = 0;
  /// Window planner for partitioned runs: PerPair is the shipping default;
  /// Global reproduces the legacy one-window-per-round schedule and is the
  /// denominator of micro_shard's n_windows reduction figure.
  pasched::sim::PlannerMode planner = pasched::sim::PlannerMode::PerPair;
  /// Arms the pasched-race seam monitor + ownership sink on a partitioned
  /// run (requires parallel >= 1). micro_shard uses it to price the
  /// full-audit mode against the bare annotation layer.
  bool audit = false;
  /// Arms the pasched-scale window profiler + lookahead certifier (requires
  /// parallel >= 1; mutually exclusive with `audit` — one monitor slot).
  /// micro_shard runs one profiled pass to predict the speedup ceiling it
  /// prints next to the measured speedup.
  bool profile_scale = false;
  /// Arms the pasched-contend contention ledger on the engine's seam
  /// mutexes/barrier (requires parallel >= 1). Uses the process-global seam
  /// observer, not the shard-monitor slot, so it composes with the two
  /// monitors above. Only measures under -DPASCHED_VALIDATE=ON — release
  /// seams never notify (RunResult::ledger_enabled records which).
  bool ledger = false;
};

/// One row of the contention ledger's ranking (see contend::SiteSummary).
struct LedgerSiteRow {
  std::string site;
  std::uint64_t acquires = 0;
  double wait_ms = 0;
  double wait_share = 0;  // of total recorded wait across all sites
};

struct RunResult {
  bool completed = false;
  int procs = 0;
  double mean_us = 0;
  double median_us = 0;
  double min_us = 0;
  double max_us = 0;
  double p99_us = 0;
  double cv = 0;
  /// Fraction of calls slower than 2x the median (the outlier population).
  double outlier_frac = 0;
  /// Mean of the 20 slowest calls (tail mass beyond p99).
  double tail20_us = 0;
  double ideal_us = 0;     // analytic no-interference model
  double elapsed_s = 0;    // job wall time
  std::uint64_t events = 0;
  /// Events fired strictly before job completion — mode-invariant (the raw
  /// `events` counter legitimately differs: partitioned runs drain their
  /// final lookahead window past the completing event).
  std::uint64_t events_at_completion = 0;
  /// Ownership/race findings collected when RunSpec::audit was set.
  std::uint64_t audit_violations = 0;
  /// Filled when RunSpec::profile_scale was set: the barrier-cost model's
  /// speedup prediction at 8 workers over the profiled windows, and any
  /// cross-shard deliveries that undercut the static lookahead certificate
  /// (must be 0 — a nonzero count means the certificate is unsound).
  double predicted_max_speedup = 0;
  std::uint64_t lookahead_violations = 0;
  /// The profiled window stats themselves (profile_scale runs): lets a
  /// bench re-price the model with measured constants (event cost from its
  /// own serial row, barrier cost from the ledger) instead of defaults.
  pasched::scale::WindowStats windows;
  /// Planner execution counters (any partitioned run): sync rounds is the
  /// n_windows figure the scale report publishes; chained/coalesced size
  /// the batching; ring counters cover the cross-shard SPSC path.
  std::uint64_t planner_rounds = 0;
  std::uint64_t planner_chained = 0;
  std::uint64_t planner_coalesced = 0;
  std::uint64_t ring_posts = 0;
  std::uint64_t ring_overflows = 0;
  /// Filled when RunSpec::ledger was set: whether the build's seams are
  /// instrumented at all, the barrier's share of all recorded seam wait,
  /// and the top serialization sites ranked by wait (at most 3).
  bool ledger_enabled = false;
  double barrier_wait_share = 0;
  std::vector<LedgerSiteRow> top_wait_sites;
  /// Measured per-round barrier cost (two crossings per sync round times
  /// the average wait per crossing); negative when nothing was recorded.
  double measured_barrier_cost_ns = -1;
  /// Per-call durations (us) observed by the recorded rank.
  std::vector<double> recorded;
};

/// Runs aggregate_trace once under the given spec.
[[nodiscard]] RunResult run_aggregate(const RunSpec& spec);

/// Runs `seeds` repetitions and returns the per-seed results.
[[nodiscard]] std::vector<RunResult> run_seeds(RunSpec spec, int seeds);

/// Mean of a field across per-seed results.
[[nodiscard]] double mean_field(const std::vector<RunResult>& rs,
                                double RunResult::* field);

/// Default processor sweep (16 tasks/node granularity).
[[nodiscard]] std::vector<int> default_proc_sweep(bool full);

/// Prints the standard bench banner.
void banner(const std::string& title, const std::string& paper_ref);

/// The current git commit (short hash), or "unknown" outside a repo — every
/// BENCH_*.json stamps it so numbers are attributable to a tree state.
[[nodiscard]] std::string git_commit();

}  // namespace bench
