#include "alloc/ledger.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

#if PASCHED_VALIDATE_ENABLED
// Referencing hook_detail symbols is what pulls the operator new/delete
// replacement into a binary: only Ledger users get the hook.
#include "alloc/hook_detail.hpp"
#endif

namespace pasched::alloc {

void Ledger::install() noexcept {
#if PASCHED_VALIDATE_ENABLED
  detail::hook_set_counting(true);
#endif
}

void Ledger::remove() noexcept {
#if PASCHED_VALIDATE_ENABLED
  detail::hook_set_counting(false);
#endif
}

void Ledger::reset() noexcept {
#if PASCHED_VALIDATE_ENABLED
  detail::hook_reset();
#endif
}

AllocLedgerReport Ledger::report() const {
  AllocLedgerReport rep;
#if PASCHED_VALIDATE_ENABLED
  rep.enabled = true;
  detail::SiteCell cells[util::kMaxAllocSites];
  detail::hook_snapshot(cells);
  const int n = std::min(util::alloc_site_count(), util::kMaxAllocSites);
  constexpr int kCold = static_cast<int>(util::AllocPhase::Cold);
  constexpr int kHot = static_cast<int>(util::AllocPhase::Hot);
  for (int i = 0; i < n; ++i) {
    const detail::SiteCell& c = cells[i];
    SiteAllocRow row;
    row.name = util::alloc_site_name(i);
    row.kind = util::alloc_site_kind(i);
    row.hot_allocs = c.allocs[kHot];
    row.hot_bytes = c.bytes[kHot];
    row.hot_frees = c.frees[kHot];
    row.cold_allocs = c.allocs[kCold];
    row.cold_bytes = c.bytes[kCold];
    row.cold_frees = c.frees[kCold];
    const std::uint64_t touched = row.hot_allocs + row.hot_frees +
                                  row.cold_allocs + row.cold_frees;
    if (touched == 0) continue;  // registered but never crossed
    rep.total_allocs += row.hot_allocs + row.cold_allocs;
    rep.total_bytes += row.hot_bytes + row.cold_bytes;
    if (row.kind == util::AllocSiteKind::Core) {
      rep.hot_window_allocs += row.hot_allocs;
      rep.hot_window_bytes += row.hot_bytes;
    } else {
      rep.dispatch_hot_allocs += row.hot_allocs;
    }
    rep.sites.push_back(std::move(row));
  }
  std::sort(rep.sites.begin(), rep.sites.end(),
            [](const SiteAllocRow& a, const SiteAllocRow& b) {
              if (a.hot_allocs != b.hot_allocs)
                return a.hot_allocs > b.hot_allocs;
              return a.name < b.name;
            });
#endif
  return rep;
}

std::vector<analysis::Diagnostic> Ledger::check_claims(
    const std::vector<AllocClaim>& claims) const {
  std::vector<analysis::Diagnostic> out;
#if PASCHED_VALIDATE_ENABLED
  const AllocLedgerReport rep = report();
  for (const AllocClaim& c : claims) {
    for (const SiteAllocRow& row : rep.sites) {
      if (row.name != c.function) continue;
      // rep.sites only holds observed rows, so reaching here means the
      // site ran; Dispatch rows never carry an engine claim.
      if (row.kind == util::AllocSiteKind::Core && row.hot_allocs > 0) {
        analysis::Diagnostic d;
        d.rule = "PSL606";
        d.severity = analysis::Severity::Error;
        d.subject = c.file + ":" + std::to_string(c.line);
        d.message = "allocation-free claim refuted: `" + c.function +
                    "` was statically certified allocation-free (PSL605) "
                    "but the allocation ledger charged it " +
                    std::to_string(row.hot_allocs) +
                    " hot-window allocation(s) (" +
                    std::to_string(row.hot_bytes) + " bytes) at runtime";
        d.fix_hint =
            "route the growth through a PASCHED_ALLOC_COLD_REGION helper "
            "(reserve_cold, grow_slab) if it is sanctioned amortized "
            "growth, or remove the allocation from the hot path; if the "
            "allocation belongs to callback code, re-scope it under a "
            "Dispatch site at the callback boundary";
        out.push_back(std::move(d));
      }
      break;
    }
  }
#else
  (void)claims;
#endif
  return out;
}

std::string AllocLedgerReport::str() const {
  std::ostringstream os;
  if (!enabled) {
    os << "allocation ledger: unavailable (built with -DPASCHED_VALIDATE=OFF)"
       << "\n";
    return os.str();
  }
  os << "allocation ledger: " << sites.size() << " active site(s), "
     << "hot-window allocs " << hot_window_allocs << " (" << hot_window_bytes
     << " B, core sites), dispatch hot allocs " << dispatch_hot_allocs
     << ", total " << total_allocs << " allocs / " << total_bytes << " B\n";
  util::Table t({"site", "kind", "hot_allocs", "hot_bytes", "hot_frees",
                 "cold_allocs", "cold_bytes", "cold_frees"});
  for (const SiteAllocRow& s : sites) {
    t.add_row({s.name,
               s.kind == util::AllocSiteKind::Core ? "core" : "dispatch",
               util::Table::cell(static_cast<unsigned long long>(s.hot_allocs)),
               util::Table::cell(static_cast<unsigned long long>(s.hot_bytes)),
               util::Table::cell(static_cast<unsigned long long>(s.hot_frees)),
               util::Table::cell(
                   static_cast<unsigned long long>(s.cold_allocs)),
               util::Table::cell(static_cast<unsigned long long>(s.cold_bytes)),
               util::Table::cell(
                   static_cast<unsigned long long>(s.cold_frees))});
  }
  os << t.render();
  return os.str();
}

std::string AllocLedgerReport::json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2(static_cast<std::size_t>(indent) + 2, ' ');
  const std::string pad4(static_cast<std::size_t>(indent) + 4, ' ');
  std::ostringstream os;
  os << "{\n";
  os << pad2 << "\"enabled\": " << (enabled ? "true" : "false") << ",\n";
  os << pad2 << "\"hot_window_allocs\": " << hot_window_allocs << ",\n";
  os << pad2 << "\"hot_window_bytes\": " << hot_window_bytes << ",\n";
  os << pad2 << "\"dispatch_hot_allocs\": " << dispatch_hot_allocs << ",\n";
  os << pad2 << "\"total_allocs\": " << total_allocs << ",\n";
  os << pad2 << "\"total_bytes\": " << total_bytes << ",\n";
  os << pad2 << "\"sites\": [";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteAllocRow& s = sites[i];
    os << (i == 0 ? "\n" : ",\n") << pad4 << "{\"site\": \""
       << analysis::json_escape(s.name) << "\", \"kind\": \""
       << (s.kind == util::AllocSiteKind::Core ? "core" : "dispatch")
       << "\", \"hot_allocs\": " << s.hot_allocs
       << ", \"hot_bytes\": " << s.hot_bytes
       << ", \"hot_frees\": " << s.hot_frees
       << ", \"cold_allocs\": " << s.cold_allocs
       << ", \"cold_bytes\": " << s.cold_bytes
       << ", \"cold_frees\": " << s.cold_frees << "}";
  }
  os << (sites.empty() ? "]" : "\n" + pad2 + "]") << "\n" << pad << "}";
  return os.str();
}

}  // namespace pasched::alloc
