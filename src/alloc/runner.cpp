#include "alloc/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "srclint/compiledb.hpp"

namespace pasched::alloc {

AllocReport run_files(const AllocOptions& opts,
                      const std::vector<std::string>& rels) {
  AllocReport rep;
  const std::filesystem::path root(opts.root);

  FileRuleStats frs;
  for (const std::string& rel : rels) {
    ++rep.stats.files_scanned;
    if (!opts.cfg.in_scope(rel)) continue;
    ++rep.stats.files_in_scope;
    const srclint::SourceFile f =
        srclint::lex_file((root / rel).string(), rel);
    run_file_rules(f, opts.cfg, rep.findings, rep.claims, frs);
  }
  rep.stats.functions = frs.functions;
  rep.stats.hot_functions = frs.hot_functions;
  rep.stats.arena_types = frs.arena_types;
  rep.stats.suppressions_honored = frs.suppressions_honored;

  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const analysis::Diagnostic& a,
                      const analysis::Diagnostic& b) {
                     return a.subject != b.subject ? a.subject < b.subject
                                                   : a.rule < b.rule;
                   });
  std::stable_sort(rep.claims.begin(), rep.claims.end(),
                   [](const AllocClaim& a, const AllocClaim& b) {
                     return a.function != b.function
                                ? a.function < b.function
                                : a.file < b.file;
                   });
  return rep;
}

AllocReport run_tree(const AllocOptions& opts) {
  const srclint::FileSet fset =
      srclint::discover_files(opts.root, opts.compile_db);
  AllocReport rep = run_files(opts, fset.rel_paths);
  rep.origin = fset.origin;
  return rep;
}

std::string AllocReport::str() const {
  std::ostringstream os;
  for (const analysis::Diagnostic& d : findings) os << d.str() << "\n";
  // Claims are certifications, not findings — printed in the PSLnnn line
  // format so CI greps see every rule ID, but they never affect clean().
  for (const AllocClaim& c : claims)
    os << "PSL605 INFO [" << c.file << ":" << c.line
       << "] allocation-free region certified: `" << c.function
       << "` (runtime ledger verifies; PSL606 on refutation)\n";
  os << "pasched-alloc: " << stats.files_in_scope << "/"
     << stats.files_scanned << " files in scope (" << origin << "), "
     << stats.functions << " functions, " << stats.hot_functions
     << " hot-marked, " << stats.arena_types << " arena type"
     << (stats.arena_types == 1 ? "" : "s") << ", " << claims.size()
     << " allocation-free claim" << (claims.size() == 1 ? "" : "s") << ", "
     << stats.suppressions_honored << " suppressions honored, "
     << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
     << "\n";
  return os.str();
}

std::string AllocReport::json() const {
  std::ostringstream os;
  os << "{\n  " << analysis::json_report_header("pasched-alloc") << "\n"
     << "  \"files_scanned\": " << stats.files_scanned << ",\n"
     << "  \"files_in_scope\": " << stats.files_in_scope << ",\n"
     << "  \"origin\": \"" << analysis::json_escape(origin) << "\",\n"
     << "  \"functions\": " << stats.functions << ",\n"
     << "  \"hot_functions\": " << stats.hot_functions << ",\n"
     << "  \"arena_types\": " << stats.arena_types << ",\n"
     << "  \"suppressions_honored\": " << stats.suppressions_honored
     << ",\n  \"claims\": [";
  for (std::size_t i = 0; i < claims.size(); ++i) {
    const AllocClaim& c = claims[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"function\": \""
       << analysis::json_escape(c.function) << "\", \"file\": \""
       << analysis::json_escape(c.file) << "\", \"line\": " << c.line
       << "}";
  }
  os << (claims.empty() ? "]" : "\n  ]") << ",\n  \"findings\": "
     << analysis::diagnostics_json(findings, 2) << "\n}\n";
  return os.str();
}

}  // namespace pasched::alloc
