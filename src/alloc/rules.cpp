#include "alloc/rules.hpp"

#include <algorithm>
#include <set>

namespace pasched::alloc {

using srclint::SourceFile;
using srclint::Tok;
using srclint::Token;

namespace {

[[nodiscard]] bool contains(const std::vector<std::string>& v,
                            const std::string& x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Heap-owning standard types: declaring a local of one (or holding one as
/// a member of an arena-resident type) implies heap traffic / indirection.
/// Token-literal on purpose — an alias (`using Callback = std::function<..>`)
/// is the sanctioned way to say "audited, the indirection is the design".
[[nodiscard]] bool is_owning_type(const std::string& x) noexcept {
  static const char* const kOwning[] = {
      "string",        "basic_string", "vector",       "deque",
      "list",          "forward_list", "map",          "multimap",
      "set",           "multiset",     "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset", "function",
      "stringstream",  "ostringstream", "istringstream"};
  return std::any_of(std::begin(kOwning), std::end(kOwning),
                     [&](const char* k) { return x == k; });
}

/// Smart-pointer members add indirection (a pointer chase per event) even
/// when ownership is intentional — PSL603 layout hazards only.
[[nodiscard]] bool is_indirect_type(const std::string& x) noexcept {
  return x == "unique_ptr" || x == "shared_ptr" || x == "weak_ptr";
}

/// Allocation entry points flagged by name (PSL601).
[[nodiscard]] bool is_alloc_call(const std::string& x) noexcept {
  static const char* const kAlloc[] = {"malloc",       "calloc",
                                       "realloc",      "aligned_alloc",
                                       "strdup",       "make_unique",
                                       "make_shared"};
  return std::any_of(std::begin(kAlloc), std::end(kAlloc),
                     [&](const char* k) { return x == k; });
}

/// Member growth calls whose receiver PSL602 audits for the
/// reserve/reused-scratch discipline.
[[nodiscard]] bool is_growth_call(const std::string& x) noexcept {
  return x == "push_back" || x == "emplace_back" || x == "emplace" ||
         x == "insert" || x == "resize" || x == "append";
}

/// Index just past the template argument list opened by t[open] == "<";
/// returns `open` unchanged when the '<' turns out to be a comparison
/// (no balanced '>' before ';' / '{' / end of extent).
[[nodiscard]] std::size_t skip_angles(const std::vector<Token>& t,
                                      std::size_t open, std::size_t limit) {
  int depth = 0;
  for (std::size_t j = open; j < limit; ++j) {
    if (t[j].text == "<") ++depth;
    else if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t[j].text == ";" || t[j].text == "{") {
      break;
    }
  }
  return open;
}

/// One hot region: a function body the PSL601/602 rules police.
struct HotRegion {
  std::string name;  // qualified when recoverable ("Engine::cancel")
  int line = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  bool marked = false;  // carries the PASCHED_HOT marker (claim-eligible)
};

/// One PSL601/PSL602 hit inside a hot region, before suppression filtering
/// (a suppressed hit still forfeits the region's PSL605 claim).
struct AllocHit {
  std::string rule;
  int line = 0;
  std::string message;
  std::string fix_hint;
};

[[nodiscard]] std::vector<HotRegion> hot_regions(const SourceFile& f,
                                                 const AllocConfig& cfg,
                                                 FileRuleStats& stats) {
  std::vector<HotRegion> out;
  std::set<std::size_t> seen_bodies;

  const std::vector<srclint::FunctionDef> defs = srclint::find_functions(f);
  stats.functions += defs.size();

  for (const srclint::HotFunction& h :
       srclint::find_marked_functions(f, cfg.hot_marker)) {
    HotRegion r;
    r.name = h.name;
    r.line = h.line;
    r.begin = h.body_begin;
    r.end = h.body_end;
    r.marked = true;
    for (const srclint::FunctionDef& d : defs) {
      if (d.body_begin == h.body_begin) {
        r.name = d.name;  // qualified — joins the runtime site rows
        break;
      }
    }
    seen_bodies.insert(r.begin);
    out.push_back(std::move(r));
  }
  stats.hot_functions += out.size();

  for (const srclint::FunctionDef& d : defs) {
    if (!contains(cfg.lifecycle_functions, d.name)) continue;
    if (!seen_bodies.insert(d.body_begin).second) continue;
    out.push_back(HotRegion{d.name, d.line, d.body_begin, d.body_end, false});
  }
  return out;
}

/// The PSL602 discipline: somewhere in this file the receiver is reserved,
/// cleared-for-reuse, or grown through the cold-region helper. File-level
/// on purpose — the reserve typically lives in the constructor or a cold
/// grow_*() helper, not in the hot function itself.
[[nodiscard]] bool growth_disciplined(const SourceFile& f,
                                      const std::string& recv) {
  const auto& t = f.tokens;
  for (std::size_t j = 0; j + 2 < t.size(); ++j) {
    if (t[j].pp) continue;
    if (t[j].text == recv && (t[j + 1].text == "." || t[j + 1].text == "->") &&
        (t[j + 2].text == "reserve" || t[j + 2].text == "clear"))
      return true;
    if (t[j].text == "reserve_cold" && t[j + 1].text == "(") {
      // The receiver may be spelled with member access (`c.runq`): accept
      // `recv` anywhere in the first argument (up to the separating comma).
      for (std::size_t k = j + 2; k < t.size() && !t[k].pp; ++k) {
        if (t[k].text == "," || t[k].text == ")" || t[k].text == ";") break;
        if (t[k].text == recv) return true;
      }
    }
  }
  return false;
}

/// PSL601 + PSL602 over one hot region. Returns raw hits; the caller
/// applies suppression/only filtering for findings and uses the unfiltered
/// count for PSL605 claim eligibility.
[[nodiscard]] std::vector<AllocHit> scan_region(const SourceFile& f,
                                                const HotRegion& r) {
  std::vector<AllocHit> hits;
  const auto& t = f.tokens;
  for (std::size_t i = r.begin; i < r.end && i < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier) continue;
    const std::string& x = t[i].text;
    const bool member_access =
        i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");

    if (x == "new" && !member_access &&
        !(i > 0 && t[i - 1].text == "operator")) {
      // `new (addr) T` is placement construction into owned storage.
      if (i + 1 < r.end && t[i + 1].text == "(") continue;
      hits.push_back(AllocHit{
          "PSL601", t[i].line,
          "heap allocation (`new`) inside hot function `" + r.name +
              "`: the per-event path must run allocation-free",
          "draw from a pre-sized slab/free-list grown only inside a "
          "PASCHED_ALLOC_COLD_REGION, or move the allocation out of the "
          "event path"});
      continue;
    }

    if (is_alloc_call(x) && !member_access && i + 1 < r.end &&
        (t[i + 1].text == "(" || t[i + 1].text == "<")) {
      hits.push_back(AllocHit{
          "PSL601", t[i].line,
          "heap allocation (`" + x + "`) inside hot function `" + r.name +
              "`: the per-event path must run allocation-free",
          "hoist the allocation to setup/cold code and reuse the storage "
          "across events (reserve + clear, or an arena slab)"});
      continue;
    }

    if (is_owning_type(x) && !member_access &&
        !(i > 0 && t[i - 1].text == "~")) {
      std::size_t j = i + 1;
      if (j < r.end && t[j].text == "<") {
        const std::size_t past = skip_angles(t, j, r.end);
        if (past == j) continue;  // comparison, not template args
        j = past;
      }
      if (j >= r.end) continue;
      // Reference/pointer/nested-type uses don't construct the container.
      if (t[j].text == "&" || t[j].text == "*" || t[j].text == "::" ||
          t[j].text == ">")
        continue;
      if (t[j].kind != Tok::Identifier && t[j].text != "(" &&
          t[j].text != "{")
        continue;
      // `std::string s;` needs a declarator or a temporary to allocate.
      if (!(x == "string" || x == "function") && t[j].kind == Tok::Identifier &&
          j == i + 1)
        continue;  // `vector foo` without template args: not a C++ decl
      hits.push_back(AllocHit{
          "PSL601", t[i].line,
          "owning container `" + x + "` constructed inside hot function `" +
              r.name + "`: its buffer is a per-event heap allocation",
          "make it a member scratch buffer (clear()ed per call, grown via "
          "util::reserve_cold) so capacity survives across events"});
      continue;
    }

    if (is_growth_call(x) && member_access && i >= 2 && i + 1 < r.end &&
        t[i + 1].text == "(" && t[i - 2].kind == Tok::Identifier) {
      const std::string& recv = t[i - 2].text;
      if (growth_disciplined(f, recv)) continue;
      hits.push_back(AllocHit{
          "PSL602", t[i].line,
          "container `" + recv + "` grows (`" + x +
              "`) inside hot function `" + r.name +
              "` with no reserve/reuse discipline in this file: steady-state "
              "events can hit a reallocation",
          "pre-size `" + recv +
              "` (reserve in the constructor or a cold grow helper, or "
          "util::reserve_cold before the loop) or reuse it as a cleared "
          "scratch buffer"});
      continue;
    }
  }
  return hits;
}

void emit(std::vector<analysis::Diagnostic>& findings, FileRuleStats& stats,
          const SourceFile& f, const AllocConfig& cfg,
          const std::string& rule, analysis::Severity sev, int line,
          std::string message, std::string fix_hint) {
  if (!cfg.rule_enabled(rule)) return;
  if (f.suppressed(rule, line)) {
    ++stats.suppressions_honored;
    return;
  }
  analysis::Diagnostic d;
  d.rule = rule;
  d.severity = sev;
  d.subject = f.path + ":" + std::to_string(line);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  findings.push_back(std::move(d));
}

// -- PSL603: cache-layout hazards in event/shard-resident types ---------------

void rule_psl603(const SourceFile& f, const AllocConfig& cfg,
                 std::vector<analysis::Diagnostic>& findings,
                 FileRuleStats& stats) {
  const auto& t = f.tokens;
  for (const srclint::ClassBody& cb :
       srclint::find_class_bodies(f, cfg.layout_types)) {
    std::set<int> fired;  // one finding per line
    for (std::size_t i = cb.body_begin; i < cb.body_end; ++i) {
      if (t[i].pp || t[i].kind != Tok::Identifier) continue;
      const bool member_access =
          i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      if (member_access) continue;
      const std::string& x = t[i].text;
      if (is_owning_type(x) || is_indirect_type(x)) {
        if (!fired.insert(t[i].line).second) continue;
        emit(findings, stats, f, cfg, "PSL603",
             analysis::Severity::Warning, t[i].line,
             "`" + cb.name + "` is event/shard-resident but holds a `" + x +
                 "` member: every event touching it pays a pointer chase "
                 "(and possibly an allocation) outside the slab's cache "
                 "footprint",
             "store a fixed-size value or an index into engine-owned "
             "storage instead; if the indirection is the audited design, "
             "alias the type (`using X = std::" + x +
                 "<...>`) where it is declared and document why");
        continue;
      }
      // Raw-pointer member: `Type * name ;` / `Type * name =`.
      if (i + 3 < cb.body_end && t[i + 1].text == "*" &&
          t[i + 2].kind == Tok::Identifier &&
          (t[i + 3].text == ";" || t[i + 3].text == "=")) {
        if (!fired.insert(t[i].line).second) continue;
        emit(findings, stats, f, cfg, "PSL603",
             analysis::Severity::Warning, t[i].line,
             "`" + cb.name + "` is event/shard-resident but holds raw "
             "pointer member `" + t[i + 2].text +
                 "`: a per-event dereference leaves the slab's cache "
                 "footprint, and ownership is invisible to the arena "
                 "contract",
             "prefer a slot index into engine-owned storage; if the "
             "pointer is genuinely non-owning and cold, suppress with "
             "srclint-ok(PSL603) and say so");
      }
    }
  }
}

// -- PSL604: PASCHED_ARENA contract violations --------------------------------

void rule_psl604(const SourceFile& f, const AllocConfig& cfg,
                 std::vector<analysis::Diagnostic>& findings,
                 FileRuleStats& stats) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier ||
        t[i].text != cfg.arena_marker)
      continue;
    // `struct PASCHED_ARENA Name { ... }` or `PASCHED_ARENA struct Name`.
    std::size_t name_idx;
    if (i > 0 && (t[i - 1].text == "struct" || t[i - 1].text == "class"))
      name_idx = i + 1;
    else if (i + 1 < t.size() &&
             (t[i + 1].text == "struct" || t[i + 1].text == "class"))
      name_idx = i + 2;
    else
      continue;
    if (name_idx >= t.size() || t[name_idx].kind != Tok::Identifier)
      continue;
    const std::string name = t[name_idx].text;
    std::size_t open = name_idx + 1;
    while (open < t.size() && t[open].text != "{" && t[open].text != ";")
      ++open;
    if (open >= t.size() || t[open].text == ";") continue;  // fwd decl
    const std::size_t body_begin = open + 1;
    const std::size_t body_end = srclint::match_forward(t, open);
    if (body_end >= t.size()) continue;
    ++stats.arena_types;

    for (std::size_t k = body_begin; k < body_end; ++k) {
      if (t[k].pp) continue;
      if (t[k].text == "~" && k + 1 < body_end &&
          t[k + 1].text == name) {
        emit(findings, stats, f, cfg, "PSL604", analysis::Severity::Error,
             t[k].line,
             "PASCHED_ARENA type `" + name +
                 "` declares a destructor: arena slabs never run "
                 "per-element destructors, so it would be skipped",
             "make the type trivially destructible (drop the destructor; "
             "release resources where the slab is torn down) or remove "
             "the PASCHED_ARENA annotation");
        continue;
      }
      if (t[k].kind == Tok::Identifier && t[k].text == "virtual") {
        emit(findings, stats, f, cfg, "PSL604", analysis::Severity::Error,
             t[k].line,
             "PASCHED_ARENA type `" + name +
                 "` has a virtual member: a vptr breaks trivial "
                 "copyability and the memcpy-relocation contract",
             "use a discriminated union / kind field instead of virtual "
             "dispatch in arena-resident values");
        continue;
      }
      const bool member_access =
          k > 0 && (t[k - 1].text == "." || t[k - 1].text == "->");
      if (t[k].kind == Tok::Identifier && !member_access &&
          (is_owning_type(t[k].text) || is_indirect_type(t[k].text))) {
        emit(findings, stats, f, cfg, "PSL604", analysis::Severity::Error,
             t[k].line,
             "PASCHED_ARENA type `" + name + "` owns heap memory (`" +
                 t[k].text +
                 "` member): slab relocation memcpys the value, and slab "
                 "teardown leaks what it points at",
             "store a fixed-size value or an index into engine-owned "
             "storage; owning members belong outside the arena");
        continue;
      }
      if (t[k].kind == Tok::Identifier && t[k].text == "new" &&
          !member_access && !(k + 1 < body_end && t[k + 1].text == "(")) {
        emit(findings, stats, f, cfg, "PSL604", analysis::Severity::Error,
             t[k].line,
             "PASCHED_ARENA type `" + name +
                 "` allocates in a member function: arena values must not "
                 "own heap memory",
             "move the allocation to the engine's cold setup path");
      }
    }
  }
}

}  // namespace

bool AllocConfig::rule_enabled(const std::string& id) const {
  return only.empty() || contains(only, id);
}

bool AllocConfig::in_scope(const std::string& rel_path) const {
  if (scope.empty()) return true;
  return std::any_of(scope.begin(), scope.end(), [&](const std::string& p) {
    return rel_path.rfind(p, 0) == 0;
  });
}

void run_file_rules(const SourceFile& f, const AllocConfig& cfg,
                    std::vector<analysis::Diagnostic>& findings,
                    std::vector<AllocClaim>& claims, FileRuleStats& stats) {
  for (const HotRegion& r : hot_regions(f, cfg, stats)) {
    const std::vector<AllocHit> hits = scan_region(f, r);
    for (const AllocHit& h : hits)
      emit(findings, stats, f, cfg, h.rule, analysis::Severity::Error,
           h.line, h.message, h.fix_hint);
    // PSL605: only a marker-carrying function with zero hits — suppressed
    // ones included — earns the allocation-free claim. A waiver silences
    // the finding; it cannot certify the region.
    if (r.marked && hits.empty())
      claims.push_back(AllocClaim{r.name, f.path, r.line});
  }
  rule_psl603(f, cfg, findings, stats);
  rule_psl604(f, cfg, findings, stats);
}

}  // namespace pasched::alloc
