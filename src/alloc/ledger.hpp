// The runtime half of pasched-alloc: an allocation ledger hanging off a
// global operator new/delete hook (src/alloc/hook.cpp, compiled in only
// under -DPASCHED_VALIDATE=ON). Every allocation on a hooked thread is
// charged to the util::allocgate attribution context — a (site, phase)
// pair the engine maintains with PASCHED_ALLOC_*_SCOPE brackets — into
// thread-local per-site counters (no locks, no atomics on the hot path;
// blocks are aggregated after the workers have joined).
//
// This is the verify side of the PSL605/PSL606 certify-then-verify pair,
// mirroring contend::Ledger's PSL505/PSL506: the static analyzer emits an
// "allocation-free region" claim for every clean PASCHED_HOT function, and
// check_claims() refutes any claim whose Core site recorded hot-phase
// allocations at runtime. Dispatch sites ("Engine.callback") measure the
// *workload's* allocation pressure and never refute an engine claim.
//
// When -DPASCHED_VALIDATE=OFF the hook does not exist, install() is a
// no-op, and report() returns an empty (enabled=false) report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "util/allocgate.hpp"

namespace pasched::alloc {

/// A PSL605 allocation-free-region claim from the static analyzer: the
/// PASCHED_HOT function `function` (qualified, e.g. "Engine::schedule_at" —
/// the Core site naming convention) scanned clean of PSL601/PSL602.
struct AllocClaim {
  std::string function;
  std::string file;  // where the static analyzer saw the definition
  int line = 0;
};

/// One ledger row: a registered site's counters, split by phase.
struct SiteAllocRow {
  std::string name;
  util::AllocSiteKind kind = util::AllocSiteKind::Core;
  std::uint64_t hot_allocs = 0;
  std::uint64_t hot_bytes = 0;
  std::uint64_t hot_frees = 0;
  std::uint64_t cold_allocs = 0;
  std::uint64_t cold_bytes = 0;
  std::uint64_t cold_frees = 0;
};

struct AllocLedgerReport {
  bool enabled = false;            // false under -DPASCHED_VALIDATE=OFF
  std::vector<SiteAllocRow> sites; // sorted by hot_allocs desc, then name
  /// Hot-phase allocations charged to Core (engine/kernel bookkeeping)
  /// sites — the number the BENCH gate holds at zero. Excludes Dispatch
  /// rows: callback/workload allocations are reported, not gated.
  std::uint64_t hot_window_allocs = 0;
  std::uint64_t hot_window_bytes = 0;
  /// Hot-phase allocations charged to Dispatch sites (callback execution).
  std::uint64_t dispatch_hot_allocs = 0;
  std::uint64_t total_allocs = 0;
  std::uint64_t total_bytes = 0;

  [[nodiscard]] std::string str() const;
  /// The report as a JSON object (no schema header — the tool wraps it).
  [[nodiscard]] std::string json(int indent) const;
};

/// Facade over the process-wide allocation hook. The hook's counters are
/// global (operator new replacement is inherently process-wide), so Ledger
/// instances all view the same state; treat it as a scoped handle:
/// install() before the run, report()/check_claims() after, reset()
/// between runs. Install/remove/reset only while no instrumented thread is
/// allocating (before run_until / after it returns).
class Ledger {
 public:
  /// True when the operator new/delete hook is compiled in.
  [[nodiscard]] static constexpr bool available() noexcept {
#if PASCHED_VALIDATE_ENABLED
    return true;
#else
    return false;
#endif
  }

  /// Starts counting (links the hook into the binary; see hook.cpp).
  void install() noexcept;
  /// Stops counting. Counters keep their values until reset().
  void remove() noexcept;
  /// Zeroes every thread's counters.
  void reset() noexcept;

  [[nodiscard]] AllocLedgerReport report() const;

  /// The certify-then-verify join: every claim whose Core site recorded
  /// hot-phase allocations is refuted with a PSL606 ERROR. Unobserved
  /// sites produce nothing (no run touched them).
  [[nodiscard]] std::vector<analysis::Diagnostic> check_claims(
      const std::vector<AllocClaim>& claims) const;
};

}  // namespace pasched::alloc
