// Per-file allocation & memory-layout rules for the pasched-alloc static
// analyzer (PSL601–PSL605), over the srclint token/structural model. The
// hot scope a rule guards is the union of PASCHED_HOT-annotated function
// bodies and the configured event-lifecycle functions (matched by their
// qualified FunctionDef names), so the engine's per-event core is covered
// even where a function is not annotated yet. PSL606 is the runtime half
// (alloc/ledger.hpp) and has no static rule here.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "alloc/ledger.hpp"
#include "analysis/diagnostic.hpp"
#include "srclint/model.hpp"
#include "srclint/source.hpp"

namespace pasched::alloc {

/// Tunables for the analyzer. Defaults describe this repo's event core;
/// fixture corpora reuse them unchanged (fixtures mirror the src/ layout).
struct AllocConfig {
  /// Path prefixes in scope. Allocation in tests/bench/tools harness code
  /// is not an event-hot-path concern.
  std::vector<std::string> scope = {"src/"};
  /// The hot-path contract marker (util/hotpath.hpp).
  std::string hot_marker = "PASCHED_HOT";
  /// The arena-residency contract marker audited by PSL604.
  std::string arena_marker = "PASCHED_ARENA";
  /// Qualified names of per-event lifecycle functions that are hot scope
  /// even without a PASCHED_HOT marker (belt-and-suspenders: the engine's
  /// event path stays covered if an annotation is dropped).
  std::vector<std::string> lifecycle_functions = {
      "Engine::schedule_at",    "Engine::cancel",
      "Engine::fire_next",      "Engine::fire_tied",
      "Engine::fire_item",      "Engine::acquire_slot",
      "Engine::release_slot",   "Engine::next_event_time",
      "Engine::run_before"};
  /// Types whose class bodies PSL603 audits for cache-layout hazards
  /// (owning/indirect members in event- or shard-resident values).
  std::vector<std::string> layout_types = {"HeapItem", "Slot",
                                           "CrossNodeEvent", "TieCandidate"};
  /// When non-empty, only these rule IDs report (claims are unaffected).
  std::vector<std::string> only;

  [[nodiscard]] bool rule_enabled(const std::string& id) const;
  [[nodiscard]] bool in_scope(const std::string& rel_path) const;
};

/// Aggregated per-file counters the tree runner folds into AllocStats.
struct FileRuleStats {
  std::size_t functions = 0;
  std::size_t hot_functions = 0;
  std::size_t arena_types = 0;
  int suppressions_honored = 0;
};

/// Runs PSL601–PSL604 on one file, appending findings, and emits one
/// PSL605 AllocClaim per hot-marked function whose body carries no PSL601/
/// PSL602 hit at all — suppressed hits also forfeit the claim: a waiver
/// silences the finding but cannot certify the region allocation-free.
void run_file_rules(const srclint::SourceFile& f, const AllocConfig& cfg,
                    std::vector<analysis::Diagnostic>& findings,
                    std::vector<AllocClaim>& claims, FileRuleStats& stats);

}  // namespace pasched::alloc
