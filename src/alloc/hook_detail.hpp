// Internal seam between alloc::Ledger (ledger.cpp) and the operator
// new/delete replacement (hook.cpp). Referencing these symbols is what
// pulls hook.cpp's archive member — and with it the global allocator
// replacement — into a binary, so only Ledger users get the hook. Not part
// of the public pasched-alloc API.
#pragma once

#include "util/allocgate.hpp"

#if PASCHED_VALIDATE_ENABLED

#include <cstddef>
#include <cstdint>

namespace pasched::alloc::detail {

struct SiteCell {
  // Indexed by static_cast<int>(util::AllocPhase): [0] cold, [1] hot.
  std::uint64_t allocs[2] = {0, 0};
  std::uint64_t bytes[2] = {0, 0};
  std::uint64_t frees[2] = {0, 0};
};

void note_alloc(std::size_t size) noexcept;
void note_free() noexcept;

void hook_set_counting(bool on) noexcept;
void hook_reset() noexcept;
/// Sums every thread's counters into `out[util::kMaxAllocSites]`.
void hook_snapshot(SiteCell* out) noexcept;

}  // namespace pasched::alloc::detail

#endif  // PASCHED_VALIDATE_ENABLED
