// Tree-level driver for the pasched-alloc static analyzer: discovery
// (shared with srclint) → lex → PSL601–604 file rules → ordered report plus
// the PSL605 allocation-free-claim list the runtime allocation ledger
// verifies (PSL606 on refutation).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "alloc/ledger.hpp"
#include "alloc/rules.hpp"
#include "analysis/diagnostic.hpp"

namespace pasched::alloc {

struct AllocOptions {
  std::string root = ".";  // tree to scan (repo root or fixture root)
  std::string compile_db;  // optional compile_commands.json
  AllocConfig cfg;
};

struct AllocStats {
  std::size_t files_scanned = 0;
  std::size_t files_in_scope = 0;
  std::size_t functions = 0;
  std::size_t hot_functions = 0;
  std::size_t arena_types = 0;
  int suppressions_honored = 0;
};

struct AllocReport {
  std::vector<analysis::Diagnostic> findings;  // sorted by (subject, rule)
  std::vector<AllocClaim> claims;  // PSL605 regions, ledger-checked
  AllocStats stats;
  std::string origin;  // discovery origin, see srclint/compiledb.hpp

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  [[nodiscard]] std::string str() const;
  /// Machine-readable report for the CI artifact (schema/tool header).
  [[nodiscard]] std::string json() const;
};

/// Scans every discovered file under opts.root (scope-filtered).
[[nodiscard]] AllocReport run_tree(const AllocOptions& opts);

/// Scans an explicit set of root-relative paths (CLI args, fixture tests).
[[nodiscard]] AllocReport run_files(const AllocOptions& opts,
                                    const std::vector<std::string>& rels);

}  // namespace pasched::alloc
