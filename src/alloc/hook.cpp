// Global operator new/delete replacement backing alloc::Ledger. Compiled to
// an empty translation unit under -DPASCHED_VALIDATE=OFF; under ON this TU
// is pulled into a binary only when something references the hook_* control
// functions below — i.e. only binaries that actually use alloc::Ledger
// (ledger.cpp is the sole caller) pay for the replacement. Binaries that
// link pasched_alloc for the static rules alone keep the stock allocator.
//
// Design:
//   * operator new -> std::malloc, operator delete -> std::free, aligned
//     variants via posix_memalign (free() releases those too). Keeping the
//     backing allocator the libc one keeps ASan's malloc/free interception
//     — and therefore leak checking — consistent.
//   * Counters live in per-thread ThreadBlocks of plain (non-atomic)
//     uint64s: only the owner thread writes them, and aggregation happens
//     from Ledger::report() after workers have joined (the same contract as
//     the window planner's per-shard counters). No locks, no atomics, no
//     allocation on the recording path.
//   * ThreadBlocks are owned by an intentionally-leaked registry vector so
//     blocks survive thread exit (their numbers are part of the run's
//     ledger) and teardown order can't bite; the vector stays reachable
//     through a function-local static, so LeakSanitizer stays quiet.
//   * tl_in_hook guards reentrancy: creating a ThreadBlock itself
//     allocates, and those allocations must not recurse into attribution.
//   * A single relaxed atomic gate (hook_set_counting) keeps the replaced
//     operators near-free while no ledger run is active.
#include "alloc/hook_detail.hpp"
#include "util/allocgate.hpp"

#if PASCHED_VALIDATE_ENABLED

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

namespace pasched::alloc::detail {

struct ThreadBlock {
  SiteCell cells[util::kMaxAllocSites];
};

namespace {

std::atomic<bool> g_counting{false};

std::mutex& blocks_mu() {
  static std::mutex mu;
  return mu;
}

// Leaked on purpose (reachable via the static pointer): see file comment.
// Blocks are malloc'd directly (not operator new) so this TU's allocator
// replacement and the registry's own storage never interleave.
std::vector<ThreadBlock*>& blocks() {
  static std::vector<ThreadBlock*>* v = new std::vector<ThreadBlock*>();
  return *v;
}

thread_local ThreadBlock* tl_block = nullptr;
thread_local bool tl_in_hook = false;

ThreadBlock* block_for_thread() noexcept {
  if (tl_block != nullptr) return tl_block;
  // Reentrancy-guarded by the caller: these allocations go uncounted.
  void* raw = std::malloc(sizeof(ThreadBlock));
  if (raw == nullptr) return nullptr;
  ThreadBlock* b = new (raw) ThreadBlock();
  try {
    const std::scoped_lock lk(blocks_mu());
    blocks().push_back(b);
  } catch (...) {
    std::free(raw);
    return nullptr;
  }
  tl_block = b;
  return b;
}

}  // namespace

void note_alloc(std::size_t size) noexcept {
  if (!g_counting.load(std::memory_order_relaxed)) return;
  if (tl_in_hook) return;
  tl_in_hook = true;
  ThreadBlock* b = block_for_thread();
  if (b != nullptr) {
    int site = util::detail::tl_alloc_site;
    if (site < 0 || site >= util::kMaxAllocSites) site = 0;
    const int phase = static_cast<int>(util::detail::tl_alloc_phase);
    SiteCell& c = b->cells[site];
    c.allocs[phase] += 1;
    c.bytes[phase] += size;
  }
  tl_in_hook = false;
}

void note_free() noexcept {
  if (!g_counting.load(std::memory_order_relaxed)) return;
  if (tl_in_hook) return;
  tl_in_hook = true;
  ThreadBlock* b = block_for_thread();
  if (b != nullptr) {
    int site = util::detail::tl_alloc_site;
    if (site < 0 || site >= util::kMaxAllocSites) site = 0;
    const int phase = static_cast<int>(util::detail::tl_alloc_phase);
    b->cells[site].frees[phase] += 1;
  }
  tl_in_hook = false;
}

void hook_set_counting(bool on) noexcept {
  g_counting.store(on, std::memory_order_relaxed);
}

// Zero every thread's counters. Caller contract (Ledger::reset): no
// instrumented thread is allocating concurrently.
void hook_reset() noexcept {
  const std::scoped_lock lk(blocks_mu());
  for (ThreadBlock* b : blocks())
    for (SiteCell& c : b->cells) c = SiteCell{};
}

// Sum all thread blocks into `out[kMaxAllocSites]`. Caller contract
// (Ledger::report): worker threads whose numbers matter have joined.
void hook_snapshot(SiteCell* out) noexcept {
  for (int s = 0; s < util::kMaxAllocSites; ++s) out[s] = SiteCell{};
  const std::scoped_lock lk(blocks_mu());
  for (const ThreadBlock* b : blocks()) {
    for (int s = 0; s < util::kMaxAllocSites; ++s) {
      for (int p = 0; p < 2; ++p) {
        out[s].allocs[p] += b->cells[s].allocs[p];
        out[s].bytes[p] += b->cells[s].bytes[p];
        out[s].frees[p] += b->cells[s].frees[p];
      }
    }
  }
}

}  // namespace pasched::alloc::detail

namespace {

void* hooked_alloc(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) pasched::alloc::detail::note_alloc(size);
  return p;
}

void* hooked_aligned_alloc(std::size_t size, std::align_val_t al) noexcept {
  std::size_t a = static_cast<std::size_t>(al);
  if (a < sizeof(void*)) a = sizeof(void*);  // posix_memalign's floor
  void* p = nullptr;
  if (posix_memalign(&p, a, size != 0 ? size : 1) != 0) return nullptr;
  pasched::alloc::detail::note_alloc(size);
  return p;
}

void hooked_free(void* p) noexcept {
  if (p == nullptr) return;
  pasched::alloc::detail::note_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = hooked_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = hooked_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return hooked_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return hooked_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t al) {
  void* p = hooked_aligned_alloc(size, al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t al) {
  void* p = hooked_aligned_alloc(size, al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return hooked_aligned_alloc(size, al);
}

void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return hooked_aligned_alloc(size, al);
}

void operator delete(void* p) noexcept { hooked_free(p); }
void operator delete[](void* p) noexcept { hooked_free(p); }
void operator delete(void* p, std::size_t) noexcept { hooked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { hooked_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  hooked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  hooked_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { hooked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { hooked_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  hooked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  hooked_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  hooked_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  hooked_free(p);
}

#endif  // PASCHED_VALIDATE_ENABLED
