#include "cluster/node.hpp"

#include "util/assert.hpp"

namespace pasched::cluster {

Node::Node(sim::EventContext ctx, kern::NodeId id, const NodeConfig& cfg,
           sim::Rng rng)
    : id_(id) {
  PASCHED_EXPECTS(cfg.ncpus > 0);
  owned_.bind(ctx.shard, "cluster.Node", id);
  const sim::Duration offset =
      rng.uniform_dur(sim::Duration::zero(), cfg.max_clock_offset);
  kernel_ = std::make_unique<kern::Kernel>(ctx, id, cfg.ncpus,
                                           cfg.tunables, offset,
                                           rng.next_u64());
  if (cfg.install_daemons) {
    daemons_ = std::make_unique<daemons::NodeDaemons>(*kernel_, cfg.daemons,
                                                      rng.fork(17));
  }
}

void Node::start() {
  PASCHED_ASSERT_OWNED(owned_, "start");
  kernel_->start();
  if (daemons_) daemons_->start();
}

}  // namespace pasched::cluster
