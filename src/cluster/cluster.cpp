#include "cluster/cluster.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pasched::cluster {

// srclint-ok(PSL401): legacy bridge — wrapped into SingleRouter on entry.
Cluster::Cluster(sim::Engine& engine, const ClusterConfig& cfg)
    : owned_router_(std::make_unique<sim::SingleRouter>(engine)),
      router_(owned_router_.get()),
      cfg_(cfg),
      rng_(cfg.seed) {
  build(cfg);
}

Cluster::Cluster(sim::Router& router, const ClusterConfig& cfg)
    : router_(&router), cfg_(cfg), rng_(cfg.seed) {
  PASCHED_EXPECTS_MSG(router.partitions() >= cfg.nodes,
                      "router does not partition every node");
  build(cfg);
}

void Cluster::build(const ClusterConfig& cfg) {
  PASCHED_EXPECTS(cfg.nodes > 0);
  switch_clock_ = std::make_unique<net::SwitchClock>(router_->engine_of(0));
  fabric_ = std::make_unique<net::Fabric>(*router_, cfg.fabric, rng_.fork(1),
                                          cfg.nodes);
  for (int i = 0; i < cfg.nodes; ++i) {
    const int shard = router_->shard_of_node(i);
    nodes_.push_back(std::make_unique<Node>(
        sim::EventContext(router_->engine_of(shard), *router_, shard), i,
        cfg.node, rng_.fork(100 + static_cast<std::uint64_t>(i))));
  }
}

void Cluster::start() {
  for (auto& n : nodes_) n->start();
}

sim::Duration Cluster::synchronize_clocks() {
  sim::Duration worst = sim::Duration::zero();
  sim::Rng sync_rng = rng_.fork(7);
  for (auto& n : nodes_) {
    const sim::Duration residual = net::synchronize(
        n->kernel().clock(), *switch_clock_, cfg_.clock_sync, sync_rng);
    worst = std::max(worst, residual < sim::Duration::zero() ? -residual
                                                             : residual);
  }
  return worst;
}

Node& Cluster::node(kern::NodeId id) {
  PASCHED_EXPECTS(id >= 0 && id < size());
  return *nodes_[static_cast<std::size_t>(id)];
}

bool Cluster::any_node_evicted() const {
  for (const auto& n : nodes_) {
    const auto* d = const_cast<Node&>(*n).daemons();
    if (d != nullptr && d->any_evicted()) return true;
  }
  return false;
}

namespace presets {

namespace {
ClusterConfig base(int nodes, int ncpus) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node.ncpus = ncpus;
  return cfg;
}
}  // namespace

ClusterConfig frost(int nodes) { return base(nodes, 16); }
ClusterConfig asci_white(int nodes) { return base(nodes, 16); }
ClusterConfig blue_oak(int nodes) {
  ClusterConfig cfg = base(nodes, 16);
  // Blue Oak's background load was observed to be somewhat lighter.
  cfg.node.daemons.intensity = 0.8;
  return cfg;
}

}  // namespace presets

}  // namespace pasched::cluster
