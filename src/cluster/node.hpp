// One SMP node: a kernel instance over N CPUs, its daemon population, and a
// local clock with a boot-time offset from global time.
#pragma once

#include <memory>

#include "daemons/registry.hpp"
#include "kern/kernel.hpp"
#include "race/domain.hpp"
#include "sim/context.hpp"
#include "sim/random.hpp"

namespace pasched::cluster {

struct NodeConfig {
  int ncpus = 16;
  kern::Tunables tunables;
  daemons::RegistryConfig daemons;
  /// Nodes boot at different times; local clocks start offset from global
  /// time by up to this much (uniform). Clock sync (net/) removes it.
  sim::Duration max_clock_offset = sim::Duration::ms(100);
  /// Install the daemon population at all (off = sterile node for tests).
  bool install_daemons = true;
};

class Node {
 public:
  /// `ctx` is the node's scheduling handle — in partitioned mode, the engine
  /// shard that owns this node (implicitly constructible from a bare
  /// Engine& for single-engine use).
  Node(sim::EventContext ctx, kern::NodeId id, const NodeConfig& cfg,
       sim::Rng rng);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Arms ticks and daemon activations. Call once before running the engine.
  void start();

  [[nodiscard]] kern::NodeId id() const noexcept { return id_; }
  [[nodiscard]] kern::Kernel& kernel() noexcept { return *kernel_; }
  [[nodiscard]] const kern::Kernel& kernel() const noexcept { return *kernel_; }
  /// nullptr when the node was built without daemons.
  [[nodiscard]] daemons::NodeDaemons* daemons() noexcept {
    return daemons_.get();
  }
  [[nodiscard]] daemons::IoService* io_service() noexcept {
    return daemons_ ? daemons_->io_service() : nullptr;
  }

 private:
  kern::NodeId id_;
  race::Owned owned_;
  std::unique_ptr<kern::Kernel> kernel_;
  std::unique_ptr<daemons::NodeDaemons> daemons_;
};

}  // namespace pasched::cluster
