// The whole machine: nodes + switch fabric + globally synchronized switch
// clock, with presets for the systems the paper measured on.
#pragma once

#include <memory>
#include <vector>

#include "cluster/node.hpp"
#include "net/clock_sync.hpp"
#include "net/fabric.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace pasched::cluster {

struct ClusterConfig {
  int nodes = 4;
  NodeConfig node;
  net::FabricConfig fabric;
  net::ClockSyncConfig clock_sync;
  std::uint64_t seed = 1;
};

class Cluster {
 public:
  /// Classic mode: one engine runs every node (a SingleRouter is installed
  /// internally so the code paths above are identical in both modes).
  // srclint-ok(PSL401): legacy bridge — the engine is wrapped into an owned
  // SingleRouter immediately and never retained raw.
  Cluster(sim::Engine& engine, const ClusterConfig& cfg);
  /// Partitioned mode: `router` (e.g. sim::ShardedEngine) assigns each node
  /// its own engine shard; the fabric posts deliveries across shards.
  Cluster(sim::Router& router, const ClusterConfig& cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Arms every node. Call once before running the engine.
  void start();

  /// Synchronizes every node's local clock to the switch clock (what the
  /// co-scheduler startup does on each node, §4). Returns the worst
  /// remaining |offset|.
  sim::Duration synchronize_clocks();

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] Node& node(kern::NodeId id);
  [[nodiscard]] net::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] const net::SwitchClock& switch_clock() const noexcept {
    return *switch_clock_;
  }
  /// Shard 0's engine: in classic mode this is *the* engine; in partitioned
  /// mode it is node 0's shard (all shard clocks agree outside windows).
  [[nodiscard]] sim::Engine& engine() noexcept { return router_->engine_of(0); }
  [[nodiscard]] sim::Router& router() noexcept { return *router_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }

  /// True if any node's deadline-bearing daemon exceeded its tolerance.
  [[nodiscard]] bool any_node_evicted() const;

 private:
  void build(const ClusterConfig& cfg);

  std::unique_ptr<sim::SingleRouter> owned_router_;  // classic mode only
  sim::Router* router_;
  ClusterConfig cfg_;
  std::unique_ptr<net::SwitchClock> switch_clock_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::Rng rng_;
};

namespace presets {
/// 'Frost' at LLNL: 68 nodes of 16-way 375 MHz Power3.
[[nodiscard]] ClusterConfig frost(int nodes = 68);
/// 'ASCI White' at LLNL: 512 nodes of 16-way Power3.
[[nodiscard]] ClusterConfig asci_white(int nodes = 512);
/// 'Blue Oak' at AWE: 120 Nighthawk-II compute nodes.
[[nodiscard]] ClusterConfig blue_oak(int nodes = 120);
}  // namespace presets

}  // namespace pasched::cluster
