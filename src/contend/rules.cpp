#include "contend/rules.hpp"

#include <algorithm>
#include <set>

#include "srclint/model.hpp"

namespace pasched::contend {

using srclint::SourceFile;
using srclint::Tok;
using srclint::Token;

namespace {

[[nodiscard]] bool is_scalarish(const std::string& x) noexcept {
  static const char* const kScalar[] = {
      "bool",     "char",     "short",    "int",      "long",
      "unsigned", "signed",   "float",    "double",   "size_t",
      "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",
      "uint16_t", "uint32_t", "uint64_t", "uintptr_t", "intptr_t",
      "Time",     "Duration", "atomic"};
  return std::any_of(std::begin(kScalar), std::end(kScalar),
                     [&](const char* k) { return x == k; });
}

[[nodiscard]] bool is_padding_wrapper(const std::string& x) noexcept {
  return x == "CacheAligned" || x == "unique_ptr" || x == "shared_ptr" ||
         x == "alignas";
}

/// A member-declaration statement: a top-level token slice of a class body
/// ending at ';' (brace-init fields included; member-function bodies and
/// nested classes excluded).
struct MemberStmt {
  std::vector<std::size_t> toks;  // token indices
  int line = 0;
};

[[nodiscard]] std::vector<MemberStmt> member_statements(
    const SourceFile& f, const srclint::ClassBody& cb) {
  std::vector<MemberStmt> out;
  const auto& t = f.tokens;
  MemberStmt cur;
  for (std::size_t i = cb.body_begin; i < cb.body_end; ++i) {
    if (t[i].pp) continue;
    if (t[i].kind == Tok::Punct &&
        (t[i].text == "(" || t[i].text == "[" || t[i].text == "{")) {
      const std::size_t close = srclint::match_forward(f.tokens, i);
      if (close >= cb.body_end) break;
      const bool nested_type = std::any_of(
          cur.toks.begin(), cur.toks.end(), [&](std::size_t k) {
            return t[k].kind == Tok::Identifier &&
                   (t[k].text == "struct" || t[k].text == "class" ||
                    t[k].text == "union" || t[k].text == "enum");
          });
      if (t[i].text == "{" &&
          (nested_type ||
           !(close + 1 < cb.body_end && t[close + 1].text == ";"))) {
        // Function body or nested type definition (`struct S {...};` ends
        // in ';' like a brace-init field, but is not one): not a field.
        cur = MemberStmt{};
        i = close;
        if (nested_type && close + 1 < cb.body_end &&
            t[close + 1].text == ";")
          ++i;  // consume the type's ';' too
        continue;
      }
      for (std::size_t k = i; k <= close; ++k) cur.toks.push_back(k);
      i = close;
      continue;
    }
    if (t[i].kind == Tok::Punct && t[i].text == ";") {
      if (!cur.toks.empty()) {
        cur.line = t[cur.toks.front()].line;
        out.push_back(std::move(cur));
      }
      cur = MemberStmt{};
      continue;
    }
    cur.toks.push_back(i);
  }
  return out;
}

/// The declared name of a field statement: the last identifier directly
/// followed by ';' (end of slice), '=', '{' or '['.
[[nodiscard]] std::string field_name(const SourceFile& f,
                                     const MemberStmt& st) {
  const auto& t = f.tokens;
  std::string name;
  for (std::size_t k = 0; k < st.toks.size(); ++k) {
    const Token& tk = t[st.toks[k]];
    if (tk.kind != Tok::Identifier) continue;
    if (k + 1 == st.toks.size()) {
      name = tk.text;
      continue;
    }
    const Token& nx = t[st.toks[k + 1]];
    if (nx.kind == Tok::Punct &&
        (nx.text == "=" || nx.text == "{" || nx.text == "["))
      name = tk.text;
  }
  return name;
}

/// True when the statement looks like a function declaration: a top-level
/// '(' before any '='.
[[nodiscard]] bool looks_like_function_decl(const SourceFile& f,
                                            const MemberStmt& st) {
  const auto& t = f.tokens;
  for (const std::size_t k : st.toks) {
    if (t[k].kind != Tok::Punct) continue;
    if (t[k].text == "=") return false;
    if (t[k].text == "(") return true;
  }
  return false;
}

[[nodiscard]] bool stmt_has(const SourceFile& f, const MemberStmt& st,
                            const char* ident) {
  const auto& t = f.tokens;
  return std::any_of(st.toks.begin(), st.toks.end(), [&](std::size_t k) {
    return t[k].kind == Tok::Identifier && t[k].text == ident;
  });
}

void emit(std::vector<analysis::Diagnostic>& findings, FileRuleStats& stats,
          const SourceFile& f, const ContendConfig& cfg,
          const std::string& rule, analysis::Severity sev, int line,
          std::string message, std::string fix_hint) {
  if (!cfg.rule_enabled(rule)) return;
  if (f.suppressed(rule, line)) {
    ++stats.suppressions_honored;
    return;
  }
  analysis::Diagnostic d;
  d.rule = rule;
  d.severity = sev;
  d.subject = f.path + ":" + std::to_string(line);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  findings.push_back(std::move(d));
}

// -- PSL503: false-sharing layout in shard-shared classes ---------------------

void rule_psl503(const SourceFile& f, const ContendConfig& cfg,
                 std::vector<analysis::Diagnostic>& findings,
                 FileRuleStats& stats) {
  const auto& t = f.tokens;
  for (const srclint::ClassBody& cb :
       srclint::find_class_bodies(f, cfg.shared_classes)) {
    for (const MemberStmt& st : member_statements(f, cb)) {
      if (looks_like_function_decl(f, st)) continue;
      if (stmt_has(f, st, "alignas") || stmt_has(f, st, "CacheAligned") ||
          stmt_has(f, st, "unique_ptr") || stmt_has(f, st, "shared_ptr") ||
          stmt_has(f, st, "static"))
        continue;
      const std::string name = field_name(f, st);
      if (name.empty()) continue;

      // (a) per-shard array of unpadded scalar-sized elements.
      bool fired = false;
      for (std::size_t k = 0; k + 1 < st.toks.size(); ++k) {
        const Token& tk = t[st.toks[k]];
        if (tk.kind != Tok::Identifier ||
            (tk.text != "vector" && tk.text != "array"))
          continue;
        if (t[st.toks[k + 1]].text != "<") continue;
        bool scalar = false;
        bool padded = false;
        int angle = 0;
        for (std::size_t m = k + 1; m < st.toks.size(); ++m) {
          const Token& mt = t[st.toks[m]];
          if (mt.kind == Tok::Punct) {
            if (mt.text == "<") ++angle;
            else if (mt.text == ">" && --angle == 0) break;
            else if (mt.text == ">>" && (angle -= 2) <= 0) break;
            continue;
          }
          if (mt.kind != Tok::Identifier) continue;
          if (is_scalarish(mt.text)) scalar = true;
          if (is_padding_wrapper(mt.text)) padded = true;
        }
        if (scalar && !padded) {
          emit(findings, stats, f, cfg, "PSL503",
               analysis::Severity::Warning, st.line,
               "per-shard container `" + cb.name + "::" + name +
                   "` packs scalar-sized elements contiguously: adjacent "
                   "slots written by different race::Domain workers share "
                   "a " +
                   std::to_string(64) + "-byte cache line",
               "wrap the element type in util::CacheAligned<> (or pad "
               "with alignas(util::kCacheLineBytes)) so each domain's "
               "slot owns its line");
          fired = true;
        }
        break;
      }
      if (fired) continue;

      // (b) a bare atomic member next to other mutable fields.
      if (stmt_has(f, st, "atomic")) {
        emit(findings, stats, f, cfg, "PSL503", analysis::Severity::Warning,
             st.line,
             "atomic member `" + cb.name + "::" + name +
                 "` is declared without cache-line isolation in a "
                 "shard-shared class: its line ping-pongs with whatever "
                 "fields the compiler packs beside it",
             "isolate it with alignas(util::kCacheLineBytes) or "
             "util::CacheAligned<>");
      }
    }
  }
}

// -- PSL504: shared atomic updated inside a hot loop --------------------------

void rule_psl504(const SourceFile& f, const ContendConfig& cfg,
                 std::vector<analysis::Diagnostic>& findings,
                 FileRuleStats& stats) {
  const auto& t = f.tokens;

  // All atomic-typed declaration names in the file (members and locals).
  std::set<std::string> atomics;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier || t[i].text != "atomic")
      continue;
    std::size_t j = i + 1;
    if (t[j].text == "<") {
      int angle = 0;
      for (; j < t.size(); ++j) {
        if (t[j].kind != Tok::Punct) continue;
        if (t[j].text == "<") ++angle;
        else if (t[j].text == ">" && --angle == 0) { ++j; break; }
        else if (t[j].text == ">>" && (angle -= 2) <= 0) { ++j; break; }
        else if (t[j].text == ";") break;
      }
    }
    while (j < t.size() && t[j].kind == Tok::Punct &&
           (t[j].text == "*" || t[j].text == "&"))
      ++j;
    if (j < t.size() && t[j].kind == Tok::Identifier)
      atomics.insert(t[j].text);
  }
  if (atomics.empty()) return;

  std::set<std::pair<std::string, int>> fired;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier) continue;
    if (t[i].text != "for" && t[i].text != "while") continue;
    if (t[i + 1].text != "(") continue;
    const std::size_t cond_close = srclint::match_forward(t, i + 1);
    if (cond_close >= t.size()) continue;
    std::size_t body_open = cond_close + 1;
    if (body_open >= t.size() || t[body_open].text != "{")
      continue;  // single-statement loops: out of model
    const std::size_t body_close = srclint::match_forward(t, body_open);
    if (body_close >= t.size()) continue;

    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      if (t[k].pp || t[k].kind != Tok::Identifier) continue;
      if (atomics.count(t[k].text) == 0) continue;
      const std::string& name = t[k].text;
      bool update = false;
      if (k + 2 < body_close && t[k + 1].kind == Tok::Punct &&
          (t[k + 1].text == "." || t[k + 1].text == "->") &&
          t[k + 2].kind == Tok::Identifier &&
          (t[k + 2].text == "fetch_add" || t[k + 2].text == "fetch_sub"))
        update = true;
      if (k + 1 < body_close && t[k + 1].kind == Tok::Punct &&
          (t[k + 1].text == "+=" || t[k + 1].text == "-=" ||
           t[k + 1].text == "++" || t[k + 1].text == "--"))
        update = true;
      if (k > 0 && t[k - 1].kind == Tok::Punct &&
          (t[k - 1].text == "++" || t[k - 1].text == "--"))
        update = true;
      if (!update) continue;
      if (!fired.insert({name, t[k].line}).second) continue;
      emit(findings, stats, f, cfg, "PSL504", analysis::Severity::Warning,
           t[k].line,
           "shared atomic `" + name +
               "` is read-modify-written on every iteration of a loop: "
               "under 8-way sharding the cache line bounces between "
               "domains once per event",
           "accumulate into a function-local counter and publish to the "
           "atomic once per window (or per drain), not per iteration");
    }
  }
}

// -- PSL505: coarse mutex over Owned-tagged state -----------------------------

void rule_psl505(const SourceFile& f, const FileLocks& locks,
                 const ContendConfig& cfg,
                 std::vector<analysis::Diagnostic>& findings,
                 std::vector<SerializationClaim>& claims,
                 FileRuleStats& stats) {
  const auto& t = f.tokens;
  std::set<std::string> owned_classes;
  for (const srclint::ClassBody& cb : srclint::find_all_class_bodies(f)) {
    for (std::size_t i = cb.body_begin; i + 1 < cb.body_end; ++i) {
      if (!t[i].pp && t[i].kind == Tok::Identifier &&
          t[i].text == "Owned" && t[i + 1].text == "<") {
        owned_classes.insert(cb.name);
        break;
      }
    }
  }
  for (const MutexMember& m : locks.mutex_members) {
    if (owned_classes.count(m.cls) == 0) continue;
    const std::string site = m.cls + "." + m.member;
    // The claim outlives the WARN: a suppressed PSL505 still gets its
    // runtime verification (PSL506) — certify, then verify.
    claims.push_back(SerializationClaim{site, f.path, m.line});
    emit(findings, stats, f, cfg, "PSL505", analysis::Severity::Warning,
         m.line,
         "mutex `" + site + "` guards a class whose race::Owned tag "
         "proves single-domain ownership: the lock is wider than the "
         "ownership scope and serializes a partition-private path",
         "narrow the mutex to the genuinely shared state, or suppress "
         "with srclint-ok(PSL505) — either way the contention ledger "
         "verifies the claim at runtime (PSL506 on refutation)");
  }
}

}  // namespace

void run_file_rules(const SourceFile& f, const FileLocks& locks,
                    const ContendConfig& cfg,
                    std::vector<analysis::Diagnostic>& findings,
                    std::vector<SerializationClaim>& claims,
                    FileRuleStats& stats) {
  rule_psl503(f, cfg, findings, stats);
  rule_psl504(f, cfg, findings, stats);
  rule_psl505(f, locks, cfg, findings, claims, stats);
}

}  // namespace pasched::contend
