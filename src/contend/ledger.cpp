#include "contend/ledger.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "race/domain.hpp"
#include "util/table.hpp"

namespace pasched::contend {

namespace {

[[nodiscard]] std::uint64_t domain_bit(race::Domain d) noexcept {
  // kUnbound (-2) -> bit 0, kFreeContext (-1) -> bit 1, shard d -> d + 2.
  const int idx = static_cast<int>(d) + 2;
  return std::uint64_t{1} << (idx < 0 ? 0 : (idx > 63 ? 63 : idx));
}

[[nodiscard]] int popcount64(std::uint64_t x) noexcept {
  int n = 0;
  for (; x != 0; x &= x - 1) ++n;
  return n;
}

[[nodiscard]] double ms(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) / 1e6;
}

void bump_max(std::atomic<std::uint64_t>& target,
              std::uint64_t candidate) noexcept {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !target.compare_exchange_weak(cur, candidate,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Ledger::on_acquire(int site, std::uint64_t wait_ns,
                        bool contended) noexcept {
  Slot& s = slot(site);
  s.acquires.fetch_add(1, std::memory_order_relaxed);
  if (contended) s.contended.fetch_add(1, std::memory_order_relaxed);
  if (wait_ns != 0) {
    s.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
    bump_max(s.max_wait_ns, wait_ns);
  }
  s.domain_mask.fetch_or(domain_bit(race::current_domain()),
                         std::memory_order_relaxed);
}

void Ledger::on_release(int site, std::uint64_t hold_ns) noexcept {
  slot(site).hold_ns.fetch_add(hold_ns, std::memory_order_relaxed);
}

void Ledger::on_barrier_wait(int site, std::uint64_t wait_ns) noexcept {
  Slot& s = slot(site);
  s.acquires.fetch_add(1, std::memory_order_relaxed);
  s.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  bump_max(s.max_wait_ns, wait_ns);
  s.domain_mask.fetch_or(domain_bit(race::current_domain()),
                         std::memory_order_relaxed);
}

void Ledger::on_wait(int site, std::uint64_t wait_ns) noexcept {
  Slot& s = slot(site);
  s.acquires.fetch_add(1, std::memory_order_relaxed);
  s.contended.fetch_add(1, std::memory_order_relaxed);  // a spin happened
  s.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  bump_max(s.max_wait_ns, wait_ns);
  s.domain_mask.fetch_or(domain_bit(race::current_domain()),
                         std::memory_order_relaxed);
}

void Ledger::reset() noexcept {
  for (auto& wrapped : slots_) {
    Slot& s = wrapped.v;
    s.acquires.store(0, std::memory_order_relaxed);
    s.contended.store(0, std::memory_order_relaxed);
    s.wait_ns.store(0, std::memory_order_relaxed);
    s.hold_ns.store(0, std::memory_order_relaxed);
    s.max_wait_ns.store(0, std::memory_order_relaxed);
    s.domain_mask.store(0, std::memory_order_relaxed);
  }
}

LedgerReport Ledger::report() const {
  LedgerReport rep;
  std::uint64_t barrier_wait = 0;
  const int n = util::seam_site_count();
  for (int i = 0; i < n && i < util::kMaxSeamSites; ++i) {
    const Slot& s = slot(i);
    SiteSummary row;
    row.name = util::seam_site_name(i);
    row.kind = util::seam_site_kind(i);
    row.acquires = s.acquires.load(std::memory_order_relaxed);
    row.contended = s.contended.load(std::memory_order_relaxed);
    row.wait_ns = s.wait_ns.load(std::memory_order_relaxed);
    row.hold_ns = s.hold_ns.load(std::memory_order_relaxed);
    row.max_wait_ns = s.max_wait_ns.load(std::memory_order_relaxed);
    row.domains_observed =
        popcount64(s.domain_mask.load(std::memory_order_relaxed));
    if (row.acquires == 0) continue;  // registered but never crossed
    rep.total_wait_ns += row.wait_ns;
    if (row.kind == util::SeamKind::Barrier) {
      barrier_wait += row.wait_ns;
      rep.barrier_crossings = std::max(rep.barrier_crossings, row.acquires);
    }
    rep.sites.push_back(std::move(row));
  }
  if (rep.total_wait_ns > 0) {
    for (SiteSummary& row : rep.sites)
      row.wait_share = static_cast<double>(row.wait_ns) /
                       static_cast<double>(rep.total_wait_ns);
    rep.barrier_wait_share = static_cast<double>(barrier_wait) /
                             static_cast<double>(rep.total_wait_ns);
  }
  std::sort(rep.sites.begin(), rep.sites.end(),
            [](const SiteSummary& a, const SiteSummary& b) {
              if (a.wait_ns != b.wait_ns) return a.wait_ns > b.wait_ns;
              return a.name < b.name;
            });
  return rep;
}

std::vector<analysis::Diagnostic> Ledger::check_claims(
    const std::vector<SerializationClaim>& claims) const {
  std::vector<analysis::Diagnostic> out;
  const int n = util::seam_site_count();
  for (const SerializationClaim& c : claims) {
    for (int i = 0; i < n && i < util::kMaxSeamSites; ++i) {
      if (c.site != util::seam_site_name(i)) continue;
      const Slot& s = slot(i);
      if (s.acquires.load(std::memory_order_relaxed) == 0) break;
      const int domains =
          popcount64(s.domain_mask.load(std::memory_order_relaxed));
      if (domains >= 2) {
        analysis::Diagnostic d;
        d.rule = "PSL506";
        d.severity = analysis::Severity::Error;
        d.subject = c.file + ":" + std::to_string(c.line);
        d.message = "serialization claim refuted: site `" + c.site +
                    "` was statically claimed single-domain (PSL505) but "
                    "the contention ledger observed " +
                    std::to_string(domains) +
                    " distinct race::Domains acquiring it at runtime";
        d.fix_hint =
            "the mutex really is a cross-domain serialization point: keep "
            "it, drop the srclint-ok(PSL505) narrowing, and rank it via the "
            "ledger instead; or narrow the guarded state so only its owner "
            "domain touches it";
        out.push_back(std::move(d));
      }
      break;
    }
  }
  return out;
}

std::string LedgerReport::str() const {
  std::ostringstream os;
  os << "contention ledger: " << sites.size() << " active site(s), "
     << barrier_crossings << " barrier crossing(s), total wait "
     << ms(total_wait_ns) << " ms, barrier share ";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", barrier_wait_share * 100.0);
  os << buf << "\n";
  util::Table t({"site", "kind", "acquires", "contended", "wait_ms",
                 "hold_ms", "max_wait_us", "domains", "share"});
  for (const SiteSummary& s : sites) {
    std::snprintf(buf, sizeof buf, "%.1f%%", s.wait_share * 100.0);
    t.add_row({s.name,
               s.kind == util::SeamKind::Barrier
                   ? "barrier"
                   : (s.kind == util::SeamKind::Wait ? "wait" : "mutex"),
               util::Table::cell(
                   static_cast<unsigned long long>(s.acquires)),
               util::Table::cell(
                   static_cast<unsigned long long>(s.contended)),
               util::Table::cell(ms(s.wait_ns), 3),
               util::Table::cell(ms(s.hold_ns), 3),
               util::Table::cell(static_cast<double>(s.max_wait_ns) / 1e3, 1),
               util::Table::cell(s.domains_observed), buf});
  }
  os << t.render();
  return os.str();
}

std::string LedgerReport::json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2(static_cast<std::size_t>(indent) + 2, ' ');
  const std::string pad4(static_cast<std::size_t>(indent) + 4, ' ');
  std::ostringstream os;
  char buf[32];
  os << "{\n";
  os << pad2 << "\"barrier_crossings\": " << barrier_crossings << ",\n";
  os << pad2 << "\"total_wait_ns\": " << total_wait_ns << ",\n";
  std::snprintf(buf, sizeof buf, "%.6f", barrier_wait_share);
  os << pad2 << "\"barrier_wait_share\": " << buf << ",\n";
  os << pad2 << "\"sites\": [";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteSummary& s = sites[i];
    os << (i == 0 ? "\n" : ",\n") << pad4 << "{\"site\": \""
       << analysis::json_escape(s.name) << "\", \"kind\": \""
       << (s.kind == util::SeamKind::Barrier
               ? "barrier"
               : (s.kind == util::SeamKind::Wait ? "wait" : "mutex"))
       << "\", \"acquires\": " << s.acquires
       << ", \"contended\": " << s.contended
       << ", \"wait_ns\": " << s.wait_ns << ", \"hold_ns\": " << s.hold_ns
       << ", \"max_wait_ns\": " << s.max_wait_ns
       << ", \"domains_observed\": " << s.domains_observed;
    std::snprintf(buf, sizeof buf, "%.6f", s.wait_share);
    os << ", \"wait_share\": " << buf << "}";
  }
  os << (sites.empty() ? "]" : "\n" + pad2 + "]") << "\n" << pad << "}";
  return os.str();
}

}  // namespace pasched::contend
