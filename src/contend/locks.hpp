// Per-function lockset extraction for the pasched-contend static analyzer.
// Built on the srclint token/structural model: for every recovered function
// definition we track which mutexes are held at each acquisition, each call
// site, and each direct blocking seam (barrier arrive_and_wait, condition
// wait). The graph layer (graph.hpp) canonicalizes names across TUs and
// closes over the call graph.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "srclint/model.hpp"
#include "srclint/source.hpp"

namespace pasched::contend {

/// Tunables for the analyzer. Defaults describe this repo's core; fixture
/// corpora reuse them unchanged (fixtures mirror the src/ layout).
struct ContendConfig {
  /// Path prefixes in scope for lock extraction and the PSL50x rules.
  /// Harness-local locks in tests/bench/tools are not scheduler seams.
  std::vector<std::string> scope = {"src/"};
  /// RAII guard templates whose constructor acquires its mutex arguments.
  std::vector<std::string> guard_types = {"scoped_lock", "lock_guard",
                                          "unique_lock", "shared_lock"};
  /// Type names that declare a mutex member ("Class.member" graph nodes).
  std::vector<std::string> mutex_types = {"mutex", "timed_mutex",
                                          "recursive_mutex", "shared_mutex",
                                          "SeamMutex"};
  /// Member calls that park the calling thread (blocking seams). Note
  /// arrive_and_drop is absent: dropping never parks.
  std::vector<std::string> blocking_calls = {"arrive_and_wait", "wait",
                                             "wait_for", "wait_until"};
  /// Classes whose field layout PSL503 audits for false sharing.
  std::vector<std::string> shared_classes = {"ShardedEngine", "Inbox",
                                             "Ledger"};
  /// When non-empty, only these rule IDs report.
  std::vector<std::string> only;

  [[nodiscard]] bool rule_enabled(const std::string& id) const;
  [[nodiscard]] bool in_scope(const std::string& rel_path) const;
};

/// A mutex-typed data member: the declaration behind a "Class.member" node.
struct MutexMember {
  std::string cls;
  std::string member;
  int line = 0;
  bool seam = false;  // declared as util::SeamMutex (an instrumented seam)
};

/// One lock acquisition inside a function body.
struct Acquisition {
  std::string mutex;  // name as written (member/local; canonicalized later)
  int line = 0;
  std::vector<std::string> held;  // locks already held, as written
};

/// One call expression with the locks held at the call.
struct CallSite {
  std::string callee;  // unqualified name
  int line = 0;
  std::vector<std::string> held;
};

/// A direct blocking seam (arrive_and_wait / cv.wait family).
struct BlockingUse {
  std::string what;  // the blocking member name
  int line = 0;
  std::vector<std::string> held;
};

struct FunctionLocks {
  std::string name;  // qualified when written out-of-line
  int line = 0;
  std::vector<Acquisition> acquisitions;
  std::vector<CallSite> calls;
  std::vector<BlockingUse> blocking;
};

struct FileLocks {
  std::string path;
  std::vector<MutexMember> mutex_members;
  std::vector<FunctionLocks> functions;
};

/// Extracts the lock structure of one file: mutex member declarations from
/// every class body, and per-function acquisition/call/blocking records with
/// held-set tracking (RAII guards scoped to their enclosing block, manual
/// lock()/unlock() pairs, unique_lock variables mapped to their mutex).
[[nodiscard]] FileLocks extract_locks(const srclint::SourceFile& f,
                                      const ContendConfig& cfg);

}  // namespace pasched::contend
