// Tree-level driver for the pasched-contend static analyzer: discovery
// (shared with srclint) → lex → lockset extraction → cross-TU LockGraph →
// PSL501/502 graph rules + PSL503/504/505 file rules → ordered report plus
// the PSL505 serialization-claim list the runtime ledger verifies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "contend/graph.hpp"
#include "contend/ledger.hpp"
#include "contend/locks.hpp"

namespace pasched::contend {

struct ContendOptions {
  std::string root = ".";  // tree to scan (repo root or fixture root)
  std::string compile_db;  // optional compile_commands.json
  ContendConfig cfg;
};

struct ContendStats {
  std::size_t files_scanned = 0;
  std::size_t files_in_scope = 0;
  std::size_t functions = 0;
  std::size_t acquisitions = 0;
  std::size_t mutex_members = 0;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  std::size_t cycles = 0;
  int suppressions_honored = 0;
};

struct ContendReport {
  std::vector<analysis::Diagnostic> findings;  // sorted by (subject, rule)
  std::vector<SerializationClaim> claims;      // PSL505 sites, ledger-checked
  std::vector<std::string> graph;              // canonical edge lines
  ContendStats stats;
  std::string origin;  // discovery origin, see srclint/compiledb.hpp

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  [[nodiscard]] std::string str() const;
  /// Machine-readable report for the CI artifact (schema/tool header).
  [[nodiscard]] std::string json() const;
};

/// Scans every discovered file under opts.root (scope-filtered).
[[nodiscard]] ContendReport run_tree(const ContendOptions& opts);

/// Scans an explicit set of root-relative paths (CLI args, fixture tests).
[[nodiscard]] ContendReport run_files(const ContendOptions& opts,
                                      const std::vector<std::string>& rels);

}  // namespace pasched::contend
