#include "contend/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>

#include "contend/rules.hpp"
#include "srclint/compiledb.hpp"

namespace pasched::contend {

namespace {

using srclint::SourceFile;

/// PSL501: one ERROR per lock-order cycle, anchored at the cycle's
/// lexicographically-first witness edge so the subject is stable.
void rule_psl501(const LockGraph& g,
                 const std::map<std::string, const SourceFile*>& by_path,
                 const ContendConfig& cfg,
                 std::vector<analysis::Diagnostic>& findings,
                 ContendStats& stats) {
  for (const LockCycle& cyc : g.cycles()) {
    ++stats.cycles;
    if (!cfg.rule_enabled("PSL501")) continue;
    const LockEdge* anchor = &cyc.edges.front();
    for (const LockEdge& e : cyc.edges) {
      if (e.file + ":" + std::to_string(e.line) <
          anchor->file + ":" + std::to_string(anchor->line))
        anchor = &e;
    }
    const auto it = by_path.find(anchor->file);
    if (it != by_path.end() &&
        it->second->suppressed("PSL501", anchor->line)) {
      ++stats.suppressions_honored;
      continue;
    }
    std::ostringstream cycle_txt;
    for (const std::string& n : cyc.nodes) cycle_txt << n << " -> ";
    cycle_txt << cyc.nodes.front();
    std::ostringstream witness;
    for (std::size_t i = 0; i < cyc.edges.size(); ++i) {
      const LockEdge& e = cyc.edges[i];
      witness << (i == 0 ? "" : ", ") << e.from << "->" << e.to << " at "
              << e.file << ":" << e.line;
    }
    analysis::Diagnostic d;
    d.rule = "PSL501";
    d.severity = analysis::Severity::Error;
    d.subject = anchor->file + ":" + std::to_string(anchor->line);
    d.message = "lock-order cycle: " + cycle_txt.str() + " (" +
                witness.str() + ") — two workers taking these locks in "
                "opposite order deadlock the window protocol";
    d.fix_hint =
        "impose one global acquisition order (document it where the "
        "mutexes are declared) and release before taking the earlier lock";
    findings.push_back(std::move(d));
  }
}

/// PSL502: ERROR for every lock held across a blocking seam.
void rule_psl502(const LockGraph& g,
                 const std::map<std::string, const SourceFile*>& by_path,
                 const ContendConfig& cfg,
                 std::vector<analysis::Diagnostic>& findings,
                 ContendStats& stats) {
  if (!cfg.rule_enabled("PSL502")) return;
  std::set<std::string> emitted;  // dedupe (lock, file, line)
  for (const BlockingViolation& v : g.blocking()) {
    const std::string key =
        v.lock + "|" + v.file + "|" + std::to_string(v.line);
    if (!emitted.insert(key).second) continue;
    const auto it = by_path.find(v.file);
    if (it != by_path.end() && it->second->suppressed("PSL502", v.line)) {
      ++stats.suppressions_honored;
      continue;
    }
    analysis::Diagnostic d;
    d.rule = "PSL502";
    d.severity = analysis::Severity::Error;
    d.subject = v.file + ":" + std::to_string(v.line);
    d.message = "lock `" + v.lock + "` is held across a blocking seam (" +
                v.seam +
                "): every other thread needing it inherits the full "
                "barrier/wait latency, the serialization the paper's "
                "gang-dispatch exists to avoid";
    d.fix_hint =
        "release the lock before parking: copy what the critical section "
        "needs, unlock, then wait (the ShardedEngine drains inboxes "
        "outside its plan lock for exactly this reason)";
    findings.push_back(std::move(d));
  }
}

}  // namespace

ContendReport run_files(const ContendOptions& opts,
                        const std::vector<std::string>& rels) {
  ContendReport rep;
  const std::filesystem::path root(opts.root);

  std::vector<SourceFile> files;
  std::vector<FileLocks> locks;
  for (const std::string& rel : rels) {
    ++rep.stats.files_scanned;
    if (!opts.cfg.in_scope(rel)) continue;
    ++rep.stats.files_in_scope;
    files.push_back(srclint::lex_file((root / rel).string(), rel));
    locks.push_back(extract_locks(files.back(), opts.cfg));
    const FileLocks& fl = locks.back();
    rep.stats.functions += fl.functions.size();
    rep.stats.mutex_members += fl.mutex_members.size();
    for (const FunctionLocks& fn : fl.functions)
      rep.stats.acquisitions += fn.acquisitions.size();
  }

  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;

  const LockGraph graph(locks);
  rep.graph = graph.edge_lines();
  rep.stats.graph_nodes = graph.node_count();
  rep.stats.graph_edges = graph.edges().size();

  FileRuleStats frs;
  for (std::size_t i = 0; i < files.size(); ++i)
    run_file_rules(files[i], locks[i], opts.cfg, rep.findings, rep.claims,
                   frs);
  rep.stats.suppressions_honored += frs.suppressions_honored;

  rule_psl501(graph, by_path, opts.cfg, rep.findings, rep.stats);
  rule_psl502(graph, by_path, opts.cfg, rep.findings, rep.stats);

  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const analysis::Diagnostic& a,
                      const analysis::Diagnostic& b) {
                     return a.subject != b.subject ? a.subject < b.subject
                                                   : a.rule < b.rule;
                   });
  std::stable_sort(rep.claims.begin(), rep.claims.end(),
                   [](const SerializationClaim& a,
                      const SerializationClaim& b) {
                     return a.site != b.site ? a.site < b.site
                                             : a.file < b.file;
                   });
  return rep;
}

ContendReport run_tree(const ContendOptions& opts) {
  const srclint::FileSet fset =
      srclint::discover_files(opts.root, opts.compile_db);
  ContendReport rep = run_files(opts, fset.rel_paths);
  rep.origin = fset.origin;
  return rep;
}

std::string ContendReport::str() const {
  std::ostringstream os;
  for (const analysis::Diagnostic& d : findings) os << d.str() << "\n";
  os << "pasched-contend: " << stats.files_in_scope << "/"
     << stats.files_scanned << " files in scope (" << origin << "), "
     << stats.functions << " functions, " << stats.acquisitions
     << " acquisitions, " << stats.mutex_members << " mutex members, graph "
     << stats.graph_nodes << " nodes / " << stats.graph_edges << " edges / "
     << stats.cycles << " cycles, " << claims.size() << " serialization "
     << "claim" << (claims.size() == 1 ? "" : "s") << ", "
     << stats.suppressions_honored << " suppressions honored, "
     << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
     << "\n";
  return os.str();
}

std::string ContendReport::json() const {
  std::ostringstream os;
  os << "{\n  " << analysis::json_report_header("pasched-contend") << "\n"
     << "  \"files_scanned\": " << stats.files_scanned << ",\n"
     << "  \"files_in_scope\": " << stats.files_in_scope << ",\n"
     << "  \"origin\": \"" << analysis::json_escape(origin) << "\",\n"
     << "  \"functions\": " << stats.functions << ",\n"
     << "  \"acquisitions\": " << stats.acquisitions << ",\n"
     << "  \"mutex_members\": " << stats.mutex_members << ",\n"
     << "  \"graph_nodes\": " << stats.graph_nodes << ",\n"
     << "  \"graph_edges\": " << stats.graph_edges << ",\n"
     << "  \"cycles\": " << stats.cycles << ",\n"
     << "  \"suppressions_honored\": " << stats.suppressions_honored
     << ",\n  \"graph\": [";
  for (std::size_t i = 0; i < graph.size(); ++i)
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << analysis::json_escape(graph[i]) << "\"";
  os << (graph.empty() ? "]" : "\n  ]") << ",\n  \"claims\": [";
  for (std::size_t i = 0; i < claims.size(); ++i) {
    const SerializationClaim& c = claims[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"site\": \""
       << analysis::json_escape(c.site) << "\", \"file\": \""
       << analysis::json_escape(c.file) << "\", \"line\": " << c.line
       << "}";
  }
  os << (claims.empty() ? "]" : "\n  ]") << ",\n  \"findings\": "
     << analysis::diagnostics_json(findings, 2) << "\n}\n";
  return os.str();
}

}  // namespace pasched::contend
