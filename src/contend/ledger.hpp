// The runtime half of pasched-contend: a contention ledger hanging off the
// util::SeamMutex/SeamBarrier observer hooks. Per site (by registered name)
// it records acquire counts, contended acquires, wait time, hold time, and
// the set of race::Domains observed acquiring — the measurements that (a)
// rank the partitioned core's serialization sites on fig5 parallel8 (the
// work-list for the ROADMAP item-1 PARSIR-style rework) and (b) police the
// static analyzer's PSL505 single-domain serialization claims: a claim
// acquired from two or more domains at runtime is refuted as PSL506,
// mirroring the PSL303 certify-then-verify pattern.
//
// Sampling is window-granular by construction: every measured seam sits on
// the window protocol (inbox drains, plan barrier), so the report
// normalizes waits per barrier crossing rather than per wall second.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "util/aligned.hpp"
#include "util/seam.hpp"

namespace pasched::contend {

/// A PSL505 serialization claim from the static analyzer: the mutex at
/// `site` ("Class.member", the seam registry naming convention) guards
/// state whose race::Owned tag suggests single-domain ownership.
struct SerializationClaim {
  std::string site;
  std::string file;  // where the static analyzer saw the declaration
  int line = 0;
};

/// One ledger row.
struct SiteSummary {
  std::string name;
  util::SeamKind kind = util::SeamKind::Mutex;
  std::uint64_t acquires = 0;   // barrier rows: arrive_and_wait crossings
  std::uint64_t contended = 0;
  std::uint64_t wait_ns = 0;
  std::uint64_t hold_ns = 0;
  std::uint64_t max_wait_ns = 0;
  int domains_observed = 0;  // distinct race::Domains seen acquiring
  double wait_share = 0;     // of total recorded wait across all sites
};

struct LedgerReport {
  std::vector<SiteSummary> sites;  // sorted by wait_ns, descending
  /// Per-worker arrive_and_wait crossings at the busiest barrier site
  /// (= windows × phases × workers for the engine's two-phase protocol).
  std::uint64_t barrier_crossings = 0;
  std::uint64_t total_wait_ns = 0;
  double barrier_wait_share = 0;   // barrier wait / total recorded wait

  [[nodiscard]] std::string str() const;
  /// The report as a JSON object (no schema header — the tool wraps it).
  [[nodiscard]] std::string json(int indent) const;
};

/// Lock-free per-site accumulator. Install with util::install_seam_observer
/// before run_until, read with report() after; reset() between runs.
class Ledger final : public util::SeamObserver {
 public:
  Ledger() = default;

  void on_acquire(int site, std::uint64_t wait_ns,
                  bool contended) noexcept override;
  void on_release(int site, std::uint64_t hold_ns) noexcept override;
  void on_barrier_wait(int site, std::uint64_t wait_ns) noexcept override;
  /// Horizon-spin (SeamKind::Wait) seams: priced into the per-site rows and
  /// the total wait, but *not* into barrier_wait_share — replacing barrier
  /// time with neighbor-only waits is exactly the improvement that share
  /// exists to measure, so the two must stay separable.
  void on_wait(int site, std::uint64_t wait_ns) noexcept override;

  void reset() noexcept;
  [[nodiscard]] LedgerReport report() const;

  /// The certify-then-verify join: every claim whose site the ledger saw
  /// acquired from two or more distinct domains is refuted with a PSL506
  /// ERROR. Unobserved sites produce nothing (no run touched them).
  [[nodiscard]] std::vector<analysis::Diagnostic> check_claims(
      const std::vector<SerializationClaim>& claims) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> acquires{0};
    std::atomic<std::uint64_t> contended{0};
    std::atomic<std::uint64_t> wait_ns{0};
    std::atomic<std::uint64_t> hold_ns{0};
    std::atomic<std::uint64_t> max_wait_ns{0};
    /// Bit (domain + 2), clamped to 63: bit 0 = kUnbound, 1 = kFreeContext.
    std::atomic<std::uint64_t> domain_mask{0};
  };

  [[nodiscard]] Slot& slot(int site) noexcept {
    return slots_[static_cast<std::size_t>(
                      site < 0 ? 0 : site % util::kMaxSeamSites)]
        .v;
  }
  [[nodiscard]] const Slot& slot(int site) const noexcept {
    return slots_[static_cast<std::size_t>(
                      site < 0 ? 0 : site % util::kMaxSeamSites)]
        .v;
  }

  /// One slot per cache line: the ledger must not itself false-share the
  /// counters it exists to measure (PSL503 practices what it preaches).
  std::array<util::CacheAligned<Slot>, util::kMaxSeamSites> slots_{};
};

}  // namespace pasched::contend
