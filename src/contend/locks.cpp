#include "contend/locks.hpp"

#include <algorithm>
#include <map>

namespace pasched::contend {

using srclint::SourceFile;
using srclint::Tok;
using srclint::Token;

namespace {

[[nodiscard]] bool contains(const std::vector<std::string>& v,
                            const std::string& x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Call-shaped identifiers that are never user functions worth a call-graph
/// edge (control flow, operators the lexer reads as idents, lock verbs the
/// extractor handles itself).
[[nodiscard]] bool ignored_callee(const std::string& x) noexcept {
  static const char* const kNot[] = {
      "if",       "for",       "while",      "switch",     "catch",
      "return",   "sizeof",    "alignof",    "decltype",   "new",
      "delete",   "throw",     "case",       "co_await",   "co_return",
      "co_yield", "static_assert",           "alignas",    "constexpr",
      "requires", "noexcept",  "assert",     "lock",       "unlock",
      "try_lock", "defer_lock", "adopt_lock", "try_to_lock"};
  return std::any_of(std::begin(kNot), std::end(kNot),
                     [&](const char* k) { return x == k; });
}

/// The held-set tracker for one function body: a stack of block frames of
/// RAII-guarded mutexes plus a flat set of manually locked ones.
class HeldTracker {
 public:
  void push_frame() { frames_.emplace_back(); }
  void pop_frame() {
    if (frames_.size() > 1) frames_.pop_back();
  }
  void add_scoped(const std::string& m) { frames_.back().push_back(m); }
  void add_manual(const std::string& m) {
    if (!contains(manual_, m)) manual_.push_back(m);
  }
  void release(const std::string& m) {
    auto drop = [&](std::vector<std::string>& v) {
      v.erase(std::remove(v.begin(), v.end(), m), v.end());
    };
    drop(manual_);
    for (auto& fr : frames_) drop(fr);
  }
  [[nodiscard]] std::vector<std::string> snapshot() const {
    std::vector<std::string> out;
    for (const auto& fr : frames_)
      for (const std::string& m : fr)
        if (!contains(out, m)) out.push_back(m);
    for (const std::string& m : manual_)
      if (!contains(out, m)) out.push_back(m);
    return out;
  }

 private:
  std::vector<std::vector<std::string>> frames_{{}};
  std::vector<std::string> manual_;
};

/// Last identifier of the token range [b, e): `in.mu` -> "mu",
/// `engines_[i]->mu` -> "mu", `*mup` -> "mup".
[[nodiscard]] std::string last_identifier(const std::vector<Token>& t,
                                          std::size_t b, std::size_t e) {
  std::string name;
  for (std::size_t i = b; i < e; ++i)
    if (!t[i].pp && t[i].kind == Tok::Identifier) name = t[i].text;
  return name;
}

/// Splits the argument range [b, e) at top-level commas.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& t, std::size_t b, std::size_t e) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t start = b;
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind != Tok::Punct) continue;
    const std::string& x = t[i].text;
    if (x == "(" || x == "[" || x == "{") ++depth;
    else if (x == ")" || x == "]" || x == "}") --depth;
    else if (x == "," && depth == 0) {
      out.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < e) out.emplace_back(start, e);
  return out;
}

/// Consumes `<...>` template arguments starting at t[j]=="<"; returns the
/// index just past the closing '>'. Conservative angle counting.
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& t,
                                             std::size_t j) {
  int angle = 0;
  for (; j < t.size(); ++j) {
    if (t[j].kind != Tok::Punct) continue;
    if (t[j].text == "<") ++angle;
    else if (t[j].text == ">") {
      if (--angle == 0) return j + 1;
    } else if (t[j].text == ">>") {
      angle -= 2;
      if (angle <= 0) return j + 1;
    } else if (t[j].text == ";" || t[j].text == "{") {
      break;  // was a comparison, not template args
    }
  }
  return j;
}

}  // namespace

bool ContendConfig::rule_enabled(const std::string& id) const {
  return only.empty() || contains(only, id);
}

bool ContendConfig::in_scope(const std::string& rel_path) const {
  if (scope.empty()) return true;
  return std::any_of(scope.begin(), scope.end(), [&](const std::string& p) {
    return rel_path.rfind(p, 0) == 0;
  });
}

FileLocks extract_locks(const SourceFile& f, const ContendConfig& cfg) {
  FileLocks out;
  out.path = f.path;
  const auto& t = f.tokens;

  // Mutex member declarations: inside every class body, a mutex type name
  // followed by an identifier then ';' / '{' / '='.
  for (const srclint::ClassBody& cb : srclint::find_all_class_bodies(f)) {
    for (std::size_t i = cb.body_begin; i + 1 < cb.body_end; ++i) {
      if (t[i].pp || t[i].kind != Tok::Identifier) continue;
      if (!contains(cfg.mutex_types, t[i].text)) continue;
      std::size_t j = i + 1;
      if (j < cb.body_end && t[j].text == "<") j = skip_template_args(t, j);
      if (j >= cb.body_end || t[j].kind != Tok::Identifier) continue;
      const std::size_t k = j + 1;
      if (k >= cb.body_end || t[k].kind != Tok::Punct ||
          (t[k].text != ";" && t[k].text != "{" && t[k].text != "="))
        continue;
      out.mutex_members.push_back(MutexMember{
          cb.name, t[j].text, t[j].line, t[i].text == "SeamMutex"});
    }
  }

  for (const srclint::FunctionDef& fd : srclint::find_functions(f)) {
    FunctionLocks fl;
    fl.name = fd.name;
    fl.line = fd.line;
    HeldTracker held;
    // unique_lock/scoped guard variable -> underlying mutex, so that
    // `lk.lock()` / `lk.unlock()` resolve to the mutex, not to "lk".
    std::map<std::string, std::string> guard_var;

    for (std::size_t i = fd.body_begin; i < fd.body_end; ++i) {
      const Token& tok = t[i];
      if (tok.pp) continue;
      if (tok.kind == Tok::Punct) {
        if (tok.text == "{") held.push_frame();
        else if (tok.text == "}") held.pop_frame();
        continue;
      }
      if (tok.kind != Tok::Identifier) continue;

      // RAII guard declaration: guard_type [<...>] [var] ( args ) / { args }.
      if (contains(cfg.guard_types, tok.text)) {
        std::size_t j = i + 1;
        if (j < fd.body_end && t[j].text == "<") j = skip_template_args(t, j);
        std::string var;
        if (j < fd.body_end && t[j].kind == Tok::Identifier) {
          var = t[j].text;
          ++j;
        }
        if (j >= fd.body_end ||
            (t[j].text != "(" && t[j].text != "{"))
          continue;
        const std::size_t close = srclint::match_forward(t, j);
        if (close >= fd.body_end + 1) continue;
        bool deferred = false;
        std::vector<std::string> acquired;
        for (const auto& [ab, ae] : split_args(t, j + 1, close)) {
          bool defer_this = false;
          for (std::size_t k = ab; k < ae; ++k) {
            if (t[k].kind != Tok::Identifier) continue;
            if (t[k].text == "defer_lock") defer_this = true;
            if (t[k].text == "defer_lock" || t[k].text == "adopt_lock" ||
                t[k].text == "try_to_lock") {
              // tag argument, not a mutex
              goto next_arg;
            }
          }
          {
            const std::string m = last_identifier(t, ab, ae);
            if (!m.empty()) {
              if (defer_this) deferred = true;
              acquired.push_back(m);
            }
          }
        next_arg:;
          if (defer_this) deferred = true;
        }
        for (const std::string& m : acquired) {
          if (!var.empty()) guard_var[var] = m;
          if (deferred) continue;  // armed later via var.lock()
          fl.acquisitions.push_back(
              Acquisition{m, tok.line, held.snapshot()});
          if (!var.empty()) held.add_scoped(m);
          // An unnamed guard is a temporary: acquires and releases within
          // the statement, so it never joins the held set.
        }
        i = close;
        continue;
      }

      // Member-ish verbs: X.lock() / X->lock() / X.unlock() / blocking.
      const bool member_ctx =
          i > fd.body_begin &&
          (t[i - 1].text == "." || t[i - 1].text == "->");
      const bool call_shape =
          i + 1 < fd.body_end && t[i + 1].text == "(";
      if (member_ctx && call_shape &&
          (tok.text == "lock" || tok.text == "try_lock")) {
        if (i >= 2 && t[i - 2].kind == Tok::Identifier) {
          std::string m = t[i - 2].text;
          const auto it = guard_var.find(m);
          if (it != guard_var.end()) m = it->second;
          fl.acquisitions.push_back(
              Acquisition{m, tok.line, held.snapshot()});
          held.add_manual(m);
        }
        i = srclint::match_forward(t, i + 1);
        continue;
      }
      if (member_ctx && call_shape && tok.text == "unlock") {
        if (i >= 2 && t[i - 2].kind == Tok::Identifier) {
          std::string m = t[i - 2].text;
          const auto it = guard_var.find(m);
          if (it != guard_var.end()) m = it->second;
          held.release(m);
        }
        i = srclint::match_forward(t, i + 1);
        continue;
      }
      if (member_ctx && call_shape &&
          contains(cfg.blocking_calls, tok.text)) {
        fl.blocking.push_back(
            BlockingUse{tok.text, tok.line, held.snapshot()});
        i = srclint::match_forward(t, i + 1);
        continue;
      }

      // Plain call site for the cross-TU closure.
      if (call_shape && !ignored_callee(tok.text) &&
          !contains(cfg.guard_types, tok.text) &&
          !contains(cfg.blocking_calls, tok.text)) {
        fl.calls.push_back(CallSite{tok.text, tok.line, held.snapshot()});
        // Do NOT skip the argument range: nested calls are call sites too.
      }
    }
    out.functions.push_back(std::move(fl));
  }
  return out;
}

}  // namespace pasched::contend
