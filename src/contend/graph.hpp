// Cross-TU lock-order graph for pasched-contend. Canonicalizes the names
// extract_locks recorded ("mu" written inside ShardedEngine::post becomes
// the node "Inbox.mu" via the member-declaration map; locals fall back to
// "file:name"), merges same-named functions across TUs, closes acquired
// locksets and blocking-ness over the call graph, and builds the directed
// held-before graph whose cycles are PSL501 and whose blocking reach under
// a held lock is PSL502.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "contend/locks.hpp"

namespace pasched::contend {

/// One directed edge "held -> acquired" with its first witness site.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;  // witness
  int line = 0;
};

/// A lock-order cycle: the node sequence (closed: front() == logical
/// successor of back()) plus the witness edges that form it.
struct LockCycle {
  std::vector<std::string> nodes;
  std::vector<LockEdge> edges;
};

/// A PSL502 record: a lock held while reaching a blocking seam.
struct BlockingViolation {
  std::string lock;     // canonical held lock
  std::string seam;     // "arrive_and_wait", "wait", or "call to f (...)"
  std::string file;
  int line = 0;
  bool via_call = false;  // reached transitively through a call
};

/// Merged per-function summary after the cross-TU closure.
struct FunctionSummary {
  std::set<std::string> acquires;        // direct, canonical
  std::set<std::string> acquires_closed; // incl. everything callees acquire
  bool blocks_direct = false;            // contains a blocking seam itself
  bool blocks_closed = false;            // or reaches one through calls
  bool seam_locks_closed = false;        // acquires an instrumented seam
                                         // mutex (inbox-drain style) —
                                         // parking-adjacent for PSL502
};

class LockGraph {
 public:
  /// Builds from every file's extraction. `files` must be the full scan so
  /// the member map and call graph see all TUs at once.
  explicit LockGraph(const std::vector<FileLocks>& files);

  /// Canonical name for a mutex as written in `path`: "Class.member" when
  /// a class declares that member mutex, else "path:name".
  [[nodiscard]] std::string canonical(const std::string& name,
                                      const std::string& path) const;

  [[nodiscard]] const std::vector<LockEdge>& edges() const noexcept {
    return edges_;
  }
  /// Deterministic text form ("A -> B @ file:line"), sorted — the golden
  /// lock-order-graph format the tests snapshot.
  [[nodiscard]] std::vector<std::string> edge_lines() const;

  /// Elementary cycles (deduped by node set, capped at 8).
  [[nodiscard]] std::vector<LockCycle> cycles() const;

  /// PSL502 raw material: every lock held across a blocking seam, directly
  /// or through the call-graph closure.
  [[nodiscard]] const std::vector<BlockingViolation>& blocking() const
      noexcept {
    return blocking_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const std::map<std::string, FunctionSummary>& functions()
      const noexcept {
    return functions_;
  }

 private:
  void add_edge(const std::string& from, const std::string& to,
                const std::string& file, int line);

  std::map<std::string, std::string> member_to_canonical_;  // "mu"->"Inbox.mu"
  std::map<std::string, bool> canonical_is_seam_;
  std::set<std::string> nodes_;
  std::vector<LockEdge> edges_;
  std::map<std::string, std::set<std::size_t>> adj_;  // node -> edge indices
  std::vector<BlockingViolation> blocking_;
  std::map<std::string, FunctionSummary> functions_;
};

}  // namespace pasched::contend
