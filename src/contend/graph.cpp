#include "contend/graph.hpp"

#include <algorithm>
#include <functional>

namespace pasched::contend {

namespace {

[[nodiscard]] std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

}  // namespace

LockGraph::LockGraph(const std::vector<FileLocks>& files) {
  // 1. Member-declaration map: "mu" -> "Inbox.mu". On a (rare) collision —
  // two classes declaring the same member name — the lexicographically
  // smallest canonical name wins, deterministically.
  for (const FileLocks& fl : files) {
    for (const MutexMember& m : fl.mutex_members) {
      const std::string canon = m.cls + "." + m.member;
      auto it = member_to_canonical_.find(m.member);
      if (it == member_to_canonical_.end() || canon < it->second)
        member_to_canonical_[m.member] = canon;
      if (m.seam) canonical_is_seam_[canon] = true;
    }
  }

  // 2. Merge function records across TUs; keep per-function callee lists.
  std::map<std::string, std::set<std::string>> callees;
  for (const FileLocks& fl : files) {
    for (const FunctionLocks& fn : fl.functions) {
      FunctionSummary& s = functions_[fn.name];
      for (const Acquisition& a : fn.acquisitions) {
        const std::string canon = canonical(a.mutex, fl.path);
        s.acquires.insert(canon);
        if (canonical_is_seam_.count(canon) != 0)
          s.seam_locks_closed = true;
      }
      if (!fn.blocking.empty()) s.blocks_direct = true;
      for (const CallSite& c : fn.calls) callees[fn.name].insert(c.callee);
    }
  }
  for (auto& [name, s] : functions_) {
    s.acquires_closed = s.acquires;
    s.blocks_closed = s.blocks_direct;
  }

  // Unqualified-callee resolution index: "post" matches both "post" and
  // "ShardedEngine::post".
  std::map<std::string, std::vector<std::string>> by_last;
  for (const auto& [name, s] : functions_)
    by_last[last_component(name)].push_back(name);

  // 3. Close acquired locksets / blocking-ness over the call graph.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, s] : functions_) {
      const auto cit = callees.find(name);
      if (cit == callees.end()) continue;
      for (const std::string& callee : cit->second) {
        const auto bit = by_last.find(callee);
        if (bit == by_last.end()) continue;
        for (const std::string& target : bit->second) {
          if (target == name) continue;
          const FunctionSummary& ts = functions_.at(target);
          for (const std::string& m : ts.acquires_closed)
            if (s.acquires_closed.insert(m).second) changed = true;
          if (ts.blocks_closed && !s.blocks_closed) {
            s.blocks_closed = true;
            changed = true;
          }
          if (ts.seam_locks_closed && !s.seam_locks_closed) {
            s.seam_locks_closed = true;
            changed = true;
          }
        }
      }
    }
  }

  // 4. Edges and blocking violations.
  for (const FileLocks& fl : files) {
    for (const FunctionLocks& fn : fl.functions) {
      for (const Acquisition& a : fn.acquisitions) {
        const std::string to = canonical(a.mutex, fl.path);
        for (const std::string& h : a.held)
          add_edge(canonical(h, fl.path), to, fl.path, a.line);
        if (canonical_is_seam_.count(to) != 0) {
          for (const std::string& h : a.held)
            blocking_.push_back(BlockingViolation{
                canonical(h, fl.path), "acquire of seam `" + to + "`",
                fl.path, a.line, false});
        }
      }
      for (const BlockingUse& b : fn.blocking) {
        for (const std::string& h : b.held)
          blocking_.push_back(BlockingViolation{canonical(h, fl.path),
                                                b.what, fl.path, b.line,
                                                false});
      }
      for (const CallSite& c : fn.calls) {
        if (c.held.empty()) continue;
        const auto bit = by_last.find(c.callee);
        if (bit == by_last.end()) continue;
        bool blocks = false;
        bool seam = false;
        std::set<std::string> callee_acquires;
        for (const std::string& target : bit->second) {
          if (target == fn.name) continue;
          const FunctionSummary& ts = functions_.at(target);
          blocks = blocks || ts.blocks_closed;
          seam = seam || ts.seam_locks_closed;
          callee_acquires.insert(ts.acquires_closed.begin(),
                                 ts.acquires_closed.end());
        }
        for (const std::string& h : c.held) {
          const std::string hc = canonical(h, fl.path);
          for (const std::string& m : callee_acquires)
            add_edge(hc, m, fl.path, c.line);
          if (blocks || seam)
            blocking_.push_back(BlockingViolation{
                hc,
                "call to `" + c.callee + "`" +
                    (blocks ? " (reaches a blocking seam)"
                            : " (drains an instrumented seam mutex)"),
                fl.path, c.line, true});
        }
      }
    }
  }
}

std::string LockGraph::canonical(const std::string& name,
                                 const std::string& path) const {
  const auto it = member_to_canonical_.find(name);
  if (it != member_to_canonical_.end()) return it->second;
  return path + ":" + name;
}

void LockGraph::add_edge(const std::string& from, const std::string& to,
                         const std::string& file, int line) {
  if (from.empty() || to.empty()) return;
  // Self-edges are artifacts of the flat (control-flow-blind) lockset
  // model — a try_lock fast path followed by the blocking slow path reads
  // as re-acquisition. Genuine double-lock deadlocks need path-sensitive
  // analysis this frontend does not claim to have.
  if (from == to) return;
  for (const std::size_t ei : adj_[from])
    if (edges_[ei].to == to) return;  // first witness wins
  nodes_.insert(from);
  nodes_.insert(to);
  adj_[from].insert(edges_.size());
  edges_.push_back(LockEdge{from, to, file, line});
}

std::vector<std::string> LockGraph::edge_lines() const {
  std::vector<std::string> out;
  out.reserve(edges_.size());
  for (const LockEdge& e : edges_)
    out.push_back(e.from + " -> " + e.to + " @ " + e.file + ":" +
                  std::to_string(e.line));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LockCycle> LockGraph::cycles() const {
  std::vector<LockCycle> out;
  std::set<std::string> seen_keys;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::pair<std::string, std::size_t>> path;  // node, in-edge

  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    const auto ait = adj_.find(u);
    if (ait != adj_.end()) {
      // Deterministic order: adj_ sets hold edge indices in insertion
      // order of a std::set<size_t> — ascending, stable across runs.
      for (const std::size_t ei : ait->second) {
        if (out.size() >= 8) break;
        const LockEdge& e = edges_[ei];
        const int c = color[e.to];
        if (c == 1) {
          // Back edge: the cycle is path[v..] plus this edge.
          LockCycle cyc;
          bool collecting = false;
          for (const auto& [node, in_edge] : path) {
            if (node == e.to) collecting = true;
            if (collecting) {
              cyc.nodes.push_back(node);
              if (node != e.to) cyc.edges.push_back(edges_[in_edge]);
            }
          }
          if (cyc.nodes.empty()) cyc.nodes.push_back(e.to);  // self-loop
          cyc.edges.push_back(e);
          std::vector<std::string> key_nodes = cyc.nodes;
          std::sort(key_nodes.begin(), key_nodes.end());
          std::string key;
          for (const std::string& n : key_nodes) key += n + "|";
          if (seen_keys.insert(key).second) out.push_back(std::move(cyc));
        } else if (c == 0) {
          path.emplace_back(e.to, ei);
          dfs(e.to);
          path.pop_back();
        }
      }
    }
    color[u] = 2;
  };

  for (const std::string& n : nodes_) {
    if (color[n] != 0) continue;
    path.emplace_back(n, std::size_t{0});
    dfs(n);
    path.pop_back();
    if (out.size() >= 8) break;
  }
  return out;
}

}  // namespace pasched::contend
