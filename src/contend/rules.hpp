// Per-file PSL50x rules: false-sharing layout (PSL503), contended atomic
// in a hot loop (PSL504), and coarse-mutex-over-owned-state serialization
// claims (PSL505, which also feeds the runtime ledger's PSL506 check).
// The graph-level rules (PSL501 cycles, PSL502 lock across blocking seam)
// live in runner.cpp where the whole-scan LockGraph exists.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "contend/ledger.hpp"
#include "contend/locks.hpp"
#include "srclint/source.hpp"

namespace pasched::contend {

struct FileRuleStats {
  int suppressions_honored = 0;
};

/// Runs PSL503/PSL504/PSL505 over one file. Suppressions are honored for
/// findings; PSL505 claims are recorded into `claims` even when the WARN is
/// suppressed — the certify-then-verify contract keeps runtime verification
/// alive for silenced claims.
void run_file_rules(const srclint::SourceFile& f, const FileLocks& locks,
                    const ContendConfig& cfg,
                    std::vector<analysis::Diagnostic>& findings,
                    std::vector<SerializationClaim>& claims,
                    FileRuleStats& stats);

}  // namespace pasched::contend
