// Work/span analysis of a run's happens-before graph — the trace half of
// pasched-scale. Work is the total CPU-occupied time across all threads;
// span is the longest happens-before-ordered chain of that occupied time
// (program order within a thread, matched MsgSend -> MsgRecv edges across
// threads). work / span is the classic parallelism bound: no executor —
// however many workers, however clever the windows — can beat it, which
// makes it the honest "predicted max speedup" to print next to measured
// speedup in BENCH_shard.json.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/hb.hpp"
#include "sim/time.hpp"

namespace pasched::scale {

struct WorkSpan {
  /// Total running time accumulated by all threads (sum of segments between
  /// consecutive events of a thread while it held a CPU).
  sim::Duration work = sim::Duration::zero();
  /// Longest happens-before chain of running time.
  sim::Duration span = sim::Duration::zero();
  /// Events that carried a thread identity (the DP's node count).
  std::size_t events = 0;
  int threads = 0;
  /// Event indices (into the HbGraph) of the critical path, source first.
  std::vector<std::size_t> critical_path;

  /// work / span — the speedup no executor can exceed on this history.
  [[nodiscard]] double predicted_max_speedup() const {
    if (span <= sim::Duration::zero()) return 1.0;
    return static_cast<double>(work.count()) /
           static_cast<double>(span.count());
  }
};

/// Runs the critical-path DP over a time-ordered happens-before graph.
/// Accepts a clock-free graph (HbGraph::build with with_clocks = false):
/// only thread indices and cross_pred edges are used. Running state is
/// tracked from Dispatch/Preempt/Block/Exit, so only CPU-occupied segments
/// contribute weight — a task spinning in MsgRecvWait accrues span (it
/// holds the CPU), a blocked task does not.
[[nodiscard]] WorkSpan work_span(const analysis::HbGraph& g);

}  // namespace pasched::scale
