#include "scale/lookahead.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace pasched::scale {

using sim::Duration;

namespace {

std::vector<std::int64_t> off_diagonal_ns(const LookaheadMatrix& m) {
  std::vector<std::int64_t> v;
  v.reserve(static_cast<std::size_t>(m.shards) *
            static_cast<std::size_t>(m.shards));
  for (int a = 0; a < m.shards; ++a)
    for (int b = 0; b < m.shards; ++b)
      if (a != b) v.push_back(m.at(a, b).count());
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

Duration LookaheadMatrix::min_pair() const {
  const auto v = off_diagonal_ns(*this);
  return v.empty() ? Duration::zero() : Duration::ns(v.front());
}

Duration LookaheadMatrix::median_pair() const {
  const auto v = off_diagonal_ns(*this);
  return v.empty() ? Duration::zero() : Duration::ns(v[v.size() / 2]);
}

Duration LookaheadMatrix::max_pair() const {
  const auto v = off_diagonal_ns(*this);
  return v.empty() ? Duration::zero() : Duration::ns(v.back());
}

std::string LookaheadMatrix::certificate_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"certificate\": \"pasched-scale lookahead matrix v1\",\n"
     << "  \"nodes\": " << nodes << ",\n"
     << "  \"shards\": " << shards << ",\n"
     << "  \"hub_shard\": " << hub_shard << ",\n"
     << "  \"global_lookahead_ns\": " << global.count() << ",\n"
     << "  \"min_pair_ns\": " << min_pair().count() << ",\n"
     << "  \"median_pair_ns\": " << median_pair().count() << ",\n"
     << "  \"max_pair_ns\": " << max_pair().count() << ",\n"
     << "  \"bounds_ns\": [\n";
  for (int a = 0; a < shards; ++a) {
    os << "    [";
    for (int b = 0; b < shards; ++b)
      os << at(a, b).count() << (b + 1 < shards ? ", " : "");
    os << "]" << (a + 1 < shards ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

LookaheadMatrix build_lookahead_matrix(const net::FabricConfig& cfg,
                                       int nodes) {
  PASCHED_EXPECTS(nodes >= 1);
  LookaheadMatrix m;
  m.nodes = nodes;
  // Mirror ShardedEngine's partitioning: single-node clusters keep the hub
  // on the lone shard; multi-node clusters add a hub shard after the nodes.
  m.shards = nodes > 1 ? nodes + 1 : 1;
  m.hub_shard = nodes > 1 ? nodes : 0;
  m.global = net::guaranteed_lookahead(cfg);
  m.bounds.assign(static_cast<std::size_t>(m.shards) *
                      static_cast<std::size_t>(m.shards),
                  sim::Duration::zero());
  for (int a = 0; a < m.shards; ++a) {
    for (int b = 0; b < m.shards; ++b) {
      if (a == b) continue;
      const bool hub_pair = a == m.hub_shard || b == m.hub_shard;
      // Hub traffic pays at least one un-jittered inter-node wire in each
      // direction (mpi::Job's hardware-collective flow), so the global
      // jitter-adjusted floor is a sound — if slightly conservative —
      // claim. Node-node pairs get the topology-aware per-link bound.
      m.set(a, b, hub_pair ? m.global
                           : net::guaranteed_lookahead_between(cfg, a, b));
    }
  }
  return m;
}

}  // namespace pasched::scale
