#include "scale/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace pasched::scale {

using analysis::Diagnostic;
using analysis::Severity;

namespace {

std::string fmt2(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v;
  return os.str();
}

}  // namespace

double ScaleReport::predicted_max_speedup() const {
  const double ideal = workspan.predicted_max_speedup();
  if (predicted_speedup_window_model <= 0.0) return ideal;
  return std::min(ideal, predicted_speedup_window_model);
}

std::vector<Diagnostic> ScaleReport::diagnostics() const {
  std::vector<Diagnostic> out = soundness;  // PSL303 first: certificate truth

  if (matrix.has_pairs()) {
    const auto median = matrix.median_pair();
    if (static_cast<double>(matrix.global.count()) * options.collapse_ratio <=
        static_cast<double>(median.count())) {
      Diagnostic d;
      d.rule = "PSL301";
      d.severity = Severity::Warning;
      d.subject = scenario;
      d.message = "global lookahead " + matrix.global.str() +
                  " is collapsed far below the pairwise median " +
                  median.str() + " (" +
                  std::to_string(median / matrix.global) +
                  "x); every shard pays the fabric's single worst link";
      d.fix_hint =
          "adopt the per-pair certificate (a per-pair window planner keeps "
          "distant shards on their wider bounds), or raise the offending "
          "link's latency floor";
      out.push_back(std::move(d));
    }
  }

  if (windows.n_windows() > 0) {
    const double floor = static_cast<double>(
        std::max(32, windows.shards));
    const double med = windows.median_events_per_window();
    if (med < floor) {
      Diagnostic d;
      d.rule = "PSL302";
      d.severity = Severity::Warning;
      d.subject = scenario;
      d.message = "median window carries " + fmt2(med) + " events across " +
                  std::to_string(windows.shards) +
                  " shards (floor " + fmt2(floor) + "); " +
                  std::to_string(windows.n_windows()) +
                  " barrier crossings at " +
                  fmt2(options.model.barrier_cost_ns) + " ns each (" +
                  barrier_cost_source +
                  ") dominate the useful work";
      d.fix_hint =
          "widen the windows: raise inter_node_latency, cut jitter_frac, "
          "raise the planner's window batch, or batch more work per "
          "lookahead interval";
      out.push_back(std::move(d));
    }

    const double imb = windows.imbalance();
    if (imb > options.imbalance_threshold) {
      Diagnostic d;
      d.rule = "PSL304";
      d.severity = Severity::Warning;
      d.subject = scenario;
      d.message = "per-shard load imbalance " + fmt2(imb) +
                  "x exceeds " + fmt2(options.imbalance_threshold) +
                  "x; the slowest shard paces every window";
      d.fix_hint =
          "rebalance tasks across nodes, or split the hot shard's event "
          "sources";
      out.push_back(std::move(d));
    }

    const double hub = windows.hub_critical_share();
    if (hub > options.hub_share_threshold) {
      Diagnostic d;
      d.rule = "PSL305";
      d.severity = Severity::Warning;
      d.subject = scenario;
      d.message = "switch hub carries " + fmt2(hub * 100.0) +
                  "% of the per-window critical work (threshold " +
                  fmt2(options.hub_share_threshold * 100.0) +
                  "%); collective traffic serializes on one shard";
      d.fix_hint =
          "shard the hub (per-collective queues), or move broadcast fan-out "
          "onto the destination node shards";
      out.push_back(std::move(d));
    }
  }

  const double ceiling = predicted_max_speedup();
  if (ceiling < options.target_speedup) {
    Diagnostic d;
    d.rule = "PSL306";
    d.severity = Severity::Warning;
    d.subject = scenario;
    d.message = "predicted speedup ceiling " + fmt2(ceiling) + "x at " +
                std::to_string(options.target_workers) +
                " workers is below the " + fmt2(options.target_speedup) +
                "x target (work/span " +
                fmt2(workspan.predicted_max_speedup()) +
                "x, window model " + fmt2(predicted_speedup_window_model) +
                "x)";
    d.fix_hint =
        "fix whichever bound is tighter: window model -> PSL301/302/304/305 "
        "findings above; work/span -> the workload itself lacks "
        "parallelism at this scale";
    out.push_back(std::move(d));
  }

  return out;
}

std::string ScaleReport::str() const {
  std::ostringstream os;
  os << "pasched-scale report: " << scenario << "\n";
  os << "  run: " << (completed ? "completed" : "DID NOT COMPLETE")
     << ", elapsed " << elapsed.str() << ", events " << events
     << " (at completion " << events_at_completion << ")\n";

  os << "  lookahead: global " << matrix.global.str();
  if (matrix.has_pairs()) {
    os << ", pairs min " << matrix.min_pair().str() << " / median "
       << matrix.median_pair().str() << " / max " << matrix.max_pair().str();
  } else {
    os << ", single shard (no pairs)";
  }
  os << "\n";
  os << "  soundness: " << posts_checked << " cross-shard posts checked, "
     << soundness_violations << " violations";
  if (posts_checked > 0 && min_observed_slack != sim::Duration::max())
    os << ", min slack " << min_observed_slack.str();
  os << "\n";

  os << "  work/span: work " << workspan.work.str() << ", span "
     << workspan.span.str() << " -> ideal speedup "
     << fmt2(workspan.predicted_max_speedup()) << "x over "
     << workspan.events << " events / " << workspan.threads << " threads\n";

  os << "  windows: " << windows.n_windows() << " executed, median "
     << fmt2(windows.median_events_per_window())
     << " events/window, imbalance " << fmt2(windows.imbalance())
     << "x, hub critical share "
     << fmt2(windows.hub_critical_share() * 100.0) << "%\n";

  os << "  planner: " << planner_mode << " (batch " << window_batch << "), "
     << rounds << " sync rounds / " << chained_windows
     << " chained windows (" << coalesced_windows << " coalesced), ring "
     << ring_posts << " posts / " << ring_overflows
     << " overflows, barrier cost " << fmt2(barrier_cost_ns_used) << " ns ("
     << barrier_cost_source << ")\n";

  os << "  prediction: window model " << fmt2(predicted_speedup_window_model)
     << "x at " << options.target_workers << " workers ("
     << fmt2(predicted_speedup_no_barrier)
     << "x with free barriers), ceiling " << fmt2(predicted_max_speedup())
     << "x vs target " << fmt2(options.target_speedup) << "x\n";

  const auto ds = diagnostics();
  if (ds.empty()) {
    os << "  findings: none\n";
  } else {
    os << "  findings (" << ds.size() << "):\n";
    for (const Diagnostic& d : ds) os << "    " << d.str() << "\n";
  }
  return os.str();
}

std::string ScaleReport::json() const {
  std::ostringstream os;
  os << "{\n  " << analysis::json_report_header("pasched-scale") << "\n"
     << "  \"scenario\": \"" << scenario << "\",\n"
     << "  \"completed\": " << (completed ? "true" : "false") << ",\n"
     << "  \"elapsed_ns\": " << elapsed.count() << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"events_at_completion\": " << events_at_completion << ",\n"
     << "  \"posts_checked\": " << posts_checked << ",\n"
     << "  \"soundness_violations\": " << soundness_violations << ",\n";
  if (posts_checked > 0 && min_observed_slack != sim::Duration::max())
    os << "  \"min_observed_slack_ns\": " << min_observed_slack.count()
       << ",\n";
  os << "  \"work_ns\": " << workspan.work.count() << ",\n"
     << "  \"span_ns\": " << workspan.span.count() << ",\n"
     << "  \"ideal_speedup\": " << fmt2(workspan.predicted_max_speedup())
     << ",\n"
     << "  \"n_windows\": " << windows.n_windows() << ",\n"
     << "  \"median_events_per_window\": "
     << fmt2(windows.median_events_per_window()) << ",\n"
     << "  \"imbalance\": " << fmt2(windows.imbalance()) << ",\n"
     << "  \"hub_critical_share\": " << fmt2(windows.hub_critical_share())
     << ",\n"
     << "  \"planner\": \"" << planner_mode << "\",\n"
     << "  \"window_batch\": " << window_batch << ",\n"
     << "  \"rounds\": " << rounds << ",\n"
     << "  \"chained_windows\": " << chained_windows << ",\n"
     << "  \"coalesced_windows\": " << coalesced_windows << ",\n"
     << "  \"ring_posts\": " << ring_posts << ",\n"
     << "  \"ring_overflows\": " << ring_overflows << ",\n"
     << "  \"barrier_cost_ns_used\": " << fmt2(barrier_cost_ns_used) << ",\n"
     << "  \"barrier_cost_source\": \"" << barrier_cost_source << "\",\n"
     << "  \"target_workers\": " << options.target_workers << ",\n"
     << "  \"target_speedup\": " << fmt2(options.target_speedup) << ",\n"
     << "  \"predicted_speedup_window_model\": "
     << fmt2(predicted_speedup_window_model) << ",\n"
     << "  \"predicted_speedup_no_barrier\": "
     << fmt2(predicted_speedup_no_barrier) << ",\n"
     << "  \"predicted_max_speedup\": " << fmt2(predicted_max_speedup())
     << ",\n";

  const auto ds = diagnostics();
  os << "  \"findings\": [\n";
  for (std::size_t i = 0; i < ds.size(); ++i) {
    os << "    {\"rule\": \"" << ds[i].rule << "\", \"severity\": \""
       << analysis::to_string(ds[i].severity) << "\", \"subject\": \""
       << ds[i].subject << "\"}" << (i + 1 < ds.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  // Embed the matrix certificate, indented two spaces to nest cleanly.
  os << "  \"certificate\": ";
  const std::string cert = matrix.certificate_json();
  for (std::size_t i = 0; i < cert.size(); ++i) {
    os << cert[i];
    if (cert[i] == '\n' && i + 1 < cert.size()) os << "  ";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pasched::scale
