#include "scale/runner.hpp"

#include <utility>
#include <vector>

#include "analysis/hb.hpp"
#include "scale/monitor.hpp"
#include "scale/workspan.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace pasched::scale {

ScaleReport analyze_scenario(const core::SimulationConfig& cfg,
                             const mpi::WorkloadFactory& factory,
                             std::string scenario_name,
                             const ScaleOptions& opts,
                             const LookaheadMatrix* planted) {
  PASCHED_EXPECTS_MSG(cfg.parallel >= 1,
                      "pasched-scale needs the partitioned executor "
                      "(cfg.parallel >= 1)");

  ScaleReport rep;
  rep.scenario = std::move(scenario_name);
  rep.options = opts;
  rep.matrix = planted != nullptr
                   ? *planted
                   : build_lookahead_matrix(cfg.cluster.fabric,
                                            cfg.cluster.nodes);

  core::Simulation sim(cfg, factory);

  // Same trace plumbing as core::run_canonical: a whole-run tracer feeding
  // one EventLog from every node's kernel plus the job's MPI layer.
  trace::Tracer tracer(-1);
  trace::EventLog elog;
  for (int n = 0; n < sim.cluster().size(); ++n)
    tracer.attach(sim.cluster().node(n).kernel());
  tracer.set_event_log(&elog);
  sim.job().set_event_log(&elog);
  tracer.enable(sim.engine().now());

  PASCHED_EXPECTS(sim.sharded() != nullptr);
  RunMonitor monitor(rep.matrix, *sim.sharded());
  sim.sharded()->set_monitor(&monitor);

  const core::SimulationResult res = sim.run();
  monitor.finalize();

  rep.completed = res.completed;
  rep.elapsed = res.elapsed;
  rep.events = res.events;
  rep.events_at_completion = res.events_at_completion;

  rep.posts_checked = monitor.posts_checked();
  rep.soundness_violations = monitor.violations();
  rep.min_observed_slack = monitor.min_observed_slack();
  rep.soundness = monitor.soundness_findings();
  rep.windows = monitor.windows();

  // Work/span over the history below T_c — the same truncation the
  // equivalence digest uses, so legacy and partitioned runs analyze the
  // identical event set. Clock-free build: the DP needs only program order
  // and cross_pred edges, not O(events x threads) vector clocks.
  const sim::Time tc =
      res.completed ? sim.job().completion_time() : sim::Time::max();
  std::vector<trace::Event> slice;
  slice.reserve(elog.events().size());
  for (const trace::Event& e : elog.events())
    if (e.t < tc) slice.push_back(e);
  const analysis::HbGraph g =
      analysis::HbGraph::build(std::move(slice), /*with_clocks=*/false);
  rep.workspan = work_span(g);

  rep.predicted_speedup_window_model =
      opts.model.predicted_speedup(rep.windows, opts.target_workers);
  SpeedupModel free_barriers = opts.model;
  free_barriers.barrier_cost_ns = 0.0;
  rep.predicted_speedup_no_barrier =
      free_barriers.predicted_speedup(rep.windows, opts.target_workers);

  return rep;
}

}  // namespace pasched::scale
