#include "scale/runner.hpp"

#include <utility>
#include <vector>

#include "analysis/hb.hpp"
#include "contend/ledger.hpp"
#include "scale/monitor.hpp"
#include "scale/workspan.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/seam.hpp"

namespace pasched::scale {

namespace {

/// Per-round barrier cost measured by the contention ledger: the average
/// wait a worker paid per arrive_and_wait crossing, times the window
/// protocol's two crossings per sync round. Returns < 0 when the run
/// recorded no barrier crossing (nothing to measure).
[[nodiscard]] double measured_barrier_cost_ns(
    const contend::LedgerReport& lrep) {
  std::uint64_t wait_ns = 0;
  std::uint64_t acquires = 0;
  for (const contend::SiteSummary& s : lrep.sites) {
    if (s.kind != util::SeamKind::Barrier) continue;
    wait_ns += s.wait_ns;
    acquires += s.acquires;
  }
  if (acquires == 0) return -1.0;
  return 2.0 * static_cast<double>(wait_ns) / static_cast<double>(acquires);
}

}  // namespace

ScaleReport analyze_scenario(const core::SimulationConfig& cfg,
                             const mpi::WorkloadFactory& factory,
                             std::string scenario_name,
                             const ScaleOptions& opts,
                             const LookaheadMatrix* planted) {
  PASCHED_EXPECTS_MSG(cfg.parallel >= 1,
                      "pasched-scale needs the partitioned executor "
                      "(cfg.parallel >= 1)");

  ScaleReport rep;
  rep.scenario = std::move(scenario_name);
  rep.options = opts;
  rep.matrix = planted != nullptr
                   ? *planted
                   : build_lookahead_matrix(cfg.cluster.fabric,
                                            cfg.cluster.nodes);

  core::Simulation sim(cfg, factory);

  // Same trace plumbing as core::run_canonical: a whole-run tracer feeding
  // one EventLog from every node's kernel plus the job's MPI layer.
  trace::Tracer tracer(-1);
  trace::EventLog elog;
  for (int n = 0; n < sim.cluster().size(); ++n)
    tracer.attach(sim.cluster().node(n).kernel());
  tracer.set_event_log(&elog);
  sim.job().set_event_log(&elog);
  tracer.enable(sim.engine().now());

  PASCHED_EXPECTS(sim.sharded() != nullptr);
  sim.sharded()->set_planner(opts.planner, opts.window_batch);
  RunMonitor monitor(rep.matrix, *sim.sharded());
  sim.sharded()->set_monitor(&monitor);

  // Measure c_barrier while certifying: if no other seam observer is
  // installed (and this is a validation build — seams are uninstrumented
  // otherwise), hang the contention ledger on the run and price the window
  // model with the barrier cost this host actually paid, not the default.
  contend::Ledger ledger;
  bool ledger_installed = false;
#if PASCHED_VALIDATE_ENABLED
  if (util::seam_observer() == nullptr) {
    util::install_seam_observer(&ledger);
    ledger_installed = true;
  }
#endif

  const core::SimulationResult res = sim.run();
  monitor.finalize();
  if (ledger_installed) {
    util::install_seam_observer(nullptr);
    const double measured = measured_barrier_cost_ns(ledger.report());
    if (measured >= 0.0) {
      rep.options.model.barrier_cost_ns = measured;
      rep.barrier_cost_source = "measured";
    }
  }
  rep.barrier_cost_ns_used = rep.options.model.barrier_cost_ns;

  const sim::PlannerStats ps = sim.sharded()->planner_stats();
  rep.planner_mode = sim.sharded()->planner_mode() == sim::PlannerMode::Global
                         ? "global"
                         : "perpair";
  rep.window_batch = sim.sharded()->window_batch();
  rep.rounds = ps.rounds;
  rep.chained_windows = ps.windows;
  rep.coalesced_windows = ps.coalesced;
  rep.ring_posts = ps.ring_posts;
  rep.ring_overflows = ps.ring_overflows;

  rep.completed = res.completed;
  rep.elapsed = res.elapsed;
  rep.events = res.events;
  rep.events_at_completion = res.events_at_completion;

  rep.posts_checked = monitor.posts_checked();
  rep.soundness_violations = monitor.violations();
  rep.min_observed_slack = monitor.min_observed_slack();
  rep.soundness = monitor.soundness_findings();
  rep.windows = monitor.windows();

  // Work/span over the history below T_c — the same truncation the
  // equivalence digest uses, so legacy and partitioned runs analyze the
  // identical event set. Clock-free build: the DP needs only program order
  // and cross_pred edges, not O(events x threads) vector clocks.
  const sim::Time tc =
      res.completed ? sim.job().completion_time() : sim::Time::max();
  std::vector<trace::Event> slice;
  slice.reserve(elog.events().size());
  for (const trace::Event& e : elog.events())
    if (e.t < tc) slice.push_back(e);
  const analysis::HbGraph g =
      analysis::HbGraph::build(std::move(slice), /*with_clocks=*/false);
  rep.workspan = work_span(g);

  rep.predicted_speedup_window_model =
      rep.options.model.predicted_speedup(rep.windows, opts.target_workers);
  SpeedupModel free_barriers = rep.options.model;
  free_barriers.barrier_cost_ns = 0.0;
  rep.predicted_speedup_no_barrier =
      free_barriers.predicted_speedup(rep.windows, opts.target_workers);

  return rep;
}

}  // namespace pasched::scale
