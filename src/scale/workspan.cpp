#include "scale/workspan.hpp"

#include <algorithm>

namespace pasched::scale {

using sim::Duration;
using sim::Time;

WorkSpan work_span(const analysis::HbGraph& g) {
  WorkSpan ws;
  const std::size_t n = g.size();
  const auto threads = static_cast<std::size_t>(g.num_threads());
  ws.threads = g.num_threads();

  std::vector<char> running(threads, 0);
  std::vector<Time> last_t(threads);
  std::vector<std::int64_t> last_ev(threads, -1);
  std::vector<Duration> dist(n, Duration::zero());
  std::vector<std::int64_t> pred(n, -1);

  std::int64_t sink = -1;
  for (std::size_t i = 0; i < n; ++i) {
    const int ti = g.thread_of(i);
    if (ti < 0) continue;
    const auto t = static_cast<std::size_t>(ti);
    const trace::Event& e = g.event(i);
    ++ws.events;

    // Weight: the time since this thread's previous event, but only while
    // the thread actually occupied a CPU. State is constant between a
    // thread's consecutive events, so the flag at the segment's start
    // decides the whole segment.
    const Duration seg = (running[t] != 0 && last_ev[t] >= 0)
                             ? e.t - last_t[t]
                             : Duration::zero();
    ws.work += seg;

    Duration best = Duration::zero();
    std::int64_t bp = -1;
    if (last_ev[t] >= 0) {
      best = dist[static_cast<std::size_t>(last_ev[t])];
      bp = last_ev[t];
    }
    const std::int64_t cp = g.cross_pred(i);
    if (cp >= 0 && dist[static_cast<std::size_t>(cp)] > best) {
      best = dist[static_cast<std::size_t>(cp)];
      bp = cp;
    }
    dist[i] = best + seg;
    pred[i] = bp;
    if (sink < 0 || dist[i] > ws.span) {
      ws.span = dist[i];
      sink = static_cast<std::int64_t>(i);
    }

    last_ev[t] = static_cast<std::int64_t>(i);
    last_t[t] = e.t;
    switch (e.kind) {
      case trace::EventKind::Dispatch: running[t] = 1; break;
      case trace::EventKind::Preempt:
      case trace::EventKind::Block:
      case trace::EventKind::Exit: running[t] = 0; break;
      default: break;  // Ready and message events do not change occupancy
    }
  }

  for (std::int64_t i = sink; i >= 0; i = pred[static_cast<std::size_t>(i)])
    ws.critical_path.push_back(static_cast<std::size_t>(i));
  std::reverse(ws.critical_path.begin(), ws.critical_path.end());
  return ws;
}

}  // namespace pasched::scale
