// Per-window accounting of a partitioned run, and the barrier-cost model
// that turns it into a predicted speedup. Where work/span bounds what any
// executor could do, this model predicts what the *current* conservative-
// window executor will do: each window costs the slowest shard's events
// (or the per-worker share when shards outnumber workers), plus a fixed
// barrier crossing. Windows with a handful of events are pure overhead —
// the PSL302 "barrier-dominated" pathology that makes BENCH_shard.json's
// 1.00x speedup unsurprising.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace pasched::scale {

/// One executed conservative window: its end time and the per-shard event
/// counts the barrier synchronized.
struct WindowSample {
  sim::Time end;
  bool final_window = false;
  std::uint64_t total = 0;
  std::uint64_t max_shard = 0;
  std::uint64_t hub = 0;
};

struct WindowStats {
  int shards = 0;
  int hub_shard = 0;
  std::vector<WindowSample> windows;
  /// Whole-run per-shard totals (indexed by shard).
  std::vector<std::uint64_t> per_shard;

  [[nodiscard]] std::size_t n_windows() const noexcept {
    return windows.size();
  }
  [[nodiscard]] std::uint64_t total_events() const noexcept;
  [[nodiscard]] double mean_events_per_window() const noexcept;
  [[nodiscard]] double median_events_per_window() const noexcept;
  /// Whole-run max/mean per-shard load ratio (>= 1; 1 = perfectly even).
  /// The PSL304 signal: the slowest shard paces every window.
  [[nodiscard]] double imbalance() const noexcept;
  /// The hub's share of the per-window critical work:
  /// sum_w hub_w / sum_w max_shard_w. The PSL305 signal — when the switch
  /// hub carries most of each window's slowest-shard load, every barrier
  /// waits on one shard no matter how many workers run.
  [[nodiscard]] double hub_critical_share() const noexcept;
};

/// Linear cost model for the conservative-window executor.
///   T_1      = total_events * event_cost
///   T_p      = sum_w max(max_shard_w, ceil(total_w / workers)) * event_cost
///              + n_windows * barrier_cost
///   speedup  = T_1 / T_p
/// The defaults are rough Linux figures (a simulator event is a heap pop +
/// callback; a std::barrier round-trip across a handful of threads costs a
/// few microseconds) — the *shape* (how many windows, how empty they are)
/// dominates the prediction, not the constants.
struct SpeedupModel {
  double event_cost_ns = 60.0;
  double barrier_cost_ns = 3000.0;

  [[nodiscard]] double predicted_speedup(const WindowStats& w,
                                         int workers) const;
};

}  // namespace pasched::scale
