// The pasched-scale report: everything the static lookahead oracle, the
// runtime soundness certifier, the work/span pass, and the window profiler
// learned about one scenario, plus the PSL301–306 rules that turn the
// numbers into findings. Rule IDs, severities, and paper references live in
// analysis/diagnostic.hpp; DESIGN.md §5.6 renders the same table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "scale/lookahead.hpp"
#include "scale/windows.hpp"
#include "scale/workspan.hpp"
#include "sim/planner.hpp"
#include "sim/time.hpp"

namespace pasched::scale {

struct ScaleOptions {
  /// Worker count the speedup prediction targets (ROADMAP item 1: 8).
  int target_workers = 8;
  /// Speedup the roadmap demands at target_workers (ROADMAP item 1: >= 4x).
  double target_speedup = 4.0;
  /// PSL301/PSL014 fire when global * collapse_ratio <= pairwise median.
  double collapse_ratio = 2.0;
  /// PSL304 fires when max/mean per-shard load exceeds this.
  double imbalance_threshold = 1.5;
  /// PSL305 fires when the hub's share of per-window critical work exceeds
  /// this.
  double hub_share_threshold = 0.25;
  SpeedupModel model;
  /// Window planner the analyzed executor runs. PerPair is what ships;
  /// Global reproduces the legacy one-window-per-round schedule and is the
  /// denominator for the n_windows scalability smoke in CI.
  sim::PlannerMode planner = sim::PlannerMode::PerPair;
  /// Chained windows per sync round (PerPair only).
  int window_batch = sim::kDefaultWindowBatch;
};

struct ScaleReport {
  std::string scenario;
  ScaleOptions options;

  // Static half.
  LookaheadMatrix matrix;

  // Runtime certification.
  std::uint64_t posts_checked = 0;
  std::uint64_t soundness_violations = 0;
  sim::Duration min_observed_slack = sim::Duration::max();
  std::vector<analysis::Diagnostic> soundness;  // PSL303 findings

  // Trace half.
  WorkSpan workspan;
  WindowStats windows;

  // Executor facts (ShardedEngine::planner_stats()). `rounds` is what the
  // barrier-cost model prices; `chained_windows` is how much schedule each
  // round carried under neighbor-horizon waits only.
  std::string planner_mode;           // "perpair" | "global"
  int window_batch = 0;
  std::uint64_t rounds = 0;
  std::uint64_t chained_windows = 0;
  std::uint64_t coalesced_windows = 0;
  std::uint64_t ring_posts = 0;
  std::uint64_t ring_overflows = 0;

  /// Barrier cost the window model actually priced. "measured" when the
  /// analysis run could install a contention ledger (no other seam observer
  /// present, validation build): total barrier wait / crossings, times the
  /// protocol's two crossings per round. Otherwise the model default.
  double barrier_cost_ns_used = 0.0;
  std::string barrier_cost_source = "default";  // "measured" | "default"

  // Run facts.
  bool completed = false;
  sim::Duration elapsed = sim::Duration::zero();
  std::uint64_t events = 0;
  std::uint64_t events_at_completion = 0;

  /// Window-model prediction at options.target_workers, and the same with
  /// barrier cost zeroed (the pure concurrency limit of these windows).
  double predicted_speedup_window_model = 0.0;
  double predicted_speedup_no_barrier = 0.0;

  /// The overall ceiling: min(work/span, window-model at target workers).
  [[nodiscard]] double predicted_max_speedup() const;

  /// PSL301–306 findings (soundness first), rule-ID order after that.
  [[nodiscard]] std::vector<analysis::Diagnostic> diagnostics() const;
  /// Human-readable report.
  [[nodiscard]] std::string str() const;
  /// Machine-readable report (JSON), embedding the matrix certificate.
  [[nodiscard]] std::string json() const;
};

}  // namespace pasched::scale
