// The runtime half of the lookahead certificate: a sim::ShardMonitor that
// (a) checks every cross-shard post against the static per-pair lookahead
// matrix — a delivery earlier than send time + matrix[src][dst] means the
// certificate is unsound and becomes a PSL303 ERROR — and (b) profiles the
// conservative windows (per-shard event deltas sampled at the plan barrier,
// where every worker is parked) into the WindowStats the barrier-cost model
// consumes.
//
// Thread-safety follows the seam contract (sim/shard.hpp): on_post runs
// concurrently on source workers, so the soundness ledger is mutex-
// protected (cross-shard posts are orders of magnitude rarer than events);
// on_plan runs in the barrier completion step with every worker parked, so
// reading the per-shard engine counters there needs no synchronization.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "scale/lookahead.hpp"
#include "scale/windows.hpp"
#include "sim/shard.hpp"
#include "sim/time.hpp"

namespace pasched::scale {

class RunMonitor final : public sim::ShardMonitor {
 public:
  /// `matrix` is copied: the claims being certified must not change under
  /// the run (the pasched-scale --plant-unsound-bound mode hands in a
  /// deliberately inflated copy). `engine` is the executor being profiled;
  /// install with engine.set_monitor(&monitor) before running.
  RunMonitor(LookaheadMatrix matrix, sim::ShardedEngine& engine);

  // sim::ShardMonitor --------------------------------------------------------
  void on_post(int src_shard, int dst_shard, sim::Time t, sim::Time sent_at,
               std::uint64_t src_seq) override;
  void on_admit(int dst_shard, int src_shard, std::uint64_t src_seq,
                sim::Time t, sim::Time dst_now) override;
  void on_window_begin(int shard, sim::Time window_end) override;
  void on_plan(sim::Time window_end, bool final_window) override;

  /// Captures the last executed window's deltas (the Stop round never
  /// reaches on_plan). Call once after ShardedEngine::run_until returns;
  /// idempotent.
  void finalize();

  // Results (valid after finalize) ------------------------------------------
  [[nodiscard]] const WindowStats& windows() const noexcept {
    return stats_;
  }
  [[nodiscard]] const LookaheadMatrix& matrix() const noexcept {
    return matrix_;
  }
  /// PSL303 findings, capped at 16 with a summarizing tail entry.
  [[nodiscard]] std::vector<analysis::Diagnostic> soundness_findings() const;
  [[nodiscard]] std::uint64_t posts_checked() const;
  [[nodiscard]] std::uint64_t violations() const;
  /// Smallest observed (delivery - send - claimed bound) margin across all
  /// posts — how close the tightest real delivery came to the certificate.
  /// Duration::max() when no cross-shard post occurred.
  [[nodiscard]] sim::Duration min_observed_slack() const;

 private:
  void sample_window();

  LookaheadMatrix matrix_;
  sim::ShardedEngine& engine_;

  // Window profile: touched only at the plan barrier / after the run.
  WindowStats stats_;
  std::vector<std::uint64_t> last_counts_;
  sim::Time pending_end_{};
  bool pending_final_ = false;
  bool have_pending_ = false;
  bool finalized_ = false;

  // Soundness ledger: shared across source workers.
  mutable std::mutex mu_;
  std::uint64_t posts_ = 0;
  std::uint64_t violations_ = 0;
  sim::Duration min_slack_ = sim::Duration::max();
  std::vector<analysis::Diagnostic> findings_;
};

}  // namespace pasched::scale
