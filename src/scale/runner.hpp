// One-call pasched-scale analysis: build the static lookahead certificate
// for a scenario's fabric, run the scenario once under the partitioned
// executor with the RunMonitor certifying every cross-shard delivery and
// profiling the windows, then run the work/span critical-path DP over the
// traced happens-before graph. The result carries everything PSL301–306
// judge.
#pragma once

#include <string>

#include "core/simulation.hpp"
#include "mpi/workload.hpp"
#include "scale/report.hpp"

namespace pasched::scale {

/// Analyzes one scenario. `cfg.parallel` must be >= 1 (the window profile
/// and the soundness seam only exist on the partitioned executor; one
/// worker is enough — the windows are worker-count invariant).
///
/// `planted` optionally overrides the certificate the RunMonitor checks
/// (and the matrix recorded in the report) — pasched-scale's
/// --plant-unsound-bound mode hands in a deliberately inflated copy to
/// prove PSL303 catches unsound claims.
[[nodiscard]] ScaleReport analyze_scenario(
    const core::SimulationConfig& cfg, const mpi::WorkloadFactory& factory,
    std::string scenario_name, const ScaleOptions& opts = {},
    const LookaheadMatrix* planted = nullptr);

}  // namespace pasched::scale
