// The per-shard-pair lookahead oracle: the static half of pasched-scale.
//
// The conservative executor (sim/shard.hpp) synchronizes every shard on ONE
// global bound, net::guaranteed_lookahead — the minimum cross-node latency
// of the whole fabric. But the causality argument is pairwise: a message
// from shard a to shard b cannot arrive earlier than the minimum latency of
// the (a, b) link. This module computes the full per-pair guaranteed-
// lookahead matrix from the fabric topology alone (no simulation), compares
// it against the global bound, and emits a machine-readable certificate for
// a PARSIR-style per-pair window planner to consume. The claims are only
// claims until certified: scale::RunMonitor re-checks every actual
// cross-shard delivery against this matrix at runtime (PSL303 on
// violation).
#pragma once

#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/time.hpp"

namespace pasched::scale {

/// Per-shard-pair guaranteed lookahead bounds, in the sharded engine's own
/// shard numbering: shards 0..nodes-1 are the node shards, shard `nodes` is
/// the switch hub (single-node clusters collapse to one shard and have no
/// pairs). The diagonal is zero — same-shard scheduling needs no lookahead.
struct LookaheadMatrix {
  int nodes = 0;
  int shards = 0;
  int hub_shard = 0;
  /// The single global bound the ShardedEngine uses today
  /// (net::guaranteed_lookahead of the same fabric).
  sim::Duration global = sim::Duration::zero();
  /// Row-major shards x shards claimed bounds.
  std::vector<sim::Duration> bounds;

  [[nodiscard]] sim::Duration at(int a, int b) const {
    return bounds[static_cast<std::size_t>(a) *
                      static_cast<std::size_t>(shards) +
                  static_cast<std::size_t>(b)];
  }
  void set(int a, int b, sim::Duration d) {
    bounds[static_cast<std::size_t>(a) * static_cast<std::size_t>(shards) +
           static_cast<std::size_t>(b)] = d;
  }

  [[nodiscard]] bool has_pairs() const noexcept { return shards > 1; }
  /// Min / median / max over the off-diagonal pairs.
  [[nodiscard]] sim::Duration min_pair() const;
  [[nodiscard]] sim::Duration median_pair() const;
  [[nodiscard]] sim::Duration max_pair() const;

  /// The machine-readable certificate (JSON): shard numbering, the global
  /// bound, and the full pairwise matrix in nanoseconds. This is the
  /// contract a per-pair window planner consumes; RunMonitor certifies it
  /// against actual deliveries.
  [[nodiscard]] std::string certificate_json() const;
};

/// Builds the matrix for `nodes` nodes of fabric `cfg`, statically:
/// node-node pairs get the jitter-adjusted minimum latency of their link
/// (net::guaranteed_lookahead_between — frame topology aware); pairs
/// involving the hub are certified at the global floor, since hub traffic
/// (hardware-collective contributions and broadcasts) always pays at least
/// one un-jittered inter-node wire.
[[nodiscard]] LookaheadMatrix build_lookahead_matrix(
    const net::FabricConfig& cfg, int nodes);

}  // namespace pasched::scale
