#include "scale/monitor.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace pasched::scale {

using sim::Duration;
using sim::Time;

namespace {
constexpr std::size_t kMaxDetailedFindings = 16;
}  // namespace

RunMonitor::RunMonitor(LookaheadMatrix matrix, sim::ShardedEngine& engine)
    : matrix_(std::move(matrix)), engine_(engine) {
  PASCHED_EXPECTS_MSG(matrix_.shards == engine.partitions(),
                      "lookahead matrix shard count disagrees with the "
                      "engine partitioning");
  stats_.shards = matrix_.shards;
  stats_.hub_shard = matrix_.hub_shard;
  stats_.per_shard.assign(static_cast<std::size_t>(matrix_.shards), 0);
  // Baseline from the engine's current counters, so a monitor installed on
  // an engine that already ran attributes only what happens from now on.
  last_counts_.resize(static_cast<std::size_t>(matrix_.shards));
  for (int i = 0; i < matrix_.shards; ++i)
    last_counts_[static_cast<std::size_t>(i)] =
        engine_.engine_of(i).events_processed();
  // Install-time certificate consumption check: the planner's installed
  // pair bounds are what post() stamps and the window chain assumes, so an
  // installed bound *larger* than the certified claim means the executor
  // runs on optimism the certificate never granted — unsound before a
  // single event fires. (Smaller is fine: the executor merely forfeits
  // window width; the plant mode's inflated claims land here.)
  for (int a = 0; a < matrix_.shards; ++a) {
    for (int b = 0; b < matrix_.shards; ++b) {
      if (a == b) continue;
      const Duration installed = engine_.pair_lookahead(a, b);
      const Duration claimed = matrix_.at(a, b);
      if (installed <= claimed) continue;
      ++violations_;
      if (findings_.size() >= kMaxDetailedFindings) continue;
      analysis::Diagnostic d;
      d.rule = "PSL303";
      d.severity = analysis::Severity::Error;
      d.subject = "pair(" + std::to_string(a) + "->" + std::to_string(b) +
                  ") install";
      d.message = "executor installed pair lookahead " + installed.str() +
                  " exceeds the certified claim " + claimed.str() +
                  "; the window planner consumes a bound the static "
                  "certificate never granted";
      d.fix_hint =
          "rebuild the engine's PairLookahead from the same fabric "
          "derivation the certificate uses (core::Simulation mirrors "
          "scale::build_lookahead_matrix)";
      findings_.push_back(std::move(d));
    }
  }
}

void RunMonitor::on_post(int src_shard, int dst_shard, Time t, Time sent_at,
                         std::uint64_t src_seq) {
  const Duration claimed = matrix_.at(src_shard, dst_shard);
  const Duration slack = (t - sent_at) - claimed;
  const std::scoped_lock lk(mu_);
  ++posts_;
  min_slack_ = std::min(min_slack_, slack);
  if (slack < Duration::zero()) {
    ++violations_;
    if (findings_.size() < kMaxDetailedFindings) {
      analysis::Diagnostic d;
      d.rule = "PSL303";
      d.severity = analysis::Severity::Error;
      d.subject = "pair(" + std::to_string(src_shard) + "->" +
                  std::to_string(dst_shard) + ")";
      d.message = "delivery at " + t.str() + " sent at " + sent_at.str() +
                  " (seq " + std::to_string(src_seq) +
                  ") undercuts the claimed pairwise lookahead " +
                  claimed.str() + " by " + (-slack).str() +
                  "; the static certificate is unsound";
      d.fix_hint =
          "lower the matrix claim for this pair to the true minimum link "
          "latency (jitter-adjusted) before any window planner consumes it";
      findings_.push_back(std::move(d));
    }
  }
}

void RunMonitor::on_admit(int, int, std::uint64_t, Time, Time) {}

void RunMonitor::on_window_begin(int, Time) {}

void RunMonitor::on_plan(Time window_end, bool final_window) {
  // Every worker is parked here: the previous window (if any) is fully
  // executed, so the per-shard counter deltas attribute exactly to it.
  if (have_pending_) sample_window();
  pending_end_ = window_end;
  pending_final_ = final_window;
  have_pending_ = true;
}

void RunMonitor::sample_window() {
  WindowSample s;
  s.end = pending_end_;
  s.final_window = pending_final_;
  for (int i = 0; i < stats_.shards; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t now =
        engine_.engine_of(i).events_processed();
    const std::uint64_t delta = now - last_counts_[idx];
    last_counts_[idx] = now;
    s.total += delta;
    s.max_shard = std::max(s.max_shard, delta);
    if (i == stats_.hub_shard && stats_.shards > 1) s.hub = delta;
    stats_.per_shard[idx] += delta;
  }
  stats_.windows.push_back(s);
}

void RunMonitor::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // The Stop round never reaches on_plan, so the last executed window's
  // deltas are still pending here.
  if (have_pending_) {
    sample_window();
    have_pending_ = false;
  }
}

std::vector<analysis::Diagnostic> RunMonitor::soundness_findings() const {
  const std::scoped_lock lk(mu_);
  std::vector<analysis::Diagnostic> out = findings_;
  if (violations_ > out.size()) {
    analysis::Diagnostic d;
    d.rule = "PSL303";
    d.severity = analysis::Severity::Error;
    d.subject = "matrix";
    d.message = std::to_string(violations_ - out.size()) +
                " further lookahead violations suppressed (total " +
                std::to_string(violations_) + " of " +
                std::to_string(posts_) + " posts)";
    out.push_back(std::move(d));
  }
  return out;
}

std::uint64_t RunMonitor::posts_checked() const {
  const std::scoped_lock lk(mu_);
  return posts_;
}

std::uint64_t RunMonitor::violations() const {
  const std::scoped_lock lk(mu_);
  return violations_;
}

Duration RunMonitor::min_observed_slack() const {
  const std::scoped_lock lk(mu_);
  return min_slack_;
}

}  // namespace pasched::scale
