#include "scale/windows.hpp"

#include <algorithm>

namespace pasched::scale {

std::uint64_t WindowStats::total_events() const noexcept {
  std::uint64_t n = 0;
  for (const WindowSample& w : windows) n += w.total;
  return n;
}

double WindowStats::mean_events_per_window() const noexcept {
  if (windows.empty()) return 0.0;
  return static_cast<double>(total_events()) /
         static_cast<double>(windows.size());
}

double WindowStats::median_events_per_window() const noexcept {
  if (windows.empty()) return 0.0;
  std::vector<std::uint64_t> totals;
  totals.reserve(windows.size());
  for (const WindowSample& w : windows) totals.push_back(w.total);
  std::sort(totals.begin(), totals.end());
  return static_cast<double>(totals[totals.size() / 2]);
}

double WindowStats::imbalance() const noexcept {
  if (per_shard.empty()) return 1.0;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (const std::uint64_t v : per_shard) {
    max = std::max(max, v);
    sum += v;
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(per_shard.size());
  return static_cast<double>(max) / mean;
}

double WindowStats::hub_critical_share() const noexcept {
  std::uint64_t hub = 0;
  std::uint64_t crit = 0;
  for (const WindowSample& w : windows) {
    hub += w.hub;
    crit += w.max_shard;
  }
  if (crit == 0) return 0.0;
  return static_cast<double>(hub) / static_cast<double>(crit);
}

double SpeedupModel::predicted_speedup(const WindowStats& w,
                                       int workers) const {
  if (w.windows.empty() || workers < 1) return 1.0;
  const double t1 =
      static_cast<double>(w.total_events()) * event_cost_ns;
  double tp = 0.0;
  for (const WindowSample& s : w.windows) {
    const std::uint64_t share =
        (s.total + static_cast<std::uint64_t>(workers) - 1) /
        static_cast<std::uint64_t>(workers);
    tp += static_cast<double>(std::max(s.max_shard, share)) * event_cost_ns;
    tp += barrier_cost_ns;
  }
  if (tp <= 0.0) return 1.0;
  return t1 / tp;
}

}  // namespace pasched::scale
