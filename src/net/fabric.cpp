#include "net/fabric.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pasched::net {

using sim::Duration;
using sim::Time;

namespace {
// Shrinks a pre-jitter latency floor by the worst-case jitter draw. One
// nanosecond of slack absorbs the double->int truncation in Rng::jittered;
// clamp to at least 1 ns so windows always advance.
Duration jitter_floor(Duration latency, double jitter_frac) {
  const double floor_ns =
      static_cast<double>(latency.count()) * (1.0 - jitter_frac);
  const std::int64_t ns = static_cast<std::int64_t>(floor_ns) - 1;
  return Duration::ns(std::max<std::int64_t>(ns, 1));
}
}  // namespace

Duration guaranteed_lookahead(const FabricConfig& cfg) {
  return jitter_floor(cfg.inter_node_latency, cfg.jitter_frac);
}

Duration min_latency_between(const FabricConfig& cfg, int a, int b) {
  Duration base = cfg.inter_node_latency;
  if (a != b && cfg.frame_size > 0 && cfg.frame_of(a) != cfg.frame_of(b))
    base += cfg.inter_frame_extra;
  return base;
}

Duration guaranteed_lookahead_between(const FabricConfig& cfg, int a, int b) {
  return jitter_floor(min_latency_between(cfg, a, b), cfg.jitter_frac);
}

namespace {
void check_config(const FabricConfig& cfg) {
  PASCHED_EXPECTS(cfg.inter_node_latency > Duration::zero());
  PASCHED_EXPECTS(cfg.intra_node_latency > Duration::zero());
  PASCHED_EXPECTS(cfg.jitter_frac >= 0.0 && cfg.jitter_frac < 1.0);
  PASCHED_EXPECTS(cfg.frame_size >= 0);
  PASCHED_EXPECTS_MSG(cfg.inter_frame_extra >= Duration::zero(),
                      "a negative inter-frame hop would put cross-frame "
                      "latency below the global lookahead floor");
}
}  // namespace

// srclint-ok(PSL401): legacy bridge — wrapped into SingleRouter on entry.
Fabric::Fabric(sim::Engine& engine, FabricConfig cfg, sim::Rng rng)
    : owned_router_(std::make_unique<sim::SingleRouter>(engine)),
      router_(owned_router_.get()),
      cfg_(cfg),
      port_seed_base_(rng.next_u64()) {
  check_config(cfg_);
}

Fabric::Fabric(sim::Router& router, FabricConfig cfg, sim::Rng rng, int nodes)
    : router_(&router), cfg_(cfg), port_seed_base_(rng.next_u64()) {
  check_config(cfg_);
  PASCHED_EXPECTS(nodes >= 1);
  PASCHED_EXPECTS_MSG(
      cfg_.link_bandwidth == 0.0 || router.partitions() == 1,
      "link_bandwidth contention serializes senders cluster-wide and cannot "
      "run partitioned");
  ports_.resize(static_cast<std::size_t>(nodes));
}

Fabric::Port& Fabric::port(kern::NodeId src) {
  const auto idx = static_cast<std::size_t>(src);
  // Growth only happens in single-shard use (tests hand-build fabrics);
  // partitioned construction presizes the vector.
  if (idx >= ports_.size()) ports_.resize(idx + 1);
  auto& slot = ports_[idx];
  if (!slot) {
    // Order-independent seeding: a pure function of the fabric seed and the
    // source id, so which shard first sends does not change any stream.
    slot = std::make_unique<Port>(
        port_seed_base_ +
        0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(src) + 1));
  }
  return *slot;
}

Duration Fabric::latency_for(kern::NodeId src, kern::NodeId dst,
                             std::size_t bytes) const {
  const Duration base = src == dst ? cfg_.intra_node_latency
                                   : min_latency_between(cfg_, src, dst);
  return base + cfg_.per_byte * static_cast<std::int64_t>(bytes);
}

FabricStats Fabric::stats() const {
  FabricStats total;
  for (const auto& p : ports_) {
    if (!p) continue;
    total.messages += p->stats.messages;
    total.bytes += p->stats.bytes;
    total.intra_node += p->stats.intra_node;
  }
  return total;
}

void Fabric::send(kern::NodeId src, kern::NodeId dst, std::size_t bytes,
                  sim::Engine::Callback on_deliver) {
  Port& p = port(src);
  ++p.stats.messages;
  p.stats.bytes += bytes;
  if (src == dst) ++p.stats.intra_node;
  Duration lat = latency_for(src, dst, bytes);
  if (cfg_.jitter_frac > 0.0) lat = p.rng.jittered(lat, cfg_.jitter_frac);
  const int src_shard = router_->shard_of_node(src);
  const int dst_shard = router_->shard_of_node(dst);
  Time depart = router_->engine_of(src_shard).now();
  if (cfg_.link_bandwidth > 0.0 && src != dst) {
    // Serialize on the sender's egress link, then occupy the receiver's
    // ingress link: a burst of messages into one node queues up.
    // (Single-shard only — the constructor rejects this when partitioned.)
    const Duration xfer = Duration::from_seconds(
        static_cast<double>(std::max<std::size_t>(bytes, 1)) /
        cfg_.link_bandwidth);
    Time& efree = egress_free_[static_cast<std::uint32_t>(src)];
    depart = std::max(depart, efree);
    efree = depart + xfer;
    Time& ifree = ingress_free_[static_cast<std::uint32_t>(dst)];
    const Time arrive_start = std::max(depart + lat - xfer, ifree);
    ifree = arrive_start + xfer;
    depart = arrive_start + xfer - lat;  // so deliver_at lands after ingress
  }
  Time deliver_at = depart + lat;
  const auto it = p.last_delivery.find(static_cast<std::uint32_t>(dst));
  if (it != p.last_delivery.end() && deliver_at <= it->second)
    deliver_at = it->second + Duration::ns(1);  // FIFO per pair
  p.last_delivery[static_cast<std::uint32_t>(dst)] = deliver_at;
  router_->post(src_shard, dst_shard, deliver_at, std::move(on_deliver));
}

}  // namespace pasched::net
