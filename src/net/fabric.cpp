#include "net/fabric.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pasched::net {

using sim::Duration;
using sim::Time;

Fabric::Fabric(sim::Engine& engine, FabricConfig cfg, sim::Rng rng)
    : engine_(engine), cfg_(cfg), rng_(rng) {
  PASCHED_EXPECTS(cfg_.inter_node_latency > Duration::zero());
  PASCHED_EXPECTS(cfg_.intra_node_latency > Duration::zero());
  PASCHED_EXPECTS(cfg_.jitter_frac >= 0.0 && cfg_.jitter_frac < 1.0);
}

Duration Fabric::latency_for(kern::NodeId src, kern::NodeId dst,
                             std::size_t bytes) const {
  const Duration base =
      src == dst ? cfg_.intra_node_latency : cfg_.inter_node_latency;
  return base + cfg_.per_byte * static_cast<std::int64_t>(bytes);
}

void Fabric::send(kern::NodeId src, kern::NodeId dst, std::size_t bytes,
                  sim::Engine::Callback on_deliver) {
  ++stats_.messages;
  stats_.bytes += bytes;
  if (src == dst) ++stats_.intra_node;
  Duration lat = latency_for(src, dst, bytes);
  if (cfg_.jitter_frac > 0.0) lat = rng_.jittered(lat, cfg_.jitter_frac);
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(src))
                             << 32) |
                            static_cast<std::uint32_t>(dst);
  Time depart = engine_.now();
  if (cfg_.link_bandwidth > 0.0 && src != dst) {
    // Serialize on the sender's egress link, then occupy the receiver's
    // ingress link: a burst of messages into one node queues up.
    const Duration xfer = Duration::from_seconds(
        static_cast<double>(std::max<std::size_t>(bytes, 1)) /
        cfg_.link_bandwidth);
    Time& efree = egress_free_[static_cast<std::uint32_t>(src)];
    depart = std::max(depart, efree);
    efree = depart + xfer;
    Time& ifree = ingress_free_[static_cast<std::uint32_t>(dst)];
    const Time arrive_start = std::max(depart + lat - xfer, ifree);
    ifree = arrive_start + xfer;
    depart = arrive_start + xfer - lat;  // so deliver_at lands after ingress
  }
  Time deliver_at = depart + lat;
  const auto it = last_delivery_.find(key);
  if (it != last_delivery_.end() && deliver_at <= it->second)
    deliver_at = it->second + Duration::ns(1);  // FIFO per pair
  last_delivery_[key] = deliver_at;
  engine_.schedule_at(deliver_at, std::move(on_deliver));
}

}  // namespace pasched::net
