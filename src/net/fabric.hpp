// The cluster interconnect: a point-to-point latency/bandwidth model of the
// SP switch plus intra-node shared-memory transport. Delivery preserves FIFO
// order per (src, dst) pair, like the real adapter microcode.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "kern/types.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pasched::net {

struct FabricConfig {
  /// One-way wire+adapter latency between two nodes (SP switch class).
  sim::Duration inter_node_latency = sim::Duration::us(20);
  /// Shared-memory transport latency within a node.
  sim::Duration intra_node_latency = sim::Duration::us(1);
  /// Serialization cost per byte (≈500 MB/s switch link).
  sim::Duration per_byte = sim::Duration::ns(2);
  /// Multiplicative uniform jitter applied to each delivery (+/- frac).
  double jitter_frac = 0.02;
  /// Optional per-node link contention: when > 0, each node's egress and
  /// ingress serialize at this bandwidth (bytes/second), so bursts of
  /// messages into one node (e.g. a reduction root) queue behind each
  /// other. 0 = contention-free (the default latency/bandwidth model).
  double link_bandwidth = 0.0;
};

struct FabricStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t intra_node = 0;
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, FabricConfig cfg, sim::Rng rng);

  /// Sends `bytes` from src to dst; `on_deliver` runs at the destination's
  /// arrival time. Deliveries between the same pair never reorder.
  void send(kern::NodeId src, kern::NodeId dst, std::size_t bytes,
            sim::Engine::Callback on_deliver);

  [[nodiscard]] sim::Duration latency_for(kern::NodeId src, kern::NodeId dst,
                                          std::size_t bytes) const;
  [[nodiscard]] const FabricStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FabricConfig& config() const noexcept { return cfg_; }

 private:
  sim::Engine& engine_;
  FabricConfig cfg_;
  sim::Rng rng_;
  FabricStats stats_;
  std::unordered_map<std::uint64_t, sim::Time> last_delivery_;
  // Link-contention state: the time each node's egress/ingress link frees up.
  std::unordered_map<std::uint32_t, sim::Time> egress_free_;
  std::unordered_map<std::uint32_t, sim::Time> ingress_free_;
};

}  // namespace pasched::net
