// The cluster interconnect: a point-to-point latency/bandwidth model of the
// SP switch plus intra-node shared-memory transport. Delivery preserves FIFO
// order per (src, dst) pair, like the real adapter microcode.
//
// The fabric is one of only two cross-shard edges in partitioned execution
// (the other is the switch's hardware-collective hub): deliveries go through
// sim::Router::post(), and every per-message mutable state — jitter stream,
// FIFO watermarks, statistics — lives in a per-source-node Port so sends
// from different shards never share state.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kern/types.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pasched::net {

struct FabricConfig {
  /// One-way wire+adapter latency between two nodes (SP switch class).
  sim::Duration inter_node_latency = sim::Duration::us(20);
  /// Shared-memory transport latency within a node.
  sim::Duration intra_node_latency = sim::Duration::us(1);
  /// Serialization cost per byte (≈500 MB/s switch link).
  sim::Duration per_byte = sim::Duration::ns(2);
  /// Multiplicative uniform jitter applied to each delivery (+/- frac).
  double jitter_frac = 0.02;
  /// Optional per-node link contention: when > 0, each node's egress and
  /// ingress serialize at this bandwidth (bytes/second), so bursts of
  /// messages into one node (e.g. a reduction root) queue behind each
  /// other. 0 = contention-free (the default latency/bandwidth model).
  /// Sequential-only: ingress serialization couples all senders to one
  /// node, which has no lookahead, so --parallel rejects it.
  double link_bandwidth = 0.0;
  /// Optional SP frame topology: when > 0, nodes are grouped into frames of
  /// this many nodes, and a delivery whose endpoints sit in different
  /// frames pays `inter_frame_extra` on top of inter_node_latency (the
  /// intermediate-switch-board hop of a multi-frame SP system). 0 keeps the
  /// flat single-switch fabric — the default, and what every shipped preset
  /// uses. The per-shard-pair lookahead matrix (src/scale/) turns this
  /// structure into pairwise bounds; the single global guaranteed_lookahead
  /// stays pinned to the intra-frame minimum.
  int frame_size = 0;
  sim::Duration inter_frame_extra = sim::Duration::zero();

  /// The frame a node belongs to (node order is frame-major); nodes share a
  /// frame exactly when frame_of is equal. Flat fabric = one frame.
  [[nodiscard]] int frame_of(int node) const noexcept {
    return frame_size > 0 ? node / frame_size : 0;
  }
};

/// Minimum latency any cross-node delivery can experience under `cfg` —
/// inter_node_latency shrunk by the worst-case jitter draw (minus one
/// nanosecond of float-truncation slack). This is the guaranteed lookahead
/// the conservative parallel executor synchronizes on: a message sent at t
/// arrives no earlier than t + guaranteed_lookahead(cfg).
[[nodiscard]] sim::Duration guaranteed_lookahead(const FabricConfig& cfg);

/// Minimum pre-jitter wire latency of a delivery between two *distinct*
/// nodes under `cfg` (per-byte serialization excluded — a zero-byte message
/// is the worst case). With a frame topology this is inter_node_latency
/// plus the inter-frame hop when the nodes' frames differ.
[[nodiscard]] sim::Duration min_latency_between(const FabricConfig& cfg,
                                                int a, int b);

/// Per-pair guaranteed lookahead: min_latency_between shrunk by the same
/// worst-case jitter draw (and truncation slack) as guaranteed_lookahead.
/// Always >= guaranteed_lookahead(cfg) — the global bound is the matrix
/// minimum, which is exactly the headroom the per-pair certificate
/// (src/scale/lookahead.hpp) quantifies.
[[nodiscard]] sim::Duration guaranteed_lookahead_between(
    const FabricConfig& cfg, int a, int b);

struct FabricStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t intra_node = 0;
};

class Fabric {
 public:
  /// Classic single-engine mode (owns an internal SingleRouter).
  // srclint-ok(PSL401): legacy bridge — the engine is wrapped into an owned
  // SingleRouter immediately and never retained raw.
  Fabric(sim::Engine& engine, FabricConfig cfg, sim::Rng rng);
  /// Partitioned mode: deliveries cross shards via `router`. `nodes`
  /// presizes the per-source ports so concurrent sends never reallocate.
  Fabric(sim::Router& router, FabricConfig cfg, sim::Rng rng, int nodes);

  /// Sends `bytes` from src to dst; `on_deliver` runs at the destination's
  /// arrival time, on the destination node's shard. Deliveries between the
  /// same pair never reorder. Must be called from the source node's shard.
  void send(kern::NodeId src, kern::NodeId dst, std::size_t bytes,
            sim::Engine::Callback on_deliver);

  [[nodiscard]] sim::Duration latency_for(kern::NodeId src, kern::NodeId dst,
                                          std::size_t bytes) const;
  /// Aggregated over all source ports.
  [[nodiscard]] FabricStats stats() const;
  [[nodiscard]] const FabricConfig& config() const noexcept { return cfg_; }

 private:
  /// Per-source-node send state: everything send() mutates, so concurrent
  /// sends from different shards are isolated. Seeded as a pure function of
  /// the fabric seed and the source id — creation order does not matter.
  struct Port {
    explicit Port(std::uint64_t seed) : rng(seed) {}
    sim::Rng rng;
    FabricStats stats;
    // FIFO watermark per destination: last scheduled delivery time.
    std::unordered_map<std::uint32_t, sim::Time> last_delivery;
  };

  [[nodiscard]] Port& port(kern::NodeId src);

  std::unique_ptr<sim::SingleRouter> owned_router_;  // classic mode only
  sim::Router* router_;
  FabricConfig cfg_;
  std::uint64_t port_seed_base_;
  std::vector<std::unique_ptr<Port>> ports_;
  // Link-contention state: the time each node's egress/ingress link frees
  // up. Ingress couples senders cluster-wide — sequential mode only.
  std::unordered_map<std::uint32_t, sim::Time> egress_free_;
  std::unordered_map<std::uint32_t, sim::Time> ingress_free_;
};

}  // namespace pasched::net
