#include "net/clock_sync.hpp"

namespace pasched::net {

sim::Duration synchronize(kern::LocalClock& clock, const SwitchClock& sw,
                          const ClockSyncConfig& cfg, sim::Rng& rng) {
  (void)sw;  // the register value *is* global time; only the error matters
  const auto bound = cfg.max_residual_error.count();
  const sim::Duration residual = sim::Duration::ns(
      rng.uniform_int(-bound, bound));
  clock.set_offset(residual);
  return residual;
}

}  // namespace pasched::net
