// The SP switch exposes a globally synchronized clock register; PSSP lets an
// ordinary user program read it. The co-scheduler startup sequence reads it
// and slews the node's local (AIX) time-of-day so the low-order bits match
// (§4). We model this as: switch time == true global simulation time, and
// synchronization sets the node clock's offset to a small residual error.
#pragma once

#include "kern/clock.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pasched::net {

class SwitchClock {
 public:
  explicit SwitchClock(const sim::Engine& engine) : engine_(engine) {}

  /// Reading the adapter's time register: the true global time.
  [[nodiscard]] sim::Time read() const { return engine_.now(); }

 private:
  const sim::Engine& engine_;
};

struct ClockSyncConfig {
  /// Residual error after synchronization (register read + slew accuracy).
  sim::Duration max_residual_error = sim::Duration::us(2);
};

/// Synchronizes a node's local clock against the switch clock. Returns the
/// offset that remains after synchronization.
sim::Duration synchronize(kern::LocalClock& clock, const SwitchClock& sw,
                          const ClockSyncConfig& cfg, sim::Rng& rng);

}  // namespace pasched::net
