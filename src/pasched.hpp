// Umbrella header: the full public API of the pasched library.
//
//   #include "pasched.hpp"
//
// pulls in the simulation engine, the kernel/daemon/network substrates, the
// MPI runtime, the co-scheduler (the paper's contribution) and the bundled
// workloads. Most users only need core/simulation.hpp + apps/*.
#pragma once

#include "sim/engine.hpp"      // IWYU pragma: export
#include "sim/random.hpp"      // IWYU pragma: export
#include "sim/time.hpp"        // IWYU pragma: export

#include "kern/kernel.hpp"     // IWYU pragma: export
#include "kern/schedtune.hpp"  // IWYU pragma: export
#include "kern/tunables.hpp"   // IWYU pragma: export

#include "daemons/registry.hpp"  // IWYU pragma: export
#include "net/clock_sync.hpp"    // IWYU pragma: export
#include "net/fabric.hpp"        // IWYU pragma: export

#include "cluster/cluster.hpp"  // IWYU pragma: export

#include "mpi/collectives.hpp"  // IWYU pragma: export
#include "mpi/job.hpp"          // IWYU pragma: export

#include "trace/trace.hpp"  // IWYU pragma: export

#include "analysis/analyzer.hpp"    // IWYU pragma: export
#include "analysis/diagnostic.hpp"  // IWYU pragma: export
#include "analysis/hb.hpp"          // IWYU pragma: export
#include "analysis/lint.hpp"        // IWYU pragma: export

#include "core/admin.hpp"        // IWYU pragma: export
#include "core/coscheduler.hpp"  // IWYU pragma: export
#include "core/presets.hpp"      // IWYU pragma: export
#include "core/simulation.hpp"   // IWYU pragma: export

#include "apps/aggregate_trace.hpp"  // IWYU pragma: export
#include "apps/ale3d_proxy.hpp"      // IWYU pragma: export
#include "apps/bsp.hpp"              // IWYU pragma: export
#include "apps/implicit_cg.hpp"      // IWYU pragma: export
#include "apps/sweep3d_proxy.hpp"    // IWYU pragma: export
#include "apps/channels.hpp"         // IWYU pragma: export

#include "util/flags.hpp"  // IWYU pragma: export
#include "util/stats.hpp"  // IWYU pragma: export
#include "util/table.hpp"  // IWYU pragma: export
