// Minimal command-line flag parser for the bench/example binaries.
// Syntax: --name=value or --name value; bare --name sets a bool flag true.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pasched::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name,
                                std::string_view fallback) const;
  [[nodiscard]] long long get_int(std::string_view name,
                                  long long fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags the caller never queried — useful for typo detection.
  [[nodiscard]] std::vector<std::string> unknown(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace pasched::util
