#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace pasched::util {

namespace {

std::string render_rows(std::size_t bins, std::size_t max_bar,
                        const std::vector<std::size_t>& counts,
                        const std::function<double(std::size_t)>& lo_of,
                        const std::function<double(std::size_t)>& hi_of) {
  std::size_t peak = 1;
  for (auto c : counts) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < bins; ++b) {
    const auto bar = counts[b] * max_bar / peak;
    os << format_double(lo_of(b), 3) << " .. " << format_double(hi_of(b), 3)
       << " | " << std::string(bar, '#') << " " << counts[b] << "\n";
  }
  return os.str();
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  PASCHED_EXPECTS(hi > lo);
  PASCHED_EXPECTS(bins > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  if (x >= hi_) {
    ++over_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  PASCHED_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  PASCHED_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  PASCHED_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  return render_rows(
      counts_.size(), max_bar_width, counts_,
      [this](std::size_t b) { return bin_low(b); },
      [this](std::size_t b) { return bin_high(b); });
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), counts_(bins, 0) {
  PASCHED_EXPECTS(lo > 0.0 && hi > lo);
  PASCHED_EXPECTS(bins > 0);
  ratio_ = std::pow(hi / lo, 1.0 / static_cast<double>(bins));
}

void LogHistogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  const auto raw = std::log(x / lo_) / std::log(ratio_);
  if (raw >= static_cast<double>(counts_.size())) {
    ++over_;
    return;
  }
  ++counts_[static_cast<std::size_t>(raw)];
}

std::size_t LogHistogram::count(std::size_t bin) const {
  PASCHED_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double LogHistogram::bin_low(std::size_t bin) const {
  PASCHED_EXPECTS(bin < counts_.size());
  return lo_ * std::pow(ratio_, static_cast<double>(bin));
}

double LogHistogram::bin_high(std::size_t bin) const {
  PASCHED_EXPECTS(bin < counts_.size());
  return lo_ * std::pow(ratio_, static_cast<double>(bin + 1));
}

std::string LogHistogram::render(std::size_t max_bar_width) const {
  return render_rows(
      counts_.size(), max_bar_width, counts_,
      [this](std::size_t b) { return bin_low(b); },
      [this](std::size_t b) { return bin_high(b); });
}

}  // namespace pasched::util
