// Cache-line isolation for per-shard state. Adjacent vector elements (or
// struct fields) written by different shard workers share 64-byte lines and
// turn independent writes into coherence traffic — the false-sharing
// pathology pasched-contend's PSL503 lints for. Wrapping the element in
// CacheAligned pads each instance to its own line.
#pragma once

#include <cstddef>
#include <new>

namespace pasched::util {

/// The coherence granule the PSL503 layout lint assumes. Hardcoded rather
/// than std::hardware_destructive_interference_size so the layout (and the
/// lint's verdict) is identical across toolchains.
inline constexpr std::size_t kCacheLineBytes = 64;

/// One value alone on its cache line(s). Deliberately transparent: `.v` is
/// the value, nothing else. Usable as a vector element — each slot of a
/// per-shard array then owns its line outright.
template <class T>
struct alignas(kCacheLineBytes) CacheAligned {
  T v{};

  CacheAligned() = default;
  explicit CacheAligned(T init) : v(static_cast<T&&>(init)) {}
};

}  // namespace pasched::util
