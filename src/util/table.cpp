#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace pasched::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PASCHED_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PASCHED_EXPECTS_MSG(cells.size() == headers_.size(),
                      "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  return format_double(v, precision);
}
std::string Table::cell(long long v) { return std::to_string(v); }
std::string Table::cell(unsigned long long v) { return std::to_string(v); }
std::string Table::cell(int v) { return std::to_string(v); }
std::string Table::cell(std::size_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

void print_section(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace pasched::util
