// Fixed-width console table printer. Every reproduction bench reports its
// rows through this so the harness output is uniform and diffable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pasched::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell builders.
  static std::string cell(const std::string& s) { return s; }
  static std::string cell(double v, int precision = 2);
  static std::string cell(long long v);
  static std::string cell(unsigned long long v);
  static std::string cell(int v);
  static std::string cell(std::size_t v);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders with a header rule; columns are right-aligned except the first.
  [[nodiscard]] std::string render() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a titled section banner around a table (bench output convention).
void print_section(std::ostream& os, const std::string& title);

}  // namespace pasched::util
