// Small string utilities shared by the config reader, table printer and
// benchmark output code.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pasched::util {

[[nodiscard]] std::string trim(std::string_view s);
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] std::string to_lower(std::string_view s);

/// Parses an integer/double/bool; returns nullopt on any trailing garbage.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s);
[[nodiscard]] std::optional<double> parse_double(std::string_view s);
[[nodiscard]] std::optional<bool> parse_bool(std::string_view s);

/// Fixed-precision double formatting without locale surprises.
[[nodiscard]] std::string format_double(double x, int precision);

/// Human-readable duration given nanoseconds (e.g. "350.2 us", "1.32 s").
[[nodiscard]] std::string format_ns(long long ns);

}  // namespace pasched::util
