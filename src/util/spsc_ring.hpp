// Bounded single-producer/single-consumer ring for the partitioned core's
// cross-shard pair channels. One ring per (source shard, destination shard)
// pair replaces the mutex-guarded inbox: the producer is the worker that
// owns the source shard, the consumer the worker that owns the destination,
// and the only shared state is a pair of cache-line-isolated indices — a
// push or pop is one store plus (amortized) one cache-coherence miss.
//
// The indices are monotone uint64 counters; the slot array is a power-of-two
// so `idx & mask` wraps. Producer and consumer each keep a *cached* copy of
// the other side's index and only re-read the shared atomic when the cache
// says the ring looks full/empty — the Lamport-queue refinement that keeps
// steady-state traffic off the shared lines entirely.
//
// Memory ordering: push publishes the slot with a release store of tail_ and
// the consumer acquires it, so the element's payload (including a moved-in
// callback's captures) is visible before the consumer can observe the new
// tail. pop releases head_ after the consumer moved the element out, so the
// producer can only reuse a slot it can safely overwrite.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned.hpp"
#include "util/hotpath.hpp"

namespace pasched::util {

template <class T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  // Producer side -------------------------------------------------------------
  /// False when the ring is full (the caller falls back to its overflow
  /// path); never blocks — blocking here would deadlock the window
  /// protocol, since the consumer only drains after the producer's horizon
  /// advances past the window that is doing the pushing.
  [[nodiscard]] PASCHED_HOT bool try_push(T&& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = static_cast<T&&>(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side -------------------------------------------------------------
  /// The element at the head, or nullptr when the ring is empty. The
  /// reference stays valid until pop(); the consumer may move out of it.
  [[nodiscard]] PASCHED_HOT T* front() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &slots_[static_cast<std::size_t>(head) & mask_];
  }

  /// Drops the head element (must exist). Resets the slot so captured
  /// state (e.g. a callback's payload) dies now, not at the next overwrite.
  PASCHED_HOT void pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(head) & mask_] = T{};
    head_.store(head + 1, std::memory_order_release);
  }

  /// Consumer-side emptiness (exact for the consumer; a racing producer may
  /// have pushed since).
  [[nodiscard]] bool empty() { return front() == nullptr; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 1;
  // Shared indices, one line each: head_ is consumer-written/producer-read,
  // tail_ the reverse (PSL503 layout discipline).
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
  // Cached peer indices, each owned by exactly one side.
  alignas(kCacheLineBytes) std::uint64_t head_cache_ = 0;  // producer-owned
  alignas(kCacheLineBytes) std::uint64_t tail_cache_ = 0;  // consumer-owned
};

}  // namespace pasched::util
