#include "util/allocgate.hpp"

#include <cstring>
#include <mutex>

namespace pasched::util {

namespace {

struct SiteEntry {
  const char* name = "";
  AllocSiteKind kind = AllocSiteKind::Core;
};

// Fixed storage: alloc_site_name() must stay valid (and allocation-free)
// while the operator new/delete hook is live, so the registry never
// reallocates. Registration is cold (function-local statics at the sites).
std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

struct Registry {
  SiteEntry entries[kMaxAllocSites];
  int count = 1;  // slot 0 is the implicit "(unscoped)" bucket
  Registry() { entries[0] = SiteEntry{"(unscoped)", AllocSiteKind::Dispatch}; }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

int register_alloc_site(const char* name, AllocSiteKind kind) {
  const std::scoped_lock lk(registry_mu());
  Registry& r = registry();
  for (int i = 0; i < r.count; ++i)
    if (std::strcmp(r.entries[i].name, name) == 0) return i;
  if (r.count >= kMaxAllocSites) return kMaxAllocSites - 1;  // overflow bucket
  r.entries[r.count] = SiteEntry{name, kind};
  return r.count++;
}

const char* alloc_site_name(int site) {
  const std::scoped_lock lk(registry_mu());
  const Registry& r = registry();
  if (site < 0 || site >= r.count) return "<unregistered>";
  return r.entries[site].name;
}

AllocSiteKind alloc_site_kind(int site) {
  const std::scoped_lock lk(registry_mu());
  const Registry& r = registry();
  if (site < 0 || site >= r.count) return AllocSiteKind::Dispatch;
  return r.entries[site].kind;
}

int alloc_site_count() {
  const std::scoped_lock lk(registry_mu());
  return registry().count;
}

#if PASCHED_VALIDATE_ENABLED
namespace detail {
thread_local int tl_alloc_site = 0;
thread_local AllocPhase tl_alloc_phase = AllocPhase::Cold;
}  // namespace detail
#endif

}  // namespace pasched::util
