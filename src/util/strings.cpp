#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pasched::util {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<long long> parse_int(std::string_view s) {
  const std::string t = trim(s);
  if (t.empty()) return std::nullopt;
  long long v = 0;
  const auto* first = t.data();
  const auto* last = t.data() + t.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  const std::string t = trim(s);
  if (t.empty()) return std::nullopt;
  // std::from_chars<double> availability varies; strtod is fine here.
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return std::nullopt;
  return v;
}

std::optional<bool> parse_bool(std::string_view s) {
  const std::string t = to_lower(trim(s));
  if (t == "1" || t == "true" || t == "yes" || t == "on") return true;
  if (t == "0" || t == "false" || t == "no" || t == "off") return false;
  return std::nullopt;
}

std::string format_double(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

std::string format_ns(long long ns) {
  const double v = static_cast<double>(ns);
  if (std::llabs(ns) < 1000) return format_double(v, 0) + " ns";
  if (std::llabs(ns) < 1000000) return format_double(v / 1e3, 2) + " us";
  if (std::llabs(ns) < 1000000000) return format_double(v / 1e6, 2) + " ms";
  return format_double(v / 1e9, 2) + " s";
}

}  // namespace pasched::util
