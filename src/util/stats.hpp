// Descriptive statistics and least-squares fitting used by the benchmark
// harness to reproduce the paper's reported quantities (means, medians,
// percentile outliers, coefficient of variation, and the linear fits of
// Figure 6).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pasched::util {

/// Running single-pass accumulator (Welford) for mean/variance; suitable for
/// long simulation streams where storing every sample is wasteful.
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const noexcept;
  void merge(const Accumulator& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a full sample set (stores a sorted copy on construction).
class Summary {
 public:
  explicit Summary(std::span<const double> samples);

  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }
  [[nodiscard]] double cv() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double median() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
  double total_ = 0.0;
};

/// Result of an ordinary least-squares straight-line fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;
};

/// Fits y = slope*x + intercept; requires xs.size() == ys.size() >= 2 and at
/// least two distinct x values.
[[nodiscard]] LinearFit fit_line(std::span<const double> xs,
                                 std::span<const double> ys);

/// Convenience: arithmetic mean of a span (0 for empty input).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Convenience: median of a span (copies and sorts; 0 for empty input).
[[nodiscard]] double median_of(std::span<const double> xs);

}  // namespace pasched::util
