#include "util/seam.hpp"

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

namespace pasched::util {

namespace {

struct SiteEntry {
  std::string name;
  SeamKind kind = SeamKind::Mutex;
};

// Registration is cold (engine construction); lookups copy nothing.
std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<SiteEntry>& registry() {
  static std::vector<SiteEntry> sites;
  return sites;
}

std::atomic<SeamObserver*> g_observer{nullptr};

}  // namespace

int register_seam_site(const char* name, SeamKind kind) {
  const std::scoped_lock lk(registry_mu());
  std::vector<SiteEntry>& sites = registry();
  for (std::size_t i = 0; i < sites.size(); ++i)
    if (sites[i].name == name) return static_cast<int>(i);
  if (sites.size() >= static_cast<std::size_t>(kMaxSeamSites))
    return kMaxSeamSites - 1;  // overflow bucket; never expected in practice
  sites.push_back(SiteEntry{name, kind});
  return static_cast<int>(sites.size()) - 1;
}

const char* seam_site_name(int site) {
  const std::scoped_lock lk(registry_mu());
  const std::vector<SiteEntry>& sites = registry();
  if (site < 0 || static_cast<std::size_t>(site) >= sites.size())
    return "<unregistered>";
  return sites[static_cast<std::size_t>(site)].name.c_str();
}

SeamKind seam_site_kind(int site) {
  const std::scoped_lock lk(registry_mu());
  const std::vector<SiteEntry>& sites = registry();
  if (site < 0 || static_cast<std::size_t>(site) >= sites.size())
    return SeamKind::Mutex;
  return sites[static_cast<std::size_t>(site)].kind;
}

int seam_site_count() {
  const std::scoped_lock lk(registry_mu());
  return static_cast<int>(registry().size());
}

void install_seam_observer(SeamObserver* obs) noexcept {
  g_observer.store(obs, std::memory_order_release);
}

SeamObserver* seam_observer() noexcept {
  return g_observer.load(std::memory_order_acquire);
}

}  // namespace pasched::util
