// A tiny INI-style configuration reader: `[section]` headers and
// `key = value` lines, `#`/`;` comments. Used for experiment configuration
// files; the /etc/poe.priority admin file has its own record format parsed
// in core/admin.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pasched::util {

class Config {
 public:
  Config() = default;

  /// Parses from text; throws std::logic_error with line info on bad syntax.
  static Config parse(std::string_view text);
  /// Loads a file; throws on I/O failure or bad syntax.
  static Config load(const std::string& path);

  void set(const std::string& section, const std::string& key,
           std::string value);

  [[nodiscard]] bool has(std::string_view section, std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view section,
                                               std::string_view key) const;
  [[nodiscard]] std::string get_or(std::string_view section,
                                   std::string_view key,
                                   std::string_view fallback) const;
  [[nodiscard]] long long get_int(std::string_view section,
                                  std::string_view key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(std::string_view section,
                                  std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view section, std::string_view key,
                              bool fallback) const;

  [[nodiscard]] std::vector<std::string> sections() const;
  [[nodiscard]] std::vector<std::string> keys(std::string_view section) const;

 private:
  // section -> key -> value; "" is the implicit top-level section.
  std::map<std::string, std::map<std::string, std::string, std::less<>>,
           std::less<>>
      data_;
};

}  // namespace pasched::util
