#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace pasched::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::cv() const noexcept {
  return mean_ == 0.0 ? 0.0 : stddev() / mean_;
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary::Summary(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
  Accumulator acc;
  for (double x : sorted_) acc.add(x);
  mean_ = acc.mean();
  stddev_ = acc.stddev();
  total_ = acc.sum();
}

double Summary::cv() const noexcept {
  return mean_ == 0.0 ? 0.0 : stddev_ / mean_;
}

double Summary::min() const noexcept {
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Summary::max() const noexcept {
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Summary::median() const { return percentile(50.0); }

double Summary::percentile(double p) const {
  PASCHED_EXPECTS_MSG(!sorted_.empty(), "percentile of empty sample set");
  PASCHED_EXPECTS(p >= 0.0 && p <= 100.0);
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  PASCHED_EXPECTS(xs.size() == ys.size());
  PASCHED_EXPECTS_MSG(xs.size() >= 2, "need at least two points to fit");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  PASCHED_EXPECTS_MSG(sxx > 0.0, "all x values identical");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  fit.n = xs.size();
  return fit;
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double median_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return Summary(xs).median();
}

}  // namespace pasched::util
