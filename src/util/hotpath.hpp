// PASCHED_HOT: the hot-path contract marker. A function annotated with it
// promises the event hot path's discipline — no heap allocation, no
// std::mutex (or any blocking) acquisition, no throw, no blocking I/O in its
// body. The promise is enforced *statically* by pasched-srclint rule PSL403
// (tools/pasched-srclint), which binds the marker token to the function body
// and scans it; at runtime the macro costs nothing (it only forwards the
// compiler's `hot` attribute when available, which nudges block placement).
//
// Annotate the per-event functions (fired once per event or more), not the
// per-window ones: a window barrier or an inbox-mutex swap is allowed to
// block, so it must stay *outside* a PASCHED_HOT function and call into one.
//
// Scope of the static guarantee (see DESIGN.md §5.7): PSL403 catches the
// explicit tokens — `new` (non-placement), malloc/calloc/realloc,
// make_unique/make_shared, mutex/lock types, `throw`, sleeps and waits,
// stdio/iostream writes. Amortized growth inside an already-owned
// std::vector (push_back under reserved capacity) is deliberately out of
// scope: killing even that is ROADMAP open item 2's arena/slab overhaul.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define PASCHED_HOT __attribute__((hot))
#else
#define PASCHED_HOT
#endif
