// PASCHED_HOT: the hot-path contract marker. A function annotated with it
// promises the event hot path's discipline — no heap allocation, no
// std::mutex (or any blocking) acquisition, no throw, no blocking I/O in its
// body. The promise is enforced *statically* by pasched-srclint rule PSL403
// (explicit alloc/lock/throw/IO tokens) and by pasched-alloc rules
// PSL601/PSL602 (owning-container declarations and undisciplined container
// growth); at runtime the macro costs nothing (it only forwards the
// compiler's `hot` attribute when available, which nudges block placement).
//
// Annotate the per-event functions (fired once per event or more), not the
// per-window ones: a window barrier or an inbox-mutex swap is allowed to
// block, so it must stay *outside* a PASCHED_HOT function and call into one.
//
// Scope of the static guarantee (see DESIGN.md §5.7/§5.9): amortized growth
// inside an already-owned member container is allowed only under the
// reserve/reused-scratch discipline PSL602 checks, and must sit inside a
// PASCHED_ALLOC_COLD_REGION (util/allocgate.hpp) so the runtime allocation
// ledger prices it as cold. Functions that scan clean earn a PSL605
// "allocation-free region" claim; the ledger refutes a violated claim at
// runtime as PSL606.
//
// PASCHED_ARENA: the arena-residency contract marker for event payload
// types (heap items, cross-shard envelopes). An annotated struct promises it
// is trivially destructible and trivially copyable and owns no heap memory —
// the slab/free-list storage the engine keeps such values in never runs
// destructors per element and relocates blocks with memcpy semantics.
// Enforced statically by pasched-alloc rule PSL604 (user-declared
// destructor, virtual members, owning members are violations); pair the
// annotation with a static_assert on std::is_trivially_destructible_v /
// std::is_trivially_copyable_v so the compiler enforces what the analyzer
// certifies. The macro itself expands to nothing.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define PASCHED_HOT __attribute__((hot))
#else
#define PASCHED_HOT
#endif

#define PASCHED_ARENA
