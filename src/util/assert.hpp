// Lightweight always-on contract checks, in the spirit of the C++ Core
// Guidelines' Expects/Ensures. The simulator is deterministic; a violated
// invariant means a modeling bug, so we fail fast with a precise message
// rather than continuing with a corrupt schedule.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pasched::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace pasched::util

#define PASCHED_EXPECTS(cond)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::pasched::util::contract_failure("Precondition", #cond, __FILE__,     \
                                        __LINE__, "");                       \
  } while (0)

#define PASCHED_EXPECTS_MSG(cond, msg)                                       \
  do {                                                                       \
    if (!(cond))                                                             \
      ::pasched::util::contract_failure("Precondition", #cond, __FILE__,     \
                                        __LINE__, (msg));                    \
  } while (0)

#define PASCHED_ENSURES(cond)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::pasched::util::contract_failure("Postcondition", #cond, __FILE__,    \
                                        __LINE__, "");                       \
  } while (0)

#define PASCHED_ASSERT(cond)                                                 \
  do {                                                                       \
    if (!(cond))                                                             \
      ::pasched::util::contract_failure("Invariant", #cond, __FILE__,        \
                                        __LINE__, "");                       \
  } while (0)

#define PASCHED_ASSERT_MSG(cond, msg)                                        \
  do {                                                                       \
    if (!(cond))                                                             \
      ::pasched::util::contract_failure("Invariant", #cond, __FILE__,        \
                                        __LINE__, (msg));                    \
  } while (0)
