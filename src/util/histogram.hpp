// Fixed-bin histogram with ASCII rendering, used by the trace-forensics
// example and by benches that show distribution shape (Figure 4).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pasched::util {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); samples outside are counted in under/over.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return over_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  /// Multi-line ASCII rendering: one row per bin with a proportional bar.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t under_ = 0;
  std::size_t over_ = 0;
  std::size_t total_ = 0;
};

/// Histogram whose bins grow geometrically — right choice for latency data
/// that spans microseconds to hundreds of milliseconds (Allreduce outliers).
class LogHistogram {
 public:
  /// Bins: [lo*r^k, lo*r^(k+1)) for k = 0..bins-1 where r is chosen so the
  /// last bin ends at hi. Requires 0 < lo < hi.
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double ratio_;
  std::vector<std::size_t> counts_;
  std::size_t under_ = 0;
  std::size_t over_ = 0;
  std::size_t total_ = 0;
};

}  // namespace pasched::util
