#include "util/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace pasched::util {

Config Config::parse(std::string_view text) {
  Config cfg;
  std::string section;
  int lineno = 0;
  for (const auto& raw : split(text, '\n')) {
    ++lineno;
    std::string line = trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::logic_error("config line " + std::to_string(lineno) +
                               ": unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      // Register the section even if empty.
      cfg.data_[section];
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::logic_error("config line " + std::to_string(lineno) +
                             ": expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw std::logic_error("config line " + std::to_string(lineno) +
                             ": empty key");
    cfg.data_[section][key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::logic_error("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Config::set(const std::string& section, const std::string& key,
                 std::string value) {
  data_[section][key] = std::move(value);
}

bool Config::has(std::string_view section, std::string_view key) const {
  const auto s = data_.find(section);
  if (s == data_.end()) return false;
  return s->second.find(key) != s->second.end();
}

std::optional<std::string> Config::get(std::string_view section,
                                       std::string_view key) const {
  const auto s = data_.find(section);
  if (s == data_.end()) return std::nullopt;
  const auto k = s->second.find(key);
  if (k == s->second.end()) return std::nullopt;
  return k->second;
}

std::string Config::get_or(std::string_view section, std::string_view key,
                           std::string_view fallback) const {
  const auto v = get(section, key);
  return v ? *v : std::string(fallback);
}

long long Config::get_int(std::string_view section, std::string_view key,
                          long long fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const auto parsed = parse_int(*v);
  PASCHED_EXPECTS_MSG(parsed.has_value(),
                      "config key is not an integer: " + *v);
  return *parsed;
}

double Config::get_double(std::string_view section, std::string_view key,
                          double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const auto parsed = parse_double(*v);
  PASCHED_EXPECTS_MSG(parsed.has_value(), "config key is not a number: " + *v);
  return *parsed;
}

bool Config::get_bool(std::string_view section, std::string_view key,
                      bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const auto parsed = parse_bool(*v);
  PASCHED_EXPECTS_MSG(parsed.has_value(), "config key is not a bool: " + *v);
  return *parsed;
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  for (const auto& [s, _] : data_) out.push_back(s);
  return out;
}

std::vector<std::string> Config::keys(std::string_view section) const {
  std::vector<std::string> out;
  const auto s = data_.find(section);
  if (s == data_.end()) return out;
  for (const auto& [k, _] : s->second) out.push_back(k);
  return out;
}

}  // namespace pasched::util
