#include "util/flags.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace pasched::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Flags::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::get(std::string_view name, std::string_view fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::string(fallback) : it->second;
}

long long Flags::get_int(std::string_view name, long long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto v = parse_int(it->second);
  PASCHED_EXPECTS_MSG(v.has_value(), "flag --" + std::string(name) +
                                         " expects an integer, got '" +
                                         it->second + "'");
  return *v;
}

double Flags::get_double(std::string_view name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto v = parse_double(it->second);
  PASCHED_EXPECTS_MSG(v.has_value(), "flag --" + std::string(name) +
                                         " expects a number, got '" +
                                         it->second + "'");
  return *v;
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto v = parse_bool(it->second);
  PASCHED_EXPECTS_MSG(v.has_value(), "flag --" + std::string(name) +
                                         " expects a bool, got '" +
                                         it->second + "'");
  return *v;
}

std::vector<std::string> Flags::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    if (std::find(known.begin(), known.end(), k) == known.end())
      out.push_back(k);
  }
  return out;
}

}  // namespace pasched::util
