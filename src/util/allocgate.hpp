// Allocation attribution gate: the thread-local (site, phase) context the
// pasched-alloc runtime ledger charges heap traffic to. The engine brackets
// its per-event core with PASCHED_ALLOC_HOT_SCOPE sites and its sanctioned
// amortized growth (slab refills, capacity doubling) with
// PASCHED_ALLOC_COLD_REGION, so under -DPASCHED_VALIDATE=ON the global
// operator new/delete hook (src/alloc/hook.cpp) can split every allocation
// into "hot window" vs "barrier/cold" buckets per site; under
// -DPASCHED_VALIDATE=OFF every macro below compiles to nothing and no hook
// exists — the same zero-overhead contract as util::SeamMutex.
//
// Site kinds:
//   Core      engine/kernel bookkeeping the static analyzer certifies
//             allocation-free (PSL605 claims join these rows by name; a hot
//             allocation here refutes the claim as PSL606)
//   Dispatch  callback execution (application/daemon code run *by* the
//             engine) — measured as workload allocation pressure, never
//             counted against an engine claim
//
// Naming convention: Core sites use the qualified function name
// ("Engine::schedule_at") so PSL605's statically derived claims join the
// runtime rows directly; Dispatch sites use "Class.member" ("Engine.callback").
#pragma once

#include <cstdint>

namespace pasched::util {

enum class AllocPhase : std::uint8_t { Cold = 0, Hot = 1 };
enum class AllocSiteKind : std::uint8_t { Core, Dispatch };

/// Fixed capacity of the site registry: the hook indexes per-thread counter
/// blocks by site id without allocation or locking on the hot path.
inline constexpr int kMaxAllocSites = 64;

/// Registers (or finds) the site named `name`; idempotent by name, capped at
/// kMaxAllocSites (overflow returns the last slot). Cold path. `name` must
/// be a string literal (the registry keeps the pointer).
int register_alloc_site(const char* name, AllocSiteKind kind);
[[nodiscard]] const char* alloc_site_name(int site);
[[nodiscard]] AllocSiteKind alloc_site_kind(int site);
[[nodiscard]] int alloc_site_count();

#if PASCHED_VALIDATE_ENABLED

namespace detail {
// Owned by the current thread; read by the operator new/delete hook on the
// same thread. Site 0 is the implicit "(unscoped)" bucket.
extern thread_local int tl_alloc_site;
extern thread_local AllocPhase tl_alloc_phase;
}  // namespace detail

/// RAII attribution scope: charges allocations on this thread to `site`
/// under `phase` until scope exit, then restores the previous context.
class AllocScope {
 public:
  AllocScope(int site, AllocPhase phase) noexcept
      : prev_site_(detail::tl_alloc_site),
        prev_phase_(detail::tl_alloc_phase) {
    detail::tl_alloc_site = site;
    detail::tl_alloc_phase = phase;
  }
  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;
  ~AllocScope() {
    detail::tl_alloc_site = prev_site_;
    detail::tl_alloc_phase = prev_phase_;
  }

 private:
  int prev_site_;
  AllocPhase prev_phase_;
};

/// Phase-only override: keeps the current site but charges the region as
/// Cold — the sanctioned-amortized-growth bracket (slab refill, capacity
/// doubling). The allocation still shows on the caller's row, just in the
/// cold bucket, so a claim check (hot-bucket only) is not refuted by growth
/// the discipline explicitly allows.
class AllocColdRegion {
 public:
  AllocColdRegion() noexcept : prev_phase_(detail::tl_alloc_phase) {
    detail::tl_alloc_phase = AllocPhase::Cold;
  }
  AllocColdRegion(const AllocColdRegion&) = delete;
  AllocColdRegion& operator=(const AllocColdRegion&) = delete;
  ~AllocColdRegion() { detail::tl_alloc_phase = prev_phase_; }

 private:
  AllocPhase prev_phase_;
};

// Line-unique variable names so a dispatch scope may nest inside a hot
// scope in the same function (Kernel::on_tick does). Site registration is
// a function-local static: first call registers, later calls are one guard
// load.
#define PASCHED_ALLOC_CAT2(a, b) a##b
#define PASCHED_ALLOC_CAT(a, b) PASCHED_ALLOC_CAT2(a, b)
#define PASCHED_ALLOC_SCOPE_IMPL(name_literal, kind, phase)                  \
  static const int PASCHED_ALLOC_CAT(pasched_alloc_site_id_, __LINE__) =     \
      ::pasched::util::register_alloc_site(name_literal,                     \
                                           ::pasched::util::kind);           \
  const ::pasched::util::AllocScope PASCHED_ALLOC_CAT(pasched_alloc_scope_,  \
                                                      __LINE__)(             \
      PASCHED_ALLOC_CAT(pasched_alloc_site_id_, __LINE__),                   \
      ::pasched::util::phase)

#define PASCHED_ALLOC_HOT_SCOPE(name_literal) \
  PASCHED_ALLOC_SCOPE_IMPL(name_literal, AllocSiteKind::Core, AllocPhase::Hot)
#define PASCHED_ALLOC_COLD_SCOPE(name_literal)                              \
  PASCHED_ALLOC_SCOPE_IMPL(name_literal, AllocSiteKind::Core,               \
                           AllocPhase::Cold)
#define PASCHED_ALLOC_DISPATCH_SCOPE(name_literal)                          \
  PASCHED_ALLOC_SCOPE_IMPL(name_literal, AllocSiteKind::Dispatch,           \
                           AllocPhase::Hot)
#define PASCHED_ALLOC_COLD_REGION() \
  const ::pasched::util::AllocColdRegion pasched_alloc_cold_region_

#else  // !PASCHED_VALIDATE_ENABLED

#define PASCHED_ALLOC_HOT_SCOPE(name_literal) static_cast<void>(0)
#define PASCHED_ALLOC_COLD_SCOPE(name_literal) static_cast<void>(0)
#define PASCHED_ALLOC_DISPATCH_SCOPE(name_literal) static_cast<void>(0)
#define PASCHED_ALLOC_COLD_REGION() static_cast<void>(0)

#endif  // PASCHED_VALIDATE_ENABLED

/// Grows `v` to hold at least `n` elements inside a cold allocation region
/// (capacity doubles, so steady-state callers never re-enter). The helper
/// every hot-path member scratch buffer uses before its push_back loop —
/// the reuse discipline PSL602 certifies.
template <class V>
inline void reserve_cold(V& v, typename V::size_type n) {
  if (v.capacity() >= n) return;
  PASCHED_ALLOC_COLD_REGION();
  typename V::size_type want = v.capacity() == 0 ? 16 : v.capacity() * 2;
  if (want < n) want = n;
  v.reserve(want);
}

}  // namespace pasched::util
