// Instrumented synchronization seams. SeamMutex and SeamBarrier are the
// drop-in std::mutex / std::barrier the partitioned core uses at its
// serialization points (ShardedEngine inbox posts, wrapup registration, the
// window barrier). Under -DPASCHED_VALIDATE=ON each operation notifies the
// installed SeamObserver (contend::Ledger) with per-site wait and hold
// times so the contention ledger can rank serialization sites; under
// -DPASCHED_VALIDATE=OFF both types forward straight to the std primitive —
// no observer test, no clock read, no extra state.
//
// Sites are registered by name ("Inbox.mu", "ShardedEngine.window_barrier");
// instances sharing a name aggregate into one ledger row, which is what a
// per-shard array of inbox mutexes wants. The name convention is
// "Class.member" so the static analyzer's PSL505 serialization claims join
// the runtime rows directly.
#pragma once

#include <barrier>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace pasched::util {

enum class SeamKind : std::uint8_t { Mutex, Barrier, Wait };

/// Fixed capacity of the site registry: observer slots index by site id
/// without allocation or locking on the hot path.
inline constexpr int kMaxSeamSites = 64;

/// Contention event sink. Implementations must be thread-safe: callbacks
/// arrive concurrently from every shard worker. on_acquire/on_release run
/// with the site's mutex held, so per-site work must stay tiny.
class SeamObserver {
 public:
  virtual ~SeamObserver() = default;
  /// The calling thread acquired `site`. `wait_ns` is the time it blocked
  /// first (0 when the fast path took the lock uncontended).
  virtual void on_acquire(int site, std::uint64_t wait_ns,
                          bool contended) noexcept = 0;
  /// The calling thread released `site` after holding it `hold_ns`.
  virtual void on_release(int site, std::uint64_t hold_ns) noexcept = 0;
  /// The calling thread spent `wait_ns` parked at barrier `site`.
  virtual void on_barrier_wait(int site, std::uint64_t wait_ns) noexcept = 0;
  /// The calling thread spent `wait_ns` in a point-to-point spin wait at
  /// `site` (SeamKind::Wait — the partitioned core's neighbor-horizon
  /// waits). Deliberately *not* pure: wait sites postdate the mutex/barrier
  /// hooks, and the default keeps older observers source-compatible.
  /// Ledger implementations should price these in total wait but not as
  /// barrier time — a horizon spin is pairwise, not global, serialization.
  virtual void on_wait(int /*site*/, std::uint64_t /*wait_ns*/) noexcept {}
};

/// Registers (or finds) the site named `name`; idempotent by name, capped
/// at kMaxSeamSites (overflow returns the last slot). Cold path.
int register_seam_site(const char* name, SeamKind kind);
[[nodiscard]] const char* seam_site_name(int site);
[[nodiscard]] SeamKind seam_site_kind(int site);
[[nodiscard]] int seam_site_count();

/// Installs the process-wide observer (nullptr to clear). Install/clear
/// only while no instrumented seam is in motion (before run_until / after
/// it returns).
void install_seam_observer(SeamObserver* obs) noexcept;
[[nodiscard]] SeamObserver* seam_observer() noexcept;

namespace detail {
[[nodiscard]] inline std::uint64_t seam_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace detail

#if PASCHED_VALIDATE_ENABLED

/// std::mutex with per-site contention accounting (Lockable).
class SeamMutex {
 public:
  explicit SeamMutex(int site) noexcept : site_(site) {}
  SeamMutex(const SeamMutex&) = delete;
  SeamMutex& operator=(const SeamMutex&) = delete;

  void lock() {
    SeamObserver* obs = seam_observer();
    if (obs == nullptr) {
      mu_.lock();
      acquired_ns_ = 0;
      return;
    }
    if (mu_.try_lock()) {
      acquired_ns_ = detail::seam_now_ns();
      obs->on_acquire(site_, 0, /*contended=*/false);
      return;
    }
    const std::uint64_t t0 = detail::seam_now_ns();
    mu_.lock();
    acquired_ns_ = detail::seam_now_ns();
    obs->on_acquire(site_, acquired_ns_ - t0, /*contended=*/true);
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    SeamObserver* obs = seam_observer();
    if (obs == nullptr) {
      acquired_ns_ = 0;
    } else {
      acquired_ns_ = detail::seam_now_ns();
      obs->on_acquire(site_, 0, /*contended=*/false);
    }
    return true;
  }

  void unlock() {
    SeamObserver* obs = seam_observer();
    if (obs != nullptr && acquired_ns_ != 0)
      obs->on_release(site_, detail::seam_now_ns() - acquired_ns_);
    acquired_ns_ = 0;
    mu_.unlock();
  }

 private:
  std::mutex mu_;
  std::uint64_t acquired_ns_ = 0;  // guarded by mu_
  int site_;
};

/// std::barrier with per-site park-time accounting.
template <class Completion>
class SeamBarrier {
 public:
  SeamBarrier(int site, std::ptrdiff_t expected, Completion fn)
      : bar_(expected, std::move(fn)), site_(site) {}
  SeamBarrier(const SeamBarrier&) = delete;
  SeamBarrier& operator=(const SeamBarrier&) = delete;

  void arrive_and_wait() {
    SeamObserver* obs = seam_observer();
    if (obs == nullptr) {
      bar_.arrive_and_wait();
      return;
    }
    const std::uint64_t t0 = detail::seam_now_ns();
    bar_.arrive_and_wait();
    obs->on_barrier_wait(site_, detail::seam_now_ns() - t0);
  }

  void arrive_and_drop() { bar_.arrive_and_drop(); }

 private:
  std::barrier<Completion> bar_;
  int site_;
};

#else  // !PASCHED_VALIDATE_ENABLED

/// Release builds: a plain std::mutex behind the same constructor shape.
/// The site id is discarded and no per-op instrumentation exists — the
/// "SeamMutex compiles away" contract micro_engine's baseline holds the
/// partitioned core to.
class SeamMutex {
 public:
  explicit SeamMutex(int /*site*/) noexcept {}
  SeamMutex(const SeamMutex&) = delete;
  SeamMutex& operator=(const SeamMutex&) = delete;

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

static_assert(sizeof(SeamMutex) == sizeof(std::mutex),
              "release-mode SeamMutex must add no state to std::mutex");

template <class Completion>
class SeamBarrier {
 public:
  SeamBarrier(int /*site*/, std::ptrdiff_t expected, Completion fn)
      : bar_(expected, std::move(fn)) {}
  SeamBarrier(const SeamBarrier&) = delete;
  SeamBarrier& operator=(const SeamBarrier&) = delete;

  void arrive_and_wait() { bar_.arrive_and_wait(); }
  void arrive_and_drop() { bar_.arrive_and_drop(); }

 private:
  std::barrier<Completion> bar_;
};

#endif  // PASCHED_VALIDATE_ENABLED

}  // namespace pasched::util
