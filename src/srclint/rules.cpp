#include "srclint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

#include "srclint/model.hpp"

namespace pasched::srclint {

namespace {

using analysis::Diagnostic;
using analysis::Severity;

[[nodiscard]] bool path_in(const std::vector<std::string>& prefixes,
                           const std::string& path) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) {
                       return path.compare(0, p.size(), p) == 0;
                     });
}

[[nodiscard]] bool is(const Token& t, const char* text) {
  return t.text == text;
}

[[nodiscard]] bool contains_ci(const std::string& hay, const std::string& nee) {
  const auto it = std::search(
      hay.begin(), hay.end(), nee.begin(), nee.end(), [](char a, char b) {
        return std::tolower(static_cast<unsigned char>(a)) ==
               std::tolower(static_cast<unsigned char>(b));
      });
  return it != hay.end();
}

/// Index of the "(" matching the ")" at `close`, or npos.
[[nodiscard]] std::size_t match_backward(const std::vector<Token>& t,
                                         std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].kind != Tok::Punct) continue;
    if (is(t[i], ")")) ++depth;
    else if (is(t[i], "(") && --depth == 0) return i;
  }
  return t.size();
}

class RuleRun {
 public:
  RuleRun(const SourceFile& f, const RuleConfig& cfg, RuleStats* stats)
      : f_(f), cfg_(cfg), stats_(stats) {}

  std::vector<Diagnostic> run() {
    if (enabled("PSL401")) psl401();
    if (enabled("PSL402")) psl402();
    if (enabled("PSL403")) psl403();
    if (enabled("PSL404")) psl404();
    if (enabled("PSL405")) psl405();
    if (enabled("PSL406")) psl406();
    return std::move(out_);
  }

 private:
  [[nodiscard]] bool enabled(const char* id) const {
    return cfg_.only.empty() ||
           std::find(cfg_.only.begin(), cfg_.only.end(), id) !=
               cfg_.only.end();
  }

  void report(const char* rule, int line, std::string message,
              std::string fix) {
    if (f_.suppressed(rule, line)) {
      if (stats_ != nullptr) ++stats_->suppressions_honored;
      return;
    }
    Diagnostic d;
    d.rule = rule;
    d.severity = Severity::Error;
    d.subject = f_.path + ":" + std::to_string(line);
    d.message = std::move(message);
    d.fix_hint = std::move(fix);
    out_.push_back(std::move(d));
  }

  // -- PSL401: the Router/EventContext posting seam -------------------------

  void psl401() {
    if (path_in(cfg_.seam_allow, f_.path)) return;
    const auto& t = f_.tokens;
    static const std::array<const char*, 11> kMutators = {
        "schedule_at", "schedule_after", "cancel",          "run",
        "run_until",   "run_before",     "drain",           "stop",
        "set_tie_break", "set_choice_source", "step"};
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].pp || t[i].kind != Tok::Identifier) continue;
      // (a) Binding a mutable reference/pointer to a raw engine.
      if (is(t[i], "Engine") && i + 2 < t.size() &&
          (is(t[i + 1], "&") || is(t[i + 1], "*")) &&
          t[i + 2].kind == Tok::Identifier && !is(t[i + 2], "const") &&
          (i + 3 >= t.size() || !is(t[i + 3], "("))) {
        bool is_const = false;
        for (std::size_t back = 1; back <= 3 && back <= i; ++back) {
          if (t[i - back].kind == Tok::Identifier && is(t[i - back], "const"))
            is_const = true;
        }
        if (!is_const) {
          report("PSL401", t[i].line,
                 "mutable sim::Engine reference/pointer bound outside the "
                 "Router/EventContext seam (src/sim, tools, tests)",
                 "schedule through this node's sim::EventContext, or cross "
                 "shards through sim::Router::post()");
        }
        continue;
      }
      // (b) A mutating engine call through an engine-shaped expression:
      // engine().X(...), engine_of(s).X(...), engine_->X(...), engine.X(...).
      if (i + 1 < t.size() && is(t[i + 1], "(") && i >= 2 &&
          (is(t[i - 1], ".") || is(t[i - 1], "->")) &&
          std::any_of(kMutators.begin(), kMutators.end(),
                      [&](const char* m) { return is(t[i], m); })) {
        std::size_t base = i - 2;
        if (is(t[base], ")")) {
          const std::size_t open = match_backward(t, base);
          if (open == t.size() || open == 0) continue;
          base = open - 1;
        }
        if (t[base].kind == Tok::Identifier &&
            contains_ci(t[base].text, "engine")) {
          report("PSL401", t[i].line,
                 "direct engine mutation `" + t[base].text + "..." +
                     t[i].text +
                     "()` bypasses the Router/EventContext posting seam",
                 "post through sim::EventContext::schedule_*/cancel or "
                 "sim::Router::post() so partitioned execution stays sound");
        }
      }
    }
  }

  // -- PSL402: shard-resident ownership annotations -------------------------

  void psl402() {
    if (!path_in(cfg_.shard_resident_scope, f_.path)) return;
    const auto& t = f_.tokens;
    for (const ClassBody& c : find_class_bodies(f_, cfg_.shard_resident)) {
      bool has_owned = false;
      for (std::size_t i = c.body_begin; i < c.body_end; ++i) {
        if (t[i].kind == Tok::Identifier && is(t[i], "Owned")) {
          has_owned = true;
          break;
        }
      }
      if (!has_owned) {
        report("PSL402", c.line,
               "shard-resident type `" + c.name +
                   "` carries no race::Owned ownership tag — non-owner "
                   "mutations of it are invisible to pasched-race",
               "embed a race::Owned member and bind it to the owning shard "
               "domain at construction (DESIGN.md §7.1)");
      }
      for (std::size_t i = c.body_begin; i < c.body_end; ++i) {
        if (t[i].pp || t[i].kind != Tok::Identifier || !is(t[i], "mutable"))
          continue;
        bool guarded = false;
        std::size_t j = i + 1;
        for (; j < c.body_end; ++j) {
          if (t[j].kind == Tok::Punct && is(t[j], "{")) {
            j = match_forward(t, j);
            continue;
          }
          if (t[j].kind == Tok::Punct && is(t[j], ";")) break;
          if (t[j].kind == Tok::Identifier &&
              (is(t[j], "atomic") || is(t[j], "Owned")))
            guarded = true;
        }
        if (!guarded) {
          report("PSL402", t[i].line,
                 "mutable field of shard-resident type `" + c.name +
                     "` is neither atomic nor ownership-tagged — it can be "
                     "written through const access from any worker",
                 "make it std::atomic, guard it behind the type's "
                 "race::Owned domain, or justify with srclint-ok(PSL402)");
        }
      }
    }
  }

  // -- PSL403: the PASCHED_HOT contract -------------------------------------

  void psl403() {
    const auto& t = f_.tokens;
    const auto hots = find_marked_functions(f_, cfg_.hot_marker);
    if (stats_ != nullptr) stats_->hot_functions += hots.size();
    static const std::array<const char*, 6> kAlloc = {
        "malloc", "calloc", "realloc", "aligned_alloc", "make_unique",
        "make_shared"};
    static const std::array<const char*, 8> kLockTypes = {
        "mutex",       "timed_mutex", "recursive_mutex", "shared_mutex",
        "scoped_lock", "lock_guard",  "unique_lock",     "shared_lock"};
    static const std::array<const char*, 10> kBlocking = {
        "sleep",      "sleep_for",  "sleep_until",     "usleep",
        "nanosleep",  "wait",       "wait_for",        "wait_until",
        "arrive_and_wait", "arrive_and_drop"};
    static const std::array<const char*, 8> kIo = {
        "printf", "fprintf", "puts", "fputs", "fwrite", "cout", "cerr",
        "clog"};
    for (const HotFunction& fn : hots) {
      for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
        if (t[i].pp || t[i].kind != Tok::Identifier) continue;
        const std::string& x = t[i].text;
        const bool called =
            i + 1 < t.size() && t[i + 1].kind == Tok::Punct &&
            is(t[i + 1], "(");
        auto bad = [&](const char* what, const char* fix) {
          report("PSL403", t[i].line,
                 "PASCHED_HOT function `" + fn.name + "` " + what + " (`" +
                     x + "`) on the event hot path",
                 fix);
        };
        if (is(t[i], "new")) {
          if (!called)  // `new (buf) T` is placement — no heap traffic
            bad("allocates from the heap",
                "preallocate at setup time or reuse a per-shard buffer; see "
                "ROADMAP open item 2 (arena/slab events)");
        } else if (called && std::any_of(kAlloc.begin(), kAlloc.end(),
                                         [&](const char* a) {
                                           return x == a;
                                         })) {
          bad("allocates from the heap",
              "preallocate at setup time or reuse a per-shard buffer");
        } else if (std::any_of(kLockTypes.begin(), kLockTypes.end(),
                               [&](const char* l) { return x == l; })) {
          bad("takes or declares a lock",
              "move locking to the per-window (barrier) boundary and pass "
              "the drained data into the hot function");
        } else if (called && (x == "lock" || x == "try_lock") && i >= 1 &&
                   (is(t[i - 1], ".") || is(t[i - 1], "->"))) {
          bad("takes a lock",
              "move locking to the per-window (barrier) boundary");
        } else if (is(t[i], "throw")) {
          bad("throws",
              "report through a PASCHED_CHECK (vanishes in release) or "
              "return an error the caller handles off the hot path");
        } else if (called && std::any_of(kBlocking.begin(), kBlocking.end(),
                                         [&](const char* b) {
                                           return x == b;
                                         })) {
          bad("blocks",
              "hot functions must run to completion; synchronize at the "
              "window barrier instead");
        } else if (std::any_of(kIo.begin(), kIo.end(),
                               [&](const char* o) { return x == o; })) {
          bad("performs I/O",
              "buffer diagnostics and flush them outside the hot path");
        }
      }
    }
  }

  // -- PSL404: vanishing-check argument side effects ------------------------

  void psl404() {
    const auto& t = f_.tokens;
    const auto calls = find_macro_calls(f_, cfg_.vanishing_macros);
    if (stats_ != nullptr) stats_->macro_calls += calls.size();
    static const std::array<const char*, 11> kMutOps = {
        "++", "--", "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};
    for (const MacroCall& mc : calls) {
      for (std::size_t i = mc.args_begin; i < mc.args_end; ++i) {
        if (t[i].kind != Tok::Punct) continue;
        const bool mut =
            std::any_of(kMutOps.begin(), kMutOps.end(),
                        [&](const char* op) { return is(t[i], op); });
        if (!mut) continue;
        if (is(t[i], "=") && i > mc.args_begin && is(t[i - 1], "["))
          continue;  // lambda capture-default [=]
        report("PSL404", t[i].line,
               "side effect (`" + t[i].text + "`) inside " + mc.name +
                   " arguments — the expression vanishes under "
                   "-DPASCHED_VALIDATE=OFF, so validated and release builds "
                   "diverge",
               "hoist the mutation out of the check; the macro argument "
               "must be a pure observation");
      }
    }
  }

  // -- PSL405: nondeterminism sources in the deterministic core -------------

  void psl405() {
    if (!path_in(cfg_.determinism_scope, f_.path)) return;
    const auto& t = f_.tokens;
    static const std::array<const char*, 7> kBannedAny = {
        "srand",        "random_device", "system_clock",
        "steady_clock", "high_resolution_clock", "gettimeofday",
        "clock_gettime"};
    // Declared unordered containers (for iteration detection).
    std::vector<std::string> unordered_names;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].pp || t[i].kind != Tok::Identifier) continue;
      const std::string& x = t[i].text;
      if (std::any_of(kBannedAny.begin(), kBannedAny.end(),
                      [&](const char* b) { return x == b; })) {
        report("PSL405", t[i].line,
               "nondeterminism source `" + x +
                   "` in the deterministic core — traces and digests must "
                   "be a pure function of the seed",
               "derive randomness from sim::Rng (seeded) and time from the "
               "engine clock");
        continue;
      }
      if (x == "rand" && i >= 1 && is(t[i - 1], "::") && i + 1 < t.size() &&
          is(t[i + 1], "(")) {
        report("PSL405", t[i].line,
               "libc rand() in the deterministic core",
               "derive randomness from sim::Rng (seeded)");
        continue;
      }
      if (x == "time" && i >= 1 && is(t[i - 1], "::") && i + 1 < t.size() &&
          is(t[i + 1], "(")) {
        report("PSL405", t[i].line,
               "wall-clock time() in the deterministic core",
               "read the engine clock (EventContext::now()) instead");
        continue;
      }
      if (x == "unordered_map" || x == "unordered_set" ||
          x == "unordered_multimap" || x == "unordered_multiset") {
        // Skip template arguments, then take the declared name.
        std::size_t j = i + 1;
        if (j < t.size() && is(t[j], "<")) {
          int angle = 0;
          for (; j < t.size(); ++j) {
            if (t[j].kind != Tok::Punct) continue;
            if (is(t[j], "<")) ++angle;
            else if (is(t[j], ">")) {
              if (--angle == 0) { ++j; break; }
            } else if (is(t[j], ">>")) {
              angle -= 2;
              if (angle <= 0) { ++j; break; }
            }
          }
        }
        while (j < t.size() && t[j].kind == Tok::Punct &&
               (is(t[j], "&") || is(t[j], "*") || is(t[j], "...")))
          ++j;
        if (j < t.size() && t[j].kind == Tok::Identifier)
          unordered_names.push_back(t[j].text);
      }
    }
    // Range-for over a declared unordered container: iteration order feeds
    // whatever the loop body writes.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].pp || !is(t[i], "for") || !is(t[i + 1], "(")) continue;
      const std::size_t close = match_forward(t, i + 1);
      if (close >= t.size()) continue;
      int paren = 0;
      std::size_t colon = t.size();
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j].kind != Tok::Punct) continue;
        if (is(t[j], "(")) ++paren;
        else if (is(t[j], ")")) --paren;
        else if (paren == 0 && is(t[j], ":")) { colon = j; break; }
      }
      if (colon == t.size()) continue;
      bool has_call = false;
      std::string last_ident;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (t[j].kind == Tok::Punct && is(t[j], "(")) has_call = true;
        if (t[j].kind == Tok::Identifier) last_ident = t[j].text;
      }
      if (!has_call && !last_ident.empty() &&
          std::find(unordered_names.begin(), unordered_names.end(),
                    last_ident) != unordered_names.end()) {
        report("PSL405", t[i].line,
               "iteration over unordered container `" + last_ident +
                   "` — bucket order is implementation-defined and leaks "
                   "into everything the loop writes",
               "iterate a sorted view, or key the loop on a deterministic "
               "index (node id, rank, shard)");
      }
    }
  }

  // -- PSL406: thread creation outside the worker pool ----------------------

  void psl406() {
    if (path_in(cfg_.thread_allow, f_.path)) return;
    const auto& t = f_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].pp || t[i].kind != Tok::Identifier) continue;
      if ((is(t[i], "thread") || is(t[i], "jthread")) && i >= 2 &&
          is(t[i - 1], "::") && is(t[i - 2], "std") &&
          (i + 1 >= t.size() || !is(t[i + 1], "::"))) {
        report("PSL406", t[i].line,
               "std::" + t[i].text +
                   " outside the ShardedEngine worker pool — ad-hoc threads "
                   "bypass the domain scoping and barrier protocol",
               "execute on the shard's EventContext; only "
               "sim::ShardedEngine::run_until may own workers");
        continue;
      }
      if (is(t[i], "pthread_create")) {
        report("PSL406", t[i].line,
               "raw pthread_create outside the ShardedEngine worker pool",
               "use the shard worker pool");
        continue;
      }
      if (is(t[i], "detach") && i >= 1 &&
          (is(t[i - 1], ".") || is(t[i - 1], "->")) && i + 2 < t.size() &&
          is(t[i + 1], "(") && is(t[i + 2], ")")) {
        report("PSL406", t[i].line,
               "detached thread — nothing joins it, so it outlives the "
               "barrier protocol and the run's determinism scope",
               "keep threads joined (jthread) inside the shard worker pool");
      }
    }
  }

  const SourceFile& f_;
  const RuleConfig& cfg_;
  RuleStats* stats_;
  std::vector<Diagnostic> out_;
};

}  // namespace

std::vector<Diagnostic> run_rules(const SourceFile& file,
                                  const RuleConfig& cfg, RuleStats* stats) {
  return RuleRun(file, cfg, stats).run();
}

}  // namespace pasched::srclint
