#include "srclint/model.hpp"

#include <algorithm>

namespace pasched::srclint {

namespace {

[[nodiscard]] char close_of(const std::string& open) noexcept {
  if (open == "(") return ')';
  if (open == "[") return ']';
  return '}';
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const std::string c(1, close_of(o));
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Punct) continue;
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size();
}

std::vector<HotFunction> find_marked_functions(const SourceFile& f,
                                               const std::string& marker) {
  std::vector<HotFunction> out;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier || t[i].text != marker)
      continue;
    HotFunction fn;
    fn.line = t[i].line;
    int paren = 0;
    bool seen_params = false;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const Token& tok = t[j];
      if (tok.kind == Tok::Punct) {
        if (tok.text == "(") {
          if (paren == 0 && !seen_params && !fn.name.empty())
            seen_params = true;
          ++paren;
        } else if (tok.text == ")") {
          --paren;
        } else if (paren == 0 && tok.text == ";") {
          break;  // declaration only — the definition binds elsewhere
        } else if (paren == 0 && tok.text == "{") {
          const std::size_t close = match_forward(t, j);
          if (close < t.size()) {
            fn.body_begin = j + 1;
            fn.body_end = close;
            out.push_back(fn);
          }
          break;
        } else if (paren == 0 && tok.text == "}") {
          break;  // fell out of the enclosing scope: marker was misplaced
        }
      } else if (tok.kind == Tok::Identifier && paren == 0 && !seen_params) {
        fn.name = tok.text;
      }
    }
  }
  return out;
}

std::vector<ClassBody> find_class_bodies(
    const SourceFile& f, const std::vector<std::string>& names) {
  std::vector<ClassBody> out;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier) continue;
    if (t[i].text != "class" && t[i].text != "struct") continue;
    if (i > 0 && t[i - 1].kind == Tok::Identifier && t[i - 1].text == "enum")
      continue;  // enum class
    const Token& nm = t[i + 1];
    if (nm.kind != Tok::Identifier) continue;
    if (std::find(names.begin(), names.end(), nm.text) == names.end())
      continue;
    // Find the body's '{', skipping the base-clause (template arguments in
    // base names are angle-counted; ">>" closes two).
    int paren = 0;
    int angle = 0;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      const Token& tok = t[j];
      if (tok.kind != Tok::Punct) continue;
      if (tok.text == "(") ++paren;
      else if (tok.text == ")") --paren;
      else if (tok.text == "<") ++angle;
      else if (tok.text == ">") angle = std::max(0, angle - 1);
      else if (tok.text == ">>") angle = std::max(0, angle - 2);
      else if (paren == 0 && angle == 0 && tok.text == ";") {
        break;  // forward declaration
      } else if (paren == 0 && angle == 0 && tok.text == "{") {
        const std::size_t close = match_forward(t, j);
        if (close < t.size())
          out.push_back(ClassBody{nm.text, nm.line, j + 1, close});
        break;
      }
    }
  }
  return out;
}

std::vector<MacroCall> find_macro_calls(const SourceFile& f,
                                        const std::vector<std::string>& names) {
  std::vector<MacroCall> out;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier) continue;
    if (std::find(names.begin(), names.end(), t[i].text) == names.end())
      continue;
    if (t[i + 1].kind != Tok::Punct || t[i + 1].text != "(") continue;
    const std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    out.push_back(MacroCall{t[i].text, t[i].line, i + 2, close});
  }
  return out;
}

}  // namespace pasched::srclint
