#include "srclint/model.hpp"

#include <algorithm>

namespace pasched::srclint {

namespace {

[[nodiscard]] char close_of(const std::string& open) noexcept {
  if (open == "(") return ')';
  if (open == "[") return ']';
  return '}';
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const std::string c(1, close_of(o));
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Punct) continue;
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size();
}

std::vector<HotFunction> find_marked_functions(const SourceFile& f,
                                               const std::string& marker) {
  std::vector<HotFunction> out;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier || t[i].text != marker)
      continue;
    HotFunction fn;
    fn.line = t[i].line;
    int paren = 0;
    bool seen_params = false;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const Token& tok = t[j];
      if (tok.kind == Tok::Punct) {
        if (tok.text == "(") {
          if (paren == 0 && !seen_params && !fn.name.empty())
            seen_params = true;
          ++paren;
        } else if (tok.text == ")") {
          --paren;
        } else if (paren == 0 && tok.text == ";") {
          break;  // declaration only — the definition binds elsewhere
        } else if (paren == 0 && tok.text == "{") {
          const std::size_t close = match_forward(t, j);
          if (close < t.size()) {
            fn.body_begin = j + 1;
            fn.body_end = close;
            out.push_back(fn);
          }
          break;
        } else if (paren == 0 && tok.text == "}") {
          break;  // fell out of the enclosing scope: marker was misplaced
        }
      } else if (tok.kind == Tok::Identifier && paren == 0 && !seen_params) {
        fn.name = tok.text;
      }
    }
  }
  return out;
}

namespace {

/// Shared walk behind find_class_bodies / find_all_class_bodies: `names`
/// nullptr keeps every named class/struct.
std::vector<ClassBody> scan_class_bodies(
    const SourceFile& f, const std::vector<std::string>* names) {
  std::vector<ClassBody> out;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier) continue;
    if (t[i].text != "class" && t[i].text != "struct") continue;
    if (i > 0 && t[i - 1].kind == Tok::Identifier && t[i - 1].text == "enum")
      continue;  // enum class
    const Token& nm = t[i + 1];
    if (nm.kind != Tok::Identifier) continue;
    if (names != nullptr &&
        std::find(names->begin(), names->end(), nm.text) == names->end())
      continue;
    // Find the body's '{', skipping the base-clause (template arguments in
    // base names are angle-counted; ">>" closes two).
    int paren = 0;
    int angle = 0;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      const Token& tok = t[j];
      if (tok.kind != Tok::Punct) continue;
      if (tok.text == "(") ++paren;
      else if (tok.text == ")") --paren;
      else if (tok.text == "<") ++angle;
      else if (tok.text == ">") angle = std::max(0, angle - 1);
      else if (tok.text == ">>") angle = std::max(0, angle - 2);
      else if (paren == 0 && angle == 0 && tok.text == ";") {
        break;  // forward declaration
      } else if (paren == 0 && angle == 0 && tok.text == "{") {
        const std::size_t close = match_forward(t, j);
        if (close < t.size())
          out.push_back(ClassBody{nm.text, nm.line, j + 1, close});
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<ClassBody> find_class_bodies(
    const SourceFile& f, const std::vector<std::string>& names) {
  return scan_class_bodies(f, &names);
}

std::vector<ClassBody> find_all_class_bodies(const SourceFile& f) {
  return scan_class_bodies(f, nullptr);
}

std::vector<MacroCall> find_macro_calls(const SourceFile& f,
                                        const std::vector<std::string>& names) {
  std::vector<MacroCall> out;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier) continue;
    if (std::find(names.begin(), names.end(), t[i].text) == names.end())
      continue;
    if (t[i + 1].kind != Tok::Punct || t[i + 1].text != "(") continue;
    const std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    out.push_back(MacroCall{t[i].text, t[i].line, i + 2, close});
  }
  return out;
}

namespace {

[[nodiscard]] bool is_func_keyword(const std::string& x) noexcept {
  static const char* const kNot[] = {
      "if",     "for",          "while",    "switch",   "catch",
      "return", "sizeof",       "alignof",  "decltype", "new",
      "delete", "throw",        "case",     "co_await", "co_return",
      "co_yield", "static_assert", "alignas", "constexpr", "requires",
      "noexcept", "assert"};
  return std::any_of(std::begin(kNot), std::end(kNot),
                     [&](const char* k) { return x == k; });
}

/// Consumes a constructor initializer list starting at the token after the
/// ':'; returns the index of the body '{' or tokens.size() on mismatch.
[[nodiscard]] std::size_t skip_ctor_init_list(const std::vector<Token>& t,
                                              std::size_t j) {
  while (j < t.size()) {
    // Item head: qualified name, possibly with template arguments.
    bool head = false;
    int angle = 0;
    while (j < t.size()) {
      const Token& tk = t[j];
      if (tk.kind == Tok::Identifier || tk.text == "::") {
        head = true;
        ++j;
        continue;
      }
      if (tk.text == "<") { ++angle; ++j; continue; }
      if (angle > 0 && (tk.text == ">" || tk.text == ">>" ||
                        tk.text == "," || tk.kind == Tok::Identifier ||
                        tk.kind == Tok::Number)) {
        if (tk.text == ">") --angle;
        if (tk.text == ">>") angle -= 2;
        ++j;
        continue;
      }
      break;
    }
    if (!head || j >= t.size()) return t.size();
    // Item argument list: ( ... ) or { ... }.
    if (t[j].text != "(" && t[j].text != "{") return t.size();
    const std::size_t close = match_forward(t, j);
    if (close >= t.size()) return t.size();
    j = close + 1;
    if (j < t.size() && t[j].text == "...") ++j;  // pack expansion
    if (j >= t.size()) return t.size();
    if (t[j].text == ",") { ++j; continue; }
    if (t[j].text == "{") return j;  // the body
    return t.size();
  }
  return t.size();
}

}  // namespace

std::vector<FunctionDef> find_functions(const SourceFile& f) {
  std::vector<FunctionDef> out;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].pp || t[i].kind != Tok::Identifier) continue;
    if (t[i + 1].kind != Tok::Punct || t[i + 1].text != "(") continue;
    if (is_func_keyword(t[i].text)) continue;
    const std::size_t params_close = match_forward(t, i + 1);
    if (params_close >= t.size()) continue;

    // Qualifiers / trailing return / ctor-init-list between the parameter
    // list and the body. Anything unexpected (',', '=', ';', an operator)
    // means declaration or call expression — skip.
    std::size_t j = params_close + 1;
    std::size_t body_open = t.size();
    bool trailing_return = false;
    while (j < t.size()) {
      const Token& tk = t[j];
      if (tk.kind == Tok::Punct && tk.text == "{") {
        body_open = j;
        break;
      }
      if (tk.kind == Tok::Punct && tk.text == ";") break;  // declaration
      if (tk.kind == Tok::Identifier &&
          (tk.text == "const" || tk.text == "noexcept" ||
           tk.text == "override" || tk.text == "final" ||
           tk.text == "mutable" || tk.text == "try")) {
        ++j;
        if (tk.text == "noexcept" && j < t.size() && t[j].text == "(") {
          const std::size_t c = match_forward(t, j);
          if (c >= t.size()) break;
          j = c + 1;
        }
        continue;
      }
      if (tk.kind == Tok::Punct && (tk.text == "&" || tk.text == "&&")) {
        ++j;
        continue;
      }
      if (tk.kind == Tok::Punct && tk.text == "->") {
        trailing_return = true;
        ++j;
        continue;
      }
      if (trailing_return &&
          (tk.kind == Tok::Identifier || tk.text == "::" || tk.text == "<" ||
           tk.text == ">" || tk.text == ">>" || tk.text == "," ||
           tk.text == "*" || tk.text == "&" || tk.kind == Tok::Number)) {
        ++j;
        continue;
      }
      if (trailing_return && tk.text == "(") {
        const std::size_t c = match_forward(t, j);
        if (c >= t.size()) break;
        j = c + 1;
        continue;
      }
      if (tk.kind == Tok::Punct && tk.text == ":") {
        body_open = skip_ctor_init_list(t, j + 1);
        break;
      }
      break;  // not a definition shape
    }
    if (body_open >= t.size()) continue;
    const std::size_t body_close = match_forward(t, body_open);
    if (body_close >= t.size()) continue;

    FunctionDef fn;
    fn.line = t[i].line;
    fn.params_begin = i + 2;
    fn.params_end = params_close;
    fn.body_begin = body_open + 1;
    fn.body_end = body_close;
    fn.name = t[i].text;
    // Qualify out-of-line definitions: Class::name (one level is enough for
    // lockset attribution; deeper nests keep the innermost two).
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == Tok::Identifier)
      fn.name = t[i - 2].text + "::" + fn.name;
    else if (i >= 1 && t[i - 1].text == "~")
      fn.name = "~" + fn.name;
    out.push_back(std::move(fn));
    i = body_open;  // nested definitions (lambdas) stay inside this body
  }
  return out;
}

}  // namespace pasched::srclint
