#include "srclint/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "srclint/compiledb.hpp"

namespace pasched::srclint {

using analysis::json_escape;

std::string SrclintReport::str() const {
  std::ostringstream os;
  for (const analysis::Diagnostic& d : findings) os << d.str() << "\n";
  os << "pasched-srclint: " << files_scanned << " files (" << origin << "), "
     << stats.hot_functions << " hot functions, " << stats.macro_calls
     << " vanishing-check calls, " << stats.suppressions_honored
     << " suppressions honored, " << findings.size() << " finding"
     << (findings.size() == 1 ? "" : "s") << "\n";
  return os.str();
}

std::string SrclintReport::json() const {
  std::ostringstream os;
  os << "{\n  " << analysis::json_report_header("pasched-srclint") << "\n"
     << "  \"files_scanned\": " << files_scanned << ",\n"
     << "  \"origin\": \"" << json_escape(origin) << "\",\n"
     << "  \"hot_functions\": " << stats.hot_functions << ",\n"
     << "  \"vanishing_check_calls\": " << stats.macro_calls << ",\n"
     << "  \"suppressions_honored\": " << stats.suppressions_honored << ",\n"
     << "  \"findings\": " << analysis::diagnostics_json(findings, 2)
     << "\n}\n";
  return os.str();
}

SrclintReport run_files(const SrclintOptions& opts,
                        const std::vector<std::string>& rels) {
  SrclintReport rep;
  const std::filesystem::path root(opts.root);
  for (const std::string& rel : rels) {
    const SourceFile f = lex_file((root / rel).string(), rel);
    std::vector<analysis::Diagnostic> ds =
        run_rules(f, opts.rules, &rep.stats);
    rep.findings.insert(rep.findings.end(),
                        std::make_move_iterator(ds.begin()),
                        std::make_move_iterator(ds.end()));
    ++rep.files_scanned;
  }
  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const analysis::Diagnostic& a,
                      const analysis::Diagnostic& b) {
                     return a.subject != b.subject ? a.subject < b.subject
                                                  : a.rule < b.rule;
                   });
  return rep;
}

SrclintReport run_tree(const SrclintOptions& opts) {
  const FileSet fset = discover_files(opts.root, opts.compile_db);
  SrclintReport rep = run_files(opts, fset.rel_paths);
  rep.origin = fset.origin;
  return rep;
}

}  // namespace pasched::srclint
