#include "srclint/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "srclint/compiledb.hpp"

namespace pasched::srclint {

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string SrclintReport::str() const {
  std::ostringstream os;
  for (const analysis::Diagnostic& d : findings) os << d.str() << "\n";
  os << "pasched-srclint: " << files_scanned << " files (" << origin << "), "
     << stats.hot_functions << " hot functions, " << stats.macro_calls
     << " vanishing-check calls, " << stats.suppressions_honored
     << " suppressions honored, " << findings.size() << " finding"
     << (findings.size() == 1 ? "" : "s") << "\n";
  return os.str();
}

std::string SrclintReport::json() const {
  std::ostringstream os;
  os << "{\n  \"tool\": \"pasched-srclint\",\n"
     << "  \"files_scanned\": " << files_scanned << ",\n"
     << "  \"origin\": \"" << json_escape(origin) << "\",\n"
     << "  \"hot_functions\": " << stats.hot_functions << ",\n"
     << "  \"vanishing_check_calls\": " << stats.macro_calls << ",\n"
     << "  \"suppressions_honored\": " << stats.suppressions_honored << ",\n"
     << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const analysis::Diagnostic& d = findings[i];
    os << (i == 0 ? "" : ",") << "\n    {\"rule\": \"" << json_escape(d.rule)
       << "\", \"severity\": \"" << analysis::to_string(d.severity)
       << "\", \"subject\": \"" << json_escape(d.subject)
       << "\", \"message\": \"" << json_escape(d.message)
       << "\", \"fix_hint\": \"" << json_escape(d.fix_hint) << "\"}";
  }
  os << (findings.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

SrclintReport run_files(const SrclintOptions& opts,
                        const std::vector<std::string>& rels) {
  SrclintReport rep;
  const std::filesystem::path root(opts.root);
  for (const std::string& rel : rels) {
    const SourceFile f = lex_file((root / rel).string(), rel);
    std::vector<analysis::Diagnostic> ds =
        run_rules(f, opts.rules, &rep.stats);
    rep.findings.insert(rep.findings.end(),
                        std::make_move_iterator(ds.begin()),
                        std::make_move_iterator(ds.end()));
    ++rep.files_scanned;
  }
  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const analysis::Diagnostic& a,
                      const analysis::Diagnostic& b) {
                     return a.subject != b.subject ? a.subject < b.subject
                                                  : a.rule < b.rule;
                   });
  return rep;
}

SrclintReport run_tree(const SrclintOptions& opts) {
  const FileSet fset = discover_files(opts.root, opts.compile_db);
  SrclintReport rep = run_files(opts, fset.rel_paths);
  rep.origin = fset.origin;
  return rep;
}

}  // namespace pasched::srclint
