// File discovery for pasched-srclint. Preferred source of truth is the
// build's compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS=ON) — the
// same translation units the compiler sees — augmented with headers found
// by walking the source roots. When no database exists (fixture trees,
// fresh checkouts) discovery falls back to the walk alone.
//
// The walk intentionally knows this repo's layout: src/, tools/, bench/,
// examples/, tests/ — and excludes build trees, vendored deps, and the
// planted-violation fixture corpus (tests/srclint/fixtures), which must
// never leak into a clean-tree scan.
#pragma once

#include <string>
#include <vector>

namespace pasched::srclint {

struct FileSet {
  /// Repo-relative paths with forward slashes, sorted, unique.
  std::vector<std::string> rel_paths;
  /// "compile_commands+walk" or "walk" — recorded in the report so a scan
  /// that silently lost its database is visible.
  std::string origin;
};

/// Extracts the "file" entries from a compile_commands.json blob. Tolerant
/// of formatting; understands basic string escapes.
[[nodiscard]] std::vector<std::string> compile_db_files(
    const std::string& json);

/// Discovers the scan set under `root`. `compile_db_path` may be empty or
/// missing; it contributes translation units when readable.
[[nodiscard]] FileSet discover_files(const std::string& root,
                                     const std::string& compile_db_path);

}  // namespace pasched::srclint
