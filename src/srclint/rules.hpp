// PSL401–406: repo-specific architecture and hot-path rules over the
// srclint source model. Each rule encodes a source-level invariant the
// runtime stack (pasched-audit/race/scale) can only witness after it is
// violated in an execution — here it is rejected before a run exists.
//
//   PSL401  raw engine access outside the Router/EventContext seam
//   PSL402  shard-resident type without ownership annotation discipline
//   PSL403  allocation / locking / throw / blocking inside PASCHED_HOT
//   PSL404  side effects inside vanishing-check macro arguments
//   PSL405  nondeterminism sources in the deterministic core
//   PSL406  thread creation outside the ShardedEngine worker pool
//
// Findings can be silenced per line with `// srclint-ok(PSLnnn): reason`;
// the runner reports how many suppressions were honored so they stay
// auditable.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "srclint/source.hpp"

namespace pasched::srclint {

/// Per-rule scoping. Defaults encode this repository's layout; the fixture
/// tests reuse the same defaults by mirroring the layout under the plant
/// root.
struct RuleConfig {
  /// PSL401: directories whose code may touch sim::Engine directly — the
  /// engine's own subsystem, the harness layers that drive it by design,
  /// and src/mc (the model checker constructs single-engine micro-models
  /// and steers their tie-breaks; that is its whole job).
  std::vector<std::string> seam_allow = {"src/sim/", "src/mc/", "tools/",
                                         "tests/", "bench/", "examples/"};
  /// PSL402: shard-resident classes that must carry a race::Owned tag, and
  /// the subsystems they live in.
  std::vector<std::string> shard_resident = {"Node",        "Kernel",
                                             "Job",         "Task",
                                             "NodeDaemons", "IoService",
                                             "Tracer",      "EventLog"};
  std::vector<std::string> shard_resident_scope = {
      "src/cluster/", "src/kern/", "src/mpi/", "src/daemons/", "src/trace/"};
  /// PSL403: the hot-path marker bound to function bodies.
  std::string hot_marker = "PASCHED_HOT";
  /// PSL404: macros whose arguments vanish under -DPASCHED_VALIDATE=OFF.
  std::vector<std::string> vanishing_macros = {
      "PASCHED_CHECK", "PASCHED_CHECK_MSG", "PASCHED_ASSERT_OWNED",
      "PASCHED_ASSERT_DOMAIN"};
  /// PSL405: subsystems whose behaviour feeds traces/digests and must stay
  /// bit-deterministic.
  std::vector<std::string> determinism_scope = {"src/sim/", "src/kern/",
                                                "src/net/", "src/mpi/"};
  /// PSL406: the only places allowed to create threads.
  std::vector<std::string> thread_allow = {"src/sim/shard", "tools/",
                                           "tests/", "bench/", "examples/"};
  /// Restrict to these rule IDs (empty = all).
  std::vector<std::string> only;
};

struct RuleStats {
  std::size_t hot_functions = 0;
  std::size_t macro_calls = 0;
  std::size_t suppressions_honored = 0;
};

/// Runs every (enabled) rule over one file.
[[nodiscard]] std::vector<analysis::Diagnostic> run_rules(
    const SourceFile& file, const RuleConfig& cfg, RuleStats* stats = nullptr);

}  // namespace pasched::srclint
