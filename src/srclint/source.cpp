#include "srclint/source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pasched::srclint {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_' ||
         c == '$';
}
[[nodiscard]] bool ident_cont(char c) noexcept {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Longest-match punctuation, 3 chars down to 1. Keeping ">>" one token is
// deliberate: the rules that walk template argument lists count it as two
// closing angles, and PSL404's assignment detector must never split "<<="
// into "<<" "=".
const char* const kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
const char* const kPunct2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                               ">=", "==", "!=", "&&", "||", "+=", "-=",
                               "*=", "/=", "%=", "&=", "|=", "^=", "##"};

class Lexer {
 public:
  Lexer(const std::string& src, SourceFile& out) : s_(src), out_(out) {}

  void run() {
    while (i_ < s_.size()) {
      if (at_line_start_) detect_pp_line();
      const char c = s_[i_];
      if (c == '\n') {
        newline();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i_;
        continue;
      }
      if (c == '\\' && peek(1) == '\n') {  // line splice
        ++i_;
        pp_continues_ = pp_;
        newline();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (is_raw_string_start()) {
        raw_string();
        continue;
      }
      if (c == '"') {
        quoted('"', Tok::String);
        continue;
      }
      if (c == '\'' && !digit_separator_context()) {
        quoted('\'', Tok::CharLit);
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
        number();
        continue;
      }
      punct();
    }
  }

 private:
  [[nodiscard]] char peek(std::size_t off) const noexcept {
    return i_ + off < s_.size() ? s_[i_ + off] : '\0';
  }

  void newline() {
    ++i_;
    ++line_;
    at_line_start_ = true;
    if (pp_continues_) {
      pp_continues_ = false;  // pp_ stays set for the continuation line
    } else {
      pp_ = false;
    }
  }

  void detect_pp_line() {
    at_line_start_ = false;
    if (pp_) return;  // continuation of a directive
    std::size_t j = i_;
    while (j < s_.size() && (s_[j] == ' ' || s_[j] == '\t')) ++j;
    if (j < s_.size() && s_[j] == '#') pp_ = true;
  }

  void emit(Tok kind, std::string text) {
    out_.tokens.push_back(Token{kind, std::move(text), line_, pp_});
  }

  void line_comment() {
    const std::size_t start = i_;
    while (i_ < s_.size() && s_[i_] != '\n') ++i_;
    // A contiguous run of *standalone* //-comment lines acts as one
    // comment: suppressions anywhere in the block ride down to its last
    // line, so a multi-line justification covers the statement below it.
    // A comment trailing code anchors at its own line and never joins a
    // block — its suppression must keep covering the code it sits on.
    const bool trailing =
        !out_.tokens.empty() && out_.tokens.back().line == line_;
    if (trailing || line_ != last_line_comment_ + 1)
      block_start_ = out_.suppressions.size();
    scan_suppression(s_.substr(start, i_ - start), line_);
    if (!trailing) {
      for (std::size_t k = block_start_; k < out_.suppressions.size(); ++k)
        out_.suppressions[k].line = line_;
      last_line_comment_ = line_;
    } else {
      last_line_comment_ = -2;  // a following standalone comment starts fresh
    }
  }

  void block_comment() {
    const std::size_t start = i_;
    const int start_line = line_;
    i_ += 2;
    while (i_ < s_.size() && !(s_[i_] == '*' && peek(1) == '/')) {
      if (s_[i_] == '\n') {
        ++line_;
        // pp state does not cross a newline inside a block comment unless
        // the directive itself continues, which a comment cannot express.
        pp_ = false;
      }
      ++i_;
    }
    i_ = std::min(i_ + 2, s_.size());
    scan_suppression(s_.substr(start, i_ - start), start_line);
  }

  void scan_suppression(const std::string& comment, int comment_line) {
    // srclint-ok(PSL402): ... — possibly several per comment.
    std::size_t pos = 0;
    static const std::string kKey = "srclint-ok(";
    while ((pos = comment.find(kKey, pos)) != std::string::npos) {
      pos += kKey.size();
      const std::size_t close = comment.find(')', pos);
      if (close == std::string::npos) break;
      std::string rule = comment.substr(pos, close - pos);
      if (!rule.empty() && rule.size() <= 16)
        out_.suppressions.push_back(Suppression{std::move(rule), comment_line});
      pos = close;
    }
  }

  [[nodiscard]] bool is_raw_string_start() const {
    // R"...(  possibly with encoding prefix already consumed as identifier;
    // handle the common unprefixed R"..." here. Prefixed raw strings
    // (u8R"") lex the prefix as an identifier first, which is harmless.
    return s_[i_] == 'R' && peek(1) == '"' &&
           (out_.tokens.empty() || out_.tokens.back().text != "\\");
  }

  void raw_string() {
    const int start_line = line_;
    std::size_t j = i_ + 2;  // past R"
    std::string delim;
    while (j < s_.size() && s_[j] != '(' && delim.size() < 16)
      delim.push_back(s_[j++]);
    const std::string close = ")" + delim + "\"";
    const std::size_t end = s_.find(close, j);
    const std::size_t stop =
        end == std::string::npos ? s_.size() : end + close.size();
    for (std::size_t k = i_; k < stop; ++k)
      if (s_[k] == '\n') ++line_;
    out_.tokens.push_back(
        Token{Tok::String, s_.substr(i_, stop - i_), start_line, pp_});
    i_ = stop;
  }

  // A ' that continues a number is a digit separator (1'000'000), not a
  // character literal.
  [[nodiscard]] bool digit_separator_context() const {
    return !out_.tokens.empty() && out_.tokens.back().kind == Tok::Number &&
           i_ > 0 && ident_cont(s_[i_ - 1]);
  }

  void quoted(char q, Tok kind) {
    const std::size_t start = i_;
    ++i_;
    while (i_ < s_.size() && s_[i_] != q && s_[i_] != '\n') {
      if (s_[i_] == '\\') ++i_;
      ++i_;
    }
    if (i_ < s_.size() && s_[i_] == q) ++i_;
    emit(kind, s_.substr(start, i_ - start));
  }

  void identifier() {
    const std::size_t start = i_;
    while (i_ < s_.size() && ident_cont(s_[i_])) ++i_;
    emit(Tok::Identifier, s_.substr(start, i_ - start));
  }

  void number() {
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (ident_cont(s_[i_]) || s_[i_] == '.' || s_[i_] == '\'' ||
            ((s_[i_] == '+' || s_[i_] == '-') && i_ > start &&
             (s_[i_ - 1] == 'e' || s_[i_ - 1] == 'E' || s_[i_ - 1] == 'p' ||
              s_[i_ - 1] == 'P'))))
      ++i_;
    emit(Tok::Number, s_.substr(start, i_ - start));
  }

  void punct() {
    for (const char* p : kPunct3) {
      if (s_.compare(i_, 3, p) == 0) {
        emit(Tok::Punct, p);
        i_ += 3;
        return;
      }
    }
    for (const char* p : kPunct2) {
      if (s_.compare(i_, 2, p) == 0) {
        emit(Tok::Punct, p);
        i_ += 2;
        return;
      }
    }
    emit(Tok::Punct, std::string(1, s_[i_]));
    ++i_;
  }

  const std::string& s_;
  SourceFile& out_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  bool pp_ = false;
  bool pp_continues_ = false;
  int last_line_comment_ = -2;
  std::size_t block_start_ = 0;
};

}  // namespace

bool SourceFile::suppressed(const std::string& rule, int line) const {
  return std::any_of(suppressions.begin(), suppressions.end(),
                     [&](const Suppression& s) {
                       return s.rule == rule &&
                              (s.line == line || s.line + 1 == line);
                     });
}

SourceFile lex_string(const std::string& content, std::string rel_path) {
  SourceFile f;
  f.path = std::move(rel_path);
  Lexer(content, f).run();
  return f;
}

SourceFile lex_file(const std::string& abs_path, std::string rel_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) throw std::runtime_error("srclint: cannot read " + abs_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lex_string(ss.str(), std::move(rel_path));
}

}  // namespace pasched::srclint
