// Source model for pasched-srclint: a C++ token stream with line numbers,
// comment-carried suppressions, and preprocessor-line awareness.
//
// This is the portable frontend. The container/CI baseline ships no clang
// LibTooling/ASTMatchers dev packages, so the analyzer is architected as
// rules over a *frontend-produced token model* rather than over a clang AST:
// the lexer below is a real C++ tokenizer (raw strings, escapes, comments,
// line splices, longest-match punctuation), and src/srclint/model.hpp
// recovers the structure the PSL4xx rules need (function bodies bound to a
// marker, class bodies, macro argument lists). A clang-AST frontend can
// replace lex_file() behind the same SourceFile interface when LLVM dev
// packages are available; the rules do not change (DESIGN.md §5.7).
#pragma once

#include <string>
#include <vector>

namespace pasched::srclint {

enum class Tok : std::uint8_t {
  Identifier,  // identifiers and keywords
  Number,
  String,   // string literal (text holds the uninterpreted lexeme)
  CharLit,  // character literal
  Punct,    // operators/punctuation, longest-match ("::", "<<=", ...)
};

struct Token {
  Tok kind = Tok::Punct;
  std::string text;
  int line = 0;
  /// True when the token sits on a preprocessor directive line (including
  /// backslash continuations). Rules skip these: `#define PASCHED_HOT ...`
  /// is the macro's definition, not an annotation site.
  bool pp = false;
};

/// One `// srclint-ok(PSLnnn): reason` comment. It silences findings of
/// that rule on its own line and on the following line (so it can sit
/// above the offending statement, or trail it). A contiguous block of
/// //-comments counts as one comment anchored at its last line, so a
/// multi-line justification covers the statement right below the block.
struct Suppression {
  std::string rule;  // "PSL402"
  int line = 0;
};

struct SourceFile {
  /// Path relative to the scanned root, '/'-separated — what rules match
  /// their subsystem scopes and allowlists against, and what reports print.
  std::string path;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;

  /// True if findings of `rule` at `line` are silenced by a suppression on
  /// the same or the preceding line.
  [[nodiscard]] bool suppressed(const std::string& rule, int line) const;
};

/// Lexes `content` as the file `rel_path`. Never fails: bytes that are not
/// valid C++ lex as single-character punctuation and the rules ignore them.
[[nodiscard]] SourceFile lex_string(const std::string& content,
                                    std::string rel_path);

/// Loads and lexes a file from disk. Throws std::runtime_error if the file
/// cannot be read.
[[nodiscard]] SourceFile lex_file(const std::string& abs_path,
                                  std::string rel_path);

}  // namespace pasched::srclint
