// Structural recovery over the token stream: the light syntax the PSL4xx
// rules need — PASCHED_HOT-annotated function bodies, class bodies of named
// shard-resident types, and the argument token ranges of PASCHED_CHECK-
// family macro invocations. All extents are [begin, end) token indices into
// SourceFile::tokens.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "srclint/source.hpp"

namespace pasched::srclint {

/// A function definition bound to a PASCHED_HOT marker.
struct HotFunction {
  std::string name;        // best-effort: last identifier before the ( list
  int line = 0;            // line of the marker
  std::size_t body_begin = 0;  // token index just after the opening {
  std::size_t body_end = 0;    // token index of the matching }
};

/// A class/struct body of interest.
struct ClassBody {
  std::string name;
  int line = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// A macro invocation NAME(args...): the token range between the outer
/// parentheses.
struct MacroCall {
  std::string name;
  int line = 0;
  std::size_t args_begin = 0;
  std::size_t args_end = 0;
};

/// Token index of the brace/paren/bracket matching tokens[open]; returns
/// tokens.size() when unbalanced. `open` must index a "(", "[" or "{".
[[nodiscard]] std::size_t match_forward(const std::vector<Token>& toks,
                                        std::size_t open);

/// Every function definition whose declaration carries the `marker`
/// identifier (e.g. "PASCHED_HOT"). Pure declarations (ending in ';' before
/// any '{') are skipped. Preprocessor lines are ignored, so the macro's own
/// #define never binds.
[[nodiscard]] std::vector<HotFunction> find_marked_functions(
    const SourceFile& f, const std::string& marker);

/// Bodies of class/struct definitions whose name is in `names`. Forward
/// declarations are skipped.
[[nodiscard]] std::vector<ClassBody> find_class_bodies(
    const SourceFile& f, const std::vector<std::string>& names);

/// Invocations of the given function-like macros (identifier immediately
/// followed by "("), outside preprocessor lines.
[[nodiscard]] std::vector<MacroCall> find_macro_calls(
    const SourceFile& f, const std::vector<std::string>& names);

/// A recovered function definition: name (qualified "Class::name" when the
/// definition is written out-of-line), parameter-list and body extents.
struct FunctionDef {
  std::string name;        // "post", "ShardedEngine::post", "TEST", ...
  int line = 0;            // line of the name token
  std::size_t params_begin = 0;  // token index just after the opening (
  std::size_t params_end = 0;    // token index of the matching )
  std::size_t body_begin = 0;    // token index just after the opening {
  std::size_t body_end = 0;      // token index of the matching }
};

/// Every function definition in the file, found by the `name ( params )
/// [qualifiers] [: ctor-init-list] {` shape. Control-flow keywords, pure
/// declarations (ending in ';') and call expressions are skipped; lambdas
/// are not recovered as functions (their bodies belong to the enclosing
/// definition). This is the walker pasched-contend builds per-function
/// locksets on, so recall matters more than precision: a macro-heavy
/// pseudo-definition (TEST(a, b) { ... }) is recovered as a function too.
[[nodiscard]] std::vector<FunctionDef> find_functions(const SourceFile& f);

/// Bodies of every named class/struct definition in the file (the
/// find_class_bodies walk without the name filter).
[[nodiscard]] std::vector<ClassBody> find_all_class_bodies(const SourceFile& f);

}  // namespace pasched::srclint
