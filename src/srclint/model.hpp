// Structural recovery over the token stream: the light syntax the PSL4xx
// rules need — PASCHED_HOT-annotated function bodies, class bodies of named
// shard-resident types, and the argument token ranges of PASCHED_CHECK-
// family macro invocations. All extents are [begin, end) token indices into
// SourceFile::tokens.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "srclint/source.hpp"

namespace pasched::srclint {

/// A function definition bound to a PASCHED_HOT marker.
struct HotFunction {
  std::string name;        // best-effort: last identifier before the ( list
  int line = 0;            // line of the marker
  std::size_t body_begin = 0;  // token index just after the opening {
  std::size_t body_end = 0;    // token index of the matching }
};

/// A class/struct body of interest.
struct ClassBody {
  std::string name;
  int line = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// A macro invocation NAME(args...): the token range between the outer
/// parentheses.
struct MacroCall {
  std::string name;
  int line = 0;
  std::size_t args_begin = 0;
  std::size_t args_end = 0;
};

/// Token index of the brace/paren/bracket matching tokens[open]; returns
/// tokens.size() when unbalanced. `open` must index a "(", "[" or "{".
[[nodiscard]] std::size_t match_forward(const std::vector<Token>& toks,
                                        std::size_t open);

/// Every function definition whose declaration carries the `marker`
/// identifier (e.g. "PASCHED_HOT"). Pure declarations (ending in ';' before
/// any '{') are skipped. Preprocessor lines are ignored, so the macro's own
/// #define never binds.
[[nodiscard]] std::vector<HotFunction> find_marked_functions(
    const SourceFile& f, const std::string& marker);

/// Bodies of class/struct definitions whose name is in `names`. Forward
/// declarations are skipped.
[[nodiscard]] std::vector<ClassBody> find_class_bodies(
    const SourceFile& f, const std::vector<std::string>& names);

/// Invocations of the given function-like macros (identifier immediately
/// followed by "("), outside preprocessor lines.
[[nodiscard]] std::vector<MacroCall> find_macro_calls(
    const SourceFile& f, const std::vector<std::string>& names);

}  // namespace pasched::srclint
