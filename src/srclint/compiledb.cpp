#include "srclint/compiledb.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace pasched::srclint {

namespace fs = std::filesystem;

namespace {

const char* const kRoots[] = {"src", "tools", "bench", "examples", "tests"};
const char* const kExts[] = {".cpp", ".cxx", ".cc", ".hpp", ".hh", ".ipp"};

[[nodiscard]] bool wanted_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return std::any_of(std::begin(kExts), std::end(kExts),
                     [&](const char* x) { return e == x; });
}

[[nodiscard]] bool excluded(const std::string& rel) {
  return rel.find("srclint/fixtures/") != std::string::npos ||
         rel.find("contend/fixtures/") != std::string::npos ||
         rel.find("alloc/fixtures/") != std::string::npos ||
         rel.find("build/") == 0 || rel.find("build-") == 0 ||
         rel.find("_deps/") != std::string::npos ||
         rel.find("third_party/") != std::string::npos;
}

/// Reads one JSON string starting at the opening quote; returns the decoded
/// value and advances `i` past the closing quote.
[[nodiscard]] std::string read_json_string(const std::string& s,
                                           std::size_t& i) {
  std::string out;
  ++i;  // opening quote
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'u': i += 4; break;  // \uXXXX: never in a pathname we keep
        default: out.push_back(s[i]); break;
      }
    } else {
      out.push_back(s[i]);
    }
    ++i;
  }
  if (i < s.size()) ++i;  // closing quote
  return out;
}

}  // namespace

std::vector<std::string> compile_db_files(const std::string& json) {
  std::vector<std::string> out;
  static const std::string kKey = "\"file\"";
  std::size_t pos = 0;
  while ((pos = json.find(kKey, pos)) != std::string::npos) {
    pos += kKey.size();
    while (pos < json.size() &&
           (json[pos] == ' ' || json[pos] == ':' || json[pos] == '\t' ||
            json[pos] == '\n'))
      ++pos;
    if (pos < json.size() && json[pos] == '"')
      out.push_back(read_json_string(json, pos));
  }
  return out;
}

FileSet discover_files(const std::string& root,
                       const std::string& compile_db_path) {
  FileSet fset;
  std::set<std::string> paths;
  const fs::path rootp = fs::absolute(root).lexically_normal();

  bool used_db = false;
  if (!compile_db_path.empty()) {
    std::ifstream in(compile_db_path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      for (const std::string& f : compile_db_files(ss.str())) {
        std::error_code ec;
        const fs::path abs = fs::weakly_canonical(fs::path(f), ec);
        if (ec) continue;
        const fs::path rel = abs.lexically_relative(rootp);
        if (rel.empty() || rel.begin()->string() == "..") continue;
        const std::string r = rel.generic_string();
        if (!excluded(r)) {
          paths.insert(r);
          used_db = true;
        }
      }
    }
  }

  // Walk the source roots for everything the database cannot carry
  // (headers) or that plain fixture trees provide (no database at all).
  for (const char* top : kRoots) {
    const fs::path dir = rootp / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(
             dir, fs::directory_options::skip_permission_denied, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      if (!wanted_ext(it->path())) continue;
      const std::string rel =
          it->path().lexically_relative(rootp).generic_string();
      if (!excluded(rel)) paths.insert(rel);
    }
  }
  // A bare fixture root mirrors src/... directly under itself with no
  // recognizable top-level dirs; fall back to walking the root itself.
  if (paths.empty()) {
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(
             rootp, fs::directory_options::skip_permission_denied, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      if (!wanted_ext(it->path())) continue;
      const std::string rel =
          it->path().lexically_relative(rootp).generic_string();
      if (rel.find("build") != 0) paths.insert(rel);
    }
  }

  fset.rel_paths.assign(paths.begin(), paths.end());
  fset.origin = used_db ? "compile_commands+walk" : "walk";
  return fset;
}

}  // namespace pasched::srclint
