// Tree-level driver: discovery → lex → rules → ordered report. The heavy
// lifting lives in source/model/rules; this layer only sequences them and
// renders text/JSON, so the tool and the tests share one code path.
//
// Frontend seam: SourceFile is the only contract between discovery and the
// rules. Today it is produced by the built-in portable lexer (lex_file);
// a clang LibTooling frontend can replace that producer without touching a
// rule, which is the plan once the toolchain ships clang dev headers.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "srclint/rules.hpp"

namespace pasched::srclint {

struct SrclintOptions {
  std::string root = ".";       // tree to scan (repo root or fixture root)
  std::string compile_db;       // optional compile_commands.json
  RuleConfig rules;
};

struct SrclintReport {
  std::vector<analysis::Diagnostic> findings;  // sorted by (subject, rule)
  RuleStats stats;
  std::size_t files_scanned = 0;
  std::string origin;  // discovery origin, see compiledb.hpp

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  /// Human-readable report (one finding per line + a summary footer).
  [[nodiscard]] std::string str() const;
  /// Machine-readable report for the CI artifact.
  [[nodiscard]] std::string json() const;
};

/// Scans every discovered file under opts.root.
[[nodiscard]] SrclintReport run_tree(const SrclintOptions& opts);

/// Scans an explicit set of root-relative paths (CLI positional args,
/// fixture tests).
[[nodiscard]] SrclintReport run_files(const SrclintOptions& opts,
                                      const std::vector<std::string>& rels);

}  // namespace pasched::srclint
