#include "core/coscheduler.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pasched::core {

using kern::RunDecision;
using sim::Duration;
using sim::Time;

CoScheduler::CoScheduler(kern::Kernel& kernel, CoschedConfig cfg)
    : kernel_(kernel), cfg_(cfg) {
  PASCHED_EXPECTS(cfg_.duty > 0.0 && cfg_.duty < 1.0);
  PASCHED_EXPECTS(cfg_.period > Duration::zero());
  PASCHED_EXPECTS(cfg_.favored < cfg_.unfavored);
  PASCHED_EXPECTS_MSG(
      cfg_.period >= kernel.tunables().tick_interval() * 2,
      "co-scheduler period must cover at least two kernel ticks");
  kern::ThreadSpec ts;
  ts.name = "cosched";
  ts.cls = kern::ThreadClass::CoScheduler;
  ts.base_priority = cfg_.self_priority;
  ts.fixed_priority = true;
  ts.home_cpu = 0;
  ts.stealable = true;
  thread_ = &kernel_.create_thread(std::move(ts), *this);
}

void CoScheduler::start(Duration unaligned_phase) {
  PASCHED_EXPECTS(!started_);
  started_ = true;
  const Time lnow = kernel_.local_now();
  // First window starts on the next period boundary of the (synchronized)
  // local clock — "the co-scheduler period ends on a second boundary" (§4)
  // — or at this node's arbitrary phase when alignment is off.
  window_start_local_ = cfg_.align_to_period_boundary
                            ? lnow.align_up(cfg_.period)
                            : lnow + Duration::ms(1) + unaligned_phase;
  arm(Action::ToFavored, window_start_local_);
}

void CoScheduler::arm(Action a, Time due_local) {
  kernel_.schedule_callout(thread_->home_cpu(), due_local,
                           [this, a] { on_timer(a); });
}

void CoScheduler::on_timer(Action a) {
  if (shutdown_) return;
  pending_ = a;
  burst_issued_ = false;
  if (thread_->state() == kern::ThreadState::Blocked)
    kernel_.wake(*thread_, thread_->home_cpu());
}

RunDecision CoScheduler::next(Time /*now*/) {
  if (shutdown_) return RunDecision::exit();
  if (pending_ == Action::None) return RunDecision::block();
  if (!burst_issued_) {
    burst_issued_ = true;
    const Duration cost =
        cfg_.flip_cost_base +
        cfg_.flip_cost_per_task * static_cast<std::int64_t>(tasks_.size());
    return RunDecision::compute(cost);
  }
  const Action a = pending_;
  pending_ = Action::None;
  apply(a);
  return RunDecision::block();
}

void CoScheduler::apply(Action a) {
  const kern::CpuId my_cpu = thread_->running_on();
  switch (a) {
    case Action::ToFavored: {
      favored_now_ = true;
      ++stats_.windows;
      for (kern::Thread* t : tasks_) {
        if (t->state() == kern::ThreadState::Done) continue;
        kernel_.set_priority(*t, cfg_.favored, /*fixed=*/true, my_cpu);
        ++stats_.flips;
      }
      // Unfavor at the duty-cycle point of this window (nominal time, so
      // alignment never drifts even if this sweep ran late). The wakeup is
      // a timer callout and therefore lands on a (big-)tick boundary; round
      // the favored stretch *down* to a tick multiple and always leave at
      // least one tick of unfavored time, otherwise big ticks would quantize
      // the daemons' share away entirely (the paper's 5 s / 90% setting is
      // exactly tick-aligned: 4.5 s on a 250 ms tick).
      {
        const Duration tick = kernel_.tunables().tick_interval();
        Duration favored_len = cfg_.period * cfg_.duty;
        favored_len = favored_len - (favored_len % tick);
        favored_len = std::clamp(favored_len, tick, cfg_.period - tick);
        arm(Action::ToUnfavored, window_start_local_ + favored_len);
      }
      break;
    }
    case Action::ToUnfavored: {
      favored_now_ = false;
      for (kern::Thread* t : tasks_) {
        if (t->state() == kern::ThreadState::Done) continue;
        kernel_.set_priority(*t, cfg_.unfavored, /*fixed=*/true, my_cpu);
        ++stats_.flips;
      }
      window_start_local_ = window_start_local_ + cfg_.period;
      arm(Action::ToFavored, window_start_local_);
      break;
    }
    case Action::None:
      break;
  }
}

void CoScheduler::apply_phase_to(kern::Thread& t) {
  if (t.state() == kern::ThreadState::Done) return;
  kernel_.set_priority(t, favored_now_ ? cfg_.favored : cfg_.unfavored,
                       /*fixed=*/true, kern::kExternalActor);
}

void CoScheduler::register_task(kern::Thread& t) {
  if (shutdown_) return;
  if (std::find(tasks_.begin(), tasks_.end(), &t) != tasks_.end()) return;
  tasks_.push_back(&t);
  ++stats_.registered;
  // "As soon as a process registers, it is actively co-scheduled."
  if (started_ && stats_.windows > 0) apply_phase_to(t);
}

void CoScheduler::detach(kern::Thread& t) {
  const auto it = std::find(tasks_.begin(), tasks_.end(), &t);
  if (it == tasks_.end()) return;
  tasks_.erase(it);
  // Back to normal dispatching priority for the I/O phase (§4).
  kernel_.set_priority(t, cfg_.detached_base, /*fixed=*/false,
                       kern::kExternalActor);
}

void CoScheduler::attach(kern::Thread& t) { register_task(t); }

void CoScheduler::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  tasks_.clear();
  if (thread_->state() == kern::ThreadState::Blocked)
    kernel_.wake(*thread_, kern::kExternalActor);  // lets the thread exit
}

// ---------------------------------------------------------------------------

CoschedManager::CoschedManager(cluster::Cluster& cluster, CoschedConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      phase_rng_(cluster.config().seed * 2654435761ULL + 99) {
  per_node_.resize(static_cast<std::size_t>(cluster.size()));
  if (cfg_.sync_clocks) sync_residual_ = cluster_.synchronize_clocks();
}

CoScheduler& CoschedManager::node_cosched(kern::NodeId node) {
  auto& slot = per_node_[static_cast<std::size_t>(node)];
  if (!slot) {
    slot = std::make_unique<CoScheduler>(cluster_.node(node).kernel(), cfg_);
    // Without boundary alignment each node's windows sit at whatever phase
    // its daemon happened to start with — model that as uniform phase.
    slot->start(cfg_.align_to_period_boundary
                    ? sim::Duration::zero()
                    : phase_rng_.uniform_dur(sim::Duration::zero(),
                                             cfg_.period));
  }
  return *slot;
}

void CoschedManager::register_task(kern::NodeId node, kern::Thread& t) {
  CoScheduler& cs = node_cosched(node);
  kern::Thread* tp = &t;
  CoScheduler* csp = &cs;
  cluster_.node(node).kernel().context().schedule_after(cfg_.pipe_delay,
                                   [csp, tp] { csp->register_task(*tp); });
}

void CoschedManager::detach_task(kern::NodeId node, kern::Thread& t) {
  CoScheduler& cs = node_cosched(node);
  kern::Thread* tp = &t;
  CoScheduler* csp = &cs;
  cluster_.node(node).kernel().context().schedule_after(cfg_.pipe_delay,
                                   [csp, tp] { csp->detach(*tp); });
}

void CoschedManager::attach_task(kern::NodeId node, kern::Thread& t) {
  CoScheduler& cs = node_cosched(node);
  kern::Thread* tp = &t;
  CoScheduler* csp = &cs;
  cluster_.node(node).kernel().context().schedule_after(cfg_.pipe_delay,
                                   [csp, tp] { csp->attach(*tp); });
}

void CoschedManager::job_ended() {
  for (auto& cs : per_node_)
    if (cs) cs->shutdown();
}

CoschedStats CoschedManager::total_stats() const {
  CoschedStats total;
  for (const auto& cs : per_node_) {
    if (!cs) continue;
    total.windows += cs->stats().windows;
    total.flips += cs->stats().flips;
    total.registered += cs->stats().registered;
  }
  return total;
}

}  // namespace pasched::core
