#include "core/simulation.hpp"

#include <iostream>

#include "net/fabric.hpp"
#include "util/assert.hpp"

namespace pasched::core {

Simulation::Simulation(SimulationConfig cfg, const mpi::WorkloadFactory& factory)
    : cfg_(std::move(cfg)) {
  if (cfg_.parallel > 0) {
    PASCHED_EXPECTS_MSG(
        cfg_.cluster.fabric.link_bandwidth == 0.0,
        "link_bandwidth contention is sequential-only; unset it or drop "
        "--parallel");
    const sim::Duration global = net::guaranteed_lookahead(cfg_.cluster.fabric);
    sharded_ =
        std::make_unique<sim::ShardedEngine>(cfg_.cluster.nodes, global);
    // Per-pair lookahead matrix — the runtime consumption of pasched-scale's
    // certificate. Same construction rule as scale::build_lookahead_matrix
    // (node pairs get the topology-aware bound, hub pairs the global
    // jitter-adjusted floor); scale::RunMonitor cross-checks the two at
    // monitor install, so a divergence cannot pass an audited run.
    const int shards = sharded_->partitions();
    const int hub = sharded_->hub_shard();
    sim::PairLookahead la;
    la.shards = shards;
    la.global = global;
    la.bounds.assign(static_cast<std::size_t>(shards) *
                         static_cast<std::size_t>(shards),
                     sim::Duration::zero());
    for (int a = 0; a < shards; ++a) {
      for (int b = 0; b < shards; ++b) {
        if (a == b) continue;
        const bool hub_pair = shards > 1 && (a == hub || b == hub);
        la.bounds[static_cast<std::size_t>(a) *
                      static_cast<std::size_t>(shards) +
                  static_cast<std::size_t>(b)] =
            hub_pair ? global
                     : net::guaranteed_lookahead_between(cfg_.cluster.fabric,
                                                         a, b);
      }
    }
    sharded_->set_pair_lookahead(std::move(la));
    sharded_->set_planner(cfg_.planner, cfg_.window_batch);
    sharded_->set_pin_workers(cfg_.pin_workers);
    cluster_ = std::make_unique<cluster::Cluster>(*sharded_, cfg_.cluster);
  } else {
    engine_ = std::make_unique<sim::Engine>();
    cluster_ = std::make_unique<cluster::Cluster>(*engine_, cfg_.cluster);
  }
  job_ = std::make_unique<mpi::Job>(*cluster_, cfg_.job, factory);

  if (!cfg_.mp_priority.empty()) {
    // MP_PRIORITY flow: the administrative file decides admission (§4).
    PASCHED_EXPECTS_MSG(cfg_.admin.has_value(),
                        "MP_PRIORITY set but no poe.priority records given");
    admission_ = cfg_.admin->match(cfg_.mp_priority, cfg_.uid);
    if (admission_.has_value()) {
      cfg_.use_coscheduler = true;
      cfg_.cosched.favored = admission_->favored;
      cfg_.cosched.unfavored = admission_->unfavored;
      cfg_.cosched.period = admission_->period;
      cfg_.cosched.duty = admission_->duty;
    } else {
      // "An attention message is printed and the job runs as if no priority
      // had been requested."
      std::cerr << "ATTENTION: no poe.priority record matches class '"
                << cfg_.mp_priority << "' for uid " << cfg_.uid
                << "; job will not be co-scheduled\n";
      cfg_.use_coscheduler = false;
    }
  }

  if (cfg_.use_coscheduler) {
    cosched_ = std::make_unique<CoschedManager>(*cluster_, cfg_.cosched);
    job_->set_hook(cosched_.get());
  }
}

Simulation::~Simulation() = default;

SimulationResult Simulation::run() {
  PASCHED_EXPECTS_MSG(!ran_, "Simulation::run called twice");
  ran_ = true;
  cluster_->start();
  job_->launch();
  if (sharded_ != nullptr) {
    sharded_->run_until(sharded_->engine_of(0).now() + cfg_.horizon,
                        cfg_.parallel);
  } else {
    // srclint-ok(PSL401): the run driver owns the classic-mode engine; this
    // is the one place a single-engine run is advanced.
    engine_->run_until(engine_->now() + cfg_.horizon);
  }
  SimulationResult r;
  r.completed = job_->complete();
  r.elapsed = r.completed ? job_->elapsed() : cfg_.horizon;
  r.events = sharded_ != nullptr ? sharded_->events_processed()
                                 : engine_->events_processed();
  if (r.completed) {
    // The classic engine stops with now() at the completion event's time, so
    // its before-now counter is exactly "events with t < T_c"; partitioned
    // runs subtract the final window's tail at or past T_c.
    r.events_at_completion =
        sharded_ != nullptr
            ? sharded_->events_processed_before(job_->completion_time())
            : engine_->events_processed_before_now();
  } else {
    r.events_at_completion = r.events;
  }
  r.any_node_evicted = cluster_->any_node_evicted();
  return r;
}

}  // namespace pasched::core
