#include "core/admin.hpp"

#include <stdexcept>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace pasched::core {

AdminFile AdminFile::parse(std::string_view text) {
  AdminFile f;
  int lineno = 0;
  for (const auto& raw : util::split(text, '\n')) {
    ++lineno;
    const std::string line = util::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split(line, ':');
    if (fields.size() != 6)
      throw std::logic_error("poe.priority line " + std::to_string(lineno) +
                             ": expected 6 ':'-separated fields");
    PriorityClass rec;
    rec.name = util::trim(fields[0]);
    if (rec.name.empty())
      throw std::logic_error("poe.priority line " + std::to_string(lineno) +
                             ": empty class name");
    const std::string uid_s = util::trim(fields[1]);
    if (uid_s == "*") {
      rec.uid = -1;
    } else {
      const auto uid = util::parse_int(uid_s);
      if (!uid)
        throw std::logic_error("poe.priority line " + std::to_string(lineno) +
                               ": bad uid");
      rec.uid = static_cast<int>(*uid);
    }
    const auto fav = util::parse_int(fields[2]);
    const auto unfav = util::parse_int(fields[3]);
    const auto period = util::parse_double(fields[4]);
    const auto duty = util::parse_double(fields[5]);
    if (!fav || !unfav || !period || !duty)
      throw std::logic_error("poe.priority line " + std::to_string(lineno) +
                             ": bad numeric field");
    if (*fav < kern::kBestPriority || *fav > kern::kWorstPriority ||
        *unfav < kern::kBestPriority || *unfav > kern::kWorstPriority)
      throw std::logic_error("poe.priority line " + std::to_string(lineno) +
                             ": priority out of range");
    if (*period <= 0.0 || *duty <= 0.0 || *duty > 100.0)
      throw std::logic_error("poe.priority line " + std::to_string(lineno) +
                             ": period/duty out of range");
    rec.favored = static_cast<kern::Priority>(*fav);
    rec.unfavored = static_cast<kern::Priority>(*unfav);
    rec.period = sim::Duration::from_seconds(*period);
    rec.duty = *duty / 100.0;
    f.records_.push_back(std::move(rec));
  }
  return f;
}

std::optional<PriorityClass> AdminFile::match(std::string_view cls,
                                              int uid) const {
  for (const auto& r : records_) {
    if (r.name == cls && (r.uid == -1 || r.uid == uid)) return r;
  }
  return std::nullopt;
}

}  // namespace pasched::core
