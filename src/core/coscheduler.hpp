// The paper's contribution, part 2: the external time-based co-scheduler
// (§4). One daemon per node cycles the dispatch priority of a job's tasks
// between a favored and an unfavored value over a fixed period and duty
// cycle, with window boundaries aligned to synchronized-clock period
// boundaries so every node flips at the same instant with no inter-node
// communication. CoschedManager implements the mpi::SchedulerHook control-
// pipe protocol (registration at MPI_Init, detach/attach around I/O phases)
// across the whole cluster.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "kern/kernel.hpp"
#include "mpi/hook.hpp"
#include "sim/time.hpp"

namespace pasched::core {

struct CoschedConfig {
  /// Favored/unfavored fixed priorities applied to the job's tasks.
  /// Paper settings: 30/100 for the benchmark; 41/100 with mmfsd pinned at
  /// 40 for I/O-heavy applications (the ALE3D fix).
  kern::Priority favored = 30;
  kern::Priority unfavored = 100;
  /// Scheduling window and fraction of it spent favored.
  sim::Duration period = sim::Duration::sec(5);
  double duty = 0.90;
  /// End windows on (synchronized) period boundaries, cluster-wide.
  bool align_to_period_boundary = true;
  /// Synchronize node clocks to the switch clock at startup (§4); without
  /// this, alignment is only node-local and windows drift apart.
  bool sync_clocks = true;
  /// The daemon's own (very favored) priority.
  kern::Priority self_priority = 20;
  /// CPU cost of one priority sweep: base + per-task.
  sim::Duration flip_cost_base = sim::Duration::us(20);
  sim::Duration flip_cost_per_task = sim::Duration::us(3);
  /// Latency of the pmd control pipe (registration, detach/attach).
  sim::Duration pipe_delay = sim::Duration::us(300);
  /// Priority restored to a task on detach (normal user, decaying).
  kern::Priority detached_base = kern::kNormalUserBase;
};

struct CoschedStats {
  std::uint64_t windows = 0;
  std::uint64_t flips = 0;
  std::uint64_t registered = 0;
};

/// Per-node co-scheduler daemon.
class CoScheduler final : private kern::ThreadClient {
 public:
  CoScheduler(kern::Kernel& kernel, CoschedConfig cfg);
  CoScheduler(const CoScheduler&) = delete;
  CoScheduler& operator=(const CoScheduler&) = delete;

  /// Arms the first window boundary. Called by CoschedManager. When the
  /// config disables boundary alignment, `unaligned_phase` gives this
  /// node's arbitrary window phase (real deployments inherit it from
  /// daemon start-up skew).
  void start(sim::Duration unaligned_phase = sim::Duration::zero());

  void register_task(kern::Thread& t);
  void detach(kern::Thread& t);
  void attach(kern::Thread& t);
  void shutdown();

  [[nodiscard]] const CoschedStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool in_favored_phase() const noexcept { return favored_now_; }

 private:
  enum class Action : std::uint8_t { None, ToFavored, ToUnfavored };

  kern::RunDecision next(sim::Time now) override;
  void on_timer(Action a);
  void apply(Action a);
  void apply_phase_to(kern::Thread& t);
  void arm(Action a, sim::Time due_local);

  kern::Kernel& kernel_;
  CoschedConfig cfg_;
  kern::Thread* thread_ = nullptr;
  std::vector<kern::Thread*> tasks_;
  sim::Time window_start_local_{};
  bool favored_now_ = false;
  Action pending_ = Action::None;
  bool burst_issued_ = false;
  bool shutdown_ = false;
  bool started_ = false;
  CoschedStats stats_;
};

/// Cluster-wide manager: owns one CoScheduler per node that hosts tasks and
/// adapts the MPI runtime's control-pipe protocol.
class CoschedManager final : public mpi::SchedulerHook {
 public:
  CoschedManager(cluster::Cluster& cluster, CoschedConfig cfg);

  void register_task(kern::NodeId node, kern::Thread& t) override;
  void detach_task(kern::NodeId node, kern::Thread& t) override;
  void attach_task(kern::NodeId node, kern::Thread& t) override;
  void job_ended() override;

  [[nodiscard]] CoschedStats total_stats() const;
  [[nodiscard]] const CoschedConfig& config() const noexcept { return cfg_; }
  /// Worst residual clock offset after startup sync (zero when sync off).
  [[nodiscard]] sim::Duration sync_residual() const noexcept {
    return sync_residual_;
  }

 private:
  CoScheduler& node_cosched(kern::NodeId node);

  cluster::Cluster& cluster_;
  CoschedConfig cfg_;
  std::vector<std::unique_ptr<CoScheduler>> per_node_;
  sim::Duration sync_residual_ = sim::Duration::zero();
  sim::Rng phase_rng_;
};

}  // namespace pasched::core
