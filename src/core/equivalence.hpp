// Canonical run digest for execution-mode equivalence checks: a single hash
// over everything the simulation's observable history contains — scheduling
// intervals, the analyzer event stream, and per-rank completion times — in
// the canonical (t, node, per-node sequence) order. The classic single-queue
// engine, `--parallel=1`, and `--parallel=N` must all produce the same
// digest for the same configuration; pasched-audit and the
// parallel-equivalence property test enforce this.
#pragma once

#include <cstdint>
#include <functional>

#include "core/simulation.hpp"

namespace pasched::core {

struct CanonicalDigest {
  /// FNV-1a over the truncated canonical history (see run_canonical).
  std::uint64_t hash = 0;
  bool completed = false;
  sim::Duration elapsed = sim::Duration::zero();
  /// Total events fired (informational — NOT part of the hash: partitioned
  /// runs drain their final lookahead window past the completion event, so
  /// raw event counts legitimately differ across modes).
  std::uint64_t events = 0;
};

/// Runs `cfg` to completion with a cluster-wide tracer + event log attached
/// and digests the observable history. The history is truncated at the job's
/// completion time T_c (strictly: interval end < T_c, event t < T_c): after
/// the last rank finishes, the classic engine stops immediately while a
/// partitioned run completes its synchronization window, so post-completion
/// daemon activity exists only in the latter and is not part of the
/// equivalence claim.
[[nodiscard]] CanonicalDigest run_canonical(const SimulationConfig& cfg,
                                            const mpi::WorkloadFactory& factory);

/// Instrumented overload: `prepare` runs after the tracer is attached but
/// before the run, with the fully built Simulation — pasched-race uses it to
/// install its seam monitor, window-perturbation source, and planted faults.
/// An empty function behaves exactly like the plain overload.
[[nodiscard]] CanonicalDigest run_canonical(
    const SimulationConfig& cfg, const mpi::WorkloadFactory& factory,
    const std::function<void(Simulation&)>& prepare);

}  // namespace pasched::core
