// The administrative interface: /etc/poe.priority. Root-writable records of
//   class_name:uid:favored:unfavored:period_seconds:duty_percent
// A user requests co-scheduling by setting MP_PRIORITY=<class>; the job is
// admitted only when (class, uid) matches a record (§4). Mismatches print an
// attention message and the job runs unscheduled — we reproduce that
// contract via the `Admission` result.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kern/types.hpp"
#include "sim/time.hpp"

namespace pasched::core {

struct PriorityClass {
  std::string name;
  int uid = -1;  // -1 matches any user (the "group" extension §4 hints at)
  kern::Priority favored = 30;
  kern::Priority unfavored = 100;
  sim::Duration period = sim::Duration::sec(5);
  double duty = 0.90;
};

class AdminFile {
 public:
  AdminFile() = default;

  /// Parses poe.priority text; '#' comments and blank lines are ignored.
  /// Throws std::logic_error with a line number on malformed records.
  static AdminFile parse(std::string_view text);

  void add(PriorityClass rec) { records_.push_back(std::move(rec)); }

  /// First record matching (class name, uid); nullopt = job runs without
  /// co-scheduling (with an attention message, per §4).
  [[nodiscard]] std::optional<PriorityClass> match(std::string_view cls,
                                                   int uid) const;

  [[nodiscard]] const std::vector<PriorityClass>& records() const noexcept {
    return records_;
  }

 private:
  std::vector<PriorityClass> records_;
};

}  // namespace pasched::core
