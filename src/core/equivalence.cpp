#include "core/equivalence.hpp"

#include <string>

#include "trace/trace.hpp"

namespace pasched::core {

namespace {

// FNV-1a, matching the hasher style of tools/pasched_audit.
class Hasher {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffU;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix_int(std::int64_t v) noexcept {
    mix(static_cast<std::uint64_t>(v));
  }
  void mix_str(const std::string& s) noexcept {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
    mix(s.size());
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

CanonicalDigest run_canonical(const SimulationConfig& cfg,
                              const mpi::WorkloadFactory& factory) {
  return run_canonical(cfg, factory, {});
}

CanonicalDigest run_canonical(const SimulationConfig& cfg,
                              const mpi::WorkloadFactory& factory,
                              const std::function<void(Simulation&)>& prepare) {
  Simulation sim(cfg, factory);
  trace::Tracer tracer(-1);
  trace::EventLog elog;
  for (int n = 0; n < sim.cluster().size(); ++n)
    tracer.attach(sim.cluster().node(n).kernel());
  tracer.set_event_log(&elog);
  sim.job().set_event_log(&elog);
  tracer.enable(sim.engine().now());
  if (prepare) prepare(sim);

  const SimulationResult res = sim.run();

  CanonicalDigest d;
  d.completed = res.completed;
  d.elapsed = res.elapsed;
  d.events = res.events;

  const sim::Time tc =
      res.completed ? sim.job().completion_time() : sim::Time::max();

  Hasher h;
  h.mix(res.completed ? 1 : 0);
  h.mix_int(res.elapsed.count());
  for (int r = 0; r < sim.job().ntasks(); ++r)
    h.mix_int(sim.job().task(r).finish_time().since_epoch().count());
  for (const trace::Interval& iv : tracer.intervals()) {
    if (iv.end >= tc) continue;
    h.mix_int(iv.begin.since_epoch().count());
    h.mix_int(iv.end.since_epoch().count());
    h.mix_int(iv.node);
    h.mix_int(iv.cpu);
    h.mix_str(iv.thread->name());
  }
  for (const trace::Event& e : elog.events()) {
    if (e.t >= tc) continue;
    h.mix_int(e.t.since_epoch().count());
    h.mix_int(static_cast<int>(e.kind));
    h.mix_int(e.node);
    h.mix_int(e.cpu);
    h.mix_int(e.tid);
    h.mix_int(static_cast<int>(e.cls));
    h.mix_int(e.priority);
    h.mix_int(e.ready_depth);
    h.mix_int(e.src_rank);
    h.mix_int(e.dst_rank);
    h.mix(e.msg_id);
  }
  d.hash = h.value();
  return d;
}

}  // namespace pasched::core
