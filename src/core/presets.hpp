// Named configurations from the paper's evaluation (§5.3):
//  * vanilla_kernel()   — stock AIX 4.3.3 behaviour.
//  * prototype_kernel() — all §3 changes: big ticks (250 ms), simultaneous
//    cluster-aligned ticks, daemon global-queue dispatch, RT scheduling with
//    reverse pre-emption and multiple in-flight IPIs.
//  * paper_cosched()    — the settled co-scheduler parameters: favored 30,
//    unfavored 100, 5 s window, 90% duty.
//  * io_aware_cosched() — the ALE3D fix: favored just above mmfsd (41 vs 40).
#pragma once

#include <string>
#include <vector>

#include "core/coscheduler.hpp"
#include "kern/tunables.hpp"

namespace pasched::core {

[[nodiscard]] kern::Tunables vanilla_kernel();
[[nodiscard]] kern::Tunables prototype_kernel();

[[nodiscard]] CoschedConfig paper_cosched();
[[nodiscard]] CoschedConfig io_aware_cosched(kern::Priority io_priority = 40);

// Enumerable views of every shipped preset, so tooling (pasched-lint, CI,
// the per-rule lint tests) can sweep them without hardcoding names.
struct NamedKernelPreset {
  std::string name;
  kern::Tunables tunables;
};
struct NamedCoschedPreset {
  std::string name;
  CoschedConfig config;
};
[[nodiscard]] std::vector<NamedKernelPreset> named_kernel_presets();
[[nodiscard]] std::vector<NamedCoschedPreset> named_cosched_presets();

}  // namespace pasched::core
