// One-call experiment runner: builds engine + cluster + job (+ optional
// co-scheduler), runs to completion, and exposes results. This is the
// public API most examples and every bench go through.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cluster/cluster.hpp"
#include "core/admin.hpp"
#include "core/coscheduler.hpp"
#include "mpi/job.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"

namespace pasched::core {

struct SimulationConfig {
  cluster::ClusterConfig cluster;
  mpi::JobConfig job;
  /// Engage the co-scheduler (with `cosched` parameters) for this job.
  bool use_coscheduler = false;
  CoschedConfig cosched;

  /// §4's administrative flow: when `mp_priority` is non-empty (the user set
  /// MP_PRIORITY=<class>), the /etc/poe.priority records in `admin` decide
  /// admission. On a match, co-scheduling is engaged with the record's
  /// priorities/period/duty (overriding `use_coscheduler`/`cosched` values);
  /// on a mismatch an attention message is printed and the job runs
  /// unscheduled, exactly as the paper describes.
  std::string mp_priority;
  int uid = 1000;
  std::optional<AdminFile> admin;
  /// Hard wall on simulated time (guards against configuration deadlocks
  /// and total daemon starvation).
  sim::Duration horizon = sim::Duration::sec(3600);

  /// Partitioned execution: 0 = classic single event queue; N >= 1 = one
  /// event shard per node (plus the switch hub) driven by N worker threads
  /// under conservative lookahead windows. `--parallel=1` exercises the
  /// partitioned machinery on one thread and must match `--parallel=N`
  /// bit for bit. Incompatible with fabric link_bandwidth contention.
  int parallel = 0;
  /// Window planner for partitioned runs. PerPair (default) consumes the
  /// per-pair guaranteed-lookahead matrix (the runtime side of
  /// pasched-scale's certificate, derived here from the fabric config) and
  /// chains `window_batch` windows per global synchronization; Global
  /// reproduces the legacy one-window-per-barrier schedule. Both must be
  /// bit-identical — the audit gate compares their digests.
  sim::PlannerMode planner = sim::PlannerMode::PerPair;
  int window_batch = sim::kDefaultWindowBatch;
  /// Pin shard workers to cores when the host has enough of them.
  bool pin_workers = true;
};

struct SimulationResult {
  bool completed = false;
  sim::Duration elapsed = sim::Duration::zero();
  /// Raw events fired, mode-dependent: the classic engine stops at the
  /// completing event while partitioned runs drain the rest of their final
  /// lookahead window, so this counter legitimately differs across modes.
  std::uint64_t events = 0;
  /// Events fired strictly before the job's completion time — the
  /// mode-invariant counter (bit-identical histories below T_c imply equal
  /// counts). Falls back to `events` when the job did not complete.
  std::uint64_t events_at_completion = 0;
  bool any_node_evicted = false;
};

class Simulation {
 public:
  Simulation(SimulationConfig cfg, const mpi::WorkloadFactory& factory);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Launches the job and runs until completion (or the horizon).
  SimulationResult run();

  /// Shard 0's engine (the only engine in classic mode).
  [[nodiscard]] sim::Engine& engine() noexcept { return cluster_->engine(); }
  /// The partitioned executor (nullptr in classic mode) — the attachment
  /// point for pasched-race's seam monitor and window-perturbation source.
  [[nodiscard]] sim::ShardedEngine* sharded() noexcept {
    return sharded_.get();
  }
  [[nodiscard]] cluster::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] mpi::Job& job() noexcept { return *job_; }
  /// nullptr when the co-scheduler is not engaged.
  [[nodiscard]] CoschedManager* cosched() noexcept { return cosched_.get(); }
  [[nodiscard]] const SimulationConfig& config() const noexcept { return cfg_; }
  /// The admin record that admitted this job, if the MP_PRIORITY flow ran.
  [[nodiscard]] const std::optional<PriorityClass>& admission() const noexcept {
    return admission_;
  }

 private:
  SimulationConfig cfg_;
  std::unique_ptr<sim::Engine> engine_;          // classic mode
  std::unique_ptr<sim::ShardedEngine> sharded_;  // --parallel mode
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<mpi::Job> job_;
  std::unique_ptr<CoschedManager> cosched_;
  std::optional<PriorityClass> admission_;
  bool ran_ = false;
};

}  // namespace pasched::core
