#include "core/presets.hpp"

namespace pasched::core {

kern::Tunables vanilla_kernel() {
  kern::Tunables t;  // defaults model stock AIX: 10 ms staggered ticks,
  t.big_tick = 1;    // per-CPU daemon queueing, no forced preemption IPIs.
  t.synchronized_ticks = false;
  t.cluster_aligned_ticks = false;
  t.rt_scheduling = false;
  t.rt_reverse_preemption = false;
  t.rt_multi_ipi = false;
  t.daemon_global_queue = false;
  return t;
}

kern::Tunables prototype_kernel() {
  kern::Tunables t;
  // §3.1.1 — big ticks: final runs used a 250 ms physical tick.
  t.big_tick = 25;
  // §3.2.1 / §4 — simultaneous ticks, aligned cluster-wide (with clock sync).
  t.synchronized_ticks = true;
  t.cluster_aligned_ticks = true;
  // §3 — fixed "real time scheduling": IPIs for forward *and* reverse
  // pre-emption, multiple in flight.
  t.rt_scheduling = true;
  t.rt_reverse_preemption = true;
  t.rt_multi_ipi = true;
  // §3.1.2 — daemons dispatched from the node-global queue.
  t.daemon_global_queue = true;
  return t;
}

CoschedConfig paper_cosched() {
  CoschedConfig c;  // §5.3: favored 30, unfavored 100, 5 s window, 90% duty
  c.favored = 30;
  c.unfavored = 100;
  c.period = sim::Duration::sec(5);
  c.duty = 0.90;
  c.align_to_period_boundary = true;
  c.sync_clocks = true;
  return c;
}

CoschedConfig io_aware_cosched(kern::Priority io_priority) {
  CoschedConfig c = paper_cosched();
  // The ALE3D fix: favored just *above* (numerically one more than) the I/O
  // daemon, so mmfsd can always preempt the tasks it serves.
  c.favored = io_priority + 1;
  return c;
}

std::vector<NamedKernelPreset> named_kernel_presets() {
  return {{"vanilla", vanilla_kernel()}, {"prototype", prototype_kernel()}};
}

std::vector<NamedCoschedPreset> named_cosched_presets() {
  return {{"paper", paper_cosched()}, {"io-aware", io_aware_cosched()}};
}

}  // namespace pasched::core
