// The pasched-race run drivers: an audited single run (annotation layer +
// vector-clock monitor attached to the partitioned executor) and the
// window-perturbation fuzz loop that shrinks conservative windows toward the
// legal minimum via the model checker's ChoiceSource seam. Every perturbed
// run must reproduce the unperturbed canonical digest — the lookahead
// guarantee makes any shorter window equally correct — so a divergence is a
// latent ordering bug, reported as PSL204 with the replayable mc::Schedule
// that exposed it.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/equivalence.hpp"
#include "mc/schedule.hpp"
#include "race/monitor.hpp"
#include "sim/random.hpp"

namespace pasched::race {

/// A ChoiceSource drawing uniform picks from a seeded Rng while recording
/// every decision, so a failing perturbation replays exactly through
/// mc::GuidedSource. Only the barrier completion step queries it
/// ("shard.window_quantum"), so no locking is needed.
class RecordingRandomSource final : public sim::ChoiceSource {
 public:
  explicit RecordingRandomSource(std::uint64_t seed) : rng_(seed) {}
  std::size_t choose(std::size_t n, const char* tag) override;
  [[nodiscard]] const mc::Schedule& trace() const noexcept { return trace_; }

 private:
  sim::Rng rng_;
  mc::Schedule trace_;
};

struct AuditOptions {
  /// Worker threads for the partitioned run (>= 1). The planted-fault
  /// regression scenario should run with 1 so the *logical* violation is
  /// observed without a physical data race.
  int workers = 2;
  /// Window-perturbation source (nullptr = full-lookahead windows).
  sim::ChoiceSource* window_choice = nullptr;
  /// Plants a direct cross-shard write: an event on shard 0 mutates node 1's
  /// kernel without going through the router — the CI regression that the
  /// auditor must catch. Requires a multi-node cluster.
  bool plant_cross_shard_write = false;
  /// Simulated time of the planted write.
  sim::Duration plant_at = sim::Duration::sec(1);
};

struct AuditRun {
  core::CanonicalDigest digest;
  std::vector<analysis::Diagnostic> findings;
  Monitor::Stats stats;
};

/// One audited run: forces partitioned execution (`cfg.parallel` is
/// overridden with opt.workers when it is 0), installs the ownership sink +
/// seam monitor, and returns the canonical digest plus every PSL2xx finding.
[[nodiscard]] AuditRun run_audited(const core::SimulationConfig& cfg,
                                   const mpi::WorkloadFactory& factory,
                                   const AuditOptions& opt);

struct FuzzResult {
  int runs = 0;
  std::uint64_t base_hash = 0;
  /// All findings across the baseline and every perturbed run (ownership /
  /// race findings, plus one PSL204 per digest divergence).
  std::vector<analysis::Diagnostic> findings;
  /// The recorded schedule of the first diverging run (empty when none).
  mc::Schedule failing;
  bool diverged = false;
};

/// Runs the unperturbed baseline, then `iterations` seeded window
/// perturbations, checking each digest against the baseline.
[[nodiscard]] FuzzResult fuzz_windows(const core::SimulationConfig& cfg,
                                      const mpi::WorkloadFactory& factory,
                                      int iterations, std::uint64_t seed,
                                      int workers);

/// Replays one recorded perturbation schedule (a PSL204 counterexample)
/// through mc::GuidedSource and returns the audited run.
[[nodiscard]] AuditRun replay_schedule(const core::SimulationConfig& cfg,
                                       const mpi::WorkloadFactory& factory,
                                       const mc::Schedule& schedule,
                                       int workers);

}  // namespace pasched::race
