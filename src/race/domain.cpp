#include "race/domain.hpp"

#include <sstream>

namespace pasched::race {

namespace {

thread_local Domain t_domain = kFreeContext;

// Plain pointer: installed/cleared only while no workers run (SinkScope
// brackets the run; the sharded engine's pool is joined in between), and
// worker reads are ordered by the pool's barrier/thread-creation edges.
ViolationSink* g_sink = nullptr;

[[noreturn]] void throw_violation(const Violation& v) {
  std::ostringstream os;
  os << "shard-ownership violation: " << v.label << "[" << v.id << "] owned"
     << " by domain " << v.owner << " mutated via '" << v.what
     << "' from domain " << v.accessor;
  if (v.last_domain != kUnbound)
    os << " (last access: domain " << v.last_domain << " @clock "
       << v.last_clock << ")";
  throw check::CheckError(os.str());
}

}  // namespace

Domain current_domain() noexcept { return t_domain; }

ScopedDomain::ScopedDomain(Domain d) noexcept : prev_(t_domain) {
  t_domain = d;
}

ScopedDomain::~ScopedDomain() { t_domain = prev_; }

void install_sink(ViolationSink* s) noexcept { g_sink = s; }

ViolationSink* sink() noexcept { return g_sink; }

void Owned::on_access(const char* what) const {
  const Domain cur = t_domain;
  if (cur == kFreeContext || domain_ == kUnbound) return;
  ViolationSink* s = g_sink;
  if (cur == domain_) {
    // Owner fast path: stamp the FastTrack last-access epoch so a later
    // foreign access can be classified ordered vs unordered.
    if (s != nullptr)
      last_epoch_.store(EpochCodec::pack(cur, s->clock_of(cur)),
                        std::memory_order_relaxed);
    return;
  }
  Violation v;
  v.label = label_;
  v.id = id_;
  v.owner = domain_;
  v.accessor = cur;
  v.what = what;
  const std::uint64_t last = last_epoch_.load(std::memory_order_relaxed);
  if (last != 0) {
    v.last_domain = EpochCodec::domain_of(last);
    v.last_clock = EpochCodec::clock_of(last);
  }
  if (s != nullptr) {
    s->report(v);
    last_epoch_.store(EpochCodec::pack(cur, s->clock_of(cur)),
                      std::memory_order_relaxed);
    return;
  }
  throw_violation(v);
}

void assert_write_domain(Domain owner, const char* label, int id,
                         const char* what) {
  const Domain cur = t_domain;
  if (cur == kFreeContext || owner == kUnbound || cur == owner) return;
  Violation v;
  v.label = label;
  v.id = id;
  v.owner = owner;
  v.accessor = cur;
  v.what = what;
  ViolationSink* s = g_sink;
  if (s != nullptr) {
    s->report(v);
    return;
  }
  throw_violation(v);
}

}  // namespace pasched::race
