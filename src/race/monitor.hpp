// The dynamic half of pasched-race: a FastTrack-style vector-clock checker
// hung on the sharded engine's cross-shard seams (router posts, inbox
// drains, window begins, barrier plans) plus the ViolationSink that turns
// ownership breaches from the annotation layer (race/domain.hpp) into
// PSL2xx diagnostics.
//
// Clock model: one vector clock per shard domain. A domain's own component
// ticks at every window begin and every cross-shard post (release). A post
// snapshots the source clock into the in-flight message; admission joins
// that snapshot into the destination (acquire). A horizon publish likewise
// snapshots the publisher's clock (release) and a horizon wait joins the
// source's latest published snapshot (acquire) — the neighbor-only edges
// that replaced the per-window global barrier. The barrier completion step
// joins every clock into every other — all workers are parked there, so
// cross-shard happens-before is total at a barrier. An ownership breach is
// then a *race* (PSL202, not just a discipline breach, PSL201) exactly when
// the accessor's clock has not caught up to the object's last-access epoch.
//
// Thread-safety: row d of the clock matrix is only ever touched by the
// worker currently executing domain d (windows of one shard never run
// concurrently with themselves) or by the completion step with every worker
// parked — no atomics needed. The message map, findings, and counters are
// shared and locked.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "race/domain.hpp"
#include "sim/shard.hpp"
#include "sim/time.hpp"

namespace pasched::race {

class Monitor final : public sim::ShardMonitor, public ViolationSink {
 public:
  /// `partitions` = number of shard domains (ShardedEngine::partitions()).
  explicit Monitor(int partitions);

  // sim::ShardMonitor -------------------------------------------------------
  void on_post(int src_shard, int dst_shard, sim::Time t, sim::Time sent_at,
               std::uint64_t src_seq) override;
  void on_admit(int dst_shard, int src_shard, std::uint64_t src_seq,
                sim::Time t, sim::Time dst_now) override;
  void on_window_begin(int shard, sim::Time window_end) override;
  void on_plan(sim::Time window_end, bool final_window) override;
  /// Horizon release: snapshot the shard's clock as the value peers acquire
  /// through the atomic horizon publish, then open a new epoch. The engine
  /// calls this *before* the release store, so any waiter that observed the
  /// horizon finds the snapshot already recorded.
  void on_horizon_publish(int shard, sim::Time horizon) override;
  /// Horizon acquire: join the source's latest published snapshot into the
  /// destination clock. The engine's spin reads the *current* horizon value,
  /// so the latest snapshot is exactly the store it synchronized with.
  void on_horizon_wait(int dst_shard, int src_shard) override;

  // race::ViolationSink -----------------------------------------------------
  void report(const Violation& v) override;
  [[nodiscard]] std::uint64_t clock_of(Domain d) noexcept override;

  // Results -----------------------------------------------------------------
  struct Stats {
    std::uint64_t posts = 0;
    std::uint64_t admits = 0;
    std::uint64_t windows = 0;
    std::uint64_t plans = 0;
    std::uint64_t horizon_publishes = 0;
    std::uint64_t horizon_waits = 0;
    std::uint64_t violations = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::vector<analysis::Diagnostic> findings() const;
  /// Appends an externally produced finding (the fuzz driver's PSL204).
  void add_finding(analysis::Diagnostic d);

 private:
  void record(analysis::Diagnostic d);

  int n_;
  std::vector<std::vector<std::uint64_t>> vc_;  // vc_[domain][component]

  mutable std::mutex mu_;  // guards msgs_, pub_, findings_, stats_
  std::map<std::pair<int, std::uint64_t>, std::vector<std::uint64_t>> msgs_;
  /// pub_[shard]: the clock snapshot released by that shard's most recent
  /// horizon publish (what on_horizon_wait acquires).
  std::vector<std::vector<std::uint64_t>> pub_;
  std::vector<analysis::Diagnostic> findings_;
  Stats stats_;
};

}  // namespace pasched::race
