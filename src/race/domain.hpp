// Shard-ownership domains: the machine-checked form of the partitioned
// core's implicit discipline (DESIGN §7.1). Every shard-owned object —
// kernels, tasks, daemon state, per-node trace buffers — carries an Owned
// tag naming the shard domain that may mutate it; the sharded engine's
// workers mark the domain they are executing (ScopedDomain), and every
// mutating entry point asserts the executing worker holds the object's
// domain (PASCHED_ASSERT_OWNED).
//
// A context with no domain set (kFreeContext) passes every check: legacy
// single-engine runs, construction/setup, and the barrier completion step
// (wrapups) are all quiesced single-threaded contexts where any object may
// legally be touched. The checks compile to nothing unless the build defines
// PASCHED_VALIDATE_ENABLED=1, so release hot paths pay zero cost; the Owned
// fields themselves stay present so object layout is validation-agnostic
// (the engine's Slot::held follows the same rule).
//
// Violations either throw check::CheckError (the hard enforcement mode used
// by tests and CI) or, when a ViolationSink is installed (pasched-race's
// Monitor), are recorded as PSL2xx diagnostics with shard/object/epoch
// attribution and the run continues — an auditing run wants the full list,
// not the first hit.
//
// This header is dependency-free above util/check so that every subsystem
// (sim, kern, daemons, trace, mpi) can annotate without a link cycle; the
// vector-clock checker that consumes the reports lives in race/monitor.hpp.
#pragma once

#include <atomic>
#include <cstdint>

#include "check/check.hpp"

namespace pasched::race {

/// A shard domain: the shard id of the owning event shard (node shards are
/// 0..nodes-1, the hub shard is `nodes`; the single legacy engine is 0).
using Domain = int;

/// No worker scope is active on this thread: setup, teardown, the barrier
/// completion step, and every legacy (non-partitioned) run.
inline constexpr Domain kFreeContext = -1;

/// The object has not been bound to a domain (hand-built test fixtures);
/// all accesses pass.
inline constexpr Domain kUnbound = -2;

/// The domain the calling thread currently executes for (kFreeContext when
/// none). Set exclusively by sim::ShardedEngine workers via ScopedDomain.
[[nodiscard]] Domain current_domain() noexcept;

/// RAII scope marking this thread as executing `d`'s events. Nestable;
/// restores the previous domain on destruction.
class ScopedDomain {
 public:
  explicit ScopedDomain(Domain d) noexcept;
  ~ScopedDomain();
  ScopedDomain(const ScopedDomain&) = delete;
  ScopedDomain& operator=(const ScopedDomain&) = delete;

 private:
  Domain prev_;
};

/// One ownership violation, as observed at a mutating entry point.
struct Violation {
  const char* label = "?";  // object class, e.g. "kern.Kernel"
  int id = -1;              // instance (node id, rank, ...)
  Domain owner = kUnbound;
  Domain accessor = kFreeContext;
  /// FastTrack-style last-access epoch of the object (kUnbound/0 when the
  /// object was never accessed under a monitor, or carries no epoch).
  Domain last_domain = kUnbound;
  std::uint64_t last_clock = 0;
  const char* what = "?";  // the entry point, e.g. "wake"
};

/// Receiver for violations and the per-domain epoch clocks backing them.
/// race::Monitor implements this; installing one switches enforcement from
/// throw-on-violation to collect-and-continue.
class ViolationSink {
 public:
  virtual ~ViolationSink() = default;
  /// Called from the accessing worker's thread; must be thread-safe.
  virtual void report(const Violation& v) = 0;
  /// Current epoch clock of `d` (0 if out of range). Called from d's own
  /// worker thread only.
  [[nodiscard]] virtual std::uint64_t clock_of(Domain d) noexcept = 0;
};

/// Installs (or clears, with nullptr) the process-wide sink. Not
/// thread-safe against concurrent install; install before running and clear
/// after — SinkScope does both.
void install_sink(ViolationSink* s) noexcept;
[[nodiscard]] ViolationSink* sink() noexcept;

/// RAII install/clear of the process-wide sink.
class SinkScope {
 public:
  explicit SinkScope(ViolationSink* s) noexcept { install_sink(s); }
  ~SinkScope() { install_sink(nullptr); }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;
};

/// The ownership tag embedded in every annotated object. bind() names the
/// owning domain (typically the object's EventContext shard) at
/// construction; on_access() is the checked mutating-entry-point hook —
/// call it through PASCHED_ASSERT_OWNED so it compiles away when validation
/// is off. The last-access epoch is a relaxed atomic: racing accesses are
/// exactly what it exists to witness, and the witness itself must not be a
/// data race.
class Owned {
 public:
  Owned() = default;
  Owned(const Owned&) = delete;
  Owned& operator=(const Owned&) = delete;

  void bind(Domain d, const char* label, int id) noexcept {
    domain_ = d;
    label_ = label;
    id_ = id;
  }
  [[nodiscard]] Domain domain() const noexcept { return domain_; }
  [[nodiscard]] const char* label() const noexcept { return label_; }
  [[nodiscard]] int id() const noexcept { return id_; }

  /// Asserts the calling thread may mutate this object; stamps the
  /// last-access epoch when a sink is installed. Throws check::CheckError
  /// on violation when no sink is installed.
  void on_access(const char* what) const;

 private:
  Domain domain_ = kUnbound;
  const char* label_ = "?";
  int id_ = -1;
  /// Packed (domain + 3, clock + 1); 0 = never accessed.
  mutable std::atomic<std::uint64_t> last_epoch_{0};

  friend struct EpochCodec;
};

/// Epoch packing shared with the monitor: 16 bits of (domain + 3) so
/// kFreeContext/kUnbound encode, 48 bits of (clock + 1).
struct EpochCodec {
  [[nodiscard]] static std::uint64_t pack(Domain d, std::uint64_t clock) {
    return ((clock + 1) << 16) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d + 3)) &
            0xffffU);
  }
  [[nodiscard]] static Domain domain_of(std::uint64_t e) {
    return static_cast<Domain>(static_cast<int>(e & 0xffffU)) - 3;
  }
  [[nodiscard]] static std::uint64_t clock_of(std::uint64_t e) {
    return (e >> 16) - 1;
  }
};

/// Container form of the same check, for per-node buffers that have no
/// Owned member per element (trace::EventLog buckets, Tracer per-node
/// state). `owner` is the owning domain — for per-node state this is the
/// node id, relying on the sharded engine's identity shard_of_node mapping.
/// No epoch is tracked, so violations report as ownership breaches (PSL201)
/// without a race classification.
void assert_write_domain(Domain owner, const char* label, int id,
                         const char* what);

}  // namespace pasched::race

#if PASCHED_VALIDATE_ENABLED
#define PASCHED_ASSERT_OWNED(owned, what) (owned).on_access(what)
#define PASCHED_ASSERT_DOMAIN(owner, label, id, what) \
  ::pasched::race::assert_write_domain((owner), (label), (id), (what))
#else
// Off: compiled out entirely — the call sits inside a sizeof (unevaluated
// operand), so the expansion is a compile-time constant with zero codegen,
// while the arguments are still parsed and type-checked against the real
// signature, so an invalid expression cannot bit-rot unnoticed (same
// contract as PASCHED_CHECK).
#define PASCHED_ASSERT_OWNED(owned, what)                       \
  do {                                                          \
    static_cast<void>(sizeof(((owned).on_access(what), 0)));    \
  } while (0)
#define PASCHED_ASSERT_DOMAIN(owner, label, id, what)                     \
  do {                                                                    \
    static_cast<void>(sizeof((::pasched::race::assert_write_domain(       \
                                  (owner), (label), (id), (what)),        \
                              0)));                                       \
  } while (0)
#endif  // PASCHED_VALIDATE_ENABLED
