#include "race/fuzz.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "cluster/cluster.hpp"
#include "kern/kernel.hpp"
#include "util/assert.hpp"

namespace pasched::race {

std::size_t RecordingRandomSource::choose(std::size_t n, const char* tag) {
  PASCHED_EXPECTS(n >= 1);
  const auto pick = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  trace_.push_back(mc::Choice{tag, n, pick});
  return pick;
}

namespace {

/// Clears the process-wide violation sink on every exit path: the Monitor it
/// points at dies with run_audited's scope.
class SinkClear {
 public:
  SinkClear() = default;
  ~SinkClear() { install_sink(nullptr); }
  SinkClear(const SinkClear&) = delete;
  SinkClear& operator=(const SinkClear&) = delete;
};

}  // namespace

AuditRun run_audited(const core::SimulationConfig& cfg,
                     const mpi::WorkloadFactory& factory,
                     const AuditOptions& opt) {
  PASCHED_EXPECTS(opt.workers >= 1);
  core::SimulationConfig c = cfg;
  if (c.parallel < 1) c.parallel = opt.workers;

  std::unique_ptr<Monitor> monitor;
  const SinkClear clear;
  AuditRun out;
  out.digest = core::run_canonical(c, factory, [&](core::Simulation& sim) {
    sim::ShardedEngine* sh = sim.sharded();
    PASCHED_EXPECTS_MSG(sh != nullptr,
                        "pasched-race requires partitioned execution");
    monitor = std::make_unique<Monitor>(sh->partitions());
    sh->set_monitor(monitor.get());
    if (opt.window_choice != nullptr)
      sh->set_window_choice(opt.window_choice);
    install_sink(monitor.get());
    if (opt.plant_cross_shard_write) {
      PASCHED_EXPECTS_MSG(sim.cluster().size() > 1,
                          "the planted fault needs a second node");
      // The regression fault: an event executing on shard 0 reaches
      // straight into node 1's kernel instead of posting through the
      // router. The callout body itself is inert — the *registration* is
      // the cross-shard mutation the auditor must flag.
      kern::Kernel& victim = sim.cluster().node(1).kernel();
      // srclint-ok(PSL401): the planted fault must bypass the router — a
      // routed post would be legal and the auditor would have nothing to
      // catch.
      sh->engine_of(0).schedule_at(
          sh->engine_of(0).now() + opt.plant_at, [&victim] {
            victim.schedule_callout(0, victim.local_now(), [] {});
          });
    }
  });
  out.findings = monitor->findings();
  out.stats = monitor->stats();
  return out;
}

FuzzResult fuzz_windows(const core::SimulationConfig& cfg,
                        const mpi::WorkloadFactory& factory, int iterations,
                        std::uint64_t seed, int workers) {
  PASCHED_EXPECTS(iterations >= 1);
  FuzzResult out;

  AuditOptions base_opt;
  base_opt.workers = workers;
  const AuditRun base = run_audited(cfg, factory, base_opt);
  out.base_hash = base.digest.hash;
  out.findings = base.findings;
  ++out.runs;

  const sim::Rng seeder(seed);
  for (int i = 0; i < iterations; ++i) {
    RecordingRandomSource source(
        seeder.fork(static_cast<std::uint64_t>(i)).next_u64());
    AuditOptions opt;
    opt.workers = workers;
    opt.window_choice = &source;
    const AuditRun run = run_audited(cfg, factory, opt);
    ++out.runs;
    for (const analysis::Diagnostic& d : run.findings)
      out.findings.push_back(d);
    if (run.digest.hash == base.digest.hash &&
        run.digest.elapsed.count() == base.digest.elapsed.count())
      continue;
    if (!out.diverged) {
      out.diverged = true;
      out.failing = source.trace();
    }
    analysis::Diagnostic d;
    d.rule = "PSL204";
    d.severity = analysis::Severity::Error;
    d.subject = "window-fuzz";
    std::ostringstream msg;
    msg << "perturbation " << i << " (seed " << seed << ") diverged: hash "
        << std::hex << run.digest.hash << " vs baseline " << base.digest.hash
        << std::dec << " over " << source.trace().size()
        << " recorded window choices";
    d.message = msg.str();
    d.fix_hint =
        "replay the recorded schedule with pasched-race --replay to "
        "reproduce, then look for state crossing shards outside the router";
    out.findings.push_back(std::move(d));
  }
  return out;
}

AuditRun replay_schedule(const core::SimulationConfig& cfg,
                         const mpi::WorkloadFactory& factory,
                         const mc::Schedule& schedule, int workers) {
  mc::GuidedSource source(schedule);
  AuditOptions opt;
  opt.workers = workers;
  opt.window_choice = &source;
  return run_audited(cfg, factory, opt);
}

}  // namespace pasched::race
