#include "race/monitor.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace pasched::race {

namespace {

void join_into(std::vector<std::uint64_t>& dst,
               const std::vector<std::uint64_t>& src) {
  for (std::size_t i = 0; i < dst.size(); ++i)
    dst[i] = std::max(dst[i], src[i]);
}

}  // namespace

Monitor::Monitor(int partitions) : n_(partitions) {
  PASCHED_EXPECTS(partitions >= 1);
  vc_.assign(static_cast<std::size_t>(n_),
             std::vector<std::uint64_t>(static_cast<std::size_t>(n_), 0));
  pub_.assign(static_cast<std::size_t>(n_), {});
}

void Monitor::on_post(int src_shard, int dst_shard, sim::Time t,
                      sim::Time sent_at, std::uint64_t src_seq) {
  static_cast<void>(t);
  static_cast<void>(sent_at);
  static_cast<void>(dst_shard);
  auto& row = vc_[static_cast<std::size_t>(src_shard)];
  {
    const std::scoped_lock lk(mu_);
    msgs_.emplace(std::make_pair(src_shard, src_seq), row);
    ++stats_.posts;
  }
  // Release: everything the source does after the post is a new epoch, so a
  // later foreign access can be told apart from state the message carried.
  ++row[static_cast<std::size_t>(src_shard)];
}

void Monitor::on_admit(int dst_shard, int src_shard, std::uint64_t src_seq,
                       sim::Time t, sim::Time dst_now) {
  std::vector<std::uint64_t> snap;
  {
    const std::scoped_lock lk(mu_);
    ++stats_.admits;
    const auto it = msgs_.find(std::make_pair(src_shard, src_seq));
    if (it != msgs_.end()) {
      snap = std::move(it->second);
      msgs_.erase(it);
    }
  }
  if (!snap.empty())  // acquire: the post's past is now the destination's
    join_into(vc_[static_cast<std::size_t>(dst_shard)], snap);
  if (t < dst_now) {
    analysis::Diagnostic d;
    d.rule = "PSL203";
    d.severity = analysis::Severity::Error;
    std::ostringstream subj;
    subj << "shard " << dst_shard;
    d.subject = subj.str();
    std::ostringstream msg;
    msg << "cross-shard delivery from shard " << src_shard << " (seq "
        << src_seq << ") stamped t=" << t.since_epoch().count()
        << "ns landed with the destination clock already at "
        << dst_now.since_epoch().count() << "ns";
    d.message = msg.str();
    d.fix_hint =
        "post at >= now + guaranteed lookahead; check the fabric's "
        "min-latency derivation";
    record(std::move(d));
  }
}

void Monitor::on_window_begin(int shard, sim::Time window_end) {
  static_cast<void>(window_end);
  // New epoch for this shard's window.
  ++vc_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(shard)];
  const std::scoped_lock lk(mu_);
  ++stats_.windows;
}

void Monitor::on_horizon_publish(int shard, sim::Time horizon) {
  static_cast<void>(horizon);
  auto& row = vc_[static_cast<std::size_t>(shard)];
  {
    const std::scoped_lock lk(mu_);
    pub_[static_cast<std::size_t>(shard)] = row;
    ++stats_.horizon_publishes;
  }
  // Release: like a post, work after the publish is a new epoch so a waiter
  // only absorbs what the horizon actually covered.
  ++row[static_cast<std::size_t>(shard)];
}

void Monitor::on_horizon_wait(int dst_shard, int src_shard) {
  std::vector<std::uint64_t> snap;
  {
    const std::scoped_lock lk(mu_);
    snap = pub_[static_cast<std::size_t>(src_shard)];
    ++stats_.horizon_waits;
  }
  // Acquire: the source's published past is now the waiter's. pub_ holds the
  // *latest* snapshot, which is exactly right — the waiter's spin reads the
  // current horizon value, so it synchronized with the newest store.
  if (!snap.empty())
    join_into(vc_[static_cast<std::size_t>(dst_shard)], snap);
}

void Monitor::on_plan(sim::Time window_end, bool final_window) {
  static_cast<void>(window_end);
  static_cast<void>(final_window);
  // Every worker is parked at the barrier: the plan point totally orders all
  // shards, so every clock absorbs every other.
  std::vector<std::uint64_t> all(static_cast<std::size_t>(n_), 0);
  for (const auto& row : vc_) join_into(all, row);
  for (auto& row : vc_) row = all;
  const std::scoped_lock lk(mu_);
  ++stats_.plans;
}

void Monitor::report(const Violation& v) {
  // The annotation layer already filtered the benign cases (free context,
  // unbound object, owner access) — everything arriving here is at minimum a
  // breach of the ownership discipline.
  {
    analysis::Diagnostic d;
    d.rule = "PSL201";
    d.severity = analysis::Severity::Error;
    std::ostringstream subj;
    subj << v.label << "[" << v.id << "]";
    d.subject = subj.str();
    std::ostringstream msg;
    msg << "mutated via '" << v.what << "' by domain " << v.accessor
        << " but owned by domain " << v.owner;
    if (v.last_domain != kUnbound)
      msg << "; last accessed by domain " << v.last_domain << " at clock "
          << v.last_clock;
    d.message = msg.str();
    d.fix_hint =
        "route the effect through sim::Router::post so it executes on the "
        "owning shard";
    record(std::move(d));
  }
  // Race classification: the breach is also a data race unless the
  // accessor's clock already covers the object's last-access epoch (i.e.
  // some post/barrier chain ordered the two accesses).
  if (v.last_domain < 0 || v.last_domain >= n_ || v.accessor < 0 ||
      v.accessor >= n_ || v.last_domain == v.accessor)
    return;
  const auto& row = vc_[static_cast<std::size_t>(v.accessor)];
  if (row[static_cast<std::size_t>(v.last_domain)] >= v.last_clock) return;
  analysis::Diagnostic d;
  d.rule = "PSL202";
  d.severity = analysis::Severity::Error;
  std::ostringstream subj;
  subj << v.label << "[" << v.id << "]";
  d.subject = subj.str();
  std::ostringstream msg;
  msg << "access '" << v.what << "' by domain " << v.accessor
      << " is unordered with the last access by domain " << v.last_domain
      << " at clock " << v.last_clock << " (accessor has only seen clock "
      << row[static_cast<std::size_t>(v.last_domain)]
      << " of that domain) — a true cross-shard race";
  d.message = msg.str();
  d.fix_hint =
      "order the accesses with a router post or move the state to the "
      "accessing shard";
  record(std::move(d));
}

std::uint64_t Monitor::clock_of(Domain d) noexcept {
  if (d < 0 || d >= n_) return 0;
  return vc_[static_cast<std::size_t>(d)][static_cast<std::size_t>(d)];
}

Monitor::Stats Monitor::stats() const {
  const std::scoped_lock lk(mu_);
  return stats_;
}

std::vector<analysis::Diagnostic> Monitor::findings() const {
  const std::scoped_lock lk(mu_);
  return findings_;
}

void Monitor::add_finding(analysis::Diagnostic d) { record(std::move(d)); }

void Monitor::record(analysis::Diagnostic d) {
  const std::scoped_lock lk(mu_);
  ++stats_.violations;
  findings_.push_back(std::move(d));
}

}  // namespace pasched::race
