#include "trace/trace.hpp"

#include <algorithm>
#include <map>

#include "race/domain.hpp"
#include "util/assert.hpp"

namespace pasched::trace {

using sim::Duration;
using sim::Time;

Tracer::Tracer(kern::NodeId node_filter) : node_filter_(node_filter) {}

void Tracer::attach(kern::Kernel& kernel) {
  kernel.set_observer(this);
  const auto node = static_cast<std::size_t>(kernel.node_id());
  if (open_.size() <= node) open_.resize(node + 1);
  open_[node].resize(static_cast<std::size_t>(kernel.ncpus()));
  if (kernels_.size() <= node) kernels_.resize(node + 1, nullptr);
  kernels_[node] = &kernel;
  // Presize the per-node recording state so shards never grow the vectors
  // concurrently during a partitioned run.
  (void)per_node(kernel.node_id());
  if (elog_ != nullptr) elog_->ensure_nodes(static_cast<int>(node) + 1);
}

Tracer::PerNode& Tracer::per_node(kern::NodeId node) {
  // The per-node recording state follows the same lock-free contract as the
  // event log's buckets: only the node's own shard (or the free context —
  // attach/enable/clear) may touch it.
  if (node >= 0)
    PASCHED_ASSERT_DOMAIN(node, "trace.Tracer.node", node, "per_node");
  const auto n = static_cast<std::size_t>(node < 0 ? 0 : node);
  if (per_node_.size() <= n) per_node_.resize(n + 1);
  if (!per_node_[n]) per_node_[n] = std::make_unique<PerNode>();
  return *per_node_[n];
}

void Tracer::push_interval(const Interval& iv) {
  per_node(iv.node).intervals.push_back(iv);
  dirty_.store(true, std::memory_order_release);
}

const std::vector<Interval>& Tracer::intervals() const {
  if (dirty_.load(std::memory_order_acquire)) {
    merged_.clear();
    std::size_t total = 0;
    for (const auto& pn : per_node_)
      if (pn) total += pn->intervals.size();
    merged_.reserve(total);
    for (const auto& pn : per_node_)
      if (pn)
        merged_.insert(merged_.end(), pn->intervals.begin(),
                       pn->intervals.end());
    dirty_.store(false, std::memory_order_release);
  }
  return merged_;
}

TraceCounts Tracer::counts() const {
  TraceCounts total;
  for (const auto& pn : per_node_) {
    if (!pn) continue;
    total.dispatches += pn->counts.dispatches;
    total.preemptions += pn->counts.preemptions;
    total.ticks += pn->counts.ticks;
    total.ipis += pn->counts.ipis;
  }
  return total;
}

int Tracer::ready_depth(kern::NodeId node) const {
  const auto n = static_cast<std::size_t>(node);
  if (n >= kernels_.size() || kernels_[n] == nullptr) return 0;
  return kernels_[n]->ready_count();
}

void Tracer::log_event(EventKind kind, Time t, kern::NodeId node,
                       kern::CpuId cpu, const kern::Thread* th) {
  if (elog_ == nullptr) return;
  Event e;
  e.t = t;
  e.kind = kind;
  e.node = node;
  e.cpu = cpu;
  e.ready_depth = ready_depth(node);
  if (th != nullptr) {
    e.tid = th->tid();
    e.cls = th->cls();
    e.priority = th->effective_priority();
    e.thread = th;
  }
  elog_->record(e);
}

Tracer::Open& Tracer::slot(kern::NodeId node, kern::CpuId cpu) {
  PASCHED_ASSERT_DOMAIN(node, "trace.Tracer.slot", node, "slot");
  const auto n = static_cast<std::size_t>(node);
  if (open_.size() <= n) open_.resize(n + 1);
  auto& cpus = open_[n];
  if (cpus.size() <= static_cast<std::size_t>(cpu))
    cpus.resize(static_cast<std::size_t>(cpu) + 1);
  return cpus[static_cast<std::size_t>(cpu)];
}

void Tracer::close_slot(Open& o, Time t, kern::NodeId node, kern::CpuId cpu) {
  if (o.thread != nullptr && enabled_ && t > o.since) {
    push_interval(Interval{o.since, t, node, cpu, o.thread});
  }
  o.thread = nullptr;
}

void Tracer::enable(Time now) {
  enabled_ = true;
  // Occupants at enable time start their interval now.
  for (auto& cpus : open_)
    for (auto& o : cpus)
      if (o.thread != nullptr) o.since = now;
}

void Tracer::disable(Time now) {
  for (std::size_t n = 0; n < open_.size(); ++n) {
    for (std::size_t c = 0; c < open_[n].size(); ++c) {
      Open& o = open_[n][c];
      if (o.thread != nullptr && enabled_ && now > o.since) {
        push_interval(Interval{o.since, now, static_cast<int>(n),
                               static_cast<int>(c), o.thread});
        o.since = now;  // remains the occupant; interval restarts if re-enabled
      }
    }
  }
  enabled_ = false;
}

void Tracer::clear() {
  for (auto& pn : per_node_)
    if (pn) pn->intervals.clear();
  merged_.clear();
  dirty_.store(false, std::memory_order_release);
}

void Tracer::on_dispatch(Time t, kern::NodeId node, kern::CpuId cpu,
                         const kern::Thread& th) {
  ++per_node(node).counts.dispatches;
  if (node_filter_ >= 0 && node != node_filter_) return;
  log_event(EventKind::Dispatch, t, node, cpu, &th);
  Open& o = slot(node, cpu);
  close_slot(o, t, node, cpu);
  o.thread = &th;
  o.since = t;
}

void Tracer::on_preempt(Time t, kern::NodeId node, kern::CpuId cpu,
                        const kern::Thread& th) {
  ++per_node(node).counts.preemptions;
  if (node_filter_ >= 0 && node != node_filter_) return;
  log_event(EventKind::Preempt, t, node, cpu, &th);
}

void Tracer::on_state(Time t, kern::NodeId node, const kern::Thread& th,
                      kern::ThreadState to) {
  if (node_filter_ >= 0 && node != node_filter_) return;
  switch (to) {
    case kern::ThreadState::Ready:
      log_event(EventKind::Ready, t, node, kern::kNoCpu, &th);
      break;
    case kern::ThreadState::Blocked:
      log_event(EventKind::Block, t, node, kern::kNoCpu, &th);
      break;
    case kern::ThreadState::Done:
      log_event(EventKind::Exit, t, node, kern::kNoCpu, &th);
      break;
    case kern::ThreadState::Running:
      break;  // covered by on_dispatch
  }
}

void Tracer::on_tick(Time /*t*/, kern::NodeId node, kern::CpuId /*cpu*/) {
  ++per_node(node).counts.ticks;
}

void Tracer::on_ipi(Time /*t*/, kern::NodeId node, kern::CpuId /*cpu*/) {
  ++per_node(node).counts.ipis;
}

void Tracer::on_idle(Time t, kern::NodeId node, kern::CpuId cpu) {
  if (node_filter_ >= 0 && node != node_filter_) return;
  log_event(EventKind::Idle, t, node, cpu, nullptr);
  Open& o = slot(node, cpu);
  close_slot(o, t, node, cpu);
}

std::vector<Attribution> attribute(const std::vector<Interval>& intervals,
                                   kern::NodeId node, Time t0, Time t1,
                                   bool exclude_app) {
  PASCHED_EXPECTS(t1 >= t0);
  // Aggregate by thread name so the same daemon on multiple traced nodes
  // shows up once (with its cluster-wide CPU time in the window).
  std::map<std::pair<std::string, kern::ThreadClass>, Duration> acc;
  for (const Interval& iv : intervals) {
    if (node >= 0 && iv.node != node) continue;
    const Time b = std::max(iv.begin, t0);
    const Time e = std::min(iv.end, t1);
    if (e <= b) continue;
    if (exclude_app && iv.thread->cls() == kern::ThreadClass::AppTask)
      continue;
    acc[{iv.thread->name(), iv.thread->cls()}] += e - b;
  }
  std::vector<Attribution> out;
  out.reserve(acc.size());
  for (const auto& [key, d] : acc)
    out.push_back(Attribution{key.first, key.second, d});
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.cpu_time > b.cpu_time;
  });
  return out;
}

double all_cpus_app_fraction(const std::vector<Interval>& intervals,
                             kern::NodeId node, int ncpus, Time t0, Time t1) {
  PASCHED_EXPECTS(t1 > t0);
  PASCHED_EXPECTS(ncpus > 0);
  // Sweep: +1 when a CPU starts running app work, -1 when it stops.
  std::vector<std::pair<Time, int>> edges;
  for (const Interval& iv : intervals) {
    if (iv.node != node) continue;
    if (iv.thread->cls() != kern::ThreadClass::AppTask) continue;
    const Time b = std::max(iv.begin, t0);
    const Time e = std::min(iv.end, t1);
    if (e <= b) continue;
    edges.emplace_back(b, +1);
    edges.emplace_back(e, -1);
  }
  std::sort(edges.begin(), edges.end());
  Duration green = Duration::zero();
  int depth = 0;
  Time last = t0;
  for (const auto& [t, d] : edges) {
    if (depth >= ncpus) green += t - last;
    depth += d;
    last = t;
  }
  if (depth >= ncpus) green += t1 - last;
  return static_cast<double>(green.count()) /
         static_cast<double>((t1 - t0).count());
}

}  // namespace pasched::trace
