#include "trace/events.hpp"

#include <algorithm>

#include "kern/thread.hpp"

namespace pasched::trace {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::Dispatch: return "dispatch";
    case EventKind::Preempt: return "preempt";
    case EventKind::Ready: return "ready";
    case EventKind::Block: return "block";
    case EventKind::Exit: return "exit";
    case EventKind::Idle: return "idle";
    case EventKind::MsgSend: return "send";
    case EventKind::MsgRecvWait: return "recv-wait";
    case EventKind::MsgRecv: return "recv";
  }
  return "?";
}

std::string display_name(const Event& e) {
  if (e.thread != nullptr) return e.thread->name();
  return "node" + std::to_string(e.node) + "/tid" + std::to_string(e.tid);
}

std::vector<Event> EventLog::slice(sim::Time t0, sim::Time t1) const {
  // Events are recorded in nondecreasing time order, so the slice is a
  // contiguous range.
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), t0,
      [](const Event& e, sim::Time t) { return e.t < t; });
  const auto hi = std::lower_bound(
      lo, events_.end(), t1,
      [](const Event& e, sim::Time t) { return e.t < t; });
  return {lo, hi};
}

}  // namespace pasched::trace
