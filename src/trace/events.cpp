#include "trace/events.hpp"

#include <algorithm>

#include "kern/thread.hpp"

namespace pasched::trace {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::Dispatch: return "dispatch";
    case EventKind::Preempt: return "preempt";
    case EventKind::Ready: return "ready";
    case EventKind::Block: return "block";
    case EventKind::Exit: return "exit";
    case EventKind::Idle: return "idle";
    case EventKind::MsgSend: return "send";
    case EventKind::MsgRecvWait: return "recv-wait";
    case EventKind::MsgRecv: return "recv";
  }
  return "?";
}

std::string display_name(const Event& e) {
  if (e.thread != nullptr) return e.thread->name();
  return "node" + std::to_string(e.node) + "/tid" + std::to_string(e.tid);
}

const std::vector<Event>& EventLog::events() const {
  if (dirty_.load(std::memory_order_acquire)) {
    merged_.clear();
    merged_.reserve(size());
    // Bucket concatenation in node order, then a stable sort by time: the
    // canonical (t, node, per-node seq) order. Each bucket is already
    // time-sorted (engines fire in nondecreasing time), so same-timestamp
    // events order by node id then per-node recording order — identically
    // in sequential and partitioned runs.
    for (const auto& b : buckets_)
      merged_.insert(merged_.end(), b.begin(), b.end());
    std::stable_sort(
        merged_.begin(), merged_.end(),
        [](const Event& a, const Event& b) { return a.t < b.t; });
    dirty_.store(false, std::memory_order_release);
  }
  return merged_;
}

std::vector<Event> EventLog::slice(sim::Time t0, sim::Time t1) const {
  // The merged stream is time-sorted, so the slice is a contiguous range.
  const std::vector<Event>& evs = events();
  const auto lo = std::lower_bound(
      evs.begin(), evs.end(), t0,
      [](const Event& e, sim::Time t) { return e.t < t; });
  const auto hi = std::lower_bound(
      lo, evs.end(), t1,
      [](const Event& e, sim::Time t) { return e.t < t; });
  return {lo, hi};
}

}  // namespace pasched::trace
