// The AIX `trace` facility analogue: records who occupied each CPU and when,
// so outliers can be attributed ("an administrative cron job ran during the
// slowest Allreduce", §5.3). Implemented as a kern::SchedObserver installed
// on each node's kernel; recording can be windowed to keep memory bounded,
// exactly like the paper enabling tracing only around the Allreduce loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kern/kernel.hpp"
#include "sim/time.hpp"
#include "trace/events.hpp"

namespace pasched::trace {

/// A closed occupancy interval: `thread` ran on (node, cpu) for [begin, end).
struct Interval {
  sim::Time begin;
  sim::Time end;
  kern::NodeId node;
  kern::CpuId cpu;
  const kern::Thread* thread;  // threads outlive the simulation
};

struct TraceCounts {
  std::uint64_t dispatches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t ticks = 0;
  std::uint64_t ipis = 0;
};

// srclint-ok(PSL402): uses the container-form ownership discipline — every
// per-node mutation passes PASCHED_ASSERT_DOMAIN (race/domain.hpp), which
// exists precisely for per-node buffers with no Owned member per element.
class Tracer final : public kern::SchedObserver {
 public:
  /// `node_filter` restricts recording to one node (-1 = all nodes).
  explicit Tracer(kern::NodeId node_filter = -1);

  /// Installs this tracer as the observer of the kernel.
  void attach(kern::Kernel& kernel);

  /// Additionally mirrors scheduling events (with priority and ready-queue
  /// depth) into `log` for the offline analyzers. The log's own enable gate
  /// applies on top of this tracer's interval gate.
  void set_event_log(EventLog* log) {
    elog_ = log;
    if (elog_ != nullptr && !kernels_.empty())
      elog_->ensure_nodes(static_cast<int>(kernels_.size()));
  }
  [[nodiscard]] EventLog* event_log() const noexcept { return elog_; }

  /// Starts/stops interval recording (counts are always maintained).
  void enable(sim::Time now);
  void disable(sim::Time now);
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Closed intervals, merged from the per-node buffers in node order (each
  /// node's buffer keeps its own recording order). The merge is a pure
  /// function of the per-node streams, so sequential and partitioned runs
  /// agree byte-for-byte. Not safe to call while shards record.
  [[nodiscard]] const std::vector<Interval>& intervals() const;
  /// Counts summed over all nodes.
  [[nodiscard]] TraceCounts counts() const;
  void clear();

  // kern::SchedObserver ------------------------------------------------------
  void on_dispatch(sim::Time t, kern::NodeId node, kern::CpuId cpu,
                   const kern::Thread& th) override;
  void on_preempt(sim::Time t, kern::NodeId node, kern::CpuId cpu,
                  const kern::Thread& th) override;
  void on_state(sim::Time t, kern::NodeId node, const kern::Thread& th,
                kern::ThreadState to) override;
  void on_tick(sim::Time t, kern::NodeId node, kern::CpuId cpu) override;
  void on_ipi(sim::Time t, kern::NodeId node, kern::CpuId cpu) override;
  void on_idle(sim::Time t, kern::NodeId node, kern::CpuId cpu) override;

 private:
  struct Open {
    const kern::Thread* thread = nullptr;
    sim::Time since{};
  };
  [[nodiscard]] Open& slot(kern::NodeId node, kern::CpuId cpu);
  void close_slot(Open& o, sim::Time t, kern::NodeId node, kern::CpuId cpu);
  void log_event(EventKind kind, sim::Time t, kern::NodeId node,
                 kern::CpuId cpu, const kern::Thread* th);
  [[nodiscard]] int ready_depth(kern::NodeId node) const;

  // Everything a scheduling callback mutates is per-node, so kernels on
  // different shards record concurrently without locks. attach() presizes
  // the per-node state; the merged interval view is rebuilt lazily.
  struct PerNode {
    std::vector<Interval> intervals;
    TraceCounts counts;
  };
  PerNode& per_node(kern::NodeId node);
  void push_interval(const Interval& iv);

  kern::NodeId node_filter_;
  bool enabled_ = false;
  std::vector<std::vector<Open>> open_;  // [node][cpu]
  std::vector<const kern::Kernel*> kernels_;  // [node], for queue depth
  std::vector<std::unique_ptr<PerNode>> per_node_;  // [node]
  // srclint-ok(PSL402): post-run lazily-rebuilt cache behind the atomic
  // dirty_ flag; rebuilt only after the shard workers have joined.
  mutable std::vector<Interval> merged_;
  mutable std::atomic<bool> dirty_{false};
  EventLog* elog_ = nullptr;
};

/// CPU time by thread within [t0, t1) on one node (or all nodes with -1),
/// most-consuming first. `exclude_app` drops the job's own task threads —
/// what remains is the interference the paper's trace analysis hunts for.
struct Attribution {
  std::string name;
  kern::ThreadClass cls;
  sim::Duration cpu_time;
};
[[nodiscard]] std::vector<Attribution> attribute(
    const std::vector<Interval>& intervals, kern::NodeId node, sim::Time t0,
    sim::Time t1, bool exclude_app);

/// Fraction of [t0, t1) during which *every* CPU of `node` was running an
/// AppTask thread — the "green" time of Figure 1.
[[nodiscard]] double all_cpus_app_fraction(
    const std::vector<Interval>& intervals, kern::NodeId node, int ncpus,
    sim::Time t0, sim::Time t1);

}  // namespace pasched::trace
