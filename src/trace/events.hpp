// Rich scheduling/messaging event records — the raw material of the offline
// analyzers in src/analysis/. Where trace::Interval answers "who occupied
// this CPU", an Event stream answers "why": it keeps the dispatch priority,
// the node's ready-queue depth, and the message identity at every point
// where causality can pass between threads (dispatch, preempt, ready, block,
// send, receive-wait, receive). Events are plain data so tests can hand-build
// pathological traces without running a simulation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "kern/types.hpp"
#include "race/domain.hpp"
#include "sim/time.hpp"

namespace pasched::trace {

enum class EventKind : std::uint8_t {
  Dispatch,     // thread began running on (node, cpu)
  Preempt,      // thread was forced off (node, cpu); it re-entered Ready
  Ready,        // thread became runnable (wake, preemption, priority flip)
  Block,        // thread gave up the CPU voluntarily
  Exit,         // thread finished
  Idle,         // (node, cpu) went idle
  MsgSend,      // task injected a message into the fabric
  MsgRecvWait,  // task started waiting (spin or block) for a message
  MsgRecv,      // the awaited message was consumed
};

[[nodiscard]] const char* to_string(EventKind k) noexcept;

/// One analyzer-visible event. Scheduling events carry the thread identity
/// and its effective dispatch priority at event time plus the node-wide
/// ready-queue depth; message events additionally carry rank/message ids.
/// `thread` is an optional back-pointer for nicer reports (threads outlive
/// the simulation); hand-built traces leave it null.
struct Event {
  sim::Time t;
  EventKind kind = EventKind::Dispatch;
  kern::NodeId node = -1;
  kern::CpuId cpu = kern::kNoCpu;
  int tid = 0;
  kern::ThreadClass cls = kern::ThreadClass::Other;
  kern::Priority priority = 0;
  /// Number of Ready threads on the node at event time (after the event's
  /// own queue effect) — the "queue depth" behind scheduling decisions.
  int ready_depth = 0;
  /// Message fields (MsgSend / MsgRecvWait / MsgRecv only).
  int src_rank = -1;
  int dst_rank = -1;
  std::uint64_t msg_id = 0;
  const kern::Thread* thread = nullptr;
};

/// Display name for reports: the live thread's name when available,
/// otherwise a synthesized "node<N>/tid<T>".
[[nodiscard]] std::string display_name(const Event& e);

/// Append-only event store. Recording can be gated so long runs only pay for
/// the windows under investigation (the paper enabled the AIX trace facility
/// only around the Allreduce loops).
///
/// Storage is sharded per node so partitioned runs can record from every
/// shard concurrently without locks: record() appends to the bucket of the
/// event's node (call ensure_nodes() up front — bucket growth itself is
/// single-threaded). events() merges the buckets into one canonical stream
/// ordered by (t, node, per-node sequence); the merge order is a pure
/// function of the per-node streams, so sequential and parallel runs of the
/// same scenario produce byte-identical logs.
// srclint-ok(PSL402): uses the container-form ownership discipline — every
// bucket append passes PASCHED_ASSERT_DOMAIN (race/domain.hpp), which
// exists precisely for per-node buffers with no Owned member per element.
class EventLog {
 public:
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }

  /// Presizes the per-node buckets. Must be called before concurrent
  /// recording from multiple shards (Tracer::attach and Job::set_event_log
  /// do this automatically).
  void ensure_nodes(int nodes) {
    if (static_cast<std::size_t>(nodes) + 1 > buckets_.size())
      buckets_.resize(static_cast<std::size_t>(nodes) + 1);
  }

  void record(const Event& e) {
    if (!enabled_) return;
    // The lock-free sharding contract: a node's bucket is written only from
    // that node's shard (relying on the sharded engine's identity
    // node -> shard mapping). Nodeless events go to bucket 0, which only the
    // free context touches.
    if (e.node >= 0)
      PASCHED_ASSERT_DOMAIN(e.node, "trace.EventLog.bucket", e.node,
                            "record");
    const std::size_t b =
        e.node >= 0 ? static_cast<std::size_t>(e.node) + 1 : 0;
    if (b >= buckets_.size()) buckets_.resize(b + 1);  // single-thread path
    buckets_[b].push_back(e);
    dirty_.store(true, std::memory_order_release);
  }

  /// The merged canonical stream. Not safe to call while shards record.
  [[nodiscard]] const std::vector<Event>& events() const;
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const auto& b : buckets_) n += b.size();
    return n;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  void clear() {
    buckets_.clear();
    merged_.clear();
    dirty_.store(false, std::memory_order_release);
  }

  /// Events with t in [t0, t1), preserving order — analyzers that build
  /// per-event vector clocks should run on a bounded slice, not a full run.
  [[nodiscard]] std::vector<Event> slice(sim::Time t0, sim::Time t1) const;

 private:
  std::vector<std::vector<Event>> buckets_;  // [node + 1]; 0 = nodeless
  // srclint-ok(PSL402): post-run lazily-rebuilt cache behind the atomic
  // dirty_ flag; events() documents it is unsafe while shards record.
  mutable std::vector<Event> merged_;
  mutable std::atomic<bool> dirty_{false};
  bool enabled_ = true;
};

}  // namespace pasched::trace
