// Rich scheduling/messaging event records — the raw material of the offline
// analyzers in src/analysis/. Where trace::Interval answers "who occupied
// this CPU", an Event stream answers "why": it keeps the dispatch priority,
// the node's ready-queue depth, and the message identity at every point
// where causality can pass between threads (dispatch, preempt, ready, block,
// send, receive-wait, receive). Events are plain data so tests can hand-build
// pathological traces without running a simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kern/types.hpp"
#include "sim/time.hpp"

namespace pasched::trace {

enum class EventKind : std::uint8_t {
  Dispatch,     // thread began running on (node, cpu)
  Preempt,      // thread was forced off (node, cpu); it re-entered Ready
  Ready,        // thread became runnable (wake, preemption, priority flip)
  Block,        // thread gave up the CPU voluntarily
  Exit,         // thread finished
  Idle,         // (node, cpu) went idle
  MsgSend,      // task injected a message into the fabric
  MsgRecvWait,  // task started waiting (spin or block) for a message
  MsgRecv,      // the awaited message was consumed
};

[[nodiscard]] const char* to_string(EventKind k) noexcept;

/// One analyzer-visible event. Scheduling events carry the thread identity
/// and its effective dispatch priority at event time plus the node-wide
/// ready-queue depth; message events additionally carry rank/message ids.
/// `thread` is an optional back-pointer for nicer reports (threads outlive
/// the simulation); hand-built traces leave it null.
struct Event {
  sim::Time t;
  EventKind kind = EventKind::Dispatch;
  kern::NodeId node = -1;
  kern::CpuId cpu = kern::kNoCpu;
  int tid = 0;
  kern::ThreadClass cls = kern::ThreadClass::Other;
  kern::Priority priority = 0;
  /// Number of Ready threads on the node at event time (after the event's
  /// own queue effect) — the "queue depth" behind scheduling decisions.
  int ready_depth = 0;
  /// Message fields (MsgSend / MsgRecvWait / MsgRecv only).
  int src_rank = -1;
  int dst_rank = -1;
  std::uint64_t msg_id = 0;
  const kern::Thread* thread = nullptr;
};

/// Display name for reports: the live thread's name when available,
/// otherwise a synthesized "node<N>/tid<T>".
[[nodiscard]] std::string display_name(const Event& e);

/// Append-only, time-ordered event store. Recording can be gated so long
/// runs only pay for the windows under investigation (the paper enabled the
/// AIX trace facility only around the Allreduce loops).
class EventLog {
 public:
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }

  void record(const Event& e) {
    if (enabled_) events_.push_back(e);
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Events with t in [t0, t1), preserving order — analyzers that build
  /// per-event vector clocks should run on a bounded slice, not a full run.
  [[nodiscard]] std::vector<Event> slice(sim::Time t0, sim::Time t1) const;

 private:
  std::vector<Event> events_;
  bool enabled_ = true;
};

}  // namespace pasched::trace
