#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pasched::analysis {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARNING";
    case Severity::Error: return "ERROR";
  }
  return "?";
}

const std::vector<RuleInfo>& all_rules() {
  // The paper's misconfiguration pathologies, one machine-checkable rule
  // each. Keep in ID order; DESIGN.md §5.4 mirrors this table.
  static const std::vector<RuleInfo> kRules = {
      {"PSL001", Severity::Error,
       "favored priority must be numerically above (worse than) the I/O "
       "daemon's when the workload depends on I/O",
       "§5.3 (naive co-scheduling starved GPFS mmfsd and slowed ALE3D)"},
      {"PSL002", Severity::Error,
       "the unfavored share of a window must span at least one whole "
       "(big-)tick",
       "§3.1.1/§4 (a 250 ms big tick quantizes the unfavored share away)"},
      {"PSL003", Severity::Error,
       "the duty cycle must leave a non-zero unfavored share when the "
       "unfavored priority parks tasks behind every daemon",
       "§4 (an unguarded duty cycle starves daemons outright)"},
      {"PSL004", Severity::Error,
       "the membership heartbeat deadline must exceed the favored stretch "
       "of a window",
       "§4 (daemon timeout tolerances had to be extended; eviction risk)"},
      {"PSL005", Severity::Warning,
       "the MPI progress-engine polling interval should be raised off the "
       "storm-prone 400 ms default",
       "§5.3 (MP_POLLING_INTERVAL=400s neutralized the timer threads)"},
      {"PSL006", Severity::Error,
       "window alignment to period boundaries requires clock "
       "synchronization",
       "§4 (without sync, aligned windows drift apart across nodes)"},
      {"PSL007", Severity::Error,
       "the co-scheduler daemon's own priority must be numerically below "
       "(better than) the favored priority",
       "§4 (the flipper must preempt its own favored tasks to end windows)"},
      {"PSL008", Severity::Warning,
       "the co-scheduling period should be an integer multiple of the "
       "(big-)tick interval",
       "§3.1.1/§4 (timer-driven flips batch to tick boundaries)"},
      {"PSL009", Severity::Error,
       "admin (poe.priority) records must be well-formed: favored "
       "numerically below unfavored, duty in (0,1], period positive, "
       "priorities in [0,127]",
       "§4 (/etc/poe.priority admission records)"},
      {"PSL010", Severity::Warning,
       "cluster-aligned tick boundaries require synchronized (simultaneous) "
       "ticks",
       "§3.2.1/§4 (alignment without simultaneity is incoherent)"},
      {"PSL011", Severity::Warning,
       "co-scheduling with RT scheduling needs reverse-preemption IPIs, or "
       "flips to unfavored only take effect at the next tick",
       "§3 (deficiency 1 of the stock real-time scheduling option)"},
      {"PSL012", Severity::Warning,
       "the preemption IPI latency should be below the tick interval when "
       "RT scheduling is enabled",
       "§3 (IPIs slower than the tick add cost without adding promptness)"},
      {"PSL013", Severity::Error,
       "co-scheduler priorities must lie in [0,127] with favored "
       "numerically below unfavored, duty in (0,1], period positive",
       "§4 (the external co-scheduler's parameter contract)"},
      {"PSL014", Severity::Warning,
       "no single low-latency link should collapse the global fabric "
       "lookahead far below the pairwise median — conservative windows are "
       "sized by the fastest link, so one fast pair serializes every shard "
       "(static precursor of PSL301)",
       "§3.2.1 (windows rest on the minimum fabric latency)"},
      // Trace rules (PSL1xx): checked by the happens-before trace analyzer
      // over an event slice, not by the static config linter.
      {"PSL101", Severity::Warning,
       "no ready thread should wait behind a numerically-worse-priority "
       "CPU holder on its node (delayed-preemption inversion window)",
       "§2/§5.1 Fig. 4 (tick-granular preemption stretches Allreduce tails)"},
      {"PSL102", Severity::Warning,
       "no open receive-wait should have its expected sender sitting Ready "
       "but off-CPU (stalled-sender cascade)",
       "§2/§5.3 (spin-waiting tasks starved the very daemon they waited on)"},
      {"PSL103", Severity::Error,
       "the instantaneous wait-for graph over open receive-waits must stay "
       "acyclic",
       "§2 (cascading spin-wait cycles idle the whole job)"},
      // Partitioned-core rules (PSL2xx): emitted by the pasched-race
      // shard-ownership and determinism auditor (src/race/), not by the
      // config linter or the trace analyzer.
      {"PSL201", Severity::Error,
       "shard-owned state (kernels, tasks, daemons, per-node trace buffers) "
       "must be mutated only by the worker executing the owning shard",
       "§3.2 (per-node kernel state is private to its node's scheduler)"},
      {"PSL202", Severity::Error,
       "every cross-shard access pair must be ordered by the shard "
       "happens-before relation (router posts, inbox drains, window "
       "barriers) — unordered pairs are data races in the parallel core",
       "§3.2.1 (cross-node effects travel only through the switch fabric)"},
      {"PSL203", Severity::Error,
       "a cross-shard delivery must not land in the destination shard's "
       "past: delivery time >= send time + guaranteed lookahead >= the "
       "destination clock at admission",
       "§3.2.1 (conservative windows rest on the minimum fabric latency)"},
      {"PSL204", Severity::Error,
       "the canonical run digest must be invariant under window-quantum and "
       "barrier-phase perturbation — divergence means an ordering accident, "
       "not a scheduling decision, shaped the observable history",
       "§5 (Fig. 3/5 claims depend on bit-identical parallel execution)"},
      // Scalability rules (PSL3xx): emitted by the pasched-scale static
      // scalability analyzer (src/scale/) — the lookahead oracle, the
      // work/span critical path, and the window/barrier cost model.
      {"PSL301", Severity::Warning,
       "the single global lookahead should not collapse far below the "
       "pairwise median of the per-shard-pair lookahead matrix — the gap is "
       "parallelism a PARSIR-style per-pair window planner would reclaim",
       "§5.1 (512-node scaling needs windows sized per pair, not globally)"},
      {"PSL302", Severity::Warning,
       "conservative windows should carry enough events to amortize their "
       "barriers: a median events-per-window below the shard count means "
       "the run is barrier-dominated, not work-dominated",
       "§3.1.1 (synchronization overhead swamps sub-quantum work slices)"},
      {"PSL303", Severity::Error,
       "every runtime cross-shard delivery must respect the statically "
       "certified per-pair lookahead bound: delivery time >= send time + "
       "matrix[src][dst] — a violation means the certificate (and any "
       "window plan built on it) is unsound",
       "§3.2.1 (conservative windows rest on the minimum fabric latency)"},
      {"PSL304", Severity::Warning,
       "per-shard event load should stay balanced: a max/mean shard load "
       "ratio far above 1 caps parallel speedup at the slowest shard",
       "§2 (one laggard node stretches every collective — Amdahl by shard)"},
      {"PSL305", Severity::Warning,
       "the hub shard (switch hardware collectives) should not serialize "
       "the run: a high hub share of per-window critical work makes every "
       "window wait on one shard",
       "§3.2.1 (the switch's combine unit is cluster-global state)"},
      {"PSL306", Severity::Warning,
       "the predicted max speedup at the target worker count should reach "
       "the roadmap target — a ceiling below target means engine surgery, "
       "not more workers, is the next move",
       "§5.1 (the paper's scaling claims assume the OS gets out of the way)"},
      {"PSL401", Severity::Error,
       "outside src/sim and the harness layers (tools/tests/bench), no code "
       "may bind a mutable sim::Engine or call its mutators directly — all "
       "posting goes through sim::EventContext / sim::Router, the seam that "
       "keeps partitioned execution sound",
       "§3.2.1 (one global event queue is exactly what does not scale)"},
      {"PSL402", Severity::Error,
       "every shard-resident type (cluster::Node, kern::Kernel, mpi::Job/"
       "Task, daemon and trace state) carries a race::Owned tag, and its "
       "mutable fields are atomic or ownership-guarded — otherwise "
       "pasched-race cannot witness a cross-shard mutation",
       "§3.2 (per-node state must stay per-node when nodes run in parallel)"},
      {"PSL403", Severity::Error,
       "a PASCHED_HOT function performs no heap allocation, locking, throw, "
       "blocking call, or I/O: the per-event path must be straight-line so "
       "windows amortize their barriers",
       "§3.1.1 (sub-quantum slices leave no room for kernel detours)"},
      {"PSL404", Severity::Error,
       "PASCHED_CHECK / PASCHED_ASSERT_* arguments are pure observations: "
       "the expression vanishes under -DPASCHED_VALIDATE=OFF, so a side "
       "effect there makes validated and release builds diverge",
       "§4 (the prototype must behave identically with probes removed)"},
      {"PSL405", Severity::Error,
       "the deterministic core (sim/kern/net/mpi) contains no wall-clock, "
       "libc randomness, or unordered-container iteration — traces and "
       "digests are a pure function of the seed",
       "§4.1 (runs are compared across kernels; noise voids the comparison)"},
      {"PSL406", Severity::Error,
       "no detached or raw std::thread outside the ShardedEngine worker "
       "pool: ad-hoc threads bypass domain scoping and the window barrier "
       "protocol",
       "§3.2.1 (parallelism belongs to the engine, not to callers)"},
      // Contention rules (PSL5xx): emitted by the pasched-contend static
      // lock-order/serialization analyzer (src/contend/) and its runtime
      // contention ledger — the work-list generator for the ROADMAP item-1
      // (PARSIR-style window/ring) perf rework.
      {"PSL501", Severity::Error,
       "the cross-TU lock-order graph must stay acyclic: two code paths "
       "acquiring the same mutexes in opposite order can deadlock the "
       "shard worker pool",
       "§3.2.1 (a stuck worker stalls every window barrier behind it)"},
      {"PSL502", Severity::Error,
       "no lock may be held across a blocking seam (std::barrier "
       "arrive_and_wait, condition-variable wait, inbox drain): the holder "
       "parks with the lock taken and serializes every worker that needs it",
       "§3.1.1 (synchronization cost, not work, bounds the window rate)"},
      {"PSL503", Severity::Warning,
       "mutable fields owned by distinct race::Domain workers must not "
       "share a 64-byte cache line: per-shard counters and clocks need "
       "alignas(64) (util::CacheAligned) padding or coherence traffic "
       "serializes the shard pool",
       "§3.2 (per-node state must stay physically per-node to scale)"},
      {"PSL504", Severity::Warning,
       "a shared atomic should not be updated inside a hot loop without "
       "local accumulation: per-iteration fetch_add on one cache line is a "
       "coherence hotspot — accumulate locally, publish once per window",
       "§3.1.1 (sub-quantum slices leave no room for coherence stalls)"},
      {"PSL505", Severity::Warning,
       "a mutex guarding state whose race::Owned tag proves single-domain "
       "ownership is wider than its ownership scope — the serialization "
       "claim is suspect and the runtime ledger must confirm or refute it",
       "§3.2 (ownership, not locking, is the paper's isolation mechanism)"},
      {"PSL506", Severity::Error,
       "a statically claimed single-domain serialization site was acquired "
       "from multiple domains at runtime: the PSL505 claim (and any lock "
       "removal built on it) is refuted by the contention ledger",
       "§5 (certify-then-verify: runtime witnesses police static claims)"},
      // PSL6xx: pasched-alloc — allocation & memory-layout discipline on
      // the event hot path, certified statically (601-605) and verified by
      // the runtime allocation ledger (606).
      {"PSL601", Severity::Error,
       "the per-event hot path (PASCHED_HOT functions and the Engine event "
       "lifecycle) must not allocate: no new/malloc/make_unique/make_shared "
       "and no owning-container locals — an allocator round-trip per event "
       "dwarfs the event itself and serializes shards on the heap lock",
       "§3.1.1 (sub-quantum event cost budgets leave no room for malloc)"},
      {"PSL602", Severity::Error,
       "a container grown on the hot path must follow the reserve/"
       "reused-scratch discipline (reserve in cold code, clear-for-reuse, "
       "or util::reserve_cold): undisciplined push_back can reallocate in "
       "steady state",
       "§3.1.1 (amortized growth is sanctioned only outside the window)"},
      {"PSL603", Severity::Warning,
       "event- and shard-resident types (heap items, slots, cross-shard "
       "envelopes) should hold fixed-size values, not owning containers, "
       "smart pointers, or raw pointers: each indirection is a per-event "
       "cache miss outside the slab's footprint",
       "§3.2 (per-node state must stay physically compact to scale)"},
      {"PSL604", Severity::Error,
       "a PASCHED_ARENA-annotated type must honor the arena contract: "
       "trivially destructible, trivially copyable, no owning members — "
       "slabs skip per-element destructors and relocate with memcpy",
       "§3.2 (arena residency is the engine's slab storage contract)"},
      {"PSL605", Severity::Info,
       "a PASCHED_HOT function with no PSL601/PSL602 hit (suppressed ones "
       "included) is statically certified an allocation-free region; the "
       "claim is machine-readable and joined to the runtime allocation "
       "ledger by qualified function name",
       "§5 (certify-then-verify: static claims become runtime contracts)"},
      {"PSL606", Severity::Error,
       "a statically certified allocation-free region recorded hot-window "
       "allocations at runtime: the PSL605 claim is refuted by the "
       "allocation ledger",
       "§5 (certify-then-verify: runtime witnesses police static claims)"},
  };
  return kRules;
}

const RuleInfo* find_rule(const std::string& id) {
  const auto& rules = all_rules();
  const auto it = std::find_if(rules.begin(), rules.end(),
                               [&](const RuleInfo& r) { return id == r.id; });
  return it == rules.end() ? nullptr : &*it;
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << rule << ' ' << to_string(severity) << " [" << subject << "] "
     << message;
  if (!fix_hint.empty()) os << " (fix: " << fix_hint << ")";
  return os.str();
}

bool any_errors(const std::vector<Diagnostic>& ds) noexcept {
  return std::any_of(ds.begin(), ds.end(), [](const Diagnostic& d) {
    return d.severity == Severity::Error;
  });
}

std::string rule_table() {
  std::ostringstream os;
  for (const RuleInfo& r : all_rules()) {
    os << r.id << "  " << to_string(r.severity) << "\n    invariant: "
       << r.invariant << "\n    paper:     " << r.paper_ref << "\n";
  }
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_report_header(const std::string& tool) {
  std::ostringstream os;
  os << "\"schema\": " << kReportSchemaVersion << ",\n  \"tool\": \""
     << json_escape(tool) << "\",";
  return os.str();
}

std::string diagnostics_json(const std::vector<Diagnostic>& ds, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Diagnostic& d = ds[i];
    os << (i == 0 ? "" : ",") << "\n" << pad << "  {\"rule\": \""
       << json_escape(d.rule) << "\", \"severity\": \""
       << to_string(d.severity) << "\", \"subject\": \""
       << json_escape(d.subject) << "\", \"message\": \""
       << json_escape(d.message) << "\", \"fix_hint\": \""
       << json_escape(d.fix_hint) << "\"}";
  }
  os << (ds.empty() ? "" : "\n" + pad) << "]";
  return os.str();
}

}  // namespace pasched::analysis
