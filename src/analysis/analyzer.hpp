// The trace analyzer: mines an event slice for the three scheduling
// pathologies the paper attributes its outliers to.
//
//   PSL101  priority-inversion windows — a Ready thread waits while a
//           numerically-worse-priority thread holds a CPU on its node; the
//           delayed-preemption window Fig. 4's tails are made of.
//   PSL102  stalled-sender cascades — an open receive-wait whose expected
//           sender sits Ready but off-CPU (§5.3: ALE3D's favored spinners
//           starving mmfsd, the daemon their own I/O was waiting on).
//   PSL103  wait-for cycles — simultaneously-open receive-waits forming a
//           rank cycle (§2's cascading spin-wait), cross-checked against
//           the happens-before graph for genuine concurrency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/hb.hpp"
#include "trace/events.hpp"

namespace pasched::analysis {

/// One delayed-preemption window: `waiter` sat Ready on `node` for
/// [start, end) while `holder` (numerically worse priority) occupied `cpu`.
struct InversionWindow {
  kern::NodeId node = -1;
  kern::CpuId cpu = kern::kNoCpu;
  int waiter_tid = 0;
  std::string waiter;
  kern::Priority waiter_priority = 0;
  int holder_tid = 0;
  std::string holder;
  kern::Priority holder_priority = 0;
  kern::ThreadClass holder_cls = kern::ThreadClass::Other;
  sim::Time start;
  sim::Time end;

  [[nodiscard]] sim::Duration span() const { return end - start; }
  [[nodiscard]] std::string str() const;
};

/// One §5.3-style cascade: rank `waiter_rank` waited [wait_start, wait_end)
/// for a message from `expected_src`, whose thread spent `sender_ready` of
/// that window Ready but off-CPU; `holders` names who occupied the sender's
/// node meanwhile.
struct StalledSender {
  int waiter_rank = -1;
  int expected_src = -1;
  std::uint64_t msg_id = 0;
  kern::NodeId sender_node = -1;
  int sender_tid = 0;
  std::string sender;
  kern::Priority sender_priority = 0;
  sim::Time wait_start;
  sim::Time wait_end;
  sim::Duration sender_ready = sim::Duration::zero();
  std::vector<std::string> holders;  // "name(prio N)" on the sender's node

  [[nodiscard]] std::string str() const;
};

/// A cycle in the instantaneous wait-for graph (rank -> expected source).
struct WaitCycle {
  std::vector<int> ranks;  // cycle order, rotated to start at the min rank
  sim::Time t;             // when the closing wait opened
  bool hb_concurrent = false;  // waits verified pairwise concurrent

  [[nodiscard]] std::string str() const;
};

struct AnalyzerOptions {
  /// Inversion windows shorter than this are dropped (sub-tick waits are
  /// business as usual, not pathologies worth a report line).
  sim::Duration min_inversion = sim::Duration::zero();
  /// Cap per category in str() / diagnostics() output.
  std::size_t max_findings = 16;
};

struct AnalysisReport {
  std::vector<InversionWindow> inversions;  // widest first
  std::vector<StalledSender> stalled;       // longest sender-ready first
  std::vector<WaitCycle> cycles;
  AnalyzerOptions options;

  [[nodiscard]] bool clean() const noexcept {
    return inversions.empty() && stalled.empty() && cycles.empty();
  }
  /// Findings as diagnostics (rules PSL101–PSL103), capped per category.
  [[nodiscard]] std::vector<Diagnostic> diagnostics() const;
  [[nodiscard]] std::string str() const;
};

/// Runs all three detectors over a time-ordered event slice.
[[nodiscard]] AnalysisReport analyze(std::vector<trace::Event> events,
                                     const AnalyzerOptions& opts = {});

}  // namespace pasched::analysis
