#include "analysis/hb.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace pasched::analysis {

namespace {

std::int64_t thread_key(const trace::Event& e) {
  return (static_cast<std::int64_t>(e.node) << 32) |
         static_cast<std::uint32_t>(e.tid);
}

bool has_thread(const trace::Event& e) {
  return e.kind != trace::EventKind::Idle && e.tid != 0;
}

}  // namespace

HbGraph HbGraph::build(std::vector<trace::Event> events, bool with_clocks) {
  HbGraph g;
  g.events_ = std::move(events);
  const std::size_t n = g.events_.size();
  g.thread_of_.assign(n, -1);
  g.cross_pred_.assign(n, -1);
  g.clocks_.assign(with_clocks ? n : 0, {});

  std::unordered_map<std::int64_t, int> thread_index;
  for (std::size_t i = 0; i < n; ++i) {
    if (!has_thread(g.events_[i])) continue;
    g.thread_of_[i] =
        thread_index
            .try_emplace(thread_key(g.events_[i]),
                         static_cast<int>(thread_index.size()))
            .first->second;
  }
  g.num_threads_ = static_cast<int>(thread_index.size());

  const auto t = static_cast<std::size_t>(g.num_threads_);
  std::vector<std::vector<std::uint32_t>> cur(
      t, std::vector<std::uint32_t>(t, 0));
  // FIFO of MsgSend event indices per msg_id, matching mpi::Task's
  // per-(src,tag) queues.
  std::unordered_map<std::uint64_t, std::deque<std::size_t>> in_flight;

  for (std::size_t i = 0; i < n; ++i) {
    const trace::Event& e = g.events_[i];
    const int ti = g.thread_of_[i];
    if (ti < 0) continue;
    std::vector<std::uint32_t>& clock = cur[static_cast<std::size_t>(ti)];

    if (e.kind == trace::EventKind::MsgRecv) {
      const auto it = in_flight.find(e.msg_id);
      if (it != in_flight.end() && !it->second.empty()) {
        const std::size_t send = it->second.front();
        it->second.pop_front();
        g.cross_pred_[i] = static_cast<std::int64_t>(send);
        if (with_clocks) {
          const std::vector<std::uint32_t>& sent = g.clocks_[send];
          for (std::size_t k = 0; k < t; ++k)
            clock[k] = std::max(clock[k], sent[k]);
        }
      }
    }

    ++clock[static_cast<std::size_t>(ti)];
    if (with_clocks) g.clocks_[i] = clock;

    if (e.kind == trace::EventKind::MsgSend) in_flight[e.msg_id].push_back(i);
  }
  return g;
}

bool HbGraph::happens_before(std::size_t a, std::size_t b) const {
  if (a == b) return false;
  const int ta = thread_of_[a];
  if (ta < 0 || thread_of_[b] < 0) return false;
  const auto k = static_cast<std::size_t>(ta);
  return clocks_[a][k] <= clocks_[b][k];
}

bool HbGraph::concurrent(std::size_t a, std::size_t b) const {
  if (thread_of_[a] < 0 || thread_of_[b] < 0) return false;
  return a != b && !happens_before(a, b) && !happens_before(b, a);
}

}  // namespace pasched::analysis
