// Happens-before over an event slice, the classical way: one vector-clock
// entry per thread, advanced along program order and joined across matched
// MsgSend -> MsgRecv pairs (matching is FIFO per msg_id, mirroring
// mpi::Task's per-(src,tag) message queues). Memory is O(events * threads),
// which is why analyzers run on EventLog::slice() windows rather than whole
// runs.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/events.hpp"

namespace pasched::analysis {

class HbGraph {
 public:
  /// Builds clocks for a time-ordered event slice. Unmatched receives (the
  /// send fell outside the slice) get no cross-thread edge; events that
  /// carry no thread identity (Idle) get no clock at all.
  ///
  /// `with_clocks = false` skips the O(events * threads) vector-clock
  /// storage and builds only the graph structure (thread indices and
  /// matched send -> recv edges) — what the work/span critical-path pass
  /// (src/scale/workspan.hpp) needs on whole-run traces too large for full
  /// clocks. happens_before()/concurrent()/clock() are invalid then.
  [[nodiscard]] static HbGraph build(std::vector<trace::Event> events,
                                     bool with_clocks = true);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] const trace::Event& event(std::size_t i) const {
    return events_[i];
  }
  [[nodiscard]] const std::vector<trace::Event>& events() const noexcept {
    return events_;
  }

  /// Number of distinct (node, tid) identities seen.
  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }
  /// Dense thread index of an event, or -1 when it carries no thread.
  [[nodiscard]] int thread_of(std::size_t i) const { return thread_of_[i]; }

  /// a happened-before b (strict: false when a == b).
  [[nodiscard]] bool happens_before(std::size_t a, std::size_t b) const;
  /// Neither ordered before the other (and both carry threads).
  [[nodiscard]] bool concurrent(std::size_t a, std::size_t b) const;

  /// The event's full vector clock (empty for thread-less events).
  [[nodiscard]] const std::vector<std::uint32_t>& clock(std::size_t i) const {
    return clocks_[i];
  }

  /// Cross-thread predecessor of event i: for a matched MsgRecv, the index
  /// of the MsgSend it consumed (FIFO per msg_id); -1 for everything else
  /// (including unmatched receives). This is the only non-program-order
  /// happens-before edge, so (thread order, cross_pred) spans the whole
  /// graph — the work/span DP walks exactly these edges.
  [[nodiscard]] std::int64_t cross_pred(std::size_t i) const {
    return cross_pred_[i];
  }

 private:
  std::vector<trace::Event> events_;
  std::vector<int> thread_of_;
  std::vector<std::vector<std::uint32_t>> clocks_;
  std::vector<std::int64_t> cross_pred_;
  int num_threads_ = 0;
};

}  // namespace pasched::analysis
