// The configuration linter: statically checks a run configuration — kernel
// tunables, co-scheduler parameters, daemon registry, MPI runtime config,
// and /etc/poe.priority admin records — against the paper's
// misconfiguration pathologies *before* any simulation runs. Rule IDs,
// severities, and paper references live in analysis/diagnostic.hpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/admin.hpp"
#include "core/coscheduler.hpp"
#include "daemons/registry.hpp"
#include "kern/tunables.hpp"
#include "mpi/config.hpp"
#include "net/fabric.hpp"

namespace pasched::analysis {

/// The lintable view of one run configuration. Optional members are simply
/// not checked when absent (a kernel-preset lint has no MPI runtime; a
/// plain benchmark has no admin file).
struct LintConfig {
  kern::Tunables tunables;
  std::optional<core::CoschedConfig> cosched;
  daemons::RegistryConfig daemons;
  bool daemons_installed = true;
  std::optional<mpi::MpiConfig> mpi;
  std::optional<core::AdminFile> admin;
  /// True when the workload performs I/O through the node's I/O daemon
  /// (ALE3D-style). PSL001 — the §5.3 inversion — only applies then: for
  /// pure-collective benchmarks, favoring tasks over mmfsd is the paper's
  /// own setting.
  bool workload_uses_io = false;
  /// Fabric topology + node count for the partitioned-execution rules
  /// (PSL014): checked only when both are present and nodes >= 2, since the
  /// lookahead-collapse question needs actual cross-node pairs.
  std::optional<net::FabricConfig> fabric;
  int nodes = 0;
};

/// Which rules to run. Empty `ids` = all rules.
struct RuleSelection {
  std::vector<std::string> ids;

  [[nodiscard]] static RuleSelection all() { return {}; }
  /// Parses "all" or a comma-separated ID list ("PSL001,PSL004"). Throws
  /// std::logic_error on an unknown rule ID.
  [[nodiscard]] static RuleSelection parse(const std::string& spec);
  [[nodiscard]] bool selected(const char* id) const;
};

/// Runs the selected rules; diagnostics come back in rule-ID order.
[[nodiscard]] std::vector<Diagnostic> lint(
    const LintConfig& cfg, const RuleSelection& rules = RuleSelection::all());

}  // namespace pasched::analysis
