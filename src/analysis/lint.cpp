#include "analysis/lint.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace pasched::analysis {

using sim::Duration;

RuleSelection RuleSelection::parse(const std::string& spec) {
  RuleSelection sel;
  if (spec.empty() || spec == "all") return sel;
  for (const auto& raw : util::split(spec, ',')) {
    const std::string id = util::trim(raw);
    if (id.empty()) continue;
    if (find_rule(id) == nullptr)
      throw std::logic_error("unknown lint rule '" + id + "'");
    sel.ids.push_back(id);
  }
  return sel;
}

bool RuleSelection::selected(const char* id) const {
  if (ids.empty()) return true;
  for (const std::string& s : ids)
    if (s == id) return true;
  return false;
}

namespace {

class Emitter {
 public:
  Emitter(std::vector<Diagnostic>& out, const RuleSelection& sel)
      : out_(out), sel_(sel) {}

  void emit(const char* rule, std::string subject, std::string message,
            std::string fix_hint,
            std::optional<Severity> severity = std::nullopt) {
    if (!sel_.selected(rule)) return;
    const RuleInfo* info = find_rule(rule);
    Diagnostic d;
    d.rule = rule;
    d.severity = severity.value_or(info != nullptr ? info->severity
                                                   : Severity::Warning);
    d.subject = std::move(subject);
    d.message = std::move(message);
    d.fix_hint = std::move(fix_hint);
    out_.push_back(std::move(d));
  }

 private:
  std::vector<Diagnostic>& out_;
  const RuleSelection& sel_;
};

std::string prio(kern::Priority p) { return std::to_string(p); }

}  // namespace

std::vector<Diagnostic> lint(const LintConfig& cfg,
                             const RuleSelection& rules) {
  std::vector<Diagnostic> out;
  Emitter e(out, rules);
  const kern::Tunables& tun = cfg.tunables;
  const Duration tick = tun.tick_interval();

  // PSL001 — the §5.3 I/O-starvation inversion: a favored priority
  // numerically at or below mmfsd's keeps the daemon off the CPU for the
  // whole favored stretch while the job's own I/O waits on it.
  if (cfg.cosched && cfg.workload_uses_io && cfg.daemons_installed &&
      cfg.daemons.io_service) {
    const kern::Priority fav = cfg.cosched->favored;
    const kern::Priority iop = cfg.daemons.io.priority;
    if (fav < iop) {
      e.emit("PSL001", "cosched",
             "favored priority " + prio(fav) +
                 " is numerically below (better than) the I/O daemon's " +
                 prio(iop) +
                 "; an I/O-dependent workload starves the daemon it waits "
                 "on for the whole favored stretch",
             "set favored just above the I/O daemon (e.g. " + prio(iop + 1) +
                 " vs mmfsd at " + prio(iop) + ", the paper's ALE3D fix)");
    } else if (fav == iop) {
      e.emit("PSL001", "cosched",
             "favored priority equals the I/O daemon's (" + prio(fav) +
                 "); the daemon only progresses at timeslice round-robin "
                 "granularity",
             "set favored to " + prio(iop + 1) + " so the I/O daemon always "
                 "preempts the tasks it serves",
             Severity::Warning);
    }
  }

  if (cfg.cosched) {
    const core::CoschedConfig& cs = *cfg.cosched;
    const Duration unfav_share = cs.period - cs.period * cs.duty;
    const Duration fav_stretch = cs.period * cs.duty;

    // PSL002 — unfavored share smaller than one whole tick: timer-driven
    // daemon work batches to tick boundaries, so a sub-tick share rounds
    // down to nothing (the 250 ms big-tick trap).
    if (cs.duty > 0.0 && cs.duty < 1.0 && unfav_share > Duration::zero() &&
        unfav_share < tick) {
      std::ostringstream msg;
      msg << "unfavored share " << unfav_share.str()
          << " is smaller than one tick (" << tick.str()
          << " with big_tick=" << tun.big_tick
          << "); tick-batched daemon wakeups quantize the share away";
      e.emit("PSL002", "cosched", msg.str(),
             "lower the duty cycle or the big-tick multiplier until the "
             "unfavored share spans at least one tick");
    }

    // PSL003 — no unfavored share at all: the duty cycle is the starvation
    // guard, and a favored priority ahead of the daemon band makes the
    // starvation total.
    if (cfg.daemons_installed && unfav_share <= Duration::zero() &&
        cs.favored < kern::kNormalUserBase) {
      e.emit("PSL003", "cosched",
             "duty " + std::to_string(cs.duty) +
                 " leaves no unfavored share while favored priority " +
                 prio(cs.favored) +
                 " outranks every daemon: daemons (and the heartbeats they "
                 "answer) never run on task CPUs",
             "keep duty strictly below 1.0 so each window has an unfavored "
             "share");
    }

    // PSL004 — heartbeat deadline vs. favored stretch: hatsd must complete
    // within its deadline even when parked for the whole favored stretch.
    if (cfg.daemons_installed &&
        cfg.daemons.heartbeat_deadline < fav_stretch) {
      e.emit("PSL004", "daemons",
             "heartbeat deadline " + cfg.daemons.heartbeat_deadline.str() +
                 " is shorter than the favored stretch " + fav_stretch.str() +
                 "; one window can evict the node from group membership",
             "extend the heartbeat deadline beyond period*duty (the paper "
             "extended daemon timeout tolerances)");
    }

    // PSL006 — aligned windows without synchronized clocks drift apart.
    if (cs.align_to_period_boundary && !cs.sync_clocks) {
      e.emit("PSL006", "cosched",
             "window alignment to period boundaries is on but clock "
             "synchronization is off; node-local alignment lets windows "
             "drift apart across the cluster",
             "enable sync_clocks (or disable align_to_period_boundary for "
             "a deliberately unaligned run)");
    }

    // PSL007 — the flipper daemon must outrank its own favored tasks.
    if (cs.self_priority >= cs.favored) {
      e.emit("PSL007", "cosched",
             "co-scheduler daemon priority " + prio(cs.self_priority) +
                 " does not outrank the favored tasks (" + prio(cs.favored) +
                 "); window boundaries cannot preempt a favored task, so "
                 "flips slip",
             "set self_priority numerically below favored (paper: 20 vs "
             "30)");
    }

    // PSL008 — flips are timer callouts, so a period that is not a whole
    // number of ticks lands each boundary mid-tick and the realized duty
    // wobbles.
    if (cs.align_to_period_boundary && tick > Duration::zero() &&
        cs.period % tick != Duration::zero()) {
      e.emit("PSL008", "cosched",
             "period " + cs.period.str() +
                 " is not an integer multiple of the tick interval " +
                 tick.str() + "; window boundaries quantize to ticks and "
                 "the realized duty cycle drifts",
             "pick a period that is a whole number of (big-)ticks");
    }

    // PSL011 — flips to unfavored are reverse pre-emptions.
    if (tun.rt_scheduling && !tun.rt_reverse_preemption) {
      e.emit("PSL011", "tunables",
             "rt_scheduling is on without rt_reverse_preemption; the flip "
             "to unfavored only takes effect at the next tick, stretching "
             "every favored phase",
             "enable rt_reverse_preemption (§3 fix 1)");
    }

    // PSL013 — parameter contract of the external co-scheduler.
    {
      std::vector<std::string> faults;
      auto in_range = [](kern::Priority p) {
        return p >= kern::kBestPriority && p <= kern::kWorstPriority;
      };
      if (!in_range(cs.favored) || !in_range(cs.unfavored) ||
          !in_range(cs.self_priority) || !in_range(cs.detached_base))
        faults.push_back("a priority lies outside [0,127]");
      if (cs.favored >= cs.unfavored)
        faults.push_back("favored " + prio(cs.favored) +
                         " is not numerically below unfavored " +
                         prio(cs.unfavored));
      if (cs.duty <= 0.0 || cs.duty > 1.0)
        faults.push_back("duty " + std::to_string(cs.duty) +
                         " is outside (0,1]");
      if (cs.period <= Duration::zero()) faults.push_back("period is not positive");
      for (const std::string& f : faults)
        e.emit("PSL013", "cosched", f,
               "follow the paper's contract: favored < unfavored "
               "numerically, duty in (0,1], positive period");
    }
  }

  // PSL005 — the progress-engine polling storm.
  if (cfg.mpi && cfg.mpi->progress_engine &&
      cfg.mpi->polling_interval <= Duration::ms(400)) {
    e.emit("PSL005", "mpi",
           "progress-engine polling interval " +
               cfg.mpi->polling_interval.str() +
               " is at (or below) the storm-prone 400 ms default; timer "
               "threads on every CPU perturb each window",
           "raise MP_POLLING_INTERVAL well beyond the window period (the "
           "paper used 400 s)");
  }

  // PSL009 — admin record validity.
  if (cfg.admin) {
    const auto& records = cfg.admin->records();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const core::PriorityClass& r = records[i];
      const std::string subject =
          "admin:" + std::to_string(i) + "(" + r.name + ")";
      auto in_range = [](kern::Priority p) {
        return p >= kern::kBestPriority && p <= kern::kWorstPriority;
      };
      if (!in_range(r.favored) || !in_range(r.unfavored))
        e.emit("PSL009", subject, "a priority lies outside [0,127]",
               "use AIX priorities in [0,127]");
      if (r.favored >= r.unfavored)
        e.emit("PSL009", subject,
               "favored " + prio(r.favored) +
                   " is not numerically below unfavored " + prio(r.unfavored),
               "favored must be the numerically lower value");
      if (r.duty <= 0.0 || r.duty > 1.0)
        e.emit("PSL009", subject,
               "duty " + std::to_string(r.duty) + " is outside (0,1]",
               "use a duty fraction in (0,1]");
      if (r.period <= Duration::zero())
        e.emit("PSL009", subject, "period is not positive",
               "use a positive window period");
    }
  }

  // PSL010 — alignment without simultaneity.
  if (tun.cluster_aligned_ticks && !tun.synchronized_ticks) {
    e.emit("PSL010", "tunables",
           "cluster_aligned_ticks is on while synchronized_ticks is off; "
           "staggered ticks cannot be cluster-simultaneous, so alignment "
           "buys nothing",
           "enable synchronized_ticks together with cluster alignment "
           "(§3.2.1)");
  }

  // PSL014 — lookahead collapse by a single fast link: the conservative
  // executor sizes *every* window by the global minimum pairwise latency,
  // so one low-latency pair (an intra-frame link in a mostly inter-frame
  // cluster) serializes all shards. Static precursor of the pasched-scale
  // PSL301 matrix finding.
  if (cfg.fabric && cfg.nodes >= 2) {
    const Duration global = net::guaranteed_lookahead(*cfg.fabric);
    std::vector<std::int64_t> pairs;
    for (int a = 0; a < cfg.nodes; ++a)
      for (int b = a + 1; b < cfg.nodes; ++b)
        pairs.push_back(
            net::guaranteed_lookahead_between(*cfg.fabric, a, b).count());
    std::sort(pairs.begin(), pairs.end());
    const Duration median = Duration::ns(pairs[pairs.size() / 2]);
    if (global.count() * 2 <= median.count()) {
      e.emit("PSL014", "fabric",
             "global guaranteed lookahead " + global.str() +
                 " is collapsed to half (or less) of the pairwise median " +
                 median.str() +
                 "; every conservative window is sized by the one fastest "
                 "link while most pairs could run " +
                 std::to_string(median / global) + "x wider windows",
             "plan windows per shard pair (pasched-scale emits the matrix "
             "certificate) or widen the fast link's latency floor");
    }
  }

  // PSL012 — IPIs slower than the tick.
  if (tun.rt_scheduling && tun.ipi_latency >= tick) {
    e.emit("PSL012", "tunables",
           "ipi_latency " + tun.ipi_latency.str() +
               " is not below the tick interval " + tick.str() +
               "; forced preemption arrives no sooner than the tick would",
           "lower ipi_latency or accept tick-granular preemption without "
           "rt_scheduling");
  }

  return out;
}

}  // namespace pasched::analysis
