// Diagnostic vocabulary shared by the config linter and the trace analyzer:
// rule identity, severity, message, and fix hint. Every rule encodes one of
// the paper's hard-won misconfiguration lessons as a machine-checkable
// invariant; the registry below is the single source of truth for rule IDs,
// severities, and paper references (DESIGN.md §5.4 renders the same table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pasched::analysis {

enum class Severity : std::uint8_t { Info, Warning, Error };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// Static description of one lint rule.
struct RuleInfo {
  const char* id;         // "PSL001"
  Severity severity;      // default severity of its findings
  const char* invariant;  // the machine-checkable statement
  const char* paper_ref;  // paper section the pitfall comes from
};

/// All registered lint rules, in ID order.
[[nodiscard]] const std::vector<RuleInfo>& all_rules();

/// Lookup by ID; nullptr when unknown.
[[nodiscard]] const RuleInfo* find_rule(const std::string& id);

/// One finding.
struct Diagnostic {
  std::string rule;     // rule ID, e.g. "PSL001"
  Severity severity = Severity::Warning;
  std::string subject;  // which config object ("cosched", "tunables", ...)
  std::string message;  // what is wrong, with the offending values
  std::string fix_hint; // how to repair it

  [[nodiscard]] std::string str() const;
};

[[nodiscard]] bool any_errors(const std::vector<Diagnostic>& ds) noexcept;

/// Renders the rule registry as an aligned text table (pasched-lint
/// --list-rules).
[[nodiscard]] std::string rule_table();

// -- Shared JSON report vocabulary --------------------------------------------
// Every pasched-* tool emits machine-readable reports through these helpers
// so CI artifact parsing stays stable across PRs: a report always opens with
// the same "schema"/"tool" header, and findings always serialize with the
// same keys. Bump kReportSchemaVersion when a key is renamed or removed
// (adding keys is backward compatible and needs no bump).

inline constexpr int kReportSchemaVersion = 1;

/// Escapes a string for embedding in a JSON double-quoted literal.
[[nodiscard]] std::string json_escape(const std::string& s);

/// The common opening fields of every tool report:
///   "schema": N,\n  "tool": "<tool>",
/// Emit directly after the opening '{' with two-space indentation.
[[nodiscard]] std::string json_report_header(const std::string& tool);

/// Findings as a JSON array (no trailing newline). `indent` is the column
/// of the array's own brackets; elements nest two deeper.
[[nodiscard]] std::string diagnostics_json(const std::vector<Diagnostic>& ds,
                                           int indent);

}  // namespace pasched::analysis
