#include "analysis/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace pasched::analysis {

namespace {

using trace::Event;
using trace::EventKind;

std::int64_t key_of(kern::NodeId node, int tid) {
  return (static_cast<std::int64_t>(node) << 32) |
         static_cast<std::uint32_t>(tid);
}

/// One closed "thread occupied (node, cpu)" interval.
struct Occupancy {
  kern::NodeId node = -1;
  kern::CpuId cpu = kern::kNoCpu;
  int tid = 0;
  std::string name;
  kern::ThreadClass cls = kern::ThreadClass::Other;
  kern::Priority priority = 0;
  sim::Time t0;
  sim::Time t1;
};

/// One closed "thread sat Ready on node" interval.
struct ReadySpan {
  kern::NodeId node = -1;
  int tid = 0;
  std::string name;
  kern::Priority priority = 0;
  sim::Time t0;
  sim::Time t1;
};

/// An open receive-wait, keyed by waiting rank.
struct OpenWait {
  int expected_src = -1;
  std::uint64_t msg_id = 0;
  sim::Time t0;
  std::size_t event_index = 0;  // the MsgRecvWait event, for HB checks
};

struct RankIdentity {
  kern::NodeId node = -1;
  int tid = 0;
  std::string name;
  kern::Priority priority = 0;
};

/// First pass over the slice: reconstruct CPU occupancy intervals, Ready
/// spans, the rank -> thread mapping, and the set of receive-waits with
/// their close times.
struct Reconstruction {
  std::vector<Occupancy> occupancy;
  std::vector<ReadySpan> ready;
  std::unordered_map<int, RankIdentity> rank_of;
  struct Wait {
    int waiter_rank;
    OpenWait open;
    sim::Time t1;
  };
  std::vector<Wait> waits;
  std::vector<WaitCycle> cycles;  // detected as waits open
  sim::Time end;                  // timestamp of the last event
};

void note_rank(Reconstruction& r, int rank, const Event& e) {
  if (rank < 0) return;
  RankIdentity& id = r.rank_of[rank];
  id.node = e.node;
  id.tid = e.tid;
  id.name = trace::display_name(e);
  id.priority = e.priority;
}

/// Functional wait-for graph walk: each rank waits on at most one source.
/// An edge only counts when the awaited message is NOT already in flight —
/// a sendrecv exchange has both ranks waiting on each other with both
/// messages posted, which drains fine and is no deadlock. Returns the cycle
/// through `start`, empty if none.
std::vector<int> find_cycle(
    const std::map<int, OpenWait>& open,
    const std::unordered_map<std::uint64_t, int>& in_flight, int start) {
  std::vector<int> path;
  std::set<int> seen;
  int cur = start;
  while (true) {
    const auto it = open.find(cur);
    if (it == open.end()) return {};
    const auto posted = in_flight.find(it->second.msg_id);
    if (posted != in_flight.end() && posted->second > 0) return {};
    if (!seen.insert(cur).second) {
      // Walked into a loop; the cycle is the path suffix from `cur`.
      const auto at = std::find(path.begin(), path.end(), cur);
      return {at, path.end()};
    }
    path.push_back(cur);
    cur = it->second.expected_src;
  }
}

Reconstruction reconstruct(const std::vector<Event>& events) {
  Reconstruction r;
  std::map<std::pair<kern::NodeId, kern::CpuId>, Occupancy> on_cpu;
  std::unordered_map<std::int64_t, ReadySpan> ready_since;
  std::map<int, OpenWait> open_waits;
  std::unordered_map<std::uint64_t, int> in_flight;  // posted, unconsumed
  std::set<std::vector<int>> seen_cycles;

  const auto close_ready = [&](const Event& e) {
    const auto it = ready_since.find(key_of(e.node, e.tid));
    if (it == ready_since.end()) return;
    it->second.t1 = e.t;
    if (it->second.t1 > it->second.t0) r.ready.push_back(it->second);
    ready_since.erase(it);
  };
  const auto close_cpu = [&](kern::NodeId node, kern::CpuId cpu,
                             sim::Time t) {
    const auto it = on_cpu.find({node, cpu});
    if (it == on_cpu.end()) return;
    it->second.t1 = t;
    if (it->second.t1 > it->second.t0) r.occupancy.push_back(it->second);
    on_cpu.erase(it);
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    r.end = e.t;
    switch (e.kind) {
      case EventKind::Dispatch: {
        close_ready(e);
        close_cpu(e.node, e.cpu, e.t);
        Occupancy occ;
        occ.node = e.node;
        occ.cpu = e.cpu;
        occ.tid = e.tid;
        occ.name = trace::display_name(e);
        occ.cls = e.cls;
        occ.priority = e.priority;
        occ.t0 = e.t;
        on_cpu[{e.node, e.cpu}] = occ;
        break;
      }
      case EventKind::Preempt:
      case EventKind::Block:
      case EventKind::Exit:
        if (e.cpu != kern::kNoCpu) close_cpu(e.node, e.cpu, e.t);
        break;
      case EventKind::Idle:
        close_cpu(e.node, e.cpu, e.t);
        break;
      case EventKind::Ready: {
        ReadySpan span;
        span.node = e.node;
        span.tid = e.tid;
        span.name = trace::display_name(e);
        span.priority = e.priority;
        span.t0 = e.t;
        ready_since[key_of(e.node, e.tid)] = span;
        break;
      }
      case EventKind::MsgSend:
        note_rank(r, e.src_rank, e);
        ++in_flight[e.msg_id];
        break;
      case EventKind::MsgRecvWait: {
        note_rank(r, e.dst_rank, e);
        if (e.dst_rank < 0) break;
        OpenWait w;
        w.expected_src = e.src_rank;
        w.msg_id = e.msg_id;
        w.t0 = e.t;
        w.event_index = i;
        open_waits[e.dst_rank] = w;
        std::vector<int> cycle = find_cycle(open_waits, in_flight, e.dst_rank);
        if (!cycle.empty()) {
          std::rotate(cycle.begin(),
                      std::min_element(cycle.begin(), cycle.end()),
                      cycle.end());
          if (seen_cycles.insert(cycle).second) {
            WaitCycle wc;
            wc.ranks = cycle;
            wc.t = e.t;
            r.cycles.push_back(std::move(wc));
          }
        }
        break;
      }
      case EventKind::MsgRecv: {
        note_rank(r, e.dst_rank, e);
        const auto posted = in_flight.find(e.msg_id);
        if (posted != in_flight.end() && posted->second > 0) --posted->second;
        const auto it = open_waits.find(e.dst_rank);
        if (it != open_waits.end() && it->second.msg_id == e.msg_id) {
          r.waits.push_back({e.dst_rank, it->second, e.t});
          open_waits.erase(it);
        }
        break;
      }
    }
  }

  // Close everything still open at the end of the slice.
  for (auto& [key, occ] : on_cpu) {
    occ.t1 = r.end;
    if (occ.t1 > occ.t0) r.occupancy.push_back(occ);
  }
  for (auto& [key, span] : ready_since) {
    span.t1 = r.end;
    if (span.t1 > span.t0) r.ready.push_back(span);
  }
  for (const auto& [rank, w] : open_waits)
    r.waits.push_back({rank, w, r.end});
  return r;
}

sim::Duration overlap(sim::Time a0, sim::Time a1, sim::Time b0, sim::Time b1) {
  const sim::Time lo = std::max(a0, b0);
  const sim::Time hi = std::min(a1, b1);
  return hi > lo ? hi - lo : sim::Duration::zero();
}

std::vector<InversionWindow> find_inversions(const Reconstruction& r,
                                             const AnalyzerOptions& opts) {
  std::vector<InversionWindow> out;
  for (const ReadySpan& w : r.ready) {
    for (const Occupancy& o : r.occupancy) {
      if (o.node != w.node || o.tid == w.tid) continue;
      if (o.priority <= w.priority) continue;  // holder must be worse
      const sim::Time lo = std::max(w.t0, o.t0);
      const sim::Time hi = std::min(w.t1, o.t1);
      if (hi <= lo || hi - lo < opts.min_inversion) continue;
      InversionWindow iv;
      iv.node = w.node;
      iv.cpu = o.cpu;
      iv.waiter_tid = w.tid;
      iv.waiter = w.name;
      iv.waiter_priority = w.priority;
      iv.holder_tid = o.tid;
      iv.holder = o.name;
      iv.holder_priority = o.priority;
      iv.holder_cls = o.cls;
      iv.start = lo;
      iv.end = hi;
      out.push_back(std::move(iv));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const InversionWindow& a, const InversionWindow& b) {
                     return a.span() > b.span();
                   });
  return out;
}

std::vector<StalledSender> find_stalled_senders(const Reconstruction& r) {
  std::vector<StalledSender> out;
  for (const auto& wait : r.waits) {
    const auto sender_it = r.rank_of.find(wait.open.expected_src);
    if (sender_it == r.rank_of.end()) continue;
    const RankIdentity& sender = sender_it->second;

    StalledSender s;
    s.waiter_rank = wait.waiter_rank;
    s.expected_src = wait.open.expected_src;
    s.msg_id = wait.open.msg_id;
    s.sender_node = sender.node;
    s.sender_tid = sender.tid;
    s.sender = sender.name;
    s.sender_priority = sender.priority;
    s.wait_start = wait.open.t0;
    s.wait_end = wait.t1;

    // How long the expected sender sat Ready-but-off-CPU inside the wait,
    // and the exact stall windows (for holder attribution below).
    std::vector<std::pair<sim::Time, sim::Time>> stall_windows;
    for (const ReadySpan& span : r.ready) {
      if (span.node != sender.node || span.tid != sender.tid) continue;
      const sim::Time lo = std::max(span.t0, s.wait_start);
      const sim::Time hi = std::min(span.t1, s.wait_end);
      if (hi <= lo) continue;
      s.sender_ready += hi - lo;
      stall_windows.emplace_back(lo, hi);
    }
    if (s.sender_ready <= sim::Duration::zero()) continue;

    // Who held the sender's node while it was stalled — these threads, not
    // the wait as a whole, are what kept the sender off the CPU.
    std::set<std::string> holders;
    for (const Occupancy& o : r.occupancy) {
      if (o.node != sender.node || o.tid == sender.tid) continue;
      for (const auto& [lo, hi] : stall_windows) {
        if (overlap(o.t0, o.t1, lo, hi) > sim::Duration::zero()) {
          holders.insert(o.name + "(prio " + std::to_string(o.priority) +
                         ")");
          break;
        }
      }
    }
    s.holders.assign(holders.begin(), holders.end());
    out.push_back(std::move(s));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const StalledSender& a, const StalledSender& b) {
                     return a.sender_ready > b.sender_ready;
                   });
  return out;
}

void verify_cycles(std::vector<WaitCycle>& cycles, const HbGraph& hb) {
  // Map each cycle rank to the MsgRecvWait event that was open when the
  // cycle closed; the cycle is genuine when those waits are pairwise
  // HB-concurrent (no message could have ordered one before another).
  std::unordered_map<int, std::size_t> last_wait;
  for (std::size_t i = 0; i < hb.size(); ++i)
    if (hb.event(i).kind == EventKind::MsgRecvWait &&
        hb.event(i).dst_rank >= 0)
      last_wait[hb.event(i).dst_rank] = i;  // latest wins; fine for tests
  for (WaitCycle& c : cycles) {
    c.hb_concurrent = true;
    for (std::size_t a = 0; a < c.ranks.size() && c.hb_concurrent; ++a)
      for (std::size_t b = a + 1; b < c.ranks.size(); ++b) {
        const auto ia = last_wait.find(c.ranks[a]);
        const auto ib = last_wait.find(c.ranks[b]);
        if (ia == last_wait.end() || ib == last_wait.end() ||
            !hb.concurrent(ia->second, ib->second)) {
          c.hb_concurrent = false;
          break;
        }
      }
  }
}

}  // namespace

std::string InversionWindow::str() const {
  std::ostringstream os;
  os << "node" << node << "/cpu" << cpu << ": " << waiter << "(prio "
     << waiter_priority << ") ready " << span().str() << " behind " << holder
     << "(prio " << holder_priority << ", " << kern::to_string(holder_cls)
     << ") [" << start.str() << ", " << end.str() << ")";
  return os.str();
}

std::string StalledSender::str() const {
  std::ostringstream os;
  os << "rank" << waiter_rank << " waited on rank" << expected_src << " ("
     << sender << ", prio " << sender_priority << ") which sat Ready "
     << sender_ready.str() << " of the " << (wait_end - wait_start).str()
     << " wait";
  if (!holders.empty()) {
    os << "; CPUs held by ";
    for (std::size_t i = 0; i < holders.size(); ++i)
      os << (i != 0 ? ", " : "") << holders[i];
  }
  return os.str();
}

std::string WaitCycle::str() const {
  std::ostringstream os;
  os << "wait-for cycle at " << t.str() << ": ";
  for (const int rank : ranks) os << "rank" << rank << " -> ";
  os << "rank" << ranks.front();
  os << (hb_concurrent ? " (HB-concurrent)" : " (not HB-verified)");
  return os.str();
}

std::vector<Diagnostic> AnalysisReport::diagnostics() const {
  std::vector<Diagnostic> out;
  const auto emit = [&](const char* rule, const std::string& subject,
                        std::string msg, std::string hint) {
    const RuleInfo* info = find_rule(rule);
    Diagnostic d;
    d.rule = rule;
    d.severity = info != nullptr ? info->severity : Severity::Warning;
    d.subject = subject;
    d.message = std::move(msg);
    d.fix_hint = std::move(hint);
    out.push_back(std::move(d));
  };
  for (std::size_t i = 0; i < inversions.size() && i < options.max_findings;
       ++i)
    emit("PSL101", "trace", inversions[i].str(),
         "big ticks / RT preemption shrink these windows (§3)");
  for (std::size_t i = 0; i < stalled.size() && i < options.max_findings; ++i)
    emit("PSL102", "trace", stalled[i].str(),
         "set favored numerically above the starved thread's priority "
         "(§5.3) or use spin-block receives");
  for (std::size_t i = 0; i < cycles.size() && i < options.max_findings; ++i)
    emit("PSL103", "trace", cycles[i].str(),
         "a rank cycle of open waits never drains; check message matching "
         "and co-scheduling windows");
  return out;
}

std::string AnalysisReport::str() const {
  std::ostringstream os;
  os << "inversion windows: " << inversions.size()
     << "  stalled senders: " << stalled.size()
     << "  wait cycles: " << cycles.size() << "\n";
  for (const Diagnostic& d : diagnostics()) os << "  " << d.str() << "\n";
  return os.str();
}

AnalysisReport analyze(std::vector<trace::Event> events,
                       const AnalyzerOptions& opts) {
  AnalysisReport report;
  report.options = opts;
  const Reconstruction r = reconstruct(events);
  report.inversions = find_inversions(r, opts);
  report.stalled = find_stalled_senders(r);
  report.cycles = r.cycles;
  if (!report.cycles.empty()) {
    const HbGraph hb = HbGraph::build(std::move(events));
    verify_cycles(report.cycles, hb);
  }
  return report;
}

}  // namespace pasched::analysis
