#include "check/audit.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "check/check.hpp"
#include "kern/kernel.hpp"
#include "kern/thread.hpp"

namespace pasched::check {

using sim::Duration;
using sim::Time;

std::string ConservationReport::str() const {
  std::ostringstream os;
  os << "wall=" << wall.str() << " x " << ncpus
     << " cpus: busy=" << busy.str() << " idle=" << idle.str()
     << " thread_cpu=" << thread_cpu.str()
     << " tick_stretch=" << tick_stretch.str()
     << " in_flight=" << in_flight.str() << " [ns: busy=" << busy.count()
     << " idle=" << idle.count() << " thread=" << thread_cpu.count()
     << " stretch=" << tick_stretch.count()
     << " in_flight=" << in_flight.count() << "]";
  return os.str();
}

ConservationReport Auditor::conservation(const kern::Kernel& k) {
  const Time now = k.engine().now();
  ConservationReport r;
  r.ncpus = k.ncpus();
  r.wall = now - k.acct_start_;
  r.capacity = r.wall * static_cast<std::int64_t>(r.ncpus);
  r.busy = k.acct_.busy_cpu;
  r.idle = k.acct_.idle_cpu;
  r.tick_stretch = k.acct_.tick_stretch;

  // Close the in-progress occupancy / idle interval of every CPU, and count
  // accrued-but-uncharged work of whoever is on a CPU right now: the
  // unfinished part of a pending burst (its deadline already includes any
  // tick displacement, so deadline - now is exactly the unworked remainder)
  // or the spin time since spin_start.
  for (const kern::Kernel::Cpu& c : k.cpus_) {
    if (c.current == nullptr) {
      r.idle += now - c.idle_since;
      continue;
    }
    r.busy += now - c.run_start;
    const kern::Thread& t = *c.current;
    if (k.engine().pending(t.burst_event_)) {
      const Duration remaining = std::clamp(t.burst_deadline_ - now,
                                            Duration::zero(), t.burst_len_);
      r.in_flight += t.burst_len_ - remaining;
    } else if (t.spin_waiting_) {
      r.in_flight += now - t.spin_start_;
    }
  }

  for (const auto& t : k.threads_) r.thread_cpu += t->total_cpu_;
  for (const Duration d : k.acct_.class_cpu) r.class_cpu += d;
  return r;
}

void Auditor::verify_conservation(const ConservationReport& r) {
  PASCHED_CHECK_ALWAYS_MSG(r.busy + r.idle == r.capacity,
                           "busy + idle != wall x cpus: " + r.str());
  PASCHED_CHECK_ALWAYS_MSG(
      r.thread_cpu == r.class_cpu,
      "per-thread and per-class CPU accounting disagree: thread_cpu=" +
          r.thread_cpu.str() + " class_cpu=" + r.class_cpu.str());
  PASCHED_CHECK_ALWAYS_MSG(
      r.busy == r.thread_cpu + r.tick_stretch + r.in_flight,
      "CPU time not conserved: " + r.str());
}

void Auditor::verify_runqueues(const kern::Kernel& k) {
  // How many queues hold each thread (Ready threads must appear exactly once).
  std::unordered_map<const kern::Thread*, int> queued;
  auto scan = [&](const std::vector<kern::Thread*>& q, const char* which) {
    for (const kern::Thread* t : q) {
      PASCHED_CHECK_ALWAYS_MSG(t->state_ == kern::ThreadState::Ready,
                               t->name() + " is on the " + which +
                                   " queue but in state " +
                                   kern::to_string(t->state_));
      PASCHED_CHECK_ALWAYS_MSG(
          t->running_on_ == kern::kNoCpu,
          t->name() + " is queued yet claims to occupy a CPU");
      ++queued[t];
    }
  };
  scan(k.globalq_, "global");
  for (const kern::Kernel::Cpu& c : k.cpus_) scan(c.runq, "per-CPU");

  for (kern::CpuId cpu = 0; cpu < k.ncpus(); ++cpu) {
    const kern::Thread* cur = k.cpus_[static_cast<std::size_t>(cpu)].current;
    if (cur == nullptr) continue;
    PASCHED_CHECK_ALWAYS_MSG(cur->state_ == kern::ThreadState::Running,
                             cur->name() + " occupies CPU " +
                                 std::to_string(cpu) + " but is in state " +
                                 kern::to_string(cur->state_));
    PASCHED_CHECK_ALWAYS_MSG(cur->running_on_ == cpu,
                             cur->name() +
                                 "'s running_on disagrees with CPU occupancy");
    PASCHED_CHECK_ALWAYS_MSG(queued.count(cur) == 0,
                             cur->name() + " is simultaneously running and enqueued");
  }

  for (const auto& owned : k.threads_) {
    const kern::Thread* t = owned.get();
    const int on_queues = queued.count(t) != 0 ? queued.at(t) : 0;
    switch (t->state_) {
      case kern::ThreadState::Ready:
        PASCHED_CHECK_ALWAYS_MSG(on_queues == 1,
                                 t->name() + " is Ready but sits on " +
                                     std::to_string(on_queues) + " queues");
        break;
      case kern::ThreadState::Running: {
        const kern::CpuId cpu = t->running_on_;
        PASCHED_CHECK_ALWAYS_MSG(cpu >= 0 && cpu < k.ncpus(),
                                 t->name() + " is Running on no valid CPU");
        PASCHED_CHECK_ALWAYS_MSG(
            k.cpus_[static_cast<std::size_t>(cpu)].current == t,
            t->name() + " thinks it runs on CPU " + std::to_string(cpu) +
                " but the CPU disagrees");
        break;
      }
      case kern::ThreadState::Blocked:
      case kern::ThreadState::Done:
        PASCHED_CHECK_ALWAYS_MSG(on_queues == 0,
                                 t->name() + " is " +
                                     kern::to_string(t->state_) +
                                     " yet sits on a run queue");
        PASCHED_CHECK_ALWAYS_MSG(
            t->running_on_ == kern::kNoCpu,
            t->name() + " is off-CPU yet claims a running_on CPU");
        PASCHED_CHECK_ALWAYS_MSG(
            !k.engine().pending(t->burst_event_),
            t->name() + " is off-CPU yet has a pending burst event");
        break;
    }
  }
}

}  // namespace pasched::check
