// The legal thread-state machine, written down once. The Kernel routes every
// ThreadState change through this table (see Kernel::set_state), so a policy
// refactor that, say, re-enqueues a Done thread or dispatches something that
// was never made Ready fails immediately at the transition, not three events
// later as a corrupted run queue.
//
//            wake              dispatch
//   Blocked ------->  Ready  ----------->  Running
//      ^                ^                   |  |  |
//      |                +---- preempt ------+  |  +--exit--> Done (terminal)
//      +----------------------- block ---------+
#pragma once

#include "kern/types.hpp"

namespace pasched::check {

[[nodiscard]] constexpr bool thread_transition_ok(kern::ThreadState from,
                                                  kern::ThreadState to) noexcept {
  using S = kern::ThreadState;
  switch (from) {
    case S::Blocked:
      return to == S::Ready;  // wake()
    case S::Ready:
      return to == S::Running;  // dispatch()
    case S::Running:
      // preempt() / block_current(Blocked) / block_current(Done)
      return to == S::Ready || to == S::Blocked || to == S::Done;
    case S::Done:
      return false;  // terminal
  }
  return false;
}

/// Human-readable "<from> -> <to>" for check-failure messages.
[[nodiscard]] inline std::string transition_str(kern::ThreadState from,
                                                kern::ThreadState to) {
  return std::string(kern::to_string(from)) + " -> " + kern::to_string(to);
}

}  // namespace pasched::check
