// PASCHED_CHECK: the opt-in runtime validation layer. Unlike the always-on
// contracts in util/assert.hpp (which guard API misuse by callers), these
// macros assert *internal* invariants of the engine and kernel model — the
// properties that, if silently violated, corrupt every downstream figure.
// They compile to nothing unless the build defines PASCHED_VALIDATE_ENABLED=1
// (CMake option PASCHED_VALIDATE), so hot paths pay zero cost when off.
#pragma once

#ifndef PASCHED_VALIDATE_ENABLED
#define PASCHED_VALIDATE_ENABLED 0
#endif

#include <sstream>
#include <stdexcept>
#include <string>

namespace pasched::check {

/// Thrown on a violated validation invariant. A distinct type (rather than
/// util::contract_failure's std::logic_error) so tests and the audit tool
/// can tell "model invariant broken" from "API misused".
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failure(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "Validation failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace pasched::check

// PASCHED_CHECK_ALWAYS: the active form, used directly by explicit audit
// entry points (check::Auditor) that are opt-in by call rather than by build
// flag. The message expression is evaluated only on failure.
#define PASCHED_CHECK_ALWAYS_MSG(cond, msg)                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::pasched::check::check_failure(#cond, __FILE__, __LINE__, (msg));     \
  } while (0)

#define PASCHED_CHECK_ALWAYS(cond) PASCHED_CHECK_ALWAYS_MSG(cond, "")

#if PASCHED_VALIDATE_ENABLED

#define PASCHED_CHECK(cond) PASCHED_CHECK_ALWAYS_MSG(cond, "")
#define PASCHED_CHECK_MSG(cond, msg) PASCHED_CHECK_ALWAYS_MSG(cond, (msg))

#else

// Off: the condition and message are *not* evaluated — they live inside a
// sizeof, an unevaluated operand, so the expansion is a compile-time
// constant with zero codegen at every optimization level. The arguments
// are still parsed AND type-checked (the condition must convert to bool),
// so a broken check expression cannot bit-rot unnoticed, and a
// side-effect-only void expression (the classic PSL404 hazard) fails to
// compile instead of silently diverging from the validated build.
#define PASCHED_CHECK(cond)                               \
  do {                                                    \
    static_cast<void>(sizeof(static_cast<bool>(cond)));   \
  } while (0)
#define PASCHED_CHECK_MSG(cond, msg)                      \
  do {                                                    \
    static_cast<void>(                                    \
        sizeof((static_cast<void>(msg), static_cast<bool>(cond)))); \
  } while (0)

#endif  // PASCHED_VALIDATE_ENABLED
