// Whole-model audits: structural invariants that are too expensive to assert
// on every event but must hold at any quiescent point. The Auditor is always
// compiled (calling it is opt-in, so the zero-overhead-when-off rule is not
// violated); it reports failures through check::CheckError.
//
// Two audit families:
//  * run-queue consistency — every thread is exactly where its state says it
//    is: Running threads are some CPU's `current` and on no queue, Ready
//    threads are on exactly one queue, Blocked/Done threads are on none.
//  * CPU-time conservation — the kernel's wall-clock capacity is exactly
//    partitioned into per-thread charges, tick-displaced burst time, idle
//    time, and not-yet-charged in-flight work. A leak in either direction
//    means charge()/take_off_cpu() bookkeeping broke.
#pragma once

#include <string>

#include "kern/types.hpp"
#include "sim/time.hpp"

namespace pasched::kern {
class Kernel;
}

namespace pasched::check {

/// The conservation ledger for one node at one instant. All quantities are
/// node-wide sums; `capacity` = wall-clock since kernel construction × CPUs.
struct ConservationReport {
  int ncpus = 0;
  sim::Duration wall = sim::Duration::zero();      // per-CPU wall clock
  sim::Duration capacity = sim::Duration::zero();  // wall * ncpus
  sim::Duration busy = sim::Duration::zero();      // occupied CPU wall time
  sim::Duration idle = sim::Duration::zero();      // unoccupied CPU wall time
  sim::Duration thread_cpu = sim::Duration::zero();  // sum of total_cpu()
  sim::Duration class_cpu = sim::Duration::zero();   // sum of per-class buckets
  sim::Duration tick_stretch = sim::Duration::zero();  // bursts displaced by ticks
  sim::Duration in_flight = sim::Duration::zero();  // accrued, not yet charged

  [[nodiscard]] std::string str() const;
};

class Auditor {
 public:
  /// Snapshots the conservation ledger for `k`. Valid at any point where the
  /// engine is not mid-event (e.g. after run()/run_until() returns).
  [[nodiscard]] static ConservationReport conservation(const kern::Kernel& k);

  /// Checks the ledger's identities; throws CheckError on violation:
  ///   busy + idle == capacity
  ///   thread_cpu == class_cpu
  ///   busy == thread_cpu + tick_stretch + in_flight
  static void verify_conservation(const ConservationReport& r);

  /// conservation() + verify_conservation() in one call.
  static void verify_conservation(const kern::Kernel& k) {
    verify_conservation(conservation(k));
  }

  /// Cross-checks thread states against run queues and CPU occupancy;
  /// throws CheckError on the first inconsistency.
  static void verify_runqueues(const kern::Kernel& k);
};

}  // namespace pasched::check
