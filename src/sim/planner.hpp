// Per-pair conservative window planner for the partitioned core.
//
// The legacy planner synchronized every shard on one global quantity: the
// fabric-wide minimum lookahead L. Each round it computed t0 = min over all
// shards' next event times and ran everyone to t0 + L behind a global
// barrier. That is correct but pessimal twice over: (1) a shard whose
// *incoming* neighbors cannot reach it before t0 + 3L is still cut off at
// t0 + L, and (2) every window costs a full barrier rendezvous.
//
// This planner replaces both with the per-pair guaranteed-lookahead matrix
// (the certificate pasched-scale emits, src/scale/lookahead.hpp): given
// every shard's published next event time, it computes the null-message
// fixpoint
//
//     E_s = min(next_t_s, min_p (E_p + L_ps))
//
// (the earliest instant shard s can possibly execute anything, counting
// transitively-forwarded work), then chains up to `batch` windows per sync
// round:
//
//     W(1)_s = min_{p != s} (E_p + L_ps)
//     W(j)_s = min_{p != s} (W(j-1)_p + L_ps)
//
// Every window end is a pure function of the round's published inputs, so
// all shards compute the identical schedule independently — no coordinator
// and no timing dependence, which is what keeps --parallel=1 and
// --parallel=N bit-identical. Safety argument (why a shard can never
// receive an event in its past) is spelled out in DESIGN.md §7.
//
// PlannerMode::Global reproduces the legacy schedule exactly (one window
// per round, ending at t0 + L for every shard) — kept both as the
// equivalence baseline the audit gate compares against and as the
// denominator for the n_windows scalability smoke in CI.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace pasched::sim {

/// Per-pair guaranteed lookahead bounds, row-major `shards x shards`,
/// diagonal zero. `global` must be the minimum off-diagonal entry — it
/// gates the final-window condition. The runtime consumer of the
/// pasched-scale certificate: core::Simulation fills it from
/// net::guaranteed_lookahead_between, and scale::RunMonitor cross-checks
/// it against the certified matrix at monitor install.
struct PairLookahead {
  int shards = 0;
  Duration global = Duration::zero();
  std::vector<Duration> bounds;

  /// All pairs at the global bound — what a flat (frameless) fabric yields,
  /// and the fallback when no matrix was installed.
  [[nodiscard]] static PairLookahead uniform(int shards, Duration global);

  [[nodiscard]] Duration at(int src, int dst) const {
    return bounds[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(shards) +
                  static_cast<std::size_t>(dst)];
  }
};

enum class PlannerMode : std::uint8_t {
  Global,   ///< legacy: one window per round at t0 + min-lookahead
  PerPair,  ///< per-pair horizons, `batch` chained windows per round
};

/// Chained windows per sync round in PerPair mode. Each chained window is
/// executed under neighbor-horizon waits only; the global barrier is paid
/// once per round. Raising it trades wrapup/stop latency (checked at round
/// boundaries) for fewer rounds; 8 holds the fig5 sync-round count at
/// >= 4x below the global planner's while the rounds stay short enough
/// that deferred wrapups land within a handful of lookahead intervals.
inline constexpr int kDefaultWindowBatch = 8;

/// Execution counters the engine fills as it runs the plans. `rounds` is
/// the figure the scale report publishes as n_windows — the number of
/// global synchronizations, which is what the window cost model prices.
struct PlannerStats {
  std::uint64_t rounds = 0;          ///< sync rounds (global barriers paid)
  std::uint64_t windows = 0;         ///< chained windows executed
  std::uint64_t coalesced = 0;       ///< windows skipped: shard idle, rings quiet
  std::uint64_t final_rounds = 0;    ///< deadline-inclusive rounds (0 or 1)
  std::uint64_t ring_posts = 0;      ///< cross-shard events via SPSC rings
  std::uint64_t ring_overflows = 0;  ///< posts that spilled to the overflow lane
};

/// One sync round's schedule: either the final deadline-inclusive window or
/// a chain of `length` per-shard window ends. Reused across rounds — the
/// planner only ever grows the buffer.
struct RoundPlan {
  bool final = false;
  int length = 0;
  int shards = 0;
  std::vector<Time> ends;  ///< [(j-1)*shards + s], j in 1..length

  /// End of shard `s`'s j-th chained window (1-based j).
  [[nodiscard]] Time end_of(int j, int s) const {
    return ends[static_cast<std::size_t>(j - 1) *
                    static_cast<std::size_t>(shards) +
                static_cast<std::size_t>(s)];
  }
};

class WindowPlanner {
 public:
  WindowPlanner(PairLookahead la, PlannerMode mode, int batch);

  /// Plans one sync round. `next_t` is every shard's published next event
  /// time (Time::max() when idle; cross-shard rings must already be fully
  /// drained into the engines). Window spans may be shrunk to
  /// `quantum_num/quantum_den` of each lookahead bound (>= 1 ns) — the
  /// race-fuzzer's perturbation seam; shrinking is always conservative.
  /// Pure: identical inputs produce the identical plan.
  void plan(const std::vector<Time>& next_t, Time deadline,
            std::int64_t quantum_num, std::int64_t quantum_den,
            RoundPlan& out) const;

  [[nodiscard]] PlannerMode mode() const noexcept { return mode_; }
  [[nodiscard]] int batch() const noexcept { return batch_; }
  [[nodiscard]] const PairLookahead& pairs() const noexcept { return la_; }

 private:
  PairLookahead la_;
  PlannerMode mode_;
  int batch_;
};

}  // namespace pasched::sim
