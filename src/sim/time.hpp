// Simulation time: 64-bit signed nanoseconds since simulation epoch.
// `Duration` and `Time` are distinct strong types so that "a point on the
// cluster's global timeline" can never be silently mixed with "an interval"
// — a real hazard in this codebase, where tick alignment arithmetic (local
// clock offsets, big-tick boundaries, co-scheduler windows) is everywhere.
#pragma once

#include <cstdint>
#include <string>

namespace pasched::sim {

class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration ns(std::int64_t v) {
    return Duration{v};
  }
  [[nodiscard]] static constexpr Duration us(std::int64_t v) {
    return Duration{v * 1000};
  }
  [[nodiscard]] static constexpr Duration ms(std::int64_t v) {
    return Duration{v * 1000 * 1000};
  }
  [[nodiscard]] static constexpr Duration sec(std::int64_t v) {
    return Duration{v * 1000 * 1000 * 1000};
  }
  [[nodiscard]] static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{INT64_MAX};
  }

  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }
  [[nodiscard]] constexpr double to_us() const {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double to_ms() const {
    return static_cast<double>(ns_) / 1e6;
  }

  constexpr Duration& operator+=(Duration d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) {
    ns_ -= d.ns_;
    return *this;
  }
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ns_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return a * k;
  }
  friend constexpr Duration operator*(Duration a, int k) {
    return Duration{a.ns_ * k};
  }
  friend constexpr Duration operator*(int k, Duration a) { return a * k; }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.ns_ / k};
  }
  friend constexpr std::int64_t operator/(Duration a, Duration b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr Duration operator%(Duration a, Duration b) {
    return Duration{a.ns_ % b.ns_};
  }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.ns_}; }
  friend constexpr auto operator<=>(Duration a, Duration b) = default;

  [[nodiscard]] std::string str() const;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time zero() { return Time{}; }
  [[nodiscard]] static constexpr Time from_ns(std::int64_t v) {
    Time t;
    t.ns_ = v;
    return t;
  }
  [[nodiscard]] static constexpr Time max() { return from_ns(INT64_MAX); }

  /// Nanoseconds since the simulation epoch.
  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr Duration since_epoch() const {
    return Duration::ns(ns_);
  }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  friend constexpr Time operator+(Time t, Duration d) {
    return from_ns(t.ns_ + d.count());
  }
  friend constexpr Time operator+(Duration d, Time t) { return t + d; }
  friend constexpr Time operator-(Time t, Duration d) {
    return from_ns(t.ns_ - d.count());
  }
  friend constexpr Duration operator-(Time a, Time b) {
    return Duration::ns(a.ns_ - b.ns_);
  }
  constexpr Time& operator+=(Duration d) {
    ns_ += d.count();
    return *this;
  }
  friend constexpr auto operator<=>(Time a, Time b) = default;

  /// First time point >= *this that is an exact multiple of `period` when
  /// measured with the given phase shift: result = k*period + phase.
  /// Used for tick alignment and co-scheduler window boundaries.
  [[nodiscard]] constexpr Time align_up(Duration period,
                                        Duration phase = Duration::zero()) const {
    const std::int64_t p = period.count();
    const std::int64_t ph = ((phase.count() % p) + p) % p;
    const std::int64_t base = ns_ - ph;
    std::int64_t k = base / p;
    if (k * p < base) ++k;
    std::int64_t cand = k * p + ph;
    if (cand < ns_) cand += p;
    return from_ns(cand);
  }

  [[nodiscard]] std::string str() const;

 private:
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::ns(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::us(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::ms(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::sec(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace pasched::sim
