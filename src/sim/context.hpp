// The partition seam between event producers and the engine(s) executing
// them. A Router owns the mapping node -> shard and the cross-shard posting
// rule; an EventContext is the per-node handle components schedule through.
//
// Two implementations exist: SingleRouter (below) wraps the classic one-
// engine-for-everything mode, and sim::ShardedEngine (sim/shard.hpp) gives
// every node its own engine + clock with conservative-window parallel
// execution. Kernel, daemons, and the co-scheduler only ever touch their
// node's EventContext, so they are partition-agnostic by construction; the
// fabric and the MPI job are the only components that cross shards, and
// they do it exclusively through Router::post().
#pragma once

#include <utility>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pasched::sim {

/// Partition-aware event routing. `shard_of_node` maps a cluster node to the
/// shard that owns its events; `hub_shard` owns cluster-global state (the
/// switch's hardware-collective combine unit). `post` delivers a callback
/// into another shard's timeline; for cross-shard posts `t` must be at least
/// `lookahead()` past the source shard's clock — the conservative guarantee
/// the parallel executor synchronizes on.
class Router {
 public:
  virtual ~Router() = default;
  [[nodiscard]] virtual int partitions() const noexcept = 0;
  [[nodiscard]] virtual int shard_of_node(int node) const noexcept = 0;
  [[nodiscard]] virtual int hub_shard() const noexcept = 0;
  [[nodiscard]] virtual Duration lookahead() const noexcept = 0;
  [[nodiscard]] virtual Engine& engine_of(int shard) = 0;
  virtual void post(int src_shard, int dst_shard, Time t,
                    Engine::Callback fn) = 0;
  /// Runs `fn` once no shard is mid-event: immediately in sequential mode,
  /// at the next window barrier in parallel mode. Job-completion bookkeeping
  /// (hook shutdown, aux-thread cancellation) goes through here so it may
  /// safely touch every node.
  virtual void request_wrapup(Engine::Callback fn) = 0;
  /// Requests that execution stop at the next safe point.
  virtual void stop_all() = 0;
};

/// A node's scheduling handle: the engine that owns its events, plus the
/// router and this node's shard id for the rare cross-node operations.
/// Implicitly convertible from a bare Engine& so single-engine construction
/// (tests, the model checker, the legacy path) keeps working unchanged.
struct EventContext {
  Engine* engine = nullptr;
  Router* router = nullptr;
  int shard = 0;

  // NOLINTNEXTLINE(google-explicit-constructor): deliberate — a bare engine
  // is a complete single-shard context.
  EventContext(Engine& e) : engine(&e) {}
  EventContext(Engine& e, Router& r, int s) : engine(&e), router(&r), shard(s) {}

  [[nodiscard]] Time now() const { return engine->now(); }
  EventId schedule_at(Time t, Engine::Callback fn) const {
    return engine->schedule_at(t, std::move(fn));
  }
  EventId schedule_after(Duration d, Engine::Callback fn) const {
    return engine->schedule_after(d, std::move(fn));
  }
  void cancel(EventId id) const { engine->cancel(id); }
  [[nodiscard]] bool pending(EventId id) const { return engine->pending(id); }
  [[nodiscard]] ChoiceSource* choice_source() const {
    return engine->choice_source();
  }
};

/// The classic mode: one engine executes every node; every "cross-shard"
/// post is an ordinary schedule_at and wrapups run inline. Installed
/// automatically when a Cluster is built from a bare Engine, so the legacy
/// and sharded paths share one code path everywhere above sim/.
class SingleRouter final : public Router {
 public:
  explicit SingleRouter(Engine& engine) : engine_(engine) {}
  [[nodiscard]] int partitions() const noexcept override { return 1; }
  [[nodiscard]] int shard_of_node(int) const noexcept override { return 0; }
  [[nodiscard]] int hub_shard() const noexcept override { return 0; }
  [[nodiscard]] Duration lookahead() const noexcept override {
    return Duration::zero();
  }
  [[nodiscard]] Engine& engine_of(int) override { return engine_; }
  void post(int, int, Time t, Engine::Callback fn) override {
    engine_.schedule_at(t, std::move(fn));
  }
  void request_wrapup(Engine::Callback fn) override { fn(); }
  void stop_all() override { engine_.stop(); }

 private:
  Engine& engine_;
};

}  // namespace pasched::sim
