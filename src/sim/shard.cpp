#include "sim/shard.hpp"

#include <algorithm>
#include <exception>
#include <iterator>
#include <limits>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "check/check.hpp"
#include "race/domain.hpp"
#include "sim/choice.hpp"
#include "util/allocgate.hpp"
#include "util/assert.hpp"

namespace pasched::sim {

namespace {

// Ledger site ids for the engine's serialization seams. Registration is
// idempotent by name and cold, so function-local statics keep the ids
// without ordering constraints against other TUs.
[[nodiscard]] int ring_overflow_site() {
  static const int site =
      util::register_seam_site("Ring.overflow", util::SeamKind::Mutex);
  return site;
}

[[nodiscard]] int wrapup_mu_site() {
  static const int site = util::register_seam_site(
      "ShardedEngine.wrapup_mu_", util::SeamKind::Mutex);
  return site;
}

[[nodiscard]] int window_barrier_site() {
  static const int site = util::register_seam_site(
      "ShardedEngine.window_barrier", util::SeamKind::Barrier);
  return site;
}

[[nodiscard]] int horizon_wait_site() {
  static const int site = util::register_seam_site(
      "ShardedEngine.horizon_wait", util::SeamKind::Wait);
  return site;
}

// Horizon clocks start below any reachable simulation time.
inline constexpr std::int64_t kHorizonUnset =
    std::numeric_limits<std::int64_t>::min();

}  // namespace

ShardedEngine::ShardedEngine(int nodes, Duration lookahead)
    : lookahead_(lookahead), wrapup_mu_(wrapup_mu_site()) {
  PASCHED_EXPECTS(nodes >= 1);
  PASCHED_EXPECTS_MSG(lookahead > Duration::zero(),
                      "conservative execution requires a positive lookahead");
  // Single-node clusters keep everything (including the hub) on one shard:
  // intra-node latency may be below the cross-node lookahead, and with one
  // node there is nothing to run in parallel anyway.
  const int shards = nodes > 1 ? nodes + 1 : 1;
  hub_ = nodes > 1 ? nodes : 0;
  engines_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    engines_.push_back(std::make_unique<Engine>());
    // Fire logs stay armed for the engine's lifetime; each round clears
    // them, so after a stop they hold exactly the final round's fire times
    // (events_processed_before subtracts that tail).
    engines_.back()->arm_fire_log();
  }
  const std::size_t n = static_cast<std::size_t>(shards);
  rings_ = std::vector<util::CacheAligned<std::atomic<PairRing*>>>(n * n);
  arenas_ = std::vector<util::CacheAligned<ShardArena>>(n);
  post_seq_.assign(n, util::CacheAligned<std::uint64_t>{0});
  next_t_.assign(n, util::CacheAligned<Time>{Time::max()});
  horizon_ns_ = std::vector<util::CacheAligned<std::atomic<std::int64_t>>>(n);
  for (auto& h : horizon_ns_)
    h.v.store(kHorizonUnset, std::memory_order_relaxed);
  planner_ = std::make_unique<WindowPlanner>(
      PairLookahead::uniform(shards, lookahead_), PlannerMode::PerPair,
      kDefaultWindowBatch);
}

ShardedEngine::~ShardedEngine() {
  drain();
  for (auto& slot : rings_) delete slot.v.load(std::memory_order_relaxed);
}

void ShardedEngine::set_pair_lookahead(PairLookahead la) {
  PASCHED_EXPECTS_MSG(la.shards == partitions(),
                      "pair-lookahead matrix shard count mismatch");
  PASCHED_EXPECTS_MSG(
      la.global == lookahead_,
      "matrix global bound must equal the constructor lookahead — both come "
      "from the same fabric certificate");
  planner_ = std::make_unique<WindowPlanner>(std::move(la), planner_->mode(),
                                             planner_->batch());
}

void ShardedEngine::set_planner(PlannerMode mode, int batch) {
  planner_ =
      std::make_unique<WindowPlanner>(planner_->pairs(), mode, batch);
}

PlannerStats ShardedEngine::planner_stats() const {
  PlannerStats st;
  st.rounds = rounds_;
  st.windows = windows_;
  st.final_rounds = final_rounds_;
  st.coalesced = coalesced_.load(std::memory_order_relaxed);
  st.ring_posts = ring_posts_.load(std::memory_order_relaxed);
  st.ring_overflows = ring_overflows_.load(std::memory_order_relaxed);
  return st;
}

ShardedEngine::PairRing& ShardedEngine::ring_for(int src, int dst) {
  auto& slot = rings_[static_cast<std::size_t>(src) * engines_.size() +
                      static_cast<std::size_t>(dst)]
                   .v;
  PairRing* r = slot.load(std::memory_order_acquire);
  if (r != nullptr) return *r;
  // First contact on this producer/consumer pair: a one-time allocation,
  // amortized to zero over the run (rings are never torn down mid-run).
  PASCHED_ALLOC_COLD_REGION();
  auto* fresh = new PairRing(ring_capacity_, ring_overflow_site());
  PairRing* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh,
                                   std::memory_order_acq_rel))
    return *fresh;
  delete fresh;  // another producer won the install race
  return *expected;
}

void ShardedEngine::post(int src_shard, int dst_shard, Time t,
                         Engine::Callback fn) {
  // A component claiming to post from a shard it is not executing on would
  // bypass the whole ownership discipline — catch the spoof at the seam.
  PASCHED_ASSERT_DOMAIN(src_shard, "sim.Router", dst_shard, "post");
  if (src_shard == dst_shard) {
    engine_of(src_shard).schedule_at(t, std::move(fn));
    return;
  }
  Engine& src = engine_of(src_shard);
  const Duration bound = planner_->pairs().at(src_shard, dst_shard);
  PASCHED_CHECK_MSG(t >= src.now() + bound,
                    "cross-shard post violates the guaranteed pair lookahead");
  CrossNodeEvent ev{t,
                    src.now(),
                    bound,
                    src_shard,
                    post_seq_[static_cast<std::size_t>(src_shard)].v++,
                    std::move(fn)};
  if (monitor_ != nullptr)
    monitor_->on_post(src_shard, dst_shard, t, ev.sent_at, ev.src_seq);
  ring_posts_.fetch_add(1, std::memory_order_relaxed);
  PairRing& r = ring_for(src_shard, dst_shard);
  if (!r.ring.try_push(std::move(ev))) {
    // Full ring: spill to the mutex-guarded overflow lane. Overflow keeps
    // the producer's sent_at order, so capped drains can still take a
    // clean prefix.
    ring_overflows_.fetch_add(1, std::memory_order_relaxed);
    const std::scoped_lock lk(r.mu);
    r.overflow.push_back(std::move(ev));
    r.overflow_n.store(r.overflow.size(), std::memory_order_relaxed);
  }
}

void ShardedEngine::request_wrapup(Engine::Callback fn) {
  // Stamp the requesting shard's clock: the wrapup may only run once every
  // shard has simulated past this instant, so its side effects land at
  // per-shard times at or after the request — exactly where the inline
  // SingleRouter puts them, and outside the digest-truncated history.
  Time stamp = Time::zero();
  const race::Domain d = race::current_domain();
  if (d >= 0 && d < partitions()) stamp = engine_of(d).now();
  freeze_fire_logs_.store(true, std::memory_order_release);
  const std::scoped_lock lk(wrapup_mu_);
  wrapups_.push_back(Wrapup{stamp, std::move(fn)});
}

void ShardedEngine::drain_rings(int shard, const RoundPlan* plan, int j) {
  PASCHED_ALLOC_COLD_SCOPE("ShardedEngine::drain_rings");
  const int S = partitions();
  std::vector<CrossNodeEvent>& q =
      arenas_[static_cast<std::size_t>(shard)].v.admit;
  q.clear();
  for (int p = 0; p < S; ++p) {
    if (p == shard) continue;
    PairRing* r = ring_ptr(p, shard);
    if (r == nullptr) continue;
    // Drain cap for chained window j: everything our sender could have
    // produced before the horizon we just waited for. sent_at is monotone
    // per ring, so the due set is a prefix — and it is schedule-derived,
    // never timing-derived, which is what keeps admission deterministic.
    // The max() mirrors run_chain's monotone window clamp: the cap must
    // cover everything below the horizon actually processed, and
    // now_dst - L_p,dst <= now_p guarantees the prefix is already pushed.
    Time cap = Time::max();
    if (plan != nullptr)
      cap = std::max(plan->end_of(j, shard), engine_of(shard).now()) -
            planner_->pairs().at(p, shard);
    while (CrossNodeEvent* head = r->ring.front()) {
      if (plan != nullptr && head->sent_at >= cap) break;
      q.push_back(std::move(*head));
      r->ring.pop();
    }
    if (r->overflow_n.load(std::memory_order_relaxed) != 0) {
      const std::scoped_lock lk(r->mu);
      auto& ov = r->overflow;
      auto split = ov.end();
      if (plan != nullptr)
        split = std::find_if(ov.begin(), ov.end(),
                             [cap](const CrossNodeEvent& e) {
                               return e.sent_at >= cap;
                             });
      for (auto it = ov.begin(); it != split; ++it)
        q.push_back(std::move(*it));
      ov.erase(ov.begin(), split);
      r->overflow_n.store(ov.size(), std::memory_order_relaxed);
    }
  }
  if (q.empty()) return;
  admit_sorted(shard, q);
  q.clear();  // release the delivered callbacks now; keep the capacity
}

PASCHED_HOT void ShardedEngine::admit_sorted(int shard,
                                             std::vector<CrossNodeEvent>& q) {
  PASCHED_ALLOC_HOT_SCOPE("ShardedEngine::admit_sorted");
  // Canonical admission order: posts from different sources are merged by
  // (t, src, seq), so the destination engine's FIFO tie-break sees the same
  // sequence regardless of which worker drained which source first.
  std::sort(q.begin(), q.end(),
            [](const CrossNodeEvent& a, const CrossNodeEvent& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
              return a.src_seq < b.src_seq;
            });
  Engine& e = engine_of(shard);
  for (CrossNodeEvent& ev : q) {
    PASCHED_CHECK_MSG(ev.t >= ev.sent_at + ev.lookahead,
                      "cross-shard event under-stamped its lookahead");
    PASCHED_CHECK_MSG(ev.t >= e.now(),
                      "cross-shard event arrived in the destination's past");
    if (monitor_ != nullptr)
      monitor_->on_admit(shard, ev.src_shard, ev.src_seq, ev.t, e.now());
    e.schedule_at(ev.t, std::move(ev.fn));
  }
}

void ShardedEngine::wait_horizons(int shard, int j) {
  const int S = partitions();
  for (int p = 0; p < S; ++p) {
    if (p == shard) continue;
    const std::int64_t need = plan_.end_of(j - 1, p).count();
    std::atomic<std::int64_t>& h = horizon_ns_[static_cast<std::size_t>(p)].v;
    if (h.load(std::memory_order_acquire) < need) {
#if PASCHED_VALIDATE_ENABLED
      util::SeamObserver* obs = util::seam_observer();
      const std::uint64_t t0 = obs != nullptr ? util::detail::seam_now_ns() : 0;
#endif
      do {
        if (poisoned_.load(std::memory_order_relaxed)) return;
        std::this_thread::yield();
      } while (h.load(std::memory_order_acquire) < need);
#if PASCHED_VALIDATE_ENABLED
      if (obs != nullptr)
        obs->on_wait(horizon_wait_site(), util::detail::seam_now_ns() - t0);
#endif
    }
    // The acquire load above pairs with the owner's release publish: a real
    // happens-before edge whether or not we had to spin.
    if (monitor_ != nullptr) monitor_->on_horizon_wait(shard, p);
  }
}

void ShardedEngine::run_chain(int worker, int nworkers, int S) {
  if (!freeze_fire_logs_.load(std::memory_order_acquire)) {
    for (int s = worker; s < S; s += nworkers) {
      const race::ScopedDomain sd(s);
      engine_of(s).clear_fire_log();
    }
  }
  const int len = plan_.length;
  for (int j = 1; j <= len; ++j) {
    for (int s = worker; s < S; s += nworkers) {
      if (poisoned_.load(std::memory_order_relaxed)) return;
      const race::ScopedDomain sd(s);
      if (j >= 2) {
        // Window j may consume everything peers produced through their
        // window j-1 — wait for those horizons, then drain the due ring
        // prefixes. Window 1 needs neither: the round barrier already
        // parked every producer and the round-boundary drain was total.
        wait_horizons(s, j);
        if (poisoned_.load(std::memory_order_relaxed)) return;
        drain_rings(s, &plan_, j);
      }
      Engine& e = engine_of(s);
      // Monotone clamp: under the fuzzer the per-round shrink can plan a
      // window below where this shard already advanced. Holding the line at
      // now() is safe — the chain rule gives now_s <= now_p + L_ps for
      // every peer p, so nothing a peer posts from here on lands below it —
      // and it keeps the clock (which wrapup stamping and the admission
      // past-check read) monotone and schedule-derived.
      const Time wend = std::max(plan_.end_of(j, s), e.now());
      if (monitor_ != nullptr) monitor_->on_window_begin(s, wend);
      if (e.next_event_time() >= wend) {
        // Quiet-ring batching: nothing due this window (the drained rings
        // were quiet and the engine's next event lies at or past the end),
        // so the window coalesces into the chain as a pure clock advance.
        coalesced_.fetch_add(1, std::memory_order_relaxed);
      }
      // Always run (even when quiet): run_before ends by advancing the
      // clock to the window end, and a deterministic, schedule-derived
      // now() on *every* shard is what the wrapup gate and admission
      // past-checks are built on.
      e.run_before(wend);
      // Monitor before the store: a peer that observes the horizon must find
      // the publish already recorded in the vector-clock model.
      if (monitor_ != nullptr) monitor_->on_horizon_publish(s, wend);
      horizon_ns_[static_cast<std::size_t>(s)].v.store(
          wend.count(), std::memory_order_release);
    }
  }
}

void ShardedEngine::plan_round(Time deadline) noexcept {
  PASCHED_ALLOC_COLD_SCOPE("ShardedEngine::plan_round");
  phase_ ^= 1;
  if (phase_ == 0) return;  // end-of-round barrier: nothing to plan
  // All workers are parked, so wrapups may safely touch any node — but
  // per-pair windows let shard clocks diverge, so a wrapup only runs once
  // every clock has passed its request stamp (otherwise its side effects
  // would be stamped into some lagging shard's pre-completion history and
  // break the execution-mode digest). Deferred wrapups simply wait for the
  // next round: every chained window strictly advances every shard, so the
  // gate opens within a few rounds. They run before the stop checks so
  // completions queued during the final round still execute.
  Time ready = Time::max();
  for (const auto& e : engines_) ready = std::min(ready, e->now());
  for (;;) {
    std::vector<Wrapup> due;
    {
      const std::scoped_lock lk(wrapup_mu_);
      const auto it = std::stable_partition(
          wrapups_.begin(), wrapups_.end(),
          [ready](const Wrapup& w) { return w.stamp > ready; });
      due.assign(std::make_move_iterator(it),
                 std::make_move_iterator(wrapups_.end()));
      wrapups_.erase(it, wrapups_.end());
    }
    if (due.empty()) break;
    for (Wrapup& w : due) w.fn();
  }
  const bool stopping =
      stop_flag_.load(std::memory_order_relaxed) || final_done_;
  if (stopping) {
    // No further rounds will advance the clocks: run any still-deferred
    // wrapups now rather than dropping them (only reachable when a stop
    // raced a completion; the normal path drained everything above).
    for (;;) {
      std::vector<Wrapup> due;
      {
        const std::scoped_lock lk(wrapup_mu_);
        due.swap(wrapups_);
      }
      if (due.empty()) break;
      for (Wrapup& w : due) w.fn();
    }
    round_ = Round::Stop;
    stopped_early_ = stop_flag_.load(std::memory_order_relaxed);
    return;
  }
  // The full lookahead bounds are the *largest* legal window steps; any
  // shorter span is equally conservative (events can only post further
  // into the future). The perturbation seam shrinks every bound toward the
  // 1 ns minimum so the pasched-race fuzzer can vary window phasing
  // without ever breaking the causality guarantee.
  std::int64_t num = 1;
  std::int64_t den = 1;
  if (window_choice_ != nullptr) {
    const std::size_t pick =
        window_choice_->choose(kWindowQuantumBuckets, "shard.window_quantum");
    num = static_cast<std::int64_t>(pick + 1);
    den = static_cast<std::int64_t>(kWindowQuantumBuckets);
  }
  next_t_plain_.resize(next_t_.size());
  for (std::size_t i = 0; i < next_t_.size(); ++i)
    next_t_plain_[i] = next_t_[i].v;
  planner_->plan(next_t_plain_, deadline, num, den, plan_);
  ++rounds_;
  if (plan_.final) {
    round_ = Round::Final;
    final_done_ = true;
    ++final_rounds_;
    ++windows_;
  } else {
    round_ = Round::Window;
    windows_ += static_cast<std::uint64_t>(plan_.length);
  }
  if (monitor_ != nullptr) {
    Time end = deadline;
    if (!plan_.final) {
      end = Time::zero();
      for (int s = 0; s < plan_.shards; ++s)
        end = std::max(end, plan_.end_of(plan_.length, s));
    }
    monitor_->on_plan(end, plan_.final);
  }
}

bool ShardedEngine::run_until(Time deadline, int workers) {
  const int S = partitions();
  const int W = std::clamp(workers, 1, S);
  stop_flag_.store(false, std::memory_order_relaxed);
  poisoned_.store(false, std::memory_order_relaxed);
  freeze_fire_logs_.store(false, std::memory_order_relaxed);
  stopped_early_ = false;
  final_done_ = false;
  phase_ = 0;
  round_ = Round::Window;
  rounds_ = windows_ = final_rounds_ = 0;
  coalesced_.store(0, std::memory_order_relaxed);
  ring_posts_.store(0, std::memory_order_relaxed);
  ring_overflows_.store(0, std::memory_order_relaxed);
  for (auto& h : horizon_ns_) h.v.store(kHorizonUnset, std::memory_order_relaxed);

  std::exception_ptr err;
  std::mutex err_mu;
  {
    auto completion = [this, deadline]() noexcept { plan_round(deadline); };
    util::SeamBarrier bar(window_barrier_site(), W, completion);
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(W));
    for (int w = 0; w < W; ++w) {
      pool.emplace_back([this, w, W, S, deadline, &bar, &err, &err_mu] {
#ifdef __linux__
        if (pin_workers_) {
          // Shard->core pinning, but only when every worker can own a core:
          // pinning an oversubscribed pool just serializes it harder.
          const unsigned hw = std::thread::hardware_concurrency();
          if (hw >= static_cast<unsigned>(W)) {
            cpu_set_t set;
            CPU_ZERO(&set);
            CPU_SET(static_cast<unsigned>(w) % hw, &set);
            (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
          }
        }
#endif
        try {
          for (;;) {
            for (int s = w; s < S; s += W) {
              // Admission mutates the destination shard's engine, so it runs
              // under that shard's domain; the scope ends before the barrier
              // so completion-step wrapups execute at kFreeContext. The
              // round-boundary drain is total (every producer is about to
              // park), so the published next_t covers in-flight posts too.
              const race::ScopedDomain sd(s);
              drain_rings(s, /*plan=*/nullptr, 0);
              next_t_[static_cast<std::size_t>(s)].v =
                  engine_of(s).next_event_time();
            }
            bar.arrive_and_wait();  // completion plans the round
            const Round r = round_;
            if (r == Round::Stop) break;
            if (r == Round::Final) {
              const bool frozen =
                  freeze_fire_logs_.load(std::memory_order_acquire);
              for (int s = w; s < S; s += W) {
                const race::ScopedDomain sd(s);
                if (!frozen) engine_of(s).clear_fire_log();
                if (monitor_ != nullptr) monitor_->on_window_begin(s, deadline);
                engine_of(s).run_until(deadline);
              }
            } else {
              run_chain(w, W, S);
            }
            bar.arrive_and_wait();  // all shards quiesced before next drain
          }
        } catch (...) {
          {
            const std::scoped_lock lk(err_mu);
            if (!err) err = std::current_exception();
          }
          // Release the surviving workers: poisoned_ frees anyone spinning
          // on this worker's horizons, stop_flag_ makes the next plan step
          // exit, and the drop keeps the barrier from waiting on us.
          poisoned_.store(true, std::memory_order_relaxed);
          stop_flag_.store(true, std::memory_order_relaxed);
          bar.arrive_and_drop();
        }
      });
    }
  }  // jthreads join here
  if (err) std::rethrow_exception(err);
  return !stopped_early_;
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->events_processed();
  return total;
}

std::uint64_t ShardedEngine::events_processed_before(Time t) const {
  // The tail (fires at or past t) lives entirely in the last executed
  // round: every earlier round ended at or before that round's start,
  // which is at or before t when t is inside the last round.
  std::uint64_t total = 0;
  for (const auto& e : engines_)
    total += e->events_processed() - e->fires_at_or_after(t);
  return total;
}

std::size_t ShardedEngine::events_pending() const {
  std::size_t total = 0;
  for (const auto& e : engines_) total += e->events_pending();
  return total;
}

void ShardedEngine::drain() {
  for (auto& slot : rings_) {
    PairRing* r = slot.v.load(std::memory_order_acquire);
    if (r == nullptr) continue;
    while (r->ring.front() != nullptr) r->ring.pop();
    const std::scoped_lock lk(r->mu);
    r->overflow.clear();
    r->overflow_n.store(0, std::memory_order_relaxed);
  }
  for (auto& e : engines_) e->drain();
#if PASCHED_VALIDATE_ENABLED
  for (const auto& e : engines_) {
    PASCHED_CHECK_MSG(e->events_pending() == 0,
                      "shard still holds live events after drain()");
    e->check_consistent();
  }
#endif
}

}  // namespace pasched::sim
