#include "sim/shard.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "check/check.hpp"
#include "race/domain.hpp"
#include "sim/choice.hpp"
#include "util/assert.hpp"

namespace pasched::sim {

namespace {

// Ledger site ids for the engine's three serialization seams. Registration
// is idempotent by name and cold, so function-local statics keep the ids
// without ordering constraints against other TUs.
[[nodiscard]] int inbox_mu_site() {
  static const int site =
      util::register_seam_site("Inbox.mu", util::SeamKind::Mutex);
  return site;
}

[[nodiscard]] int wrapup_mu_site() {
  static const int site = util::register_seam_site(
      "ShardedEngine.wrapup_mu_", util::SeamKind::Mutex);
  return site;
}

[[nodiscard]] int window_barrier_site() {
  static const int site = util::register_seam_site(
      "ShardedEngine.window_barrier", util::SeamKind::Barrier);
  return site;
}

}  // namespace

ShardedEngine::ShardedEngine(int nodes, Duration lookahead)
    : lookahead_(lookahead), wrapup_mu_(wrapup_mu_site()) {
  PASCHED_EXPECTS(nodes >= 1);
  PASCHED_EXPECTS_MSG(lookahead > Duration::zero(),
                      "conservative execution requires a positive lookahead");
  // Single-node clusters keep everything (including the hub) on one shard:
  // intra-node latency may be below the cross-node lookahead, and with one
  // node there is nothing to run in parallel anyway.
  const int shards = nodes > 1 ? nodes + 1 : 1;
  hub_ = nodes > 1 ? nodes : 0;
  engines_.reserve(static_cast<std::size_t>(shards));
  inboxes_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    engines_.push_back(std::make_unique<Engine>());
    // Fire logs stay armed for the engine's lifetime; each window clears
    // them, so after a stop they hold exactly the final window's fire times
    // (events_processed_before subtracts that tail).
    engines_.back()->arm_fire_log();
    inboxes_.push_back(std::make_unique<Inbox>(inbox_mu_site()));
  }
  post_seq_.assign(static_cast<std::size_t>(shards),
                   util::CacheAligned<std::uint64_t>{0});
  next_t_.assign(static_cast<std::size_t>(shards),
                 util::CacheAligned<Time>{Time::max()});
}

ShardedEngine::~ShardedEngine() { drain(); }

void ShardedEngine::post(int src_shard, int dst_shard, Time t,
                         Engine::Callback fn) {
  // A component claiming to post from a shard it is not executing on would
  // bypass the whole ownership discipline — catch the spoof at the seam.
  PASCHED_ASSERT_DOMAIN(src_shard, "sim.Router", dst_shard, "post");
  if (src_shard == dst_shard) {
    engine_of(src_shard).schedule_at(t, std::move(fn));
    return;
  }
  Engine& src = engine_of(src_shard);
  PASCHED_CHECK_MSG(t >= src.now() + lookahead_,
                    "cross-shard post violates the guaranteed lookahead");
  CrossNodeEvent ev{t,
                    src.now(),
                    lookahead_,
                    src_shard,
                    post_seq_[static_cast<std::size_t>(src_shard)].v++,
                    std::move(fn)};
  if (monitor_ != nullptr)
    monitor_->on_post(src_shard, dst_shard, t, ev.sent_at, ev.src_seq);
  Inbox& in = *inboxes_[static_cast<std::size_t>(dst_shard)];
  const std::scoped_lock lk(in.mu);
  in.q.push_back(std::move(ev));
}

void ShardedEngine::request_wrapup(Engine::Callback fn) {
  const std::scoped_lock lk(wrapup_mu_);
  wrapups_.push_back(std::move(fn));
}

void ShardedEngine::drain_inbox(int shard) {
  Inbox& in = *inboxes_[static_cast<std::size_t>(shard)];
  std::vector<CrossNodeEvent>& q = in.scratch;
  q.clear();
  {
    const std::scoped_lock lk(in.mu);
    q.swap(in.q);  // the old scratch storage becomes the next fill buffer
  }
  if (q.empty()) return;
  admit_sorted(shard, q);
  q.clear();  // release the delivered callbacks now; keep the capacity
}

PASCHED_HOT void ShardedEngine::admit_sorted(int shard,
                                             std::vector<CrossNodeEvent>& q) {
  // Canonical admission order: posts from different sources are merged by
  // (t, src, seq), so the destination engine's FIFO tie-break sees the same
  // sequence regardless of which worker drained which source first.
  std::sort(q.begin(), q.end(),
            [](const CrossNodeEvent& a, const CrossNodeEvent& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
              return a.src_seq < b.src_seq;
            });
  Engine& e = engine_of(shard);
  for (CrossNodeEvent& ev : q) {
    PASCHED_CHECK_MSG(ev.t >= ev.sent_at + ev.lookahead,
                      "cross-shard event under-stamped its lookahead");
    PASCHED_CHECK_MSG(ev.t >= e.now(),
                      "cross-shard event arrived in the destination's past");
    if (monitor_ != nullptr)
      monitor_->on_admit(shard, ev.src_shard, ev.src_seq, ev.t, e.now());
    e.schedule_at(ev.t, std::move(ev.fn));
  }
}

void ShardedEngine::plan_round(Time deadline) noexcept {
  phase_ ^= 1;
  if (phase_ == 0) return;  // end-of-window barrier: nothing to plan
  // All workers are parked and every shard clock agrees, so wrapups may
  // safely touch any node. They run before the stop checks so completions
  // queued during the final window still execute.
  for (;;) {
    std::vector<Engine::Callback> fns;
    {
      const std::scoped_lock lk(wrapup_mu_);
      fns.swap(wrapups_);
    }
    if (fns.empty()) break;
    for (Engine::Callback& fn : fns) fn();
  }
  if (stop_flag_.load(std::memory_order_relaxed)) {
    round_ = Round::Stop;
    stopped_early_ = true;
    return;
  }
  if (final_done_) {
    round_ = Round::Stop;
    return;
  }
  Time t0 = Time::max();
  for (const auto& slot : next_t_) t0 = std::min(t0, slot.v);
  if (t0 >= deadline || t0 + lookahead_ > deadline) {
    // Every event at t in [t0, deadline] posts cross-shard work no earlier
    // than t0 + lookahead > deadline, so the last window may be inclusive.
    round_ = Round::Final;
    final_done_ = true;
  } else {
    round_ = Round::Window;
    // The full lookahead is the *largest* legal window; any shorter span is
    // equally conservative (events can only post further into the future).
    // The perturbation seam shrinks it toward the 1 ns minimum so the
    // pasched-race fuzzer can vary barrier phasing without ever breaking
    // the causality guarantee.
    Duration quantum = lookahead_;
    if (window_choice_ != nullptr) {
      const std::size_t pick =
          window_choice_->choose(kWindowQuantumBuckets, "shard.window_quantum");
      quantum = lookahead_ * static_cast<std::int64_t>(pick + 1) /
                static_cast<std::int64_t>(kWindowQuantumBuckets);
      if (quantum < Duration::ns(1)) quantum = Duration::ns(1);
    }
    window_end_ = t0 + quantum;
  }
  if (monitor_ != nullptr && round_ != Round::Stop)
    monitor_->on_plan(round_ == Round::Final ? deadline : window_end_,
                      round_ == Round::Final);
}

bool ShardedEngine::run_until(Time deadline, int workers) {
  const int S = partitions();
  const int W = std::clamp(workers, 1, S);
  stop_flag_.store(false, std::memory_order_relaxed);
  stopped_early_ = false;
  final_done_ = false;
  phase_ = 0;
  round_ = Round::Window;

  std::exception_ptr err;
  std::mutex err_mu;
  {
    auto completion = [this, deadline]() noexcept { plan_round(deadline); };
    util::SeamBarrier bar(window_barrier_site(), W, completion);
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(W));
    for (int w = 0; w < W; ++w) {
      pool.emplace_back([this, w, W, S, deadline, &bar, &err, &err_mu] {
        try {
          for (;;) {
            for (int s = w; s < S; s += W) {
              // Admission mutates the destination shard's engine, so it runs
              // under that shard's domain; the scope ends before the barrier
              // so completion-step wrapups execute at kFreeContext.
              const race::ScopedDomain sd(s);
              drain_inbox(s);
              next_t_[static_cast<std::size_t>(s)].v =
                  engine_of(s).next_event_time();
            }
            bar.arrive_and_wait();  // completion plans the round
            const Round r = round_;
            if (r == Round::Stop) break;
            for (int s = w; s < S; s += W) {
              const race::ScopedDomain sd(s);
              engine_of(s).clear_fire_log();
              if (monitor_ != nullptr)
                monitor_->on_window_begin(
                    s, r == Round::Final ? deadline : window_end_);
              if (r == Round::Final) {
                engine_of(s).run_until(deadline);
              } else {
                engine_of(s).run_before(window_end_);
              }
            }
            bar.arrive_and_wait();  // all shards quiesced before next drain
          }
        } catch (...) {
          {
            const std::scoped_lock lk(err_mu);
            if (!err) err = std::current_exception();
          }
          // Release the surviving workers; they observe stop_flag_ at the
          // next plan and exit instead of deadlocking on this thread.
          stop_flag_.store(true, std::memory_order_relaxed);
          bar.arrive_and_drop();
        }
      });
    }
  }  // jthreads join here
  if (err) std::rethrow_exception(err);
  return !stopped_early_;
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->events_processed();
  return total;
}

std::uint64_t ShardedEngine::events_processed_before(Time t) const {
  // The tail (fires at or past t) lives entirely in the last executed
  // window: every earlier window ended at or before that window's start,
  // which is at or before t when t is inside the last window.
  std::uint64_t total = 0;
  for (const auto& e : engines_)
    total += e->events_processed() - e->fires_at_or_after(t);
  return total;
}

std::size_t ShardedEngine::events_pending() const {
  std::size_t total = 0;
  for (const auto& e : engines_) total += e->events_pending();
  return total;
}

void ShardedEngine::drain() {
  for (auto& in : inboxes_) {
    const std::scoped_lock lk(in->mu);
    in->q.clear();
  }
  for (auto& e : engines_) e->drain();
#if PASCHED_VALIDATE_ENABLED
  for (const auto& e : engines_) {
    PASCHED_CHECK_MSG(e->events_pending() == 0,
                      "shard still holds live events after drain()");
    e->check_consistent();
  }
#endif
}

}  // namespace pasched::sim
