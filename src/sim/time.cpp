#include "sim/time.hpp"

#include "util/strings.hpp"

namespace pasched::sim {

std::string Duration::str() const { return util::format_ns(ns_); }

std::string Time::str() const { return "t+" + util::format_ns(ns_); }

}  // namespace pasched::sim
