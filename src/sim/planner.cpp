#include "sim/planner.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "util/assert.hpp"

namespace pasched::sim {

namespace {

// Idle shards publish Time::max(); adding a lookahead to that must saturate,
// not wrap.
[[nodiscard]] Time sat_add(Time t, Duration d) {
  if (t == Time::max()) return t;
  const Time r = t + d;
  return r < t ? Time::max() : r;
}

[[nodiscard]] Duration shrink(Duration full, std::int64_t num,
                              std::int64_t den) {
  Duration q = full * num / den;
  if (q < Duration::ns(1)) q = Duration::ns(1);
  return q;
}

}  // namespace

PairLookahead PairLookahead::uniform(int shards, Duration global) {
  PairLookahead la;
  la.shards = shards;
  la.global = global;
  la.bounds.assign(
      static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards),
      global);
  for (int s = 0; s < shards; ++s)
    la.bounds[static_cast<std::size_t>(s) * static_cast<std::size_t>(shards) +
              static_cast<std::size_t>(s)] = Duration::zero();
  return la;
}

WindowPlanner::WindowPlanner(PairLookahead la, PlannerMode mode, int batch)
    : la_(std::move(la)), mode_(mode), batch_(std::max(batch, 1)) {
  PASCHED_EXPECTS(la_.shards >= 1);
  PASCHED_EXPECTS_MSG(la_.global > Duration::zero(),
                      "conservative planning requires a positive lookahead");
  PASCHED_EXPECTS(la_.bounds.size() ==
                  static_cast<std::size_t>(la_.shards) *
                      static_cast<std::size_t>(la_.shards));
#if PASCHED_VALIDATE_ENABLED
  for (int s = 0; s < la_.shards; ++s)
    for (int d = 0; d < la_.shards; ++d)
      if (s != d)
        PASCHED_CHECK_MSG(la_.at(s, d) >= la_.global,
                          "pair lookahead below the global floor — the "
                          "certificate's matrix-minimum invariant is broken");
#endif
}

void WindowPlanner::plan(const std::vector<Time>& next_t, Time deadline,
                         std::int64_t quantum_num, std::int64_t quantum_den,
                         RoundPlan& out) const {
  const int S = la_.shards;
  PASCHED_EXPECTS(next_t.size() == static_cast<std::size_t>(S));
  out.shards = S;
  out.final = false;
  out.length = 0;

  Time t0 = Time::max();
  for (const Time t : next_t) t0 = std::min(t0, t);
  // Final-window gate, identical to the legacy planner: once no full global
  // window fits below the deadline, every event left in [t0, deadline] can
  // only generate cross-shard work past the deadline, so one inclusive
  // window finishes the run.
  if (t0 >= deadline || sat_add(t0, la_.global) > deadline) {
    out.final = true;
    return;
  }

  if (mode_ == PlannerMode::Global || S == 1) {
    // Legacy schedule: one window for everyone at t0 + quantum. The final
    // gate above already guaranteed t0 + global <= deadline and the quantum
    // never exceeds the global bound, so no clamping is needed.
    const Duration q = shrink(la_.global, quantum_num, quantum_den);
    out.length = 1;
    out.ends.assign(static_cast<std::size_t>(S), t0 + q);
    return;
  }

  // Effective (possibly fuzz-shrunk) pair bounds. Shrinking claims *less*
  // lookahead than guaranteed, which is always conservative; the engine's
  // ring-drain caps keep using the full bounds the events were stamped with.
  std::vector<Duration> eff(la_.bounds.size());
  for (std::size_t i = 0; i < eff.size(); ++i)
    eff[i] = la_.bounds[i] > Duration::zero()
                 ? shrink(la_.bounds[i], quantum_num, quantum_den)
                 : Duration::zero();
  const auto eff_at = [&](int src, int dst) {
    return eff[static_cast<std::size_t>(src) * static_cast<std::size_t>(S) +
               static_cast<std::size_t>(dst)];
  };

  // Null-message fixpoint: the earliest instant each shard could execute
  // anything, counting work forwarded transitively through other shards.
  // Values only ever decrease and are bounded below by t0 + 1ns, so the
  // sweep converges in at most S passes (each pass settles one more shard
  // of the shortest-path tree).
  std::vector<Time> horizon(next_t);
  for (int pass = 0; pass < S; ++pass) {
    bool changed = false;
    for (int s = 0; s < S; ++s) {
      Time e = horizon[static_cast<std::size_t>(s)];
      for (int p = 0; p < S; ++p) {
        if (p == s) continue;
        e = std::min(e, sat_add(horizon[static_cast<std::size_t>(p)],
                                eff_at(p, s)));
      }
      if (e < horizon[static_cast<std::size_t>(s)]) {
        horizon[static_cast<std::size_t>(s)] = e;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Chain up to `batch` windows: each next end is the earliest any incoming
  // neighbor could deliver past its previous end. Rows are pointwise
  // nondecreasing, every entry clamps at the deadline, and W(1)_s >= t0 +
  // 1ns guarantees the round makes progress.
  out.ends.resize(static_cast<std::size_t>(batch_) *
                  static_cast<std::size_t>(S));
  std::vector<Time> prev = horizon;  // W(0) = E
  for (int j = 1; j <= batch_; ++j) {
    bool moved = false;
    for (int s = 0; s < S; ++s) {
      Time w = Time::max();
      for (int p = 0; p < S; ++p) {
        if (p == s) continue;
        w = std::min(
            w, sat_add(prev[static_cast<std::size_t>(p)], eff_at(p, s)));
      }
      w = std::min(w, deadline);
      out.ends[static_cast<std::size_t>(j - 1) * static_cast<std::size_t>(S) +
               static_cast<std::size_t>(s)] = w;
      if (w > prev[static_cast<std::size_t>(s)]) moved = true;
    }
    // A row identical to its predecessor means every shard is pinned at the
    // deadline — further windows would be no-ops, so stop the chain.
    if (j > 1 && !moved) break;
    out.length = j;
    for (int s = 0; s < S; ++s)
      prev[static_cast<std::size_t>(s)] = out.end_of(j, s);
  }
}

}  // namespace pasched::sim
