#include "sim/choice.hpp"

#include "util/assert.hpp"

namespace pasched::sim {

std::size_t FifoTieBreak::pick(const std::vector<TieCandidate>& ties) {
  PASCHED_EXPECTS(!ties.empty());
  return 0;
}

std::size_t LifoTieBreak::pick(const std::vector<TieCandidate>& ties) {
  PASCHED_EXPECTS(!ties.empty());
  return ties.size() - 1;
}

std::size_t RandomTieBreak::pick(const std::vector<TieCandidate>& ties) {
  PASCHED_EXPECTS(!ties.empty());
  return static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(ties.size()) - 1));
}

std::size_t SourceTieBreak::pick(const std::vector<TieCandidate>& ties) {
  PASCHED_EXPECTS(src_ != nullptr && !ties.empty());
  return src_->choose(ties.size(), "engine.tiebreak");
}

}  // namespace pasched::sim
