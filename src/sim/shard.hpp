// Per-node event shards with conservative-window parallel execution.
//
// Every cluster node owns one Engine (priority queue + clock); one extra
// "hub" shard owns cluster-global hardware (the switch's combine unit).
// Cross-shard events go through post(), which stamps send time and the
// guaranteed lookahead and drops them into the destination shard's inbox.
//
// Execution advances in conservative windows (Chandy/Misra/Bryant style):
// with every shard quiesced at time W and L = the minimum cross-node
// latency, any event a shard fires at t < T'+L can only generate cross-
// shard work at t+L >= T'+L — so all shards may execute [T', T'+L) in
// parallel without ever receiving an event in their past. The window plan
// runs in the barrier's completion step; worker count does not change which
// events fire when, so --parallel=1 and --parallel=N are bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/aligned.hpp"
#include "util/hotpath.hpp"
#include "util/seam.hpp"

namespace pasched::sim {

/// A cross-shard event in flight: the delivery time plus the stamps the
/// conservative executor validates (send time and the lookahead promised at
/// post time — `t >= sent_at + lookahead` is the causality contract).
struct CrossNodeEvent {
  Time t;
  Time sent_at;
  Duration lookahead;
  int src_shard = 0;
  std::uint64_t src_seq = 0;
  Engine::Callback fn;
};

/// Observer of the cross-shard seams — the hooks the race/determinism
/// auditor (race::Monitor) hangs its vector-clock checker on. All methods
/// must be thread-safe under the sharded engine's execution model:
/// on_post runs on the source shard's worker, on_admit on the destination
/// shard's worker, on_window_begin on the owning shard's worker, and
/// on_plan in the barrier completion step (every worker parked). When no
/// monitor is installed the engine pays one pointer test per seam.
class ShardMonitor {
 public:
  virtual ~ShardMonitor() = default;
  /// A cross-shard post left `src_shard` (its clock at `sent_at`) for
  /// delivery at `t` on `dst_shard`; `src_seq` is the per-source sequence
  /// that identifies the message at admission.
  virtual void on_post(int src_shard, int dst_shard, Time t, Time sent_at,
                       std::uint64_t src_seq) = 0;
  /// The destination drained the message into its engine; `dst_now` is the
  /// destination clock at admission.
  virtual void on_admit(int dst_shard, int src_shard, std::uint64_t src_seq,
                        Time t, Time dst_now) = 0;
  /// `shard`'s worker is about to execute a window ending at `window_end`
  /// (the deadline for the final, inclusive window).
  virtual void on_window_begin(int shard, Time window_end) = 0;
  /// The barrier completion step planned the next round: every shard is
  /// quiesced, so cross-shard happens-before is total here.
  virtual void on_plan(Time window_end, bool final_window) = 0;
};

class ShardedEngine final : public Router {
 public:
  /// One shard per node plus (for multi-node clusters) a hub shard.
  /// `lookahead` must be positive: it is the guaranteed minimum latency of
  /// any cross-shard interaction (net::guaranteed_lookahead derives it from
  /// the fabric config).
  ShardedEngine(int nodes, Duration lookahead);
  ~ShardedEngine() override;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Router --------------------------------------------------------------------
  [[nodiscard]] int partitions() const noexcept override {
    return static_cast<int>(engines_.size());
  }
  [[nodiscard]] int shard_of_node(int node) const noexcept override {
    return node;
  }
  [[nodiscard]] int hub_shard() const noexcept override { return hub_; }
  [[nodiscard]] Duration lookahead() const noexcept override {
    return lookahead_;
  }
  [[nodiscard]] Engine& engine_of(int shard) override {
    return *engines_[static_cast<std::size_t>(shard)];
  }
  void post(int src_shard, int dst_shard, Time t,
            Engine::Callback fn) override;
  void request_wrapup(Engine::Callback fn) override;
  void stop_all() override { stop_flag_.store(true, std::memory_order_relaxed); }

  // Execution -----------------------------------------------------------------
  /// Runs every shard to `deadline` with `workers` threads (clamped to
  /// [1, partitions()]). Returns false if stopped early via stop_all().
  bool run_until(Time deadline, int workers);

  [[nodiscard]] std::uint64_t events_processed() const;
  /// Events fired with timestamp strictly below `t`. Valid after run_until()
  /// returned with `t` inside the last executed window (the completion-time
  /// case: the stopping wrapup runs at the plan barrier right after the
  /// window that fired the completing event, so every fire at or past `t`
  /// still sits in the per-engine fire logs of that window). This is the
  /// counter that matches the classic engine's events_processed_before_now()
  /// — partitioned runs drain the rest of their final lookahead window past
  /// the completion event, so raw counts legitimately differ across modes
  /// while this one must not.
  [[nodiscard]] std::uint64_t events_processed_before(Time t) const;
  [[nodiscard]] std::size_t events_pending() const;

  /// Cancels all pending events and discards undelivered cross-shard posts.
  /// Under PASCHED_VALIDATE, verifies every shard ends empty and
  /// structurally consistent. Called by the destructor; callable earlier.
  void drain();

  // Auditing ------------------------------------------------------------------
  /// Installs a cross-shard seam observer (non-owning; nullptr to clear).
  /// Set while no workers run.
  void set_monitor(ShardMonitor* m) noexcept { monitor_ = m; }
  [[nodiscard]] ShardMonitor* monitor() const noexcept { return monitor_; }

  /// Window-perturbation choice point: when a source is installed, each
  /// planned window's span is drawn from it ("shard.window_quantum",
  /// kWindowQuantumBuckets evenly spaced fractions of the lookahead)
  /// instead of always spanning the full lookahead. Shrinking the window is
  /// always conservative — the lookahead guarantee is unchanged — so every
  /// perturbed run must stay bit-identical to the unperturbed one; the
  /// pasched-race fuzzer drives this seam to flush out orderings that
  /// accidentally depend on barrier phasing. Non-owning; nullptr restores
  /// full-lookahead windows.
  void set_window_choice(ChoiceSource* cs) noexcept { window_choice_ = cs; }
  [[nodiscard]] ChoiceSource* window_choice() const noexcept {
    return window_choice_;
  }
  static constexpr std::size_t kWindowQuantumBuckets = 8;

 private:
  enum class Round : std::uint8_t { Window, Final, Stop };

  struct Inbox {
    /// Instrumented serialization seam: every instance shares the ledger
    /// site "Inbox.mu" (per-shard rows would fragment the ranking).
    util::SeamMutex mu;
    std::vector<CrossNodeEvent> q;
    /// Reused drain buffer, touched only by the worker that owns this
    /// shard's drain this round. Its capacity ping-pongs with q via swap,
    /// so steady-state drains allocate nothing on either side.
    std::vector<CrossNodeEvent> scratch;

    explicit Inbox(int site) : mu(site) {}
  };

  void worker_loop(int worker, int nworkers, Time deadline);
  /// Cold half of admission: takes the inbox lock, swaps the queue into
  /// the shard's scratch buffer, and hands it to admit_sorted(). Runs once
  /// per shard per window — the lock never sits on the per-event path.
  void drain_inbox(int shard);
  /// Hot half of admission: canonical (t, src, seq) ordering plus per-event
  /// delivery into the destination engine. Lock-free by construction.
  PASCHED_HOT void admit_sorted(int shard, std::vector<CrossNodeEvent>& q);
  void plan_round(Time deadline) noexcept;

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  // Per-shard slots written by distinct domains every window: one cache
  // line each, or the sharded hot path false-shares its own bookkeeping
  // (the PSL503 layout rule guards this).
  std::vector<util::CacheAligned<std::uint64_t>> post_seq_;  // owner-written
  std::vector<util::CacheAligned<Time>> next_t_;  // published pre-barrier
  Duration lookahead_;
  int hub_ = 0;

  // Window-plan state: written only in the barrier completion step (all
  // workers parked), read by workers after the barrier — the barrier itself
  // is the synchronization.
  Round round_ = Round::Window;
  Time window_end_{};
  bool final_done_ = false;
  int phase_ = 0;
  bool stopped_early_ = false;

  alignas(util::kCacheLineBytes) std::atomic<bool> stop_flag_{false};
  util::SeamMutex wrapup_mu_;
  std::vector<Engine::Callback> wrapups_;
  ShardMonitor* monitor_ = nullptr;
  ChoiceSource* window_choice_ = nullptr;
};

}  // namespace pasched::sim
