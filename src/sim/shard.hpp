// Per-node event shards with conservative-window parallel execution.
//
// Every cluster node owns one Engine (priority queue + clock); one extra
// "hub" shard owns cluster-global hardware (the switch's combine unit).
// Cross-shard events go through post(), which stamps send time and the
// per-pair guaranteed lookahead and pushes them into the (source,
// destination) pair's bounded SPSC ring.
//
// Execution advances in conservative windows (Chandy/Misra/Bryant style)
// planned per *sync round* by the WindowPlanner (sim/planner.hpp): each
// round, every shard publishes its next event time, the round barrier's
// completion step computes a deterministic chain of up to `batch` per-shard
// windows from the per-pair lookahead matrix, and workers execute the chain
// with neighbor-horizon waits only — each shard spins on its peers'
// published atomic horizon clocks, drains the due prefix of each inbound
// ring, and runs its own window. The global barrier is paid once per round
// (plus once at the end), not once per window; wrapups and stop requests
// are honored at round boundaries, where every worker is parked.
//
// The plan is a pure function of the round's published inputs and the ring
// drains are capped by schedule-derived bounds, so which events fire in
// which order never depends on thread timing: --parallel=1 and
// --parallel=N stay bit-identical, and both match the legacy
// PlannerMode::Global schedule under the audit gate's digest.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/planner.hpp"
#include "sim/time.hpp"
#include "util/aligned.hpp"
#include "util/hotpath.hpp"
#include "util/seam.hpp"
#include "util/spsc_ring.hpp"

namespace pasched::sim {

/// A cross-shard event in flight: the delivery time plus the stamps the
/// conservative executor validates (send time and the pair lookahead
/// promised at post time — `t >= sent_at + lookahead` is the causality
/// contract).
struct CrossNodeEvent {
  Time t;
  Time sent_at;
  Duration lookahead;
  int src_shard = 0;
  std::uint64_t src_seq = 0;
  Engine::Callback fn;
};

/// Observer of the cross-shard seams — the hooks the race/determinism
/// auditor (race::Monitor) hangs its vector-clock checker on. All methods
/// must be thread-safe under the sharded engine's execution model:
/// on_post runs on the source shard's worker, on_admit on the destination
/// shard's worker, on_window_begin / on_horizon_publish / on_horizon_wait
/// on the owning (respectively waiting) shard's worker, and on_plan in the
/// round barrier's completion step (every worker parked). When no monitor
/// is installed the engine pays one pointer test per seam.
class ShardMonitor {
 public:
  virtual ~ShardMonitor() = default;
  /// A cross-shard post left `src_shard` (its clock at `sent_at`) for
  /// delivery at `t` on `dst_shard`; `src_seq` is the per-source sequence
  /// that identifies the message at admission.
  virtual void on_post(int src_shard, int dst_shard, Time t, Time sent_at,
                       std::uint64_t src_seq) = 0;
  /// The destination drained the message into its engine; `dst_now` is the
  /// destination clock at admission.
  virtual void on_admit(int dst_shard, int src_shard, std::uint64_t src_seq,
                        Time t, Time dst_now) = 0;
  /// `shard`'s worker is about to execute a window ending at `window_end`
  /// (the deadline for the final, inclusive window).
  virtual void on_window_begin(int shard, Time window_end) = 0;
  /// The round barrier's completion step planned the next round (ending at
  /// `window_end`): every shard is quiesced, so cross-shard happens-before
  /// is total here. Fires once per *round*, not per chained window — the
  /// scale profiler's n_windows counts these.
  virtual void on_plan(Time window_end, bool final_window) = 0;
  /// `shard` finished a chained window and is about to publish `horizon`
  /// with release ordering — the synchronization point peers acquire
  /// through on_horizon_wait. Called *before* the store so a waiter that
  /// observes the horizon finds the publish already recorded. Default
  /// no-op: the hooks postdate the original interface and most monitors
  /// only need the post/admit edges.
  virtual void on_horizon_publish(int /*shard*/, Time /*horizon*/) {}
  /// `dst_shard`'s worker observed `src_shard`'s horizon clock at or past
  /// the value its next window needs (an acquire load pairing with the
  /// publish above — a real happens-before edge even when no spin was
  /// necessary).
  virtual void on_horizon_wait(int /*dst_shard*/, int /*src_shard*/) {}
};

class ShardedEngine final : public Router {
 public:
  /// One shard per node plus (for multi-node clusters) a hub shard.
  /// `lookahead` must be positive: it is the guaranteed minimum latency of
  /// any cross-shard interaction (net::guaranteed_lookahead derives it from
  /// the fabric config). Until set_pair_lookahead() installs the per-pair
  /// matrix, every pair is assumed to sit at this global floor.
  ShardedEngine(int nodes, Duration lookahead);
  ~ShardedEngine() override;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Router --------------------------------------------------------------------
  [[nodiscard]] int partitions() const noexcept override {
    return static_cast<int>(engines_.size());
  }
  [[nodiscard]] int shard_of_node(int node) const noexcept override {
    return node;
  }
  [[nodiscard]] int hub_shard() const noexcept override { return hub_; }
  [[nodiscard]] Duration lookahead() const noexcept override {
    return lookahead_;
  }
  [[nodiscard]] Engine& engine_of(int shard) override {
    return *engines_[static_cast<std::size_t>(shard)];
  }
  void post(int src_shard, int dst_shard, Time t,
            Engine::Callback fn) override;
  void request_wrapup(Engine::Callback fn) override;
  void stop_all() override { stop_flag_.store(true, std::memory_order_relaxed); }

  // Planner -------------------------------------------------------------------
  /// Installs the per-pair guaranteed-lookahead matrix (the runtime side of
  /// pasched-scale's certificate; core::Simulation derives it from
  /// net::guaranteed_lookahead_between). `la.shards` must equal
  /// partitions() and `la.global` the constructor lookahead. Set while no
  /// workers run.
  void set_pair_lookahead(PairLookahead la);
  /// Selects the window planner. Global reproduces the legacy one-window-
  /// per-round schedule (the audit baseline and the CI scalability smoke's
  /// denominator); PerPair chains up to `batch` windows per round.
  void set_planner(PlannerMode mode, int batch = kDefaultWindowBatch);
  [[nodiscard]] PlannerMode planner_mode() const noexcept {
    return planner_->mode();
  }
  [[nodiscard]] int window_batch() const noexcept { return planner_->batch(); }
  /// The installed pair bound (what post() stamps events with).
  [[nodiscard]] Duration pair_lookahead(int src, int dst) const {
    return planner_->pairs().at(src, dst);
  }
  /// Execution counters of the last (or running) run_until.
  [[nodiscard]] PlannerStats planner_stats() const;

  // Execution -----------------------------------------------------------------
  /// Runs every shard to `deadline` with `workers` threads (clamped to
  /// [1, partitions()]). Returns false if stopped early via stop_all().
  bool run_until(Time deadline, int workers);

  /// Pin worker w to core w when the host has at least `workers` cores
  /// (default on; a no-op on oversubscribed boxes, where pinning everyone
  /// to the same cores would only hurt).
  void set_pin_workers(bool pin) noexcept { pin_workers_ = pin; }
  /// Test hook: per-pair SPSC ring capacity (rounded up to a power of two).
  /// Call before the first post — live rings are not resized.
  void set_ring_capacity(std::size_t cap) noexcept { ring_capacity_ = cap; }

  [[nodiscard]] std::uint64_t events_processed() const;
  /// Events fired with timestamp strictly below `t`. Valid after run_until()
  /// returned with `t` inside or after the round that first requested a
  /// wrapup (the completion-time case): fire logs are cleared per round
  /// until a wrapup request freezes them, so every fire at or past `t`
  /// still sits in them even when the wrapup — and the stop it triggers —
  /// is deferred for a few rounds while lagging shard clocks catch up.
  /// This is the counter that matches the classic engine's
  /// events_processed_before_now() — partitioned runs drain the rest of
  /// their final round past the completion event, so raw counts
  /// legitimately differ across modes while this one must not.
  [[nodiscard]] std::uint64_t events_processed_before(Time t) const;
  [[nodiscard]] std::size_t events_pending() const;

  /// Cancels all pending events and discards undelivered cross-shard posts.
  /// Under PASCHED_VALIDATE, verifies every shard ends empty and
  /// structurally consistent. Called by the destructor; callable earlier.
  void drain();

  // Auditing ------------------------------------------------------------------
  /// Installs a cross-shard seam observer (non-owning; nullptr to clear).
  /// Set while no workers run.
  void set_monitor(ShardMonitor* m) noexcept { monitor_ = m; }
  [[nodiscard]] ShardMonitor* monitor() const noexcept { return monitor_; }

  /// Window-perturbation choice point: when a source is installed, each
  /// round's window spans are drawn from it ("shard.window_quantum",
  /// kWindowQuantumBuckets evenly spaced fractions of each lookahead bound)
  /// instead of always spanning the full bound. Shrinking the window is
  /// always conservative — the lookahead guarantee is unchanged — so every
  /// perturbed run must stay bit-identical to the unperturbed one; the
  /// pasched-race fuzzer drives this seam to flush out orderings that
  /// accidentally depend on window phasing. Non-owning; nullptr restores
  /// full-lookahead windows.
  void set_window_choice(ChoiceSource* cs) noexcept { window_choice_ = cs; }
  [[nodiscard]] ChoiceSource* window_choice() const noexcept {
    return window_choice_;
  }
  static constexpr std::size_t kWindowQuantumBuckets = 8;

 private:
  enum class Round : std::uint8_t { Window, Final, Stop };

  /// One (source, destination) shard-pair channel: the lock-free SPSC ring
  /// plus a mutex-guarded overflow lane for the rare full-ring case.
  /// Blocking on a full ring would deadlock the window protocol (the
  /// consumer only drains after the producer's horizon advances past the
  /// window doing the pushing), so overload spills instead. Every instance
  /// shares the ledger site "Ring.overflow" (per-pair rows would fragment
  /// the ranking).
  struct PairRing {
    util::SpscRing<CrossNodeEvent> ring;
    util::SeamMutex mu;
    std::vector<CrossNodeEvent> overflow;  // guarded by mu; sent_at-sorted
    /// Mirror of overflow.size(), updated under mu: lets the consumer skip
    /// the lock entirely on the (overwhelmingly common) empty case.
    std::atomic<std::size_t> overflow_n{0};

    PairRing(std::size_t cap, int site) : ring(cap), mu(site) {}
  };

  /// Per-shard event arena: the admission scratch buffer every ring drain
  /// merges into. Owned by the worker running the shard; capacity persists
  /// across rounds so steady-state drains allocate nothing.
  struct ShardArena {
    std::vector<CrossNodeEvent> admit;
  };

  [[nodiscard]] PairRing& ring_for(int src, int dst);
  [[nodiscard]] PairRing* ring_ptr(int src, int dst) const noexcept {
    return rings_[static_cast<std::size_t>(src) * engines_.size() +
                  static_cast<std::size_t>(dst)]
        .v.load(std::memory_order_acquire);
  }

  /// Drains every inbound ring of `shard` into its engine. With `plan`
  /// null, drains everything (round boundary: all producers are parked at
  /// the barrier). Otherwise drains each pair's due prefix for chained
  /// window `j`: entries with sent_at < W(j)_dst - L_pair, a cap the
  /// neighbor-horizon wait has made complete and whose leftovers provably
  /// belong to future windows (DESIGN.md §7).
  void drain_rings(int shard, const RoundPlan* plan, int j);
  /// Hot half of admission: canonical (t, src, seq) ordering plus per-event
  /// delivery into the destination engine. Lock-free by construction.
  PASCHED_HOT void admit_sorted(int shard, std::vector<CrossNodeEvent>& q);
  /// Spins until every peer's horizon clock reaches its chained window
  /// j-1 end (acquire; instrumented as the "ShardedEngine.horizon_wait"
  /// ledger seam). Returns early when the run is poisoned.
  void wait_horizons(int shard, int j);
  void run_chain(int worker, int nworkers, int S);
  void plan_round(Time deadline) noexcept;

  std::vector<std::unique_ptr<Engine>> engines_;
  /// Row-major (src, dst) pair rings, allocated lazily on first post —
  /// S^2 slots but only communicating pairs materialize. The atomic
  /// pointer publish (CAS by the producer) is what lets the consumer
  /// discover new rings without a lock.
  std::vector<util::CacheAligned<std::atomic<PairRing*>>> rings_;
  std::vector<util::CacheAligned<ShardArena>> arenas_;
  // Per-shard slots written by distinct domains every window: one cache
  // line each, or the sharded hot path false-shares its own bookkeeping
  // (the PSL503 layout rule guards this).
  std::vector<util::CacheAligned<std::uint64_t>> post_seq_;  // owner-written
  std::vector<util::CacheAligned<Time>> next_t_;  // published pre-barrier
  /// Per-shard horizon clocks (ns since epoch): the owner stores its
  /// chained window end with release after running the window; peers
  /// acquire it before draining the corresponding ring prefix.
  std::vector<util::CacheAligned<std::atomic<std::int64_t>>> horizon_ns_;
  Duration lookahead_;
  int hub_ = 0;
  std::size_t ring_capacity_ = 256;

  std::unique_ptr<WindowPlanner> planner_;

  // Round-plan state: written only in the barrier completion step (all
  // workers parked), read by workers after the barrier — the barrier itself
  // is the synchronization.
  Round round_ = Round::Window;
  RoundPlan plan_;
  // srclint-ok(PSL503): completion-step scratch, only ever touched with
  // every worker parked at the round barrier — no concurrent writers exist.
  std::vector<Time> next_t_plain_;
  bool final_done_ = false;
  int phase_ = 0;
  bool stopped_early_ = false;

  // Execution counters. rounds/windows/final_rounds are completion-step
  // only; the rest are worker-incremented atomics.
  std::uint64_t rounds_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t final_rounds_ = 0;
  alignas(util::kCacheLineBytes) std::atomic<std::uint64_t> coalesced_{0};
  alignas(util::kCacheLineBytes) std::atomic<std::uint64_t> ring_posts_{0};
  alignas(util::kCacheLineBytes) std::atomic<std::uint64_t> ring_overflows_{0};

  alignas(util::kCacheLineBytes) std::atomic<bool> stop_flag_{false};
  /// Set when a worker dies mid-round: every horizon spin checks it so the
  /// survivors fall through to the round barrier instead of waiting forever
  /// on a horizon that will never advance.
  alignas(util::kCacheLineBytes) std::atomic<bool> poisoned_{false};
  util::SeamMutex wrapup_mu_;
  /// A deferred wrapup: the callback plus the requesting shard's clock at
  /// request time. The completion step only runs it once *every* shard's
  /// clock has passed the stamp — the per-pair replacement for the global
  /// window's "all clocks agree at the barrier" invariant, and what keeps
  /// wrapup side effects (priority flips, daemon shutdown wakes) out of the
  /// digest-visible history below the completion time.
  struct Wrapup {
    Time stamp;
    Engine::Callback fn;
  };
  std::vector<Wrapup> wrapups_;
  /// Set when a wrapup is requested: from the next round on, per-round
  /// fire-log clearing stops, so events_processed_before() still sees every
  /// fire at or past the completion time even when the wrapup's execution
  /// is deferred across rounds.
  alignas(util::kCacheLineBytes) std::atomic<bool> freeze_fire_logs_{false};
  ShardMonitor* monitor_ = nullptr;
  ChoiceSource* window_choice_ = nullptr;
  bool pin_workers_ = true;
};

}  // namespace pasched::sim
