// Pluggable nondeterminism: concrete TieBreak strategies for the engine's
// same-timestamp seam, and the generic ChoiceSource interface that model
// components (daemon arrival phases, kernel tick stagger) query for bounded
// decisions. The model checker (src/mc/) drives both from one recorded
// schedule; everything else uses the trivial strategies below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace pasched::sim {

/// A source of bounded nondeterministic decisions. choose(n, tag) returns a
/// value in [0, n); `tag` names the choice point (e.g. "engine.tiebreak",
/// "daemon.arrival_phase") so recorded schedules are self-describing.
class ChoiceSource {
 public:
  virtual ~ChoiceSource() = default;
  virtual std::size_t choose(std::size_t n, const char* tag) = 0;
};

/// The historical default, as an explicit strategy: first-scheduled fires
/// first. Installing it is behaviorally identical to no strategy at all.
class FifoTieBreak final : public TieBreak {
 public:
  std::size_t pick(const std::vector<TieCandidate>& ties) override;
  [[nodiscard]] const char* name() const noexcept override { return "fifo"; }
};

/// Adversarial mirror image: last-scheduled fires first. Cheap way to shake
/// out order dependence without a full exploration.
class LifoTieBreak final : public TieBreak {
 public:
  std::size_t pick(const std::vector<TieCandidate>& ties) override;
  [[nodiscard]] const char* name() const noexcept override { return "lifo"; }
};

/// Seeded uniform choice among the tied events — a randomized stress mode
/// that stays bit-reproducible for a given seed.
class RandomTieBreak final : public TieBreak {
 public:
  explicit RandomTieBreak(std::uint64_t seed) : rng_(seed) {}
  std::size_t pick(const std::vector<TieCandidate>& ties) override;
  [[nodiscard]] const char* name() const noexcept override { return "random"; }

 private:
  Rng rng_;
};

/// Adapts a ChoiceSource into a TieBreak so one decision stream can drive
/// every choice point in a run. Non-owning.
class SourceTieBreak final : public TieBreak {
 public:
  explicit SourceTieBreak(ChoiceSource* src) : src_(src) {}
  std::size_t pick(const std::vector<TieCandidate>& ties) override;
  [[nodiscard]] const char* name() const noexcept override { return "source"; }

 private:
  ChoiceSource* src_;
};

}  // namespace pasched::sim
