#include "sim/engine.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "util/assert.hpp"

namespace pasched::sim {

std::uint32_t Engine::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    PASCHED_CHECK_MSG(!slots_[idx].armed && !slots_[idx].fn,
                      "free-list slot still armed or holding a callback");
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slots_[idx];
  s.fn.reset();
  ++s.gen;  // invalidate any outstanding EventIds / heap entries
  s.armed = false;
  free_.push_back(idx);
}

EventId Engine::schedule_at(Time t, Callback fn) {
  PASCHED_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push_back(HeapItem{t, seq_++, idx, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
  ++live_;
  return EventId{idx, s.gen};
}

void Engine::cancel(EventId id) noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || !s.armed) return;  // already fired / cancelled
  --live_;
  release_slot(id.slot);
}

bool Engine::pending(EventId id) const noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return false;
  const Slot& s = slots_[id.slot];
  return s.gen == id.gen && s.armed;
}

bool Engine::fire_next() {
  while (!heap_.empty()) {
    const HeapItem top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();
    Slot& s = slots_[top.slot];
    if (s.gen != top.gen || !s.armed) continue;  // stale (cancelled) entry
    PASCHED_ASSERT(top.t >= now_);
    // Causality: pops must come off the heap in strictly increasing (t, seq)
    // order — a regression here reorders same-timestamp events and silently
    // breaks the engine's FIFO tie-break guarantee.
    PASCHED_CHECK_MSG(
        top.t > last_fired_t_ ||
            (top.t == last_fired_t_ && top.seq > last_fired_seq_),
        "event fired out of (t, seq) order");
    PASCHED_CHECK_MSG(static_cast<bool>(s.fn),
                      "armed slot has no callback to fire");
    last_fired_t_ = top.t;
    last_fired_seq_ = top.seq;
    now_ = top.t;
    // Move the callback out before releasing so the handler can freely
    // schedule/cancel (including reusing this very slot).
    Callback fn = std::move(s.fn);
    --live_;
    release_slot(top.slot);
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && fire_next()) {
  }
}

bool Engine::run_until(Time deadline) {
  PASCHED_EXPECTS(deadline >= now_);
  stopped_ = false;
  while (!stopped_) {
    // Peek: find the next live event time without firing.
    bool fired = false;
    while (!heap_.empty()) {
      const HeapItem& top = heap_.front();
      const Slot& s = slots_[top.slot];
      if (s.gen != top.gen || !s.armed) {
        std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
        heap_.pop_back();
        continue;
      }
      if (top.t > deadline) {
        now_ = deadline;
        return true;
      }
      fired = fire_next();
      break;
    }
    if (!fired) {
      if (heap_.empty()) {
        now_ = deadline;
        return true;
      }
    }
  }
  return false;
}

void Engine::check_consistent() const {
  // Every armed slot holds a callback; live_ counts exactly the armed slots.
  std::size_t armed = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.armed) {
      ++armed;
      PASCHED_CHECK_ALWAYS_MSG(static_cast<bool>(s.fn),
                               "armed slot " + std::to_string(i) +
                                   " has no callback");
    }
  }
  PASCHED_CHECK_ALWAYS_MSG(armed == live_,
                           "live_ disagrees with armed slot count");

  // Each armed slot is referenced by exactly one current-generation heap
  // entry; every other heap entry is stale (superseded generation).
  std::vector<std::uint32_t> refs(slots_.size(), 0);
  for (const HeapItem& h : heap_) {
    PASCHED_CHECK_ALWAYS_MSG(h.slot < slots_.size(),
                             "heap entry references an out-of-range slot");
    if (slots_[h.slot].gen == h.gen) {
      PASCHED_CHECK_ALWAYS_MSG(slots_[h.slot].armed,
                               "current-generation heap entry on a disarmed slot");
      ++refs[h.slot];
    }
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::uint32_t expected = slots_[i].armed ? 1 : 0;
    PASCHED_CHECK_ALWAYS_MSG(
        refs[i] == expected,
        "slot " + std::to_string(i) + " has " + std::to_string(refs[i]) +
            " live heap entries, expected " + std::to_string(expected));
  }

  // Free-list entries are disarmed, in range, and unique.
  std::vector<bool> freed(slots_.size(), false);
  for (const std::uint32_t idx : free_) {
    PASCHED_CHECK_ALWAYS_MSG(idx < slots_.size(),
                             "free list references an out-of-range slot");
    PASCHED_CHECK_ALWAYS_MSG(!slots_[idx].armed, "free list holds an armed slot");
    PASCHED_CHECK_ALWAYS_MSG(!freed[idx], "slot appears twice on the free list");
    freed[idx] = true;
  }
}

}  // namespace pasched::sim
