#include "sim/engine.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "sim/random.hpp"
#include "util/allocgate.hpp"
#include "util/assert.hpp"
#include "util/hotpath.hpp"

namespace pasched::sim {

void Engine::grow_slab() {
  // Sanctioned amortized growth: every buffer the hot path pushes into is
  // (re)sized here, inside a cold allocation region, so the per-event code
  // never reallocates. free_/heap_/scratch capacities track the slot count
  // — one heap entry and one free-list entry per slot is the worst case.
  PASCHED_ALLOC_COLD_REGION();
  const std::size_t old = slots_.size();
  const std::size_t add = old == 0 ? 64 : old;  // one chunk, then doubling
  slots_.resize(old + add);
  free_.reserve(slots_.size());
  heap_.reserve(slots_.size());
  tied_scratch_.reserve(slots_.size());
  cands_scratch_.reserve(slots_.size());
  // New indices go on the free list high-to-low so back() hands out the
  // lowest index first — the same slot-assignment order the old
  // emplace_back-per-event scheme produced.
  for (std::size_t i = slots_.size(); i-- > old;)
    free_.push_back(static_cast<std::uint32_t>(i));
}

void Engine::grow_fire_log() {
  PASCHED_ALLOC_COLD_REGION();
  fire_log_.reserve(fire_log_.capacity() == 0 ? 1024
                                              : fire_log_.capacity() * 2);
}

PASCHED_HOT void Engine::heap_place(std::size_t pos) noexcept {
  slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
}

PASCHED_HOT void Engine::sift_up(std::size_t pos) noexcept {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!heap_before(heap_[pos], heap_[parent])) break;
    std::swap(heap_[pos], heap_[parent]);
    heap_place(pos);
    pos = parent;
  }
  heap_place(pos);
}

PASCHED_HOT void Engine::sift_down(std::size_t pos) noexcept {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = pos;
    const std::size_t l = 2 * pos + 1;
    const std::size_t r = 2 * pos + 2;
    if (l < n && heap_before(heap_[l], heap_[best])) best = l;
    if (r < n && heap_before(heap_[r], heap_[best])) best = r;
    if (best == pos) break;
    std::swap(heap_[pos], heap_[best]);
    heap_place(pos);
    pos = best;
  }
  heap_place(pos);
}

PASCHED_HOT void Engine::heap_push(const HeapItem& item) noexcept {
  heap_.push_back(item);  // never reallocates: capacity from grow_slab()
  sift_up(heap_.size() - 1);
}

PASCHED_HOT void Engine::heap_remove_at(std::size_t pos) noexcept {
  PASCHED_ASSERT(pos < heap_.size());
  slots_[heap_[pos].slot].heap_pos = kNoHeapPos;
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    heap_.pop_back();
    heap_place(pos);
    // The replacement can violate the heap property in at most one
    // direction; the other call is a no-op.
    sift_down(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

PASCHED_HOT std::uint32_t Engine::acquire_slot() {
  if (free_.empty()) grow_slab();
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  PASCHED_CHECK_MSG(!slots_[idx].armed && !slots_[idx].fn,
                    "free-list slot still armed or holding a callback");
  return idx;
}

PASCHED_HOT void Engine::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slots_[idx];
  s.fn.reset();
  ++s.gen;  // invalidate any outstanding EventIds
  s.armed = false;
  s.held = false;
  s.heap_pos = kNoHeapPos;
  free_.push_back(idx);  // never reallocates: capacity from grow_slab()
}

PASCHED_HOT EventId Engine::schedule_at(Time t, Callback fn) {
  PASCHED_ALLOC_HOT_SCOPE("Engine::schedule_at");
  PASCHED_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  s.armed = true;
  heap_push(HeapItem{t, seq_++, idx, s.gen});
  ++live_;
  return EventId{idx, s.gen};
}

PASCHED_HOT void Engine::cancel(EventId id) {
  PASCHED_ALLOC_HOT_SCOPE("Engine::cancel");
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || !s.armed) return;  // already fired / cancelled
  // A held slot is mid-TieBreak::pick(): its heap entry is already popped,
  // so a cancel here would be silently undone when the candidate is
  // re-queued (or worse, fired). Surface the bug instead of losing it.
  PASCHED_CHECK_MSG(!s.held,
                    "cancel() of an event held by TieBreak::pick() — the "
                    "cancellation would be lost");
  if (s.held) return;  // validation off: refuse to corrupt the heap
  // Lazy at the slot layer (the generation bump already invalidates the
  // EventId), eager at the heap layer: the position backlink makes the
  // removal a targeted O(log n) fix-up, so no stale entries accumulate and
  // no compaction pass exists.
  heap_remove_at(s.heap_pos);
  --live_;
  release_slot(id.slot);
}

bool Engine::pending(EventId id) const noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return false;
  const Slot& s = slots_[id.slot];
  return s.gen == id.gen && s.armed;
}

PASCHED_HOT void Engine::fire_item(const HeapItem& item) {
  Slot& s = slots_[item.slot];
  PASCHED_CHECK_MSG(static_cast<bool>(s.fn),
                    "armed slot has no callback to fire");
  last_fired_t_ = item.t;
  last_fired_seq_ = item.seq;
  advance_clock(item.t);
  if (fire_log_armed_) {
    if (fire_log_.size() == fire_log_.capacity()) grow_fire_log();
    fire_log_.push_back(item.t);
  }
  // Move the callback out before releasing so the handler can freely
  // schedule/cancel (including reusing this very slot).
  Callback fn = std::move(s.fn);
  --live_;
  release_slot(item.slot);
  ++processed_;
  {
    // Handler code is the workload's, not the engine's: its allocations
    // are charged to the dispatch row, never against an engine claim.
    PASCHED_ALLOC_DISPATCH_SCOPE("Engine.callback");
    fn();
  }
}

PASCHED_HOT bool Engine::fire_next() {
  while (!heap_.empty()) {
    const HeapItem top = heap_.front();
    {
      // Defensive only: indexed removal leaves no stale entries. Kept so a
      // regression degrades to the legacy skip-on-pop behavior instead of
      // firing a dead slot.
      const Slot& s = slots_[top.slot];
      if (s.gen != top.gen || !s.armed) {
        heap_remove_at(0);
        continue;
      }
    }
    PASCHED_ASSERT(top.t >= now_);
    if (tie_break_ != nullptr) return fire_tied();
    heap_remove_at(0);
    // Causality: pops must come off the heap in strictly increasing (t, seq)
    // order — a regression here reorders same-timestamp events and silently
    // breaks the engine's FIFO tie-break guarantee. (With a TieBreak
    // installed same-t reordering is intentional; fire_tied() checks only
    // time monotonicity.)
    PASCHED_CHECK_MSG(
        top.t > last_fired_t_ ||
            (top.t == last_fired_t_ && top.seq > last_fired_seq_),
        "event fired out of (t, seq) order");
    fire_item(top);
    return true;
  }
  return false;
}

PASCHED_HOT bool Engine::fire_tied() {
  // Precondition: heap top is live. Drain every live entry tied at the
  // minimum timestamp; indexed pops deliver them in increasing seq order.
  const Time t0 = heap_.front().t;
  tied_scratch_.clear();
  while (!heap_.empty() && heap_.front().t == t0) {
    const HeapItem top = heap_.front();
    heap_remove_at(0);
    const Slot& s = slots_[top.slot];
    if (s.gen != top.gen || !s.armed) continue;  // defensive, see fire_next
    tied_scratch_.push_back(top);  // capacity from grow_slab()
  }
  PASCHED_ASSERT(!tied_scratch_.empty());
  std::size_t choice = 0;
  if (tied_scratch_.size() > 1) {
    cands_scratch_.clear();
    for (const HeapItem& h : tied_scratch_) {
      slots_[h.slot].held = true;
      cands_scratch_.push_back(TieCandidate{EventId{h.slot, h.gen}, h.seq});
    }
    choice = tie_break_->pick(cands_scratch_);
    PASCHED_CHECK_ALWAYS_MSG(choice < tied_scratch_.size(),
                             "TieBreak::pick returned an out-of-range index");
    for (const HeapItem& h : tied_scratch_) slots_[h.slot].held = false;
    // Re-queue the losers *before* firing so the handler observes a
    // consistent pending set (it may cancel or reschedule them). A loser
    // that died while held (validation off) must not re-enter the heap.
    for (std::size_t i = 0; i < tied_scratch_.size(); ++i) {
      if (i == choice) continue;
      const Slot& ls = slots_[tied_scratch_[i].slot];
      if (ls.gen != tied_scratch_[i].gen || !ls.armed) continue;
      heap_push(tied_scratch_[i]);
    }
  }
  const HeapItem& chosen = tied_scratch_[choice];
  {
    // Defensive (reachable only with validation off and a strategy that
    // cancelled a held candidate): treat a dead chosen entry as stale.
    const Slot& s = slots_[chosen.slot];
    if (s.gen != chosen.gen || !s.armed) return true;
  }
  PASCHED_CHECK_MSG(chosen.t >= last_fired_t_,
                    "event fired with a receding timestamp");
  fire_item(chosen);
  return true;
}

void Engine::run() {
  PASCHED_ALLOC_HOT_SCOPE("Engine::run");
  stopped_ = false;
  while (!stopped_ && fire_next()) {
  }
}

bool Engine::run_until(Time deadline) {
  PASCHED_ALLOC_HOT_SCOPE("Engine::run_until");
  PASCHED_EXPECTS(deadline >= now_);
  stopped_ = false;
  while (!stopped_) {
    // Peek: find the next live event time without firing.
    bool fired = false;
    while (!heap_.empty()) {
      const HeapItem& top = heap_.front();
      const Slot& s = slots_[top.slot];
      if (s.gen != top.gen || !s.armed) {  // defensive, see fire_next
        heap_remove_at(0);
        continue;
      }
      if (top.t > deadline) {
        advance_clock(deadline);
        return true;
      }
      fired = fire_next();
      break;
    }
    if (!fired) {
      if (heap_.empty()) {
        advance_clock(deadline);
        return true;
      }
    }
  }
  return false;
}

PASCHED_HOT void Engine::run_before(Time end) {
  PASCHED_ALLOC_HOT_SCOPE("Engine::run_before");
  PASCHED_EXPECTS(end >= now_);
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.gen != top.gen || !s.armed) {  // defensive, see fire_next
      heap_remove_at(0);
      continue;
    }
    if (top.t >= end) break;
    fire_next();
  }
  advance_clock(end);
}

std::uint64_t Engine::fires_at_or_after(Time t) const noexcept {
  const auto it = std::lower_bound(fire_log_.begin(), fire_log_.end(), t);
  return static_cast<std::uint64_t>(fire_log_.end() - it);
}

void Engine::drain() {
  heap_.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].armed) {
      --live_;
      release_slot(i);
    }
  }
  PASCHED_ASSERT(live_ == 0);
}

PASCHED_HOT Time Engine::next_event_time() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.gen == top.gen && s.armed) return top.t;
    heap_remove_at(0);  // defensive, see fire_next
  }
  return Time::max();
}

std::uint64_t Engine::pending_hash() const {
  std::vector<std::int64_t> times;
  times.reserve(live_);
  for (const HeapItem& h : heap_) {
    const Slot& s = slots_[h.slot];
    if (s.gen == h.gen && s.armed) times.push_back(h.t.count());
  }
  std::sort(times.begin(), times.end());
  std::uint64_t state = 0x9e3779b97f4a7c15ULL ^ times.size();
  std::uint64_t hash = splitmix64(state);
  for (const std::int64_t t : times) {
    state ^= static_cast<std::uint64_t>(t);
    hash = hash * 1099511628211ULL + splitmix64(state);
  }
  return hash;
}

void Engine::check_consistent() const {
  // Every armed slot holds a callback; live_ counts exactly the armed slots.
  // No slot may be held outside an in-progress TieBreak::pick(), and
  // check_consistent() is only valid between events.
  std::size_t armed = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.armed) {
      ++armed;
      PASCHED_CHECK_ALWAYS_MSG(static_cast<bool>(s.fn),
                               "armed slot " + std::to_string(i) +
                                   " has no callback");
    }
    PASCHED_CHECK_ALWAYS_MSG(!s.held,
                             "slot " + std::to_string(i) +
                                 " still held outside TieBreak::pick()");
  }
  PASCHED_CHECK_ALWAYS_MSG(armed == live_,
                           "live_ disagrees with armed slot count");

  // The indexed heap holds exactly one current-generation entry per armed
  // slot, position backlinks agree, the (t, seq) heap property holds, and —
  // since cancel() removes eagerly — no stale entries exist at all:
  // queue_footprint() == events_pending() between events.
  PASCHED_CHECK_ALWAYS_MSG(heap_.size() == live_,
                           "queue footprint disagrees with pending events "
                           "(stale entries survived indexed removal)");
  std::vector<std::uint32_t> refs(slots_.size(), 0);
  for (std::size_t p = 0; p < heap_.size(); ++p) {
    const HeapItem& h = heap_[p];
    PASCHED_CHECK_ALWAYS_MSG(h.slot < slots_.size(),
                             "heap entry references an out-of-range slot");
    const Slot& s = slots_[h.slot];
    PASCHED_CHECK_ALWAYS_MSG(s.gen == h.gen && s.armed,
                             "stale heap entry at position " +
                                 std::to_string(p));
    PASCHED_CHECK_ALWAYS_MSG(
        s.heap_pos == p,
        "slot " + std::to_string(h.slot) + " heap_pos backlink says " +
            std::to_string(s.heap_pos) + ", entry is at " +
            std::to_string(p));
    if (p > 0)
      PASCHED_CHECK_ALWAYS_MSG(
          !heap_before(heap_[p], heap_[(p - 1) / 2]),
          "heap property violated at position " + std::to_string(p));
    ++refs[h.slot];
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::uint32_t expected = slots_[i].armed ? 1 : 0;
    PASCHED_CHECK_ALWAYS_MSG(
        refs[i] == expected,
        "slot " + std::to_string(i) + " has " + std::to_string(refs[i]) +
            " live heap entries, expected " + std::to_string(expected));
    if (!slots_[i].armed)
      PASCHED_CHECK_ALWAYS_MSG(slots_[i].heap_pos == kNoHeapPos,
                               "disarmed slot " + std::to_string(i) +
                                   " still carries a heap position");
  }

  // Free-list entries are disarmed, in range, and unique.
  std::vector<bool> freed(slots_.size(), false);
  for (const std::uint32_t idx : free_) {
    PASCHED_CHECK_ALWAYS_MSG(idx < slots_.size(),
                             "free list references an out-of-range slot");
    PASCHED_CHECK_ALWAYS_MSG(!slots_[idx].armed, "free list holds an armed slot");
    PASCHED_CHECK_ALWAYS_MSG(!freed[idx], "slot appears twice on the free list");
    freed[idx] = true;
  }
}

}  // namespace pasched::sim
