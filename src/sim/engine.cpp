#include "sim/engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pasched::sim {

std::uint32_t Engine::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slots_[idx];
  s.fn.reset();
  ++s.gen;  // invalidate any outstanding EventIds / heap entries
  s.armed = false;
  free_.push_back(idx);
}

EventId Engine::schedule_at(Time t, Callback fn) {
  PASCHED_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push_back(HeapItem{t, seq_++, idx, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
  ++live_;
  return EventId{idx, s.gen};
}

void Engine::cancel(EventId id) noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || !s.armed) return;  // already fired / cancelled
  --live_;
  release_slot(id.slot);
}

bool Engine::pending(EventId id) const noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return false;
  const Slot& s = slots_[id.slot];
  return s.gen == id.gen && s.armed;
}

bool Engine::fire_next() {
  while (!heap_.empty()) {
    const HeapItem top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();
    Slot& s = slots_[top.slot];
    if (s.gen != top.gen || !s.armed) continue;  // stale (cancelled) entry
    PASCHED_ASSERT(top.t >= now_);
    now_ = top.t;
    // Move the callback out before releasing so the handler can freely
    // schedule/cancel (including reusing this very slot).
    Callback fn = std::move(s.fn);
    --live_;
    release_slot(top.slot);
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && fire_next()) {
  }
}

bool Engine::run_until(Time deadline) {
  PASCHED_EXPECTS(deadline >= now_);
  stopped_ = false;
  while (!stopped_) {
    // Peek: find the next live event time without firing.
    bool fired = false;
    while (!heap_.empty()) {
      const HeapItem& top = heap_.front();
      const Slot& s = slots_[top.slot];
      if (s.gen != top.gen || !s.armed) {
        std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
        heap_.pop_back();
        continue;
      }
      if (top.t > deadline) {
        now_ = deadline;
        return true;
      }
      fired = fire_next();
      break;
    }
    if (!fired) {
      if (heap_.empty()) {
        now_ = deadline;
        return true;
      }
    }
  }
  return false;
}

}  // namespace pasched::sim
