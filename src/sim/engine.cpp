#include "sim/engine.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "util/hotpath.hpp"
#include "sim/random.hpp"
#include "util/assert.hpp"

namespace pasched::sim {

PASCHED_HOT std::uint32_t Engine::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    PASCHED_CHECK_MSG(!slots_[idx].armed && !slots_[idx].fn,
                      "free-list slot still armed or holding a callback");
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

PASCHED_HOT void Engine::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slots_[idx];
  s.fn.reset();
  ++s.gen;  // invalidate any outstanding EventIds / heap entries
  s.armed = false;
  s.held = false;
  free_.push_back(idx);
}

PASCHED_HOT EventId Engine::schedule_at(Time t, Callback fn) {
  PASCHED_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push_back(HeapItem{t, seq_++, idx, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
  ++live_;
  return EventId{idx, s.gen};
}

PASCHED_HOT void Engine::cancel(EventId id) {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || !s.armed) return;  // already fired / cancelled
  // A held slot is mid-TieBreak::pick(): its heap entry is already popped,
  // so a cancel here would be silently undone when the candidate is
  // re-queued (or worse, fired). Surface the bug instead of losing it.
  PASCHED_CHECK_MSG(!s.held,
                    "cancel() of an event held by TieBreak::pick() — the "
                    "cancellation would be lost");
  --live_;
  release_slot(id.slot);
  // Cancellation leaves a stale heap entry behind (lazily pruned on pop).
  // Under cancel-heavy workloads — every tick cancels and re-arms the
  // running burst — stale entries used to accumulate without bound. Compact
  // once they outnumber live entries 2:1.
  if (heap_.size() > 64 && heap_.size() > 2 * live_) compact_heap();
}

void Engine::compact_heap() {
  std::erase_if(heap_, [this](const HeapItem& h) {
    const Slot& s = slots_[h.slot];
    return s.gen != h.gen || !s.armed;
  });
  std::make_heap(heap_.begin(), heap_.end(), HeapLater{});
}

bool Engine::pending(EventId id) const noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return false;
  const Slot& s = slots_[id.slot];
  return s.gen == id.gen && s.armed;
}

PASCHED_HOT void Engine::fire_item(const HeapItem& item) {
  Slot& s = slots_[item.slot];
  PASCHED_CHECK_MSG(static_cast<bool>(s.fn),
                    "armed slot has no callback to fire");
  last_fired_t_ = item.t;
  last_fired_seq_ = item.seq;
  advance_clock(item.t);
  if (fire_log_armed_) fire_log_.push_back(item.t);
  // Move the callback out before releasing so the handler can freely
  // schedule/cancel (including reusing this very slot).
  Callback fn = std::move(s.fn);
  --live_;
  release_slot(item.slot);
  ++processed_;
  fn();
}

PASCHED_HOT bool Engine::fire_next() {
  while (!heap_.empty()) {
    const HeapItem top = heap_.front();
    {
      const Slot& s = slots_[top.slot];
      if (s.gen != top.gen || !s.armed) {  // stale (cancelled) entry
        std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
        heap_.pop_back();
        continue;
      }
    }
    PASCHED_ASSERT(top.t >= now_);
    if (tie_break_ != nullptr) return fire_tied();
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();
    // Causality: pops must come off the heap in strictly increasing (t, seq)
    // order — a regression here reorders same-timestamp events and silently
    // breaks the engine's FIFO tie-break guarantee. (With a TieBreak
    // installed same-t reordering is intentional; fire_tied() checks only
    // time monotonicity.)
    PASCHED_CHECK_MSG(
        top.t > last_fired_t_ ||
            (top.t == last_fired_t_ && top.seq > last_fired_seq_),
        "event fired out of (t, seq) order");
    fire_item(top);
    return true;
  }
  return false;
}

bool Engine::fire_tied() {
  // Precondition: heap top is live. Drain every live entry tied at the
  // minimum timestamp; heap pops deliver them in increasing seq order.
  const Time t0 = heap_.front().t;
  std::vector<HeapItem> tied;
  while (!heap_.empty() && heap_.front().t == t0) {
    const HeapItem top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();
    const Slot& s = slots_[top.slot];
    if (s.gen != top.gen || !s.armed) continue;
    tied.push_back(top);
  }
  PASCHED_ASSERT(!tied.empty());
  std::size_t choice = 0;
  if (tied.size() > 1) {
    std::vector<TieCandidate> cands;
    cands.reserve(tied.size());
    for (const HeapItem& h : tied) {
      slots_[h.slot].held = true;
      cands.push_back(TieCandidate{EventId{h.slot, h.gen}, h.seq});
    }
    choice = tie_break_->pick(cands);
    PASCHED_CHECK_ALWAYS_MSG(choice < tied.size(),
                             "TieBreak::pick returned an out-of-range index");
    for (const HeapItem& h : tied) slots_[h.slot].held = false;
    // Re-queue the losers *before* firing so the handler observes a
    // consistent pending set (it may cancel or reschedule them).
    for (std::size_t i = 0; i < tied.size(); ++i) {
      if (i == choice) continue;
      heap_.push_back(tied[i]);
      std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
    }
  }
  const HeapItem& chosen = tied[choice];
  {
    // Defensive (reachable only with validation off and a strategy that
    // cancelled a held candidate): treat a dead chosen entry as stale.
    const Slot& s = slots_[chosen.slot];
    if (s.gen != chosen.gen || !s.armed) return true;
  }
  PASCHED_CHECK_MSG(chosen.t >= last_fired_t_,
                    "event fired with a receding timestamp");
  fire_item(chosen);
  return true;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && fire_next()) {
  }
}

bool Engine::run_until(Time deadline) {
  PASCHED_EXPECTS(deadline >= now_);
  stopped_ = false;
  while (!stopped_) {
    // Peek: find the next live event time without firing.
    bool fired = false;
    while (!heap_.empty()) {
      const HeapItem& top = heap_.front();
      const Slot& s = slots_[top.slot];
      if (s.gen != top.gen || !s.armed) {
        std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
        heap_.pop_back();
        continue;
      }
      if (top.t > deadline) {
        advance_clock(deadline);
        return true;
      }
      fired = fire_next();
      break;
    }
    if (!fired) {
      if (heap_.empty()) {
        advance_clock(deadline);
        return true;
      }
    }
  }
  return false;
}

PASCHED_HOT void Engine::run_before(Time end) {
  PASCHED_EXPECTS(end >= now_);
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.gen != top.gen || !s.armed) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
      heap_.pop_back();
      continue;
    }
    if (top.t >= end) break;
    fire_next();
  }
  advance_clock(end);
}

std::uint64_t Engine::fires_at_or_after(Time t) const noexcept {
  const auto it = std::lower_bound(fire_log_.begin(), fire_log_.end(), t);
  return static_cast<std::uint64_t>(fire_log_.end() - it);
}

void Engine::drain() {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].armed) {
      --live_;
      release_slot(i);
    }
  }
  heap_.clear();
  PASCHED_ASSERT(live_ == 0);
}

PASCHED_HOT Time Engine::next_event_time() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.gen == top.gen && s.armed) return top.t;
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();
  }
  return Time::max();
}

std::uint64_t Engine::pending_hash() const {
  std::vector<std::int64_t> times;
  times.reserve(live_);
  for (const HeapItem& h : heap_) {
    const Slot& s = slots_[h.slot];
    if (s.gen == h.gen && s.armed) times.push_back(h.t.count());
  }
  std::sort(times.begin(), times.end());
  std::uint64_t state = 0x9e3779b97f4a7c15ULL ^ times.size();
  std::uint64_t hash = splitmix64(state);
  for (const std::int64_t t : times) {
    state ^= static_cast<std::uint64_t>(t);
    hash = hash * 1099511628211ULL + splitmix64(state);
  }
  return hash;
}

void Engine::check_consistent() const {
  // Every armed slot holds a callback; live_ counts exactly the armed slots.
  // No slot may be held outside an in-progress TieBreak::pick(), and
  // check_consistent() is only valid between events.
  std::size_t armed = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.armed) {
      ++armed;
      PASCHED_CHECK_ALWAYS_MSG(static_cast<bool>(s.fn),
                               "armed slot " + std::to_string(i) +
                                   " has no callback");
    }
    PASCHED_CHECK_ALWAYS_MSG(!s.held,
                             "slot " + std::to_string(i) +
                                 " still held outside TieBreak::pick()");
  }
  PASCHED_CHECK_ALWAYS_MSG(armed == live_,
                           "live_ disagrees with armed slot count");

  // Each armed slot is referenced by exactly one current-generation heap
  // entry; every other heap entry is stale (superseded generation).
  std::vector<std::uint32_t> refs(slots_.size(), 0);
  for (const HeapItem& h : heap_) {
    PASCHED_CHECK_ALWAYS_MSG(h.slot < slots_.size(),
                             "heap entry references an out-of-range slot");
    if (slots_[h.slot].gen == h.gen) {
      PASCHED_CHECK_ALWAYS_MSG(slots_[h.slot].armed,
                               "current-generation heap entry on a disarmed slot");
      ++refs[h.slot];
    }
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::uint32_t expected = slots_[i].armed ? 1 : 0;
    PASCHED_CHECK_ALWAYS_MSG(
        refs[i] == expected,
        "slot " + std::to_string(i) + " has " + std::to_string(refs[i]) +
            " live heap entries, expected " + std::to_string(expected));
  }

  // Free-list entries are disarmed, in range, and unique.
  std::vector<bool> freed(slots_.size(), false);
  for (const std::uint32_t idx : free_) {
    PASCHED_CHECK_ALWAYS_MSG(idx < slots_.size(),
                             "free list references an out-of-range slot");
    PASCHED_CHECK_ALWAYS_MSG(!slots_[idx].armed, "free list holds an armed slot");
    PASCHED_CHECK_ALWAYS_MSG(!freed[idx], "slot appears twice on the free list");
    freed[idx] = true;
  }
}

}  // namespace pasched::sim
