// InlineCallback: a move-only callable wrapper with fixed inline storage and
// no heap allocation. The event queue processes tens of millions of events
// per benchmark run; std::function's allocation behavior is not guaranteed,
// so we pin the capture size at compile time instead.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace pasched::sim {

template <std::size_t Capacity = 48>
class InlineCallback {
 public:
  InlineCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for InlineCallback storage");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-movable");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    relocate_ = [](void* dst, void* src) {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    };
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  void operator()() {
    PASCHED_EXPECTS_MSG(invoke_ != nullptr, "invoking empty InlineCallback");
    invoke_(buf_);
  }

  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    destroy_ = nullptr;
    relocate_ = nullptr;
  }

 private:
  void move_from(InlineCallback& other) noexcept {
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    relocate_ = other.relocate_;
    if (relocate_ != nullptr) relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
    other.relocate_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
};

}  // namespace pasched::sim
