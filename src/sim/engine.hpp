// The discrete-event simulation engine: a time-ordered event queue with
// stable FIFO tie-breaking and O(1) cancellation. Everything in pasched —
// kernel ticks, IPIs, CPU burst completions, network deliveries, daemon
// timers — is an event scheduled here.
//
// Same-timestamp ordering is a *choice point*: with no strategy installed
// the engine keeps its historical FIFO guarantee (scheduling order), but a
// TieBreak strategy may be plugged in to pick any of the tied events — the
// seam the model checker (src/mc/) explores exhaustively.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"
#include "util/hotpath.hpp"

namespace pasched::sim {

/// Handle to a scheduled event. Cancelling an already-fired or already-
/// cancelled event is a harmless no-op (generation counters detect it).
struct EventId {
  std::uint32_t slot = UINT32_MAX;
  std::uint32_t gen = 0;
  [[nodiscard]] bool valid() const noexcept { return slot != UINT32_MAX; }
  friend bool operator==(EventId a, EventId b) = default;
};

/// One of the events tied at the current minimum timestamp. `seq` is the
/// engine-assigned scheduling order, so candidates arrive FIFO-sorted and
/// picking index 0 always reproduces the default behavior.
struct PASCHED_ARENA TieCandidate {
  EventId id;
  std::uint64_t seq = 0;
};
static_assert(std::is_trivially_destructible_v<TieCandidate> &&
                  std::is_trivially_copyable_v<TieCandidate>,
              "TieCandidate lives in a reused scratch buffer: the "
              "PASCHED_ARENA contract (PSL604) requires trivial "
              "destruction and memcpy relocation");

/// Strategy for ordering same-timestamp events. pick() receives the tied
/// candidates in scheduling (seq) order and returns the index to fire next;
/// the rest are re-queued and re-offered (minus the fired one) until the
/// timestamp is drained. Candidates are *held* while pick() runs: cancelling
/// one from inside pick() is rejected under PASCHED_VALIDATE.
class TieBreak {
 public:
  virtual ~TieBreak() = default;
  /// Returns an index into `ties` (size >= 2). Must be in range.
  virtual std::size_t pick(const std::vector<TieCandidate>& ties) = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

class ChoiceSource;  // sim/choice.hpp — generic bounded-decision source

class Engine {
 public:
  using Callback = InlineCallback<48>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()). Events with the
  /// same timestamp fire in scheduling order unless a TieBreak is installed.
  EventId schedule_at(Time t, Callback fn);
  PASCHED_HOT EventId schedule_after(Duration d, Callback fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels the event if it has not fired yet; no-op otherwise. Under
  /// PASCHED_VALIDATE, cancelling a slot that is currently held by a
  /// TieBreak::pick() in progress throws check::CheckError — by then the
  /// event is already off the heap and cancellation would be silently lost.
  void cancel(EventId id);

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const noexcept;

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// (unless stopped earlier). Returns false if stopped before the deadline.
  bool run_until(Time deadline);

  /// Runs events with timestamp strictly < `end`; afterwards now() == end.
  /// This is the conservative-window primitive of the sharded engine: a
  /// window [T', T'+L) is half-open so an event landing exactly on the edge
  /// belongs to the *next* window. Ignores stop() — windows are interrupted
  /// at barrier granularity by the shard pool, never mid-window.
  void run_before(Time end);

  /// Cancels every pending event and releases its slot. Used by the sharded
  /// engine's teardown so shutdown never leaks armed heap entries; after
  /// drain(), events_pending() == 0 and check_consistent() holds.
  void drain();

  /// Heap entries currently allocated. The heap is position-indexed (each
  /// armed slot tracks where its entry sits), so cancel() removes its entry
  /// in O(log n) and no stale entries exist: this equals events_pending()
  /// whenever no TieBreak::pick() is in flight — the regression test for
  /// the cancel() leak asserts exactly that.
  [[nodiscard]] std::size_t queue_footprint() const noexcept {
    return heap_.size();
  }

  /// Fires exactly one event. Returns false if the queue is empty.
  PASCHED_HOT bool step() { return fire_next(); }

  /// Timestamp of the next live event, or Time::max() if none. Prunes stale
  /// (cancelled) heap entries as a side effect; does not advance now().
  [[nodiscard]] Time next_event_time();

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Installs a same-timestamp ordering strategy (non-owning; must outlive
  /// its use). nullptr restores the default FIFO fast path.
  void set_tie_break(TieBreak* tb) noexcept { tie_break_ = tb; }
  [[nodiscard]] TieBreak* tie_break() const noexcept { return tie_break_; }

  /// A generic decision source for model-level choice points (daemon arrival
  /// phases, tick stagger). The engine only stores the pointer — components
  /// that own nondeterminism query it at setup time. Non-owning.
  void set_choice_source(ChoiceSource* cs) noexcept { choice_source_ = cs; }
  [[nodiscard]] ChoiceSource* choice_source() const noexcept {
    return choice_source_;
  }

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  /// Events fired with timestamp strictly below now(). When the engine stops
  /// at a completion event (now() == T_c), this is the mode-invariant
  /// "events before completion" counter: same-timestamp stragglers and the
  /// completing event itself are excluded, exactly like the t < T_c
  /// truncation the canonical digest applies.
  [[nodiscard]] std::uint64_t events_processed_before_now() const noexcept {
    return processed_before_now_;
  }
  [[nodiscard]] std::size_t events_pending() const noexcept { return live_; }

  /// Fire-time log: when armed, every fired event appends its timestamp
  /// (monotone by construction). The sharded engine arms it and clears it at
  /// each window begin, so after a stop the log holds exactly the final
  /// window's fire times — the tail a completion-normalized event count must
  /// subtract (see ShardedEngine::events_processed_before).
  void arm_fire_log() noexcept { fire_log_armed_ = true; }
  void clear_fire_log() noexcept { fire_log_.clear(); }
  /// Logged fires with timestamp >= t (binary search; the log is sorted).
  [[nodiscard]] std::uint64_t fires_at_or_after(Time t) const noexcept;

  /// Scheduling-order sequence number of the most recently fired event.
  /// The model checker uses it to correlate engine pops with trace windows.
  [[nodiscard]] std::uint64_t last_fired_seq() const noexcept {
    return last_fired_seq_;
  }

  /// Order-insensitive hash of the pending-event timestamps (splitmix64
  /// chained over the sorted multiset of live times). Deliberately excludes
  /// seq counters — two histories that converged to the same pending set
  /// hash equal, which is what visited-set pruning needs.
  [[nodiscard]] std::uint64_t pending_hash() const;

  /// Full O(n) structural audit of the slot table / heap / free list; throws
  /// check::CheckError on the first inconsistency. Always compiled (calling
  /// it is opt-in); the per-event checks are gated by PASCHED_VALIDATE.
  void check_consistent() const;

 private:
  /// Sentinel heap position for a slot with no heap entry (free, held by a
  /// TieBreak::pick(), or mid-fire).
  static constexpr std::uint32_t kNoHeapPos = UINT32_MAX;

  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
    // Index of this slot's entry in heap_ while armed and not held — the
    // backlink that makes cancel() an O(log n) targeted removal instead of
    // a tombstone that compaction must sweep later.
    std::uint32_t heap_pos = kNoHeapPos;
    bool armed = false;
    // True while the slot sits in a TieBreak::pick() candidate list: off
    // the heap but not yet fired or re-queued. Cancellation must not touch
    // it (see cancel()). Always present so layout is validation-agnostic.
    bool held = false;
  };
  struct PASCHED_ARENA HeapItem {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static_assert(std::is_trivially_destructible_v<HeapItem> &&
                    std::is_trivially_copyable_v<HeapItem>,
                "HeapItem lives in the engine's slab-backed heap: the "
                "PASCHED_ARENA contract (PSL604) requires trivial "
                "destruction and memcpy relocation");
  /// True when `a` must fire before `b`: the (t, seq) min-heap order.
  static bool heap_before(const HeapItem& a, const HeapItem& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) noexcept;
  // All slot-table/heap/free-list/scratch growth funnels through here so
  // the hot path's push_backs never reallocate: after grow_slab(),
  // free_ and heap_ have capacity for every slot. Cold by contract
  // (PASCHED_ALLOC_COLD_REGION).
  void grow_slab();
  void grow_fire_log();
  // Indexed-heap primitives: every move re-anchors Slot::heap_pos.
  void heap_place(std::size_t pos) noexcept;
  void sift_up(std::size_t pos) noexcept;
  void sift_down(std::size_t pos) noexcept;
  void heap_push(const HeapItem& item) noexcept;
  void heap_remove_at(std::size_t pos) noexcept;
  bool fire_next();
  bool fire_tied();
  void fire_item(const HeapItem& item);
  // Every clock advance goes through here so processed_before_now_ stays
  // exact: when now() moves strictly forward, everything processed so far
  // fired strictly in the past.
  void advance_clock(Time t) noexcept {
    if (t > now_) {
      processed_before_now_ = processed_;
      now_ = t;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapItem> heap_;
  // Reused scratch for fire_tied(): cleared per call, capacity persists so
  // steady-state tie resolution is allocation-free (grown via grow_slab /
  // reserve_cold only).
  std::vector<HeapItem> tied_scratch_;
  std::vector<TieCandidate> cands_scratch_;
  Time now_ = Time::zero();
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t processed_before_now_ = 0;
  std::vector<Time> fire_log_;
  bool fire_log_armed_ = false;
  std::size_t live_ = 0;
  bool stopped_ = false;
  TieBreak* tie_break_ = nullptr;
  ChoiceSource* choice_source_ = nullptr;
  // Last fired (t, seq), for the PASCHED_VALIDATE causality check. Always
  // present so the class layout does not depend on the validation flag.
  // The sentinel start time compares below any schedulable time.
  Time last_fired_t_ = Time::from_ns(INT64_MIN);
  std::uint64_t last_fired_seq_ = 0;
};

}  // namespace pasched::sim
