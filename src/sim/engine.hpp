// The discrete-event simulation engine: a time-ordered event queue with
// stable FIFO tie-breaking and O(1) cancellation. Everything in pasched —
// kernel ticks, IPIs, CPU burst completions, network deliveries, daemon
// timers — is an event scheduled here.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace pasched::sim {

/// Handle to a scheduled event. Cancelling an already-fired or already-
/// cancelled event is a harmless no-op (generation counters detect it).
struct EventId {
  std::uint32_t slot = UINT32_MAX;
  std::uint32_t gen = 0;
  [[nodiscard]] bool valid() const noexcept { return slot != UINT32_MAX; }
  friend bool operator==(EventId a, EventId b) = default;
};

class Engine {
 public:
  using Callback = InlineCallback<48>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()). Events with the
  /// same timestamp fire in scheduling order.
  EventId schedule_at(Time t, Callback fn);
  EventId schedule_after(Duration d, Callback fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels the event if it has not fired yet; no-op otherwise.
  void cancel(EventId id) noexcept;

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const noexcept;

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// (unless stopped earlier). Returns false if stopped before the deadline.
  bool run_until(Time deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  [[nodiscard]] std::size_t events_pending() const noexcept { return live_; }

  /// Full O(n) structural audit of the slot table / heap / free list; throws
  /// check::CheckError on the first inconsistency. Always compiled (calling
  /// it is opt-in); the per-event checks are gated by PASCHED_VALIDATE.
  void check_consistent() const;

 private:
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
    bool armed = false;
  };
  struct HeapItem {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct HeapLater {
    bool operator()(const HeapItem& a, const HeapItem& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) noexcept;
  bool fire_next();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapItem> heap_;
  Time now_ = Time::zero();
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  // Last fired (t, seq), for the PASCHED_VALIDATE causality check. Always
  // present so the class layout does not depend on the validation flag.
  // The sentinel start time compares below any schedulable time.
  Time last_fired_t_ = Time::from_ns(INT64_MIN);
  std::uint64_t last_fired_seq_ = 0;
};

}  // namespace pasched::sim
