#include "sim/random.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pasched::sim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_origin_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  std::uint64_t sm = seed_origin_ ^ (0xa0761d6478bd642fULL * (stream + 1));
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for our ranges (<< 2^64) and determinism is
  // what matters here.
  return lo + static_cast<std::int64_t>(next_u64() % range);
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

double Rng::exponential(double mean) noexcept {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log1p(-u);
}

double Rng::normal(double mu, double sigma) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mu + sigma * cached_normal_;
  }
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.141592653589793238462643 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mu + sigma * r * std::cos(theta);
}

double Rng::lognormal_med(double median, double sigma) noexcept {
  PASCHED_EXPECTS(median > 0.0);
  return median * std::exp(normal(0.0, sigma));
}

Duration Rng::uniform_dur(Duration lo, Duration hi) noexcept {
  return Duration::ns(uniform_int(lo.count(), hi.count()));
}

Duration Rng::exponential_dur(Duration mean) noexcept {
  return Duration::ns(
      static_cast<std::int64_t>(exponential(static_cast<double>(mean.count()))));
}

Duration Rng::jittered(Duration mean, double frac) noexcept {
  const double f = uniform(1.0 - frac, 1.0 + frac);
  return Duration::ns(
      static_cast<std::int64_t>(static_cast<double>(mean.count()) * f));
}

}  // namespace pasched::sim
