// Deterministic random number generation: xoshiro256** seeded via
// splitmix64, plus the distributions the interference models need.
// Every stochastic component (daemon bursts, jitter, clock offsets) draws
// from an explicitly seeded Rng so whole-cluster runs replay bit-exactly.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace pasched::sim {

/// splitmix64 — used for seeding and for cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derives an independent child stream (stable function of parent seed
  /// and `stream` index — children do not perturb the parent).
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (cached pair).
  [[nodiscard]] double normal(double mu, double sigma) noexcept;

  /// Lognormal parameterized by the *median* and the shape sigma:
  /// exp(N(ln median, sigma)). Median parameterization keeps daemon burst
  /// configs human-readable.
  [[nodiscard]] double lognormal_med(double median, double sigma) noexcept;

  /// Duration helpers ------------------------------------------------------
  [[nodiscard]] Duration uniform_dur(Duration lo, Duration hi) noexcept;
  [[nodiscard]] Duration exponential_dur(Duration mean) noexcept;
  /// mean +/- up to frac*mean of uniform jitter.
  [[nodiscard]] Duration jittered(Duration mean, double frac) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t seed_origin_;
};

}  // namespace pasched::sim
