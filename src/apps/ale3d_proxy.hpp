// A bulk-synchronous proxy for ALE3D's explicit-hydrodynamics configuration
// (§5.1): per timestep, a compute phase with mild load imbalance, nearest-
// neighbor halo exchange, and several global reductions; an initial state
// read at job start and a restart dump at the end (plus optional
// checkpoints), all through the node I/O daemons. The `detach_for_io` switch
// exercises the prototype MPI library's co-scheduler escape API (§4).
#pragma once

#include <cstddef>

#include "mpi/config.hpp"
#include "mpi/workload.hpp"
#include "sim/time.hpp"

namespace pasched::apps {

struct Ale3dConfig {
  int timesteps = 50;
  /// Per-task compute per timestep (normal, cv = compute_cv).
  sim::Duration compute_mean = sim::Duration::ms(20);
  double compute_cv = 0.05;
  std::size_t halo_bytes = 32 * 1024;
  int reductions_per_step = 6;
  std::size_t reduce_bytes = 8;
  std::size_t initial_read_bytes = 2 * 1024 * 1024;   // per task
  std::size_t final_dump_bytes = 4 * 1024 * 1024;     // per task
  int checkpoint_every = 0;                           // 0 = no checkpoints
  std::size_t checkpoint_bytes = 1024 * 1024;
  /// Use the Detach/Attach escape API around I/O phases.
  bool detach_for_io = true;
  mpi::AllreduceAlg alg = mpi::AllreduceAlg::BinomialTree;
};

[[nodiscard]] mpi::WorkloadFactory ale3d_proxy(Ale3dConfig cfg);

}  // namespace pasched::apps
