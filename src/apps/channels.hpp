// Marker-channel conventions shared by the bundled workloads.
#pragma once

#include <cstdint>

namespace pasched::apps {

inline constexpr std::uint32_t kChanAllreduce = 0;  // one span per collective
inline constexpr std::uint32_t kChanStep = 1;       // trace block / timestep
inline constexpr std::uint32_t kChanIo = 2;         // I/O phase
inline constexpr std::uint32_t kChanCompute = 3;    // compute phase

}  // namespace pasched::apps
