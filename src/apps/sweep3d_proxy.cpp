#include "apps/sweep3d_proxy.hpp"

#include <algorithm>

#include "apps/channels.hpp"
#include "mpi/collectives.hpp"
#include "util/assert.hpp"

namespace pasched::apps {

std::pair<int, int> sweep_grid(int ntasks) {
  PASCHED_EXPECTS(ntasks >= 1);
  int px = 1;
  for (int d = 1; d * d <= ntasks; ++d)
    if (ntasks % d == 0) px = d;
  return {px, ntasks / px};
}

namespace {

class Sweep3dProxy final : public mpi::Workload {
 public:
  explicit Sweep3dProxy(Sweep3dConfig cfg) : cfg_(cfg) {
    PASCHED_EXPECTS(cfg_.timesteps >= 1);
    PASCHED_EXPECTS(cfg_.sweeps_per_step >= 1);
  }

  bool refill(const mpi::TaskInfo& info,
              std::vector<mpi::MicroOp>& out) override {
    if (step_ >= cfg_.timesteps) return false;
    const auto [px, py] = sweep_grid(info.size);
    const int x = info.rank % px;
    const int y = info.rank / px;
    if (step_ == 0 && sweep_ == 0)
      mpi::append_barrier(out, info.rank, info.size, next_tag());

    if (sweep_ == 0)
      out.push_back(mpi::MicroOp::mark_begin(
          kChanStep, static_cast<std::uint64_t>(step_)));

    // One wavefront pass from the NW corner: strict pipeline order.
    const std::uint64_t tag = next_tag();
    if (x > 0) out.push_back(mpi::MicroOp::recv(info.rank - 1, tag + 0));
    if (y > 0) out.push_back(mpi::MicroOp::recv(info.rank - px, tag + 1));
    const double mean_ns = static_cast<double>(cfg_.cell_work.count());
    const double ns = std::max(
        mean_ns * 0.25, info.rng->normal(mean_ns, mean_ns * cfg_.work_cv));
    out.push_back(
        mpi::MicroOp::compute(sim::Duration::ns(static_cast<std::int64_t>(ns))));
    if (x + 1 < px)
      out.push_back(mpi::MicroOp::send(info.rank + 1, tag + 0,
                                       cfg_.pencil_bytes));
    if (y + 1 < py)
      out.push_back(mpi::MicroOp::send(info.rank + px, tag + 1,
                                       cfg_.pencil_bytes));

    if (++sweep_ >= cfg_.sweeps_per_step) {
      sweep_ = 0;
      if (cfg_.convergence_check) {
        out.push_back(mpi::MicroOp::mark_begin(kChanAllreduce, allreduce_seq_));
        mpi::append_allreduce(out, info.rank, info.size, cfg_.reduce_bytes,
                              next_tag(), mpi::AllreduceAlg::BinomialTree);
        out.push_back(mpi::MicroOp::mark_end(kChanAllreduce, allreduce_seq_));
        ++allreduce_seq_;
      }
      out.push_back(mpi::MicroOp::mark_end(
          kChanStep, static_cast<std::uint64_t>(step_)));
      ++step_;
    }
    return true;
  }

 private:
  std::uint64_t next_tag() { return mpi::kTagStride * coll_seq_++; }

  Sweep3dConfig cfg_;
  int step_ = 0;
  int sweep_ = 0;
  std::uint64_t coll_seq_ = 0;
  std::uint64_t allreduce_seq_ = 0;
};

}  // namespace

mpi::WorkloadFactory sweep3d_proxy(Sweep3dConfig cfg) {
  return [cfg](int /*rank*/, int /*size*/) {
    return std::make_unique<Sweep3dProxy>(cfg);
  };
}

}  // namespace pasched::apps
