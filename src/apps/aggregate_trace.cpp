#include "apps/aggregate_trace.hpp"

#include "apps/channels.hpp"
#include "mpi/collectives.hpp"
#include "util/assert.hpp"

namespace pasched::apps {

namespace {

class AggregateTrace final : public mpi::Workload {
 public:
  explicit AggregateTrace(AggregateTraceConfig cfg) : cfg_(cfg) {
    PASCHED_EXPECTS(cfg_.loops >= 1);
    PASCHED_EXPECTS(cfg_.calls_per_loop >= 1);
    PASCHED_EXPECTS(cfg_.trace_block >= 1);
  }

  bool refill(const mpi::TaskInfo& info,
              std::vector<mpi::MicroOp>& out) override {
    const int total_calls = cfg_.loops * cfg_.calls_per_loop;
    if (call_ >= total_calls) return false;
    if (call_ == 0) {
      if (cfg_.warmup > sim::Duration::zero())
        out.push_back(mpi::MicroOp::compute(cfg_.warmup));
      // Synchronize job start so the first timed call measures the
      // collective, not the skew of task launch or warmup.
      mpi::append_barrier(out, info.rank, info.size, next_tag());
    }
    // One Allreduce call per refill keeps the op queue tiny.
    if (cfg_.inter_call_compute > sim::Duration::zero()) {
      out.push_back(mpi::MicroOp::compute(
          info.rng->jittered(cfg_.inter_call_compute, cfg_.compute_jitter)));
    }
    const bool block_start = call_ % cfg_.trace_block == 0;
    const bool block_end = (call_ + 1) % cfg_.trace_block == 0 ||
                           call_ + 1 == total_calls;
    if (block_start) {
      out.push_back(mpi::MicroOp::mark_begin(
          kChanStep, static_cast<std::uint64_t>(call_ / cfg_.trace_block)));
    }
    out.push_back(mpi::MicroOp::mark_begin(
        kChanAllreduce, static_cast<std::uint64_t>(call_)));
    mpi::append_allreduce(out, info.rank, info.size, cfg_.allreduce_bytes,
                          next_tag(), cfg_.alg);
    out.push_back(mpi::MicroOp::mark_end(
        kChanAllreduce, static_cast<std::uint64_t>(call_)));
    if (block_end) {
      out.push_back(mpi::MicroOp::mark_end(
          kChanStep, static_cast<std::uint64_t>(call_ / cfg_.trace_block)));
    }
    ++call_;
    return true;
  }

 private:
  std::uint64_t next_tag() { return mpi::kTagStride * coll_seq_++; }

  AggregateTraceConfig cfg_;
  int call_ = 0;
  std::uint64_t coll_seq_ = 0;
};

}  // namespace

mpi::WorkloadFactory aggregate_trace(AggregateTraceConfig cfg) {
  return [cfg](int /*rank*/, int /*size*/) {
    return std::make_unique<AggregateTrace>(cfg);
  };
}

}  // namespace pasched::apps
