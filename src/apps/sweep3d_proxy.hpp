// A Sweep3D-class wavefront proxy: tasks form a 2-D process grid; each
// sweep pipelines dependencies from the north-west corner (recv west/north,
// compute the pencil, send east/south). Wavefront codes are dominated by
// *chains* of fine-grain point-to-point messages rather than global
// collectives — a different OS-noise sensitivity profile than BSP codes
// (interference delays propagate down the pipeline but overlap with the
// pipeline's own slack). Part of the §7 "evaluate additional applications"
// future work.
#pragma once

#include <cstddef>

#include "mpi/workload.hpp"
#include "sim/time.hpp"

namespace pasched::apps {

struct Sweep3dConfig {
  int timesteps = 10;
  /// Wavefront passes per timestep (real Sweep3D does one per octant pair).
  int sweeps_per_step = 4;
  /// CPU work per task per sweep stage.
  sim::Duration cell_work = sim::Duration::us(400);
  double work_cv = 0.05;
  std::size_t pencil_bytes = 4 * 1024;
  /// A small convergence Allreduce after each timestep.
  bool convergence_check = true;
  std::size_t reduce_bytes = 8;
};

[[nodiscard]] mpi::WorkloadFactory sweep3d_proxy(Sweep3dConfig cfg);

/// The process-grid factorization used by the proxy (most-square Px*Py = n).
[[nodiscard]] std::pair<int, int> sweep_grid(int ntasks);

}  // namespace pasched::apps
