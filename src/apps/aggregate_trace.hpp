// The paper's synthetic benchmark, aggregate_trace.c (§5.1): loops of timed
// MPI_Allreduce calls with AIX-trace hook points every 64th call. Channel
// kChanAllreduce carries one span per call; kChanStep carries one span per
// 64-call trace block.
#pragma once

#include <cstddef>

#include "mpi/config.hpp"
#include "mpi/workload.hpp"
#include "sim/time.hpp"

namespace pasched::apps {

struct AggregateTraceConfig {
  int loops = 3;
  int calls_per_loop = 4096;
  std::size_t allreduce_bytes = 8;
  /// Simulated work between calls ("the sorts of tasks programs may perform
  /// in the section of code where they use MPI_Allreduce").
  sim::Duration inter_call_compute = sim::Duration::us(100);
  double compute_jitter = 0.20;  // uniform +/- fraction
  int trace_block = 64;
  mpi::AllreduceAlg alg = mpi::AllreduceAlg::BinomialTree;
  /// Untimed compute executed before the measured loop. Benches use this to
  /// let the co-scheduler's first (period-boundary-aligned) window engage
  /// before measurement starts, as the paper's long runs naturally did.
  sim::Duration warmup = sim::Duration::zero();
};

/// Builds the per-rank workload factory.
[[nodiscard]] mpi::WorkloadFactory aggregate_trace(AggregateTraceConfig cfg);

}  // namespace pasched::apps
