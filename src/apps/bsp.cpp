#include "apps/bsp.hpp"

#include <algorithm>

#include "apps/channels.hpp"
#include "mpi/collectives.hpp"
#include "util/assert.hpp"

namespace pasched::apps {

namespace {

class Bsp final : public mpi::Workload {
 public:
  explicit Bsp(BspConfig cfg) : cfg_(cfg) { PASCHED_EXPECTS(cfg_.steps >= 1); }

  bool refill(const mpi::TaskInfo& info,
              std::vector<mpi::MicroOp>& out) override {
    if (step_ >= cfg_.steps) return false;
    if (step_ == 0) mpi::append_barrier(out, info.rank, info.size, next_tag());
    const auto seq = static_cast<std::uint64_t>(step_);
    out.push_back(mpi::MicroOp::mark_begin(kChanStep, seq));
    out.push_back(mpi::MicroOp::mark_begin(kChanCompute, seq));
    const double mean_ns = static_cast<double>(cfg_.compute_mean.count());
    const double ns = std::max(
        mean_ns * 0.25, info.rng->normal(mean_ns, mean_ns * cfg_.compute_cv));
    out.push_back(mpi::MicroOp::compute(
        sim::Duration::ns(static_cast<std::int64_t>(ns))));
    out.push_back(mpi::MicroOp::mark_end(kChanCompute, seq));
    for (int r = 0; r < cfg_.allreduces_per_step; ++r) {
      out.push_back(mpi::MicroOp::mark_begin(kChanAllreduce, allreduce_seq_));
      mpi::append_allreduce(out, info.rank, info.size, cfg_.allreduce_bytes,
                            next_tag(), cfg_.alg);
      out.push_back(mpi::MicroOp::mark_end(kChanAllreduce, allreduce_seq_));
      ++allreduce_seq_;
    }
    out.push_back(mpi::MicroOp::mark_end(kChanStep, seq));
    ++step_;
    return true;
  }

 private:
  std::uint64_t next_tag() { return mpi::kTagStride * coll_seq_++; }

  BspConfig cfg_;
  int step_ = 0;
  std::uint64_t coll_seq_ = 0;
  std::uint64_t allreduce_seq_ = 0;
};

}  // namespace

mpi::WorkloadFactory bsp(BspConfig cfg) {
  return [cfg](int /*rank*/, int /*size*/) { return std::make_unique<Bsp>(cfg); };
}

}  // namespace pasched::apps
