// Generic bulk-synchronous SPMD workload (Figure 2's model): alternating
// compute and synchronizing-collective phases. Used to measure what fraction
// of runtime synchronizing collectives consume as task count grows (the
// >50% at 1728 processors motivation numbers of §2).
#pragma once

#include <cstddef>

#include "mpi/config.hpp"
#include "mpi/workload.hpp"
#include "sim/time.hpp"

namespace pasched::apps {

struct BspConfig {
  int steps = 100;
  sim::Duration compute_mean = sim::Duration::ms(2);
  double compute_cv = 0.02;
  int allreduces_per_step = 1;
  std::size_t allreduce_bytes = 8;
  mpi::AllreduceAlg alg = mpi::AllreduceAlg::BinomialTree;
};

[[nodiscard]] mpi::WorkloadFactory bsp(BspConfig cfg);

}  // namespace pasched::apps
