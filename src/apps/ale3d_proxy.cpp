#include "apps/ale3d_proxy.hpp"

#include <algorithm>

#include "apps/channels.hpp"
#include "mpi/collectives.hpp"
#include "util/assert.hpp"

namespace pasched::apps {

namespace {

class Ale3dProxy final : public mpi::Workload {
 public:
  explicit Ale3dProxy(Ale3dConfig cfg) : cfg_(cfg) {
    PASCHED_EXPECTS(cfg_.timesteps >= 1);
    PASCHED_EXPECTS(cfg_.reductions_per_step >= 0);
  }

  bool refill(const mpi::TaskInfo& info,
              std::vector<mpi::MicroOp>& out) override {
    switch (phase_) {
      case Phase::InitialRead:
        emit_io(out, info, cfg_.initial_read_bytes, /*seq=*/0);
        phase_ = Phase::Steps;
        return true;
      case Phase::Steps:
        emit_step(out, info);
        ++step_;
        if (cfg_.checkpoint_every > 0 && step_ < cfg_.timesteps &&
            step_ % cfg_.checkpoint_every == 0) {
          emit_io(out, info, cfg_.checkpoint_bytes,
                  static_cast<std::uint64_t>(step_));
        }
        if (step_ >= cfg_.timesteps) phase_ = Phase::FinalDump;
        return true;
      case Phase::FinalDump:
        emit_io(out, info, cfg_.final_dump_bytes,
                static_cast<std::uint64_t>(cfg_.timesteps + 1));
        phase_ = Phase::Done;
        return true;
      case Phase::Done:
        return false;
    }
    return false;
  }

 private:
  enum class Phase { InitialRead, Steps, FinalDump, Done };

  std::uint64_t next_tag() { return mpi::kTagStride * coll_seq_++; }

  void emit_io(std::vector<mpi::MicroOp>& out, const mpi::TaskInfo& info,
               std::size_t bytes, std::uint64_t seq) {
    if (cfg_.detach_for_io) out.push_back(mpi::MicroOp::detach());
    out.push_back(mpi::MicroOp::mark_begin(kChanIo, seq));
    out.push_back(mpi::MicroOp::io(bytes));
    out.push_back(mpi::MicroOp::mark_end(kChanIo, seq));
    if (cfg_.detach_for_io) out.push_back(mpi::MicroOp::attach());
    // Everyone leaves the I/O phase together (restart files are collective).
    mpi::append_barrier(out, info.rank, info.size, next_tag());
  }

  void emit_step(std::vector<mpi::MicroOp>& out, const mpi::TaskInfo& info) {
    const auto seq = static_cast<std::uint64_t>(step_);
    out.push_back(mpi::MicroOp::mark_begin(kChanStep, seq));
    // Lagrange step + remap: compute with mild imbalance across tasks.
    const double mean_ns = static_cast<double>(cfg_.compute_mean.count());
    const double ns = std::max(
        mean_ns * 0.25,
        info.rng->normal(mean_ns, mean_ns * cfg_.compute_cv));
    out.push_back(mpi::MicroOp::compute(
        sim::Duration::ns(static_cast<std::int64_t>(ns))));
    // Nearest-neighbor (element) communication.
    mpi::append_halo_exchange(out, info.rank, info.size, cfg_.halo_bytes,
                              next_tag());
    // Global reductions (timestep control, energy sums, ...).
    for (int r = 0; r < cfg_.reductions_per_step; ++r) {
      out.push_back(mpi::MicroOp::mark_begin(kChanAllreduce, allreduce_seq_));
      mpi::append_allreduce(out, info.rank, info.size, cfg_.reduce_bytes,
                            next_tag(), cfg_.alg);
      out.push_back(mpi::MicroOp::mark_end(kChanAllreduce, allreduce_seq_));
      ++allreduce_seq_;
    }
    out.push_back(mpi::MicroOp::mark_end(kChanStep, seq));
  }

  Ale3dConfig cfg_;
  Phase phase_ = Phase::InitialRead;
  int step_ = 0;
  std::uint64_t coll_seq_ = 0;
  std::uint64_t allreduce_seq_ = 0;
};

}  // namespace

mpi::WorkloadFactory ale3d_proxy(Ale3dConfig cfg) {
  return [cfg](int /*rank*/, int /*size*/) {
    return std::make_unique<Ale3dProxy>(cfg);
  };
}

}  // namespace pasched::apps
