// An implicit-solver proxy (CG-style Krylov iteration): per iteration a
// matvec compute phase, a halo exchange, and TWO small global dot-product
// Allreduces. §5.1 singles this class out: "by using implicit hydrodynamics
// with slide surfaces, one must use iterative linear solvers ... with
// thousands of matrix-vector multiplies and tens or hundreds of reductions
// per timestep" — the most collective-dense, OS-noise-sensitive application
// class the paper names.
#pragma once

#include <cstddef>

#include "mpi/workload.hpp"
#include "sim/time.hpp"

namespace pasched::apps {

struct ImplicitCgConfig {
  int timesteps = 5;
  /// Krylov iterations per (linearized) timestep.
  int iterations_per_step = 40;
  /// Matvec compute per task per iteration.
  sim::Duration matvec_work = sim::Duration::us(800);
  double work_cv = 0.03;
  std::size_t halo_bytes = 8 * 1024;
  std::size_t dot_bytes = 8;
};

[[nodiscard]] mpi::WorkloadFactory implicit_cg(ImplicitCgConfig cfg);

}  // namespace pasched::apps
