#include "apps/implicit_cg.hpp"

#include <algorithm>

#include "apps/channels.hpp"
#include "mpi/collectives.hpp"
#include "util/assert.hpp"

namespace pasched::apps {

namespace {

class ImplicitCg final : public mpi::Workload {
 public:
  explicit ImplicitCg(ImplicitCgConfig cfg) : cfg_(cfg) {
    PASCHED_EXPECTS(cfg_.timesteps >= 1);
    PASCHED_EXPECTS(cfg_.iterations_per_step >= 1);
  }

  bool refill(const mpi::TaskInfo& info,
              std::vector<mpi::MicroOp>& out) override {
    if (step_ >= cfg_.timesteps) return false;
    if (step_ == 0 && iter_ == 0)
      mpi::append_barrier(out, info.rank, info.size, next_tag());
    if (iter_ == 0)
      out.push_back(mpi::MicroOp::mark_begin(
          kChanStep, static_cast<std::uint64_t>(step_)));

    // One CG iteration: matvec (+halo), then two dot products.
    out.push_back(mpi::MicroOp::mark_begin(kChanCompute, compute_seq_));
    const double mean_ns = static_cast<double>(cfg_.matvec_work.count());
    const double ns = std::max(
        mean_ns * 0.25, info.rng->normal(mean_ns, mean_ns * cfg_.work_cv));
    out.push_back(
        mpi::MicroOp::compute(sim::Duration::ns(static_cast<std::int64_t>(ns))));
    out.push_back(mpi::MicroOp::mark_end(kChanCompute, compute_seq_));
    ++compute_seq_;
    mpi::append_halo_exchange(out, info.rank, info.size, cfg_.halo_bytes,
                              next_tag());
    for (int d = 0; d < 2; ++d) {
      out.push_back(mpi::MicroOp::mark_begin(kChanAllreduce, allreduce_seq_));
      mpi::append_allreduce(out, info.rank, info.size, cfg_.dot_bytes,
                            next_tag(), mpi::AllreduceAlg::BinomialTree);
      out.push_back(mpi::MicroOp::mark_end(kChanAllreduce, allreduce_seq_));
      ++allreduce_seq_;
    }

    if (++iter_ >= cfg_.iterations_per_step) {
      iter_ = 0;
      out.push_back(mpi::MicroOp::mark_end(
          kChanStep, static_cast<std::uint64_t>(step_)));
      ++step_;
    }
    return true;
  }

 private:
  std::uint64_t next_tag() { return mpi::kTagStride * coll_seq_++; }

  ImplicitCgConfig cfg_;
  int step_ = 0;
  int iter_ = 0;
  std::uint64_t coll_seq_ = 0;
  std::uint64_t allreduce_seq_ = 0;
  std::uint64_t compute_seq_ = 0;
};

}  // namespace

mpi::WorkloadFactory implicit_cg(ImplicitCgConfig cfg) {
  return [cfg](int /*rank*/, int /*size*/) {
    return std::make_unique<ImplicitCg>(cfg);
  };
}

}  // namespace pasched::apps
