// Collective communication schedules, expanded into point-to-point MicroOps
// per rank. Tags encode (collective sequence number, step) so concurrent
// collectives never alias: tag = tag_base + step, with tag_base strided by
// kTagStride per collective instance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mpi/config.hpp"
#include "mpi/microop.hpp"

namespace pasched::mpi {

/// Tag stride reserved per collective instance (max steps of any schedule).
inline constexpr std::uint64_t kTagStride = 128;

/// Binomial-tree reduction to rank `root`.
void append_reduce(std::vector<MicroOp>& out, int rank, int size, int root,
                   std::size_t bytes, std::uint64_t tag_base);

/// Binomial-tree broadcast from rank `root`.
void append_bcast(std::vector<MicroOp>& out, int rank, int size, int root,
                  std::size_t bytes, std::uint64_t tag_base);

/// Allreduce per `alg`: reduce+bcast tree (the paper's "standard tree
/// algorithm", <= 2*log2(N) p2p steps) or recursive doubling.
void append_allreduce(std::vector<MicroOp>& out, int rank, int size,
                      std::size_t bytes, std::uint64_t tag_base,
                      AllreduceAlg alg);

/// Dissemination barrier (ceil(log2 N) rounds).
void append_barrier(std::vector<MicroOp>& out, int rank, int size,
                    std::uint64_t tag_base);

/// Ring allgather: N-1 rounds of shift-by-one, `bytes` contributed per rank.
void append_allgather_ring(std::vector<MicroOp>& out, int rank, int size,
                           std::size_t bytes, std::uint64_t tag_base);

/// Bruck allgather: ceil(log2 N) rounds, works for any N; round k moves
/// min(2^k, N-2^k) blocks of `bytes` each.
void append_allgather_bruck(std::vector<MicroOp>& out, int rank, int size,
                            std::size_t bytes, std::uint64_t tag_base);

/// Pairwise-exchange alltoall: N-1 rounds, rank exchanges `bytes` with
/// (rank +/- k) mod N in round k.
void append_alltoall_pairwise(std::vector<MicroOp>& out, int rank, int size,
                              std::size_t bytes, std::uint64_t tag_base);

/// Bidirectional nearest-neighbor halo exchange on a 1-D periodic ring.
void append_halo_exchange(std::vector<MicroOp>& out, int rank, int size,
                          std::size_t bytes, std::uint64_t tag_base);

/// Number of p2p steps on rank 0's critical path of a tree allreduce —
/// used by the analytic "expected ~350 us" model quoted in §5.3.
[[nodiscard]] int tree_allreduce_steps(int size);

/// Analytic ideal allreduce duration for the given runtime/network costs
/// (no interference): the model line of Figure 4.
[[nodiscard]] sim::Duration ideal_allreduce(int size, const MpiConfig& mpi,
                                            sim::Duration wire_latency,
                                            sim::Duration per_byte,
                                            std::size_t bytes);

}  // namespace pasched::mpi
