#include "mpi/collectives.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace pasched::mpi {

namespace {

int ceil_log2(int n) {
  PASCHED_EXPECTS(n >= 1);
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

void append_reduce(std::vector<MicroOp>& out, int rank, int size, int root,
                   std::size_t bytes, std::uint64_t tag_base) {
  PASCHED_EXPECTS(size >= 1 && rank >= 0 && rank < size);
  PASCHED_EXPECTS(root >= 0 && root < size);
  if (size == 1) return;
  const int rel = (rank - root + size) % size;
  int step = 0;
  for (int mask = 1; mask < size; mask <<= 1, ++step) {
    if ((rel & mask) != 0) {
      const int peer = (rank - mask + size) % size;
      out.push_back(MicroOp::send(peer, tag_base + static_cast<std::uint64_t>(step), bytes));
      return;  // contributed our partial result; done with the reduction
    }
    if (rel + mask < size) {
      const int peer = (rank + mask) % size;
      out.push_back(MicroOp::recv(peer, tag_base + static_cast<std::uint64_t>(step)));
    }
  }
}

void append_bcast(std::vector<MicroOp>& out, int rank, int size, int root,
                  std::size_t bytes, std::uint64_t tag_base) {
  PASCHED_EXPECTS(size >= 1 && rank >= 0 && rank < size);
  PASCHED_EXPECTS(root >= 0 && root < size);
  if (size == 1) return;
  const int rel = (rank - root + size) % size;
  int mask = 1;
  int recv_step = -1;
  while (mask < size) {
    if ((rel & mask) != 0) {
      recv_step = std::countr_zero(static_cast<unsigned>(mask));
      const int peer = (rank - mask + size) % size;
      out.push_back(
          MicroOp::recv(peer, tag_base + static_cast<std::uint64_t>(recv_step)));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      const int step = std::countr_zero(static_cast<unsigned>(mask));
      const int peer = (rank + mask) % size;
      out.push_back(MicroOp::send(
          peer, tag_base + static_cast<std::uint64_t>(step), bytes));
    }
    mask >>= 1;
  }
}

namespace {

void append_allreduce_rd(std::vector<MicroOp>& out, int rank, int size,
                         std::size_t bytes, std::uint64_t tag_base) {
  // Recursive doubling with pre/post folding for non-powers of two.
  const int p2 = floor_pow2(size);
  const int r = size - p2;
  constexpr std::uint64_t kFoldStep = 0;
  const std::uint64_t unfold_step = 1 + static_cast<std::uint64_t>(ceil_log2(p2));

  int group;  // index within the power-of-two group, or -1 if folded out
  if (rank < 2 * r) {
    if ((rank % 2) == 0) {
      // Even ranks of the fold region hand their data to the odd neighbor
      // and wait for the final result at the end.
      out.push_back(MicroOp::send(rank + 1, tag_base + kFoldStep, bytes));
      out.push_back(MicroOp::recv(rank + 1, tag_base + unfold_step));
      return;
    }
    out.push_back(MicroOp::recv(rank - 1, tag_base + kFoldStep));
    group = rank / 2;
  } else {
    group = rank - r;
  }
  auto rank_of_group = [r](int g) { return g < r ? 2 * g + 1 : g + r; };
  int step = 1;
  for (int mask = 1; mask < p2; mask <<= 1, ++step) {
    const int peer = rank_of_group(group ^ mask);
    const std::uint64_t tag = tag_base + static_cast<std::uint64_t>(step);
    out.push_back(MicroOp::send(peer, tag, bytes));
    out.push_back(MicroOp::recv(peer, tag));
  }
  if (rank < 2 * r) {
    out.push_back(MicroOp::send(rank - 1, tag_base + unfold_step, bytes));
  }
}

}  // namespace

void append_allreduce(std::vector<MicroOp>& out, int rank, int size,
                      std::size_t bytes, std::uint64_t tag_base,
                      AllreduceAlg alg) {
  PASCHED_EXPECTS(size >= 1 && rank >= 0 && rank < size);
  if (size == 1) return;
  switch (alg) {
    case AllreduceAlg::BinomialTree:
      append_reduce(out, rank, size, /*root=*/0, bytes, tag_base);
      append_bcast(out, rank, size, /*root=*/0, bytes, tag_base + kTagStride / 2);
      return;
    case AllreduceAlg::RecursiveDoubling:
      append_allreduce_rd(out, rank, size, bytes, tag_base);
      return;
    case AllreduceAlg::HardwareSwitch:
      // One contribution, then wait for the switch's combined result.
      out.push_back(MicroOp::hw_collective(tag_base, bytes));
      out.push_back(MicroOp::recv(kHwSwitchRank, tag_base));
      return;
  }
}

void append_barrier(std::vector<MicroOp>& out, int rank, int size,
                    std::uint64_t tag_base) {
  PASCHED_EXPECTS(size >= 1 && rank >= 0 && rank < size);
  if (size == 1) return;
  const int rounds = ceil_log2(size);
  for (int k = 0; k < rounds; ++k) {
    const int dist = 1 << k;
    const int to = (rank + dist) % size;
    const int from = (rank - dist % size + size) % size;
    const std::uint64_t tag = tag_base + static_cast<std::uint64_t>(k);
    out.push_back(MicroOp::send(to, tag, 0));
    out.push_back(MicroOp::recv(from, tag));
  }
}

void append_allgather_ring(std::vector<MicroOp>& out, int rank, int size,
                           std::size_t bytes, std::uint64_t tag_base) {
  PASCHED_EXPECTS(size >= 1 && rank >= 0 && rank < size);
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int k = 0; k < size - 1; ++k) {
    const std::uint64_t tag = tag_base + static_cast<std::uint64_t>(k);
    out.push_back(MicroOp::send(right, tag, bytes));
    out.push_back(MicroOp::recv(left, tag));
  }
}

void append_allgather_bruck(std::vector<MicroOp>& out, int rank, int size,
                            std::size_t bytes, std::uint64_t tag_base) {
  PASCHED_EXPECTS(size >= 1 && rank >= 0 && rank < size);
  if (size == 1) return;
  int held = 1;  // blocks currently held (own block first)
  int step = 0;
  for (int dist = 1; dist < size; dist <<= 1, ++step) {
    const int to = (rank - dist % size + size) % size;
    const int from = (rank + dist) % size;
    const int moved = std::min(held, size - held);
    const std::uint64_t tag = tag_base + static_cast<std::uint64_t>(step);
    out.push_back(MicroOp::send(to, tag,
                                bytes * static_cast<std::size_t>(moved)));
    out.push_back(MicroOp::recv(from, tag));
    held += moved;
  }
}

void append_alltoall_pairwise(std::vector<MicroOp>& out, int rank, int size,
                              std::size_t bytes, std::uint64_t tag_base) {
  PASCHED_EXPECTS(size >= 1 && rank >= 0 && rank < size);
  for (int k = 1; k < size; ++k) {
    const int to = (rank + k) % size;
    const int from = (rank - k % size + size) % size;
    const std::uint64_t tag = tag_base + static_cast<std::uint64_t>(k);
    out.push_back(MicroOp::send(to, tag, bytes));
    out.push_back(MicroOp::recv(from, tag));
  }
}

void append_halo_exchange(std::vector<MicroOp>& out, int rank, int size,
                          std::size_t bytes, std::uint64_t tag_base) {
  PASCHED_EXPECTS(size >= 1 && rank >= 0 && rank < size);
  if (size == 1) return;
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  out.push_back(MicroOp::send(right, tag_base + 0, bytes));
  if (size > 2) out.push_back(MicroOp::send(left, tag_base + 1, bytes));
  out.push_back(MicroOp::recv(left, tag_base + 0));
  if (size > 2) out.push_back(MicroOp::recv(right, tag_base + 1));
}

int tree_allreduce_steps(int size) { return 2 * ceil_log2(size); }

sim::Duration ideal_allreduce(int size, const MpiConfig& mpi,
                              sim::Duration wire_latency,
                              sim::Duration per_byte, std::size_t bytes) {
  // Critical-path model: each of the 2*ceil(log2 N) tree levels costs one
  // message injection, the wire, and one receive on the critical chain.
  const auto steps = static_cast<std::int64_t>(tree_allreduce_steps(size));
  const sim::Duration per_step = mpi.o_send + mpi.o_recv + wire_latency +
                                 per_byte * static_cast<std::int64_t>(bytes);
  return per_step * steps;
}

}  // namespace pasched::mpi
