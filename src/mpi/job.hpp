// A parallel job: task placement across the cluster, message routing,
// timing-span collection, completion detection, and the control-pipe link
// to the co-scheduler (via SchedulerHook).
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "mpi/aux_thread.hpp"
#include "mpi/config.hpp"
#include "mpi/hook.hpp"
#include "mpi/task.hpp"
#include "mpi/workload.hpp"
#include "race/domain.hpp"
#include "trace/events.hpp"
#include "util/stats.hpp"

namespace pasched::mpi {

struct JobConfig {
  int ntasks = 16;
  /// Tasks placed block-wise: node = first_node + rank / tasks_per_node,
  /// CPU = rank % tasks_per_node. 15 here on 16-way nodes reproduces the
  /// "leave one CPU for the daemons" convention of §2.
  int tasks_per_node = 16;
  int first_node = 0;
  MpiConfig mpi;
  /// Rank whose per-call span durations are recorded verbatim (Figure 4
  /// extracts per-Allreduce times from one node's trace).
  int record_rank = 0;
  bool stop_engine_on_complete = true;
  std::uint64_t seed = 12345;

  /// GPFS-style distributed I/O: each request is served partly by the local
  /// mmfsd and partly shipped to this many peer nodes' daemons. This is why
  /// a co-scheduler that starves daemons on *compute* nodes stalls I/O
  /// issued elsewhere (§5.3's ALE3D slowdown).
  int io_remote_shards = 2;
};

/// Aggregate timing data for one marker channel.
struct ChannelStats {
  /// Every (task, span) duration in microseconds.
  util::Accumulator all_us;
  /// Per-span durations (us) of the recorded rank, in sequence order.
  std::vector<double> recorded_us;
  /// Matching span start times (for trace attribution of outliers).
  std::vector<sim::Time> recorded_begin;
};

class Job {
 public:
  Job(cluster::Cluster& cluster, JobConfig cfg, const WorkloadFactory& factory);
  ~Job();
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Optional co-scheduler wiring; set before launch().
  void set_hook(SchedulerHook* hook) noexcept { hook_ = hook; }

  /// Optional message-event recording (send / recv-wait / recv, with message
  /// ids) for the offline trace analyzers; set before launch(). Pairs with
  /// trace::Tracer::set_event_log on the same log to get the full
  /// happens-before event stream.
  void set_event_log(trace::EventLog* log) {
    elog_ = log;
    if (elog_ != nullptr) elog_->ensure_nodes(cluster_.size());
  }
  [[nodiscard]] trace::EventLog* event_log() const noexcept { return elog_; }

  /// Registers all tasks with the hook and wakes every task thread (and
  /// progress-engine aux threads, if configured).
  void launch();

  [[nodiscard]] bool complete() const noexcept {
    return finished_.load(std::memory_order_acquire) ==
           static_cast<int>(tasks_.size());
  }
  [[nodiscard]] sim::Time launch_time() const noexcept { return launch_time_; }
  [[nodiscard]] sim::Time completion_time() const noexcept {
    return completion_time_;
  }
  [[nodiscard]] sim::Duration elapsed() const noexcept {
    return completion_time_ - launch_time_;
  }

  [[nodiscard]] const ChannelStats& channel(std::uint32_t ch) const;
  [[nodiscard]] const JobConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const MpiConfig& mpi_config() const noexcept {
    return cfg_.mpi;
  }
  [[nodiscard]] Task& task(int rank);
  [[nodiscard]] int ntasks() const noexcept {
    return static_cast<int>(tasks_.size());
  }
  [[nodiscard]] cluster::Cluster& cluster() noexcept { return cluster_; }
  /// Total CPU consumed by all progress-engine threads.
  [[nodiscard]] sim::Duration aux_cpu_total() const;

 private:
  friend class Task;

  void inject(Task& from, int dst_rank, std::uint64_t tag, std::size_t bytes);
  void submit_io(Task& t, std::size_t bytes);
  void hw_contribute(Task& t, std::uint64_t seq, std::size_t bytes);
  /// Runs on the switch's hub shard: counts contributions and broadcasts.
  void hw_arrive(std::uint64_t seq, std::size_t bytes);
  void on_span(Task& t, std::uint32_t channel, std::uint64_t seq,
               sim::Time begin, sim::Time end);
  void task_finished(Task& t, sim::Time now);
  /// Completion epilogue (aux cancel, hook, engine stop). Under partitioned
  /// execution this runs at a synchronization barrier — no shard is firing
  /// events — so it may safely touch every node's engine.
  void wrapup();
  void rebuild_channels() const;
  void hook_detach(Task& t);
  void hook_attach(Task& t);

  /// One recorded marker span; stored per rank so shards never contend, then
  /// folded into ChannelStats in canonical (rank, span-sequence) order.
  struct SpanRec {
    std::uint32_t channel;
    double us;
    sim::Time begin;
  };

  cluster::Cluster& cluster_;
  JobConfig cfg_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<AuxThread>> aux_;
  SchedulerHook* hook_ = nullptr;
  trace::EventLog* elog_ = nullptr;
  std::vector<std::vector<SpanRec>> spans_;  // [rank], presized in ctor
  // srclint-ok(PSL402): post-run lazily-rebuilt cache behind the atomic
  // channels_dirty_ flag; rebuilt only after the shard workers have joined.
  mutable std::array<ChannelStats, kMaxChannels> channels_;
  mutable std::atomic<bool> channels_dirty_{false};
  std::unordered_map<std::uint64_t, int> hw_pending_;  // hub shard only
  race::Owned hub_owned_;  // guards hw_pending_ (the combine-unit state)
  std::atomic<int> finished_{0};
  sim::Time launch_time_{};
  sim::Time completion_time_{};
};

}  // namespace pasched::mpi
