// One MPI task: a kernel thread whose ThreadClient interprets the workload's
// MicroOps. Receives spin on the CPU (dedicated-use HPC style — this is why
// a preempted laggard stalls everyone, §2); I/O blocks (nothing to do while
// mmfsd works, §4).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/node.hpp"
#include "mpi/microop.hpp"
#include "mpi/workload.hpp"
#include "race/domain.hpp"

namespace pasched::mpi {

class Job;

inline constexpr std::uint32_t kMaxChannels = 8;

class Task final : public kern::ThreadClient {
 public:
  Task(Job& job, int rank, int size, cluster::Node& node, kern::CpuId cpu,
       std::unique_ptr<Workload> workload, sim::Rng rng);
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// Makes the task runnable (job launch).
  void launch();

  /// Message arrival from the fabric.
  void deposit(int src, std::uint64_t tag);

  /// I/O completion from the node's I/O daemon.
  void io_complete();

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] kern::Thread& thread() noexcept { return *thread_; }
  [[nodiscard]] cluster::Node& node() noexcept { return node_; }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  /// Simulated time at which this task ran out of work (valid once
  /// finished()). The job's completion time is the max over all ranks.
  [[nodiscard]] sim::Time finish_time() const noexcept { return finish_time_; }

 private:
  friend class Job;

  kern::RunDecision next(sim::Time now) override;
  void log_recv_event(bool wait, int src, std::uint64_t key, sim::Time now);
  /// Exact (collision-free) encoding: 24 bits of source rank, 40 bits of tag.
  [[nodiscard]] static std::uint64_t key_of(int src, std::uint64_t tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
           (tag & ((1ULL << 40) - 1));
  }
  [[nodiscard]] bool try_consume(int src, std::uint64_t tag);

  Job& job_;
  int rank_;
  cluster::Node& node_;
  race::Owned owned_;  // bound to the home node's shard
  kern::Thread* thread_ = nullptr;
  std::unique_ptr<Workload> workload_;
  sim::Rng rng_;
  TaskInfo info_;

  std::vector<MicroOp> queue_;
  std::size_t head_ = 0;
  bool charging_ = false;   // the front op's CPU overhead has been issued
  bool spun_ = false;       // spin-block: threshold spin already burned
  bool woken_for_recv_ = false;  // demand wakeup occurred (charge its cost)
  bool io_done_ = false;    // pending Io op has completed
  bool finished_ = false;
  sim::Time finish_time_{};
  static constexpr std::uint64_t kNoWait = UINT64_MAX;
  std::uint64_t wait_key_ = kNoWait;

  std::unordered_map<std::uint64_t, std::uint32_t> mailbox_;
  std::array<sim::Time, kMaxChannels> open_mark_{};
};

}  // namespace pasched::mpi
