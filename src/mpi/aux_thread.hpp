// The MPI progress-engine timer thread ("the auxiliary threads were
// identified as the MPI timer threads", §5.3). One per task, pinned to the
// task's CPU, woken every MP_POLLING_INTERVAL by a timer callout, burning a
// short burst at normal (decaying) user priority — which beats a
// CPU-saturated main task and disrupts tight collectives.
#pragma once

#include "kern/kernel.hpp"
#include "mpi/config.hpp"
#include "sim/random.hpp"

namespace pasched::mpi {

class AuxThread final : private kern::ThreadClient {
 public:
  AuxThread(kern::Kernel& kernel, int rank, kern::CpuId cpu,
            const MpiConfig& cfg, sim::Rng rng);
  AuxThread(const AuxThread&) = delete;
  AuxThread& operator=(const AuxThread&) = delete;

  /// Schedules the first poll; call at job launch.
  void start();
  /// Stops future polls (job teardown).
  void cancel() noexcept { cancelled_ = true; }

  [[nodiscard]] std::uint64_t polls() const noexcept { return polls_; }
  [[nodiscard]] sim::Duration total_cpu() const;

 private:
  kern::RunDecision next(sim::Time now) override;
  void schedule_poll(sim::Time due_local);
  void on_timer();

  kern::Kernel& kernel_;
  MpiConfig cfg_;
  sim::Rng rng_;
  kern::Thread* thread_ = nullptr;
  sim::Duration burst_ = sim::Duration::zero();
  bool burst_issued_ = false;
  bool cancelled_ = false;
  std::uint64_t polls_ = 0;
};

}  // namespace pasched::mpi
