#include "mpi/task.hpp"

#include "mpi/job.hpp"
#include "util/assert.hpp"

namespace pasched::mpi {

using kern::RunDecision;
using sim::Duration;
using sim::Time;

Task::Task(Job& job, int rank, int size, cluster::Node& node, kern::CpuId cpu,
           std::unique_ptr<Workload> workload, sim::Rng rng)
    : job_(job),
      rank_(rank),
      node_(node),
      workload_(std::move(workload)),
      rng_(rng) {
  PASCHED_EXPECTS(workload_ != nullptr);
  owned_.bind(node.kernel().context().shard, "mpi.Task", rank);
  info_.rank = rank;
  info_.size = size;
  info_.rng = &rng_;
  kern::ThreadSpec ts;
  ts.name = "mpi_task." + std::to_string(rank);
  ts.cls = kern::ThreadClass::AppTask;
  ts.base_priority = kern::kNormalUserBase;
  ts.fixed_priority = false;  // decays into the 90–120 band under load
  ts.home_cpu = cpu;
  ts.stealable = true;
  thread_ = &node.kernel().create_thread(std::move(ts), *this);
}

void Task::launch() { node_.kernel().wake(*thread_, kern::kExternalActor); }

bool Task::try_consume(int src, std::uint64_t tag) {
  const auto it = mailbox_.find(key_of(src, tag));
  if (it == mailbox_.end()) return false;
  if (--it->second == 0) mailbox_.erase(it);
  return true;
}

void Task::deposit(int src, std::uint64_t tag) {
  // Deliveries must arrive through the fabric/router onto the home shard —
  // a direct call from another shard's event is exactly the corruption the
  // annotation layer exists to catch.
  PASCHED_ASSERT_OWNED(owned_, "deposit");
  const std::uint64_t key = key_of(src, tag);
  ++mailbox_[key];
  if (wait_key_ != key) return;
  if (thread_->state() == kern::ThreadState::Blocked) {
    // Spin-block receive parked the task: demand-wake it on arrival.
    woken_for_recv_ = true;
    node_.kernel().wake(*thread_, kern::kExternalActor);
  } else {
    node_.kernel().kick(*thread_);
  }
}

void Task::io_complete() {
  PASCHED_ASSERT_OWNED(owned_, "io_complete");
  io_done_ = true;
  node_.kernel().wake(*thread_, kern::kExternalActor);
}

void Task::log_recv_event(bool wait, int src, std::uint64_t key, Time now) {
  trace::EventLog* lg = job_.event_log();
  if (lg == nullptr) return;
  trace::Event e;
  e.t = now;
  e.kind = wait ? trace::EventKind::MsgRecvWait : trace::EventKind::MsgRecv;
  e.node = node_.id();
  e.cpu = thread_->running_on();
  e.tid = thread_->tid();
  e.cls = kern::ThreadClass::AppTask;
  e.priority = thread_->effective_priority();
  e.src_rank = src;
  e.dst_rank = rank_;
  e.msg_id = key;
  e.thread = thread_;
  lg->record(e);
}

RunDecision Task::next(Time now) {
  for (;;) {
    if (head_ == queue_.size()) {
      queue_.clear();
      head_ = 0;
      if (!workload_->refill(info_, queue_)) {
        finished_ = true;
        job_.task_finished(*this, now);
        return RunDecision::exit();
      }
      PASCHED_ASSERT_MSG(!queue_.empty(),
                         "Workload::refill returned true with no ops");
    }
    const MicroOp& op = queue_[head_];
    switch (op.kind) {
      case MicroOp::Kind::Compute:
        ++head_;
        return RunDecision::compute(op.dur);
      case MicroOp::Kind::Send:
        if (!charging_) {
          charging_ = true;
          return RunDecision::compute(job_.mpi_config().o_send);
        }
        charging_ = false;
        job_.inject(*this, op.peer, op.tag, op.bytes);
        ++head_;
        break;
      case MicroOp::Kind::Recv: {
        if (charging_) {  // o_recv paid; message fully received
          charging_ = false;
          spun_ = false;
          ++head_;
          break;
        }
        const MpiConfig& mc = job_.mpi_config();
        if (try_consume(op.peer, op.tag)) {
          log_recv_event(/*wait=*/false, op.peer, key_of(op.peer, op.tag),
                         now);
          wait_key_ = kNoWait;
          charging_ = true;
          sim::Duration cost = mc.o_recv;
          if (woken_for_recv_) {  // arrival interrupt + wakeup path
            woken_for_recv_ = false;
            cost += mc.wakeup_cost;
          }
          return RunDecision::compute(cost);
        }
        if (wait_key_ != key_of(op.peer, op.tag)) {
          // First visit of this unsatisfied receive: record the wait start
          // (spin-block re-entry after the threshold burn is not a new wait).
          log_recv_event(/*wait=*/true, op.peer, key_of(op.peer, op.tag),
                         now);
        }
        wait_key_ = key_of(op.peer, op.tag);
        if (mc.recv_wait == RecvWait::Spin) return RunDecision::spin();
        // Spin-block (demand-based co-scheduling): burn the threshold on
        // the CPU once, then yield and wait for the arrival wakeup.
        if (!spun_ && mc.spin_threshold > sim::Duration::zero()) {
          spun_ = true;
          return RunDecision::compute(mc.spin_threshold);
        }
        return RunDecision::block();
      }
      case MicroOp::Kind::Io:
        if (io_done_) {
          io_done_ = false;
          ++head_;
          break;
        }
        job_.submit_io(*this, op.bytes);
        return RunDecision::block();
      case MicroOp::Kind::MarkBegin:
        PASCHED_ASSERT(op.channel < kMaxChannels);
        open_mark_[op.channel] = now;
        ++head_;
        break;
      case MicroOp::Kind::MarkEnd:
        PASCHED_ASSERT(op.channel < kMaxChannels);
        job_.on_span(*this, op.channel, op.seq, open_mark_[op.channel], now);
        ++head_;
        break;
      case MicroOp::Kind::HwCollective:
        // Contribution costs one message injection; the combined result
        // arrives later as a message from the switch (workloads follow this
        // op with Recv(kHwSwitchRank, seq)).
        if (!charging_) {
          charging_ = true;
          return RunDecision::compute(job_.mpi_config().o_send);
        }
        charging_ = false;
        job_.hw_contribute(*this, op.seq, op.bytes);
        ++head_;
        break;
      case MicroOp::Kind::Detach:
        job_.hook_detach(*this);
        ++head_;
        break;
      case MicroOp::Kind::Attach:
        job_.hook_attach(*this);
        ++head_;
        break;
    }
  }
}

}  // namespace pasched::mpi
