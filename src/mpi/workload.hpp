// Workload interface: a task's program, produced incrementally so that a
// million-collective run never materializes as a giant op list.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpi/microop.hpp"
#include "sim/random.hpp"

namespace pasched::mpi {

struct TaskInfo {
  int rank = 0;
  int size = 1;
  sim::Rng* rng = nullptr;  // per-task deterministic stream
};

class Workload {
 public:
  virtual ~Workload() = default;
  /// Appends the next chunk of the program to `out` (which is empty on
  /// entry). Returns false when the task has no more work (out stays empty).
  virtual bool refill(const TaskInfo& info, std::vector<MicroOp>& out) = 0;
};

/// Builds the per-rank workload instances of a job.
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(int rank, int size)>;

}  // namespace pasched::mpi
