#include "mpi/job.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace pasched::mpi {

using sim::Duration;
using sim::Time;

Job::Job(cluster::Cluster& cluster, JobConfig cfg,
         const WorkloadFactory& factory)
    : cluster_(cluster), cfg_(cfg) {
  PASCHED_EXPECTS(cfg_.ntasks >= 1);
  PASCHED_EXPECTS(cfg_.tasks_per_node >= 1);
  const int nodes_needed =
      (cfg_.ntasks + cfg_.tasks_per_node - 1) / cfg_.tasks_per_node;
  PASCHED_EXPECTS_MSG(
      cfg_.first_node + nodes_needed <= cluster_.size(),
      "job does not fit on the cluster");
  PASCHED_EXPECTS_MSG(
      cfg_.tasks_per_node <=
          cluster_.node(cfg_.first_node).kernel().ncpus(),
      "tasks_per_node exceeds CPUs per node");
  hub_owned_.bind(cluster_.router().hub_shard(), "mpi.Job.hw", 0);
  sim::Rng job_rng(cfg_.seed);
  spans_.resize(static_cast<std::size_t>(cfg_.ntasks));
  for (int rank = 0; rank < cfg_.ntasks; ++rank) {
    const int node_id = cfg_.first_node + rank / cfg_.tasks_per_node;
    const kern::CpuId cpu = rank % cfg_.tasks_per_node;
    cluster::Node& node = cluster_.node(node_id);
    PASCHED_EXPECTS_MSG(cpu < node.kernel().ncpus(),
                        "tasks_per_node exceeds CPUs per node");
    tasks_.push_back(std::make_unique<Task>(
        *this, rank, cfg_.ntasks, node, cpu, factory(rank, cfg_.ntasks),
        job_rng.fork(static_cast<std::uint64_t>(rank))));
    if (cfg_.mpi.progress_engine) {
      aux_.push_back(std::make_unique<AuxThread>(
          node.kernel(), rank, cpu, cfg_.mpi,
          job_rng.fork(1'000'000 + static_cast<std::uint64_t>(rank))));
    }
  }
}

Job::~Job() = default;

void Job::launch() {
  launch_time_ = cluster_.engine().now();
  // MPI_Init registration: each task's PID reaches the node co-scheduler
  // through the pmd control pipe.
  if (hook_ != nullptr) {
    for (auto& t : tasks_)
      hook_->register_task(t->node().id(), t->thread());
  }
  for (auto& t : tasks_) t->launch();
  for (auto& a : aux_) a->start();
}

void Job::inject(Task& from, int dst_rank, std::uint64_t tag,
                 std::size_t bytes) {
  PASCHED_EXPECTS(dst_rank >= 0 && dst_rank < ntasks());
  Task* dst = tasks_[static_cast<std::size_t>(dst_rank)].get();
  const int src_rank = from.rank();
  if (elog_ != nullptr) {
    trace::Event e;
    e.t = from.node().kernel().engine().now();  // the sender's shard clock
    e.kind = trace::EventKind::MsgSend;
    e.node = from.node().id();
    e.cpu = from.thread().running_on();
    e.tid = from.thread().tid();
    e.cls = kern::ThreadClass::AppTask;
    e.priority = from.thread().effective_priority();
    e.src_rank = src_rank;
    e.dst_rank = dst_rank;
    e.msg_id = Task::key_of(src_rank, tag);
    e.thread = &from.thread();
    elog_->record(e);
  }
  cluster_.fabric().send(from.node().id(), dst->node().id(), bytes,
                         [dst, src_rank, tag] { dst->deposit(src_rank, tag); });
}

void Job::submit_io(Task& t, std::size_t bytes) {
  daemons::IoService* local = t.node().io_service();
  PASCHED_EXPECTS_MSG(local != nullptr,
                      "workload issues I/O but the node has no I/O daemon");
  // GPFS-style request: local daemon work plus data shipped to peer nodes'
  // daemons; the request completes when every shard has been serviced.
  const int shards =
      std::min(cfg_.io_remote_shards, cluster_.size() - 1);
  Task* tp = &t;
  // The countdown only ever runs on the task's home shard: the local
  // daemon completes there, and remote shards acknowledge back over the
  // fabric (like a GPFS server reply) rather than completing in place —
  // so no atomics are needed and the wakeup lands on the right engine.
  auto wait = std::make_shared<int>(1 + std::max(0, shards));
  auto done_one = [tp, wait] {
    if (--*wait == 0) tp->io_complete();
  };
  const std::size_t share =
      bytes / static_cast<std::size_t>(1 + std::max(0, shards));
  local->submit(std::max<std::size_t>(share, 1), done_one);
  const int home = t.node().id();
  for (int s = 0; s < shards; ++s) {
    // Deterministic shard placement spread over the cluster.
    const int peer =
        (home + 1 + (t.rank() + s) % (cluster_.size() - 1)) % cluster_.size();
    if (cluster_.node(peer).io_service() == nullptr) {
      done_one();
      continue;
    }
    // Ship the data over the fabric, let the peer daemon service it, then
    // ack back to the home node.
    const std::size_t sbytes = std::max<std::size_t>(share, 1);
    Job* self = this;
    cluster_.fabric().send(home, peer, sbytes, [self, tp, wait, sbytes, peer] {
      daemons::IoService* rio = self->cluster_.node(peer).io_service();
      const int h = tp->node().id();
      rio->submit(sbytes, [self, tp, wait, peer, h] {
        self->cluster_.fabric().send(peer, h, 1, [tp, wait] {
          if (--*wait == 0) tp->io_complete();
        });
      });
    });
  }
}

void Job::hw_contribute(Task& t, std::uint64_t seq, std::size_t bytes) {
  // Contribution travels to the switch's combine unit (one wire hop). The
  // combine unit lives on the router's hub shard, so the count is only ever
  // mutated there; the wire hop is at least the fabric's guaranteed
  // lookahead, which makes this a legal cross-shard edge.
  sim::Router& r = cluster_.router();
  const sim::Duration wire =
      cluster_.fabric().latency_for(0, cluster_.size() > 1 ? 1 : 0, bytes);
  const int src = r.shard_of_node(t.node().id());
  Job* self = this;
  r.post(src, r.hub_shard(), r.engine_of(src).now() + wire,
         [self, seq, bytes] { self->hw_arrive(seq, bytes); });
}

void Job::hw_arrive(std::uint64_t seq, std::size_t bytes) {
  PASCHED_ASSERT_OWNED(hub_owned_, "hw_arrive");
  // Hub shard: the unit fires when the last task's contribution arrives and
  // broadcasts the result to every task via its adapter (one more wire hop
  // plus the combine latency) — the same end-to-end time as the classic
  // single-queue model: t_last + 2 * wire + hw_collective_latency.
  const int got = ++hw_pending_[seq];
  if (got < ntasks()) return;
  hw_pending_.erase(seq);
  sim::Router& r = cluster_.router();
  const sim::Duration wire =
      cluster_.fabric().latency_for(0, cluster_.size() > 1 ? 1 : 0, bytes);
  const int hub = r.hub_shard();
  const sim::Time at =
      r.engine_of(hub).now() + wire + cfg_.mpi.hw_collective_latency;
  for (auto& task : tasks_) {
    Task* tp = task.get();
    r.post(hub, r.shard_of_node(tp->node().id()), at,
           [tp, seq] { tp->deposit(kHwSwitchRank, seq); });
  }
}

void Job::on_span(Task& t, std::uint32_t channel, std::uint64_t /*seq*/,
                  Time begin, Time end) {
  PASCHED_ASSERT_OWNED(t.owned_, "on_span");
  PASCHED_EXPECTS(channel < kMaxChannels);
  // Recorded per rank (shards never contend); folded into ChannelStats
  // lazily in canonical (rank, span-sequence) order.
  spans_[static_cast<std::size_t>(t.rank())].push_back(
      SpanRec{channel, (end - begin).to_us(), begin});
  channels_dirty_.store(true, std::memory_order_release);
}

void Job::rebuild_channels() const {
  if (!channels_dirty_.load(std::memory_order_acquire)) return;
  for (auto& ch : channels_) ch = ChannelStats{};
  for (std::size_t rank = 0; rank < spans_.size(); ++rank) {
    for (const SpanRec& s : spans_[rank]) {
      ChannelStats& ch = channels_[s.channel];
      ch.all_us.add(s.us);
      if (static_cast<int>(rank) == cfg_.record_rank) {
        ch.recorded_us.push_back(s.us);
        ch.recorded_begin.push_back(s.begin);
      }
    }
  }
  channels_dirty_.store(false, std::memory_order_release);
}

void Job::task_finished(Task& t, Time now) {
  t.finish_time_ = now;
  if (1 + finished_.fetch_add(1, std::memory_order_acq_rel) == ntasks()) {
    // The epilogue touches other shards' engines (aux-thread timers, the
    // co-scheduler hook, the stop flag), so defer it to the router's next
    // synchronization point; the SingleRouter runs it inline.
    Job* self = this;
    cluster_.router().request_wrapup([self] { self->wrapup(); });
  }
}

void Job::wrapup() {
  completion_time_ = Time{};
  for (const auto& t : tasks_)
    completion_time_ = std::max(completion_time_, t->finish_time_);
  for (auto& a : aux_) a->cancel();
  if (hook_ != nullptr) hook_->job_ended();
  if (cfg_.stop_engine_on_complete) cluster_.router().stop_all();
}

void Job::hook_detach(Task& t) {
  if (hook_ != nullptr) hook_->detach_task(t.node().id(), t.thread());
}

void Job::hook_attach(Task& t) {
  if (hook_ != nullptr) hook_->attach_task(t.node().id(), t.thread());
}

const ChannelStats& Job::channel(std::uint32_t ch) const {
  PASCHED_EXPECTS(ch < kMaxChannels);
  rebuild_channels();
  return channels_[ch];
}

Task& Job::task(int rank) {
  PASCHED_EXPECTS(rank >= 0 && rank < ntasks());
  return *tasks_[static_cast<std::size_t>(rank)];
}

Duration Job::aux_cpu_total() const {
  Duration total = Duration::zero();
  for (const auto& a : aux_) total += a->total_cpu();
  return total;
}

}  // namespace pasched::mpi
