// The task interpreter's instruction set. Workloads (aggregate_trace, the
// ALE3D proxy, ...) emit short sequences of these on demand; the Task
// ThreadClient executes them against the kernel + fabric.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace pasched::mpi {

/// Virtual "rank" of the switch's collective-offload unit (never collides
/// with a real rank: jobs are far smaller than 2^23 tasks).
inline constexpr int kHwSwitchRank = 0x7FFFFF;

struct MicroOp {
  enum class Kind : std::uint8_t {
    Compute,    // burn CPU for `dur`
    Send,       // o_send CPU, then inject message (peer, tag, bytes)
    Recv,       // spin until (peer, tag) arrives, then o_recv CPU
    Io,         // submit `bytes` to the node I/O daemon and block
    MarkBegin,  // open timing span (channel, seq) — zero cost
    MarkEnd,    // close timing span — zero cost
    Detach,     // ask the co-scheduler to stop favoring this task (I/O phase)
    Attach,     // re-join co-scheduling
    HwCollective,  // contribute to a switch-offloaded collective (§7
                   // future work: "hardware assisted collectives"), then
                   // spin until the switch delivers the combined result
  };

  Kind kind = Kind::Compute;
  sim::Duration dur = sim::Duration::zero();  // Compute
  int peer = -1;                              // Send / Recv
  std::uint64_t tag = 0;                      // Send / Recv
  std::size_t bytes = 0;                      // Send / Io
  std::uint32_t channel = 0;                  // Mark*
  std::uint64_t seq = 0;                      // Mark*

  [[nodiscard]] static MicroOp compute(sim::Duration d) {
    MicroOp op;
    op.kind = Kind::Compute;
    op.dur = d;
    return op;
  }
  [[nodiscard]] static MicroOp send(int peer, std::uint64_t tag,
                                    std::size_t bytes) {
    MicroOp op;
    op.kind = Kind::Send;
    op.peer = peer;
    op.tag = tag;
    op.bytes = bytes;
    return op;
  }
  [[nodiscard]] static MicroOp recv(int peer, std::uint64_t tag) {
    MicroOp op;
    op.kind = Kind::Recv;
    op.peer = peer;
    op.tag = tag;
    return op;
  }
  [[nodiscard]] static MicroOp io(std::size_t bytes) {
    MicroOp op;
    op.kind = Kind::Io;
    op.bytes = bytes;
    return op;
  }
  [[nodiscard]] static MicroOp mark_begin(std::uint32_t channel,
                                          std::uint64_t seq) {
    MicroOp op;
    op.kind = Kind::MarkBegin;
    op.channel = channel;
    op.seq = seq;
    return op;
  }
  [[nodiscard]] static MicroOp mark_end(std::uint32_t channel,
                                        std::uint64_t seq) {
    MicroOp op;
    op.kind = Kind::MarkEnd;
    op.channel = channel;
    op.seq = seq;
    return op;
  }
  [[nodiscard]] static MicroOp detach() {
    MicroOp op;
    op.kind = Kind::Detach;
    return op;
  }
  [[nodiscard]] static MicroOp attach() {
    MicroOp op;
    op.kind = Kind::Attach;
    return op;
  }
  [[nodiscard]] static MicroOp hw_collective(std::uint64_t seq,
                                             std::size_t bytes) {
    MicroOp op;
    op.kind = Kind::HwCollective;
    op.seq = seq;
    op.bytes = bytes;
    return op;
  }
};

}  // namespace pasched::mpi
