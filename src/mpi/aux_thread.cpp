#include "mpi/aux_thread.hpp"

#include "util/assert.hpp"

namespace pasched::mpi {

using kern::RunDecision;
using sim::Duration;
using sim::Time;

AuxThread::AuxThread(kern::Kernel& kernel, int rank, kern::CpuId cpu,
                     const MpiConfig& cfg, sim::Rng rng)
    : kernel_(kernel), cfg_(cfg), rng_(rng) {
  kern::ThreadSpec ts;
  ts.name = "mpi_timer." + std::to_string(rank);
  ts.cls = kern::ThreadClass::AppAux;
  ts.base_priority = kern::kNormalUserBase;
  ts.fixed_priority = false;
  ts.home_cpu = cpu;
  // Bound to the task's CPU: this is why the progress engine still disrupts
  // 15 tasks-per-node runs (§5.3) even though a CPU sits idle.
  ts.stealable = false;
  thread_ = &kernel.create_thread(std::move(ts), *this);
}

void AuxThread::start() {
  // All timer threads start when the job starts, so across the cluster they
  // fire in loose lock-step every polling interval (a few ms of skew) —
  // which is why one disrupted Allreduce showed auxiliary-thread time
  // "spread over several nodes" (§5.3).
  const Duration phase =
      cfg_.polling_interval + rng_.uniform_dur(Duration::zero(), Duration::ms(5));
  schedule_poll(kernel_.local_now() + phase);
}

void AuxThread::schedule_poll(Time due_local) {
  kernel_.schedule_callout(thread_->home_cpu(), due_local,
                           [this] { on_timer(); });
}

void AuxThread::on_timer() {
  if (cancelled_) return;
  if (thread_->state() != kern::ThreadState::Blocked) {
    // Previous poll still pending (starved); skip this one.
    schedule_poll(kernel_.local_now() + cfg_.polling_interval);
    return;
  }
  burst_ = rng_.uniform_dur(cfg_.aux_burst_lo, cfg_.aux_burst_hi);
  burst_issued_ = false;
  ++polls_;
  kernel_.wake(*thread_, thread_->home_cpu());
}

RunDecision AuxThread::next(Time /*now*/) {
  if (cancelled_) return RunDecision::exit();
  if (!burst_issued_) {
    burst_issued_ = true;
    return RunDecision::compute(burst_);
  }
  schedule_poll(kernel_.local_now() + cfg_.polling_interval);
  return RunDecision::block();
}

sim::Duration AuxThread::total_cpu() const { return thread_->total_cpu(); }

}  // namespace pasched::mpi
