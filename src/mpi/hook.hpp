// The runtime's view of the co-scheduler: the "control pipe" protocol of §4.
// When a task calls MPI_Init its PID flows through the pmd to the node's
// co-scheduler (register_task); the prototype library's escape API maps to
// detach/attach. The MPI layer depends only on this interface; the actual
// co-scheduler lives in core/.
#pragma once

#include "kern/kernel.hpp"

namespace pasched::mpi {

class SchedulerHook {
 public:
  virtual ~SchedulerHook() = default;
  /// MPI_Init-time registration of a task's thread on its node.
  virtual void register_task(kern::NodeId node, kern::Thread& t) = 0;
  /// Task asks to stop being favored (entering an I/O phase).
  virtual void detach_task(kern::NodeId node, kern::Thread& t) = 0;
  /// Task re-joins co-scheduling.
  virtual void attach_task(kern::NodeId node, kern::Thread& t) = 0;
  /// All tasks of the job exited; co-schedulers shut down.
  virtual void job_ended() = 0;
};

}  // namespace pasched::mpi
