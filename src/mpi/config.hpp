// Tunables of the message-passing runtime (the simulated analogue of IBM
// Parallel Environment MPI): per-message software overheads, collective
// algorithm selection, and the timer-thread "progress engine" whose default
// 400 ms period §5.3 identifies as an interference source
// (MP_POLLING_INTERVAL).
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace pasched::mpi {

enum class AllreduceAlg {
  /// Binomial-tree reduce to rank 0 followed by binomial broadcast —
  /// the paper's "standard tree algorithm" with <= 2*log2(N) p2p steps.
  BinomialTree,
  /// Recursive doubling (with pre/post folding for non-powers of two).
  RecursiveDoubling,
  /// Switch-offloaded combine (§7 future work, "hardware assisted
  /// collectives"): one contribution per task, result broadcast by the
  /// adapter — O(1) software steps, but still gated by the slowest
  /// contributor, so OS interference remains visible.
  HardwareSwitch,
};

/// How a task waits for a message that has not arrived yet.
enum class RecvWait {
  /// Busy-wait on the CPU (dedicated-use HPC style; the paper's setting).
  Spin,
  /// Spin for `spin_threshold`, then block and rely on a wakeup at message
  /// arrival — the NOW-style demand-based co-scheduling of the related-work
  /// literature ([Ousterhout82], [Sobalvarro97], [Dusseau96], §6 category 3).
  SpinBlock,
};

struct MpiConfig {
  /// Software overhead charged on the CPU per message sent / received.
  sim::Duration o_send = sim::Duration::us(6);
  sim::Duration o_recv = sim::Duration::us(6);
  AllreduceAlg allreduce_alg = AllreduceAlg::BinomialTree;

  RecvWait recv_wait = RecvWait::Spin;
  /// SpinBlock: spin this long before yielding (zero = block immediately).
  sim::Duration spin_threshold = sim::Duration::us(50);
  /// SpinBlock: cost of the arrival interrupt + wakeup path on the receiver.
  sim::Duration wakeup_cost = sim::Duration::us(8);

  /// MPI progress-engine timer thread (one per task). The default period is
  /// IBM MPI's 400 ms; MP_POLLING_INTERVAL raises it (§5.3 uses 400 s to
  /// neutralize the threads entirely).
  /// Latency of the switch's combine stage for hardware-assisted
  /// collectives (§7 future work), charged once after the last contribution.
  sim::Duration hw_collective_latency = sim::Duration::us(5);

  bool progress_engine = true;
  sim::Duration polling_interval = sim::Duration::ms(400);
  sim::Duration aux_burst_lo = sim::Duration::us(100);
  sim::Duration aux_burst_hi = sim::Duration::us(200);
};

}  // namespace pasched::mpi
