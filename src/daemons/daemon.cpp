#include "daemons/daemon.hpp"

#include <algorithm>

#include "sim/choice.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace pasched::daemons {

using sim::Duration;
using sim::Time;

Daemon::Daemon(kern::Kernel& kernel, DaemonSpec spec, sim::Rng rng,
               kern::CpuId first_cpu)
    : kernel_(kernel), spec_(std::move(spec)), rng_(rng) {
  PASCHED_EXPECTS(spec_.workers >= 1);
  PASCHED_EXPECTS(spec_.period > Duration::zero());
  PASCHED_EXPECTS(spec_.burst_median > Duration::zero());
  for (int i = 0; i < spec_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->parent = this;
    w->index = i;
    kern::ThreadSpec ts;
    ts.name = spec_.workers == 1
                  ? spec_.name
                  : spec_.name + "[" + std::to_string(i) + "]";
    ts.cls = kern::ThreadClass::Daemon;
    ts.base_priority = spec_.priority;
    ts.fixed_priority = true;
    ts.home_cpu = (first_cpu + i) % kernel_.ncpus();
    ts.stealable = true;
    w->thread = &kernel_.create_thread(std::move(ts), *w);
    workers_.push_back(std::move(w));
  }
}

void Daemon::start() {
  Duration first = spec_.first_due;
  if (first < Duration::zero()) {
    // Arrival-phase choice point: a randomized first activation becomes an
    // explorable decision when a ChoiceSource is installed on the engine
    // (one of kArrivalPhaseBuckets evenly spaced phases across the period);
    // otherwise the seeded draw keeps historical behavior bit-for-bit.
    sim::ChoiceSource* cs = kernel_.engine().choice_source();
    if (cs != nullptr) {
      const std::size_t bucket =
          cs->choose(kArrivalPhaseBuckets, "daemon.arrival_phase");
      first = spec_.period * static_cast<std::int64_t>(bucket) /
              static_cast<std::int64_t>(kArrivalPhaseBuckets);
    } else {
      first = rng_.uniform_dur(Duration::zero(), spec_.period);
    }
  }
  const Time base_local = kernel_.local_now() + first;
  for (auto& w : workers_) schedule_activation(*w, base_local);
}

void Daemon::schedule_activation(Worker& w, Time due_local) {
  w.due_at = due_local;
  Worker* wp = &w;
  kernel_.schedule_callout(w.thread->home_cpu(), due_local,
                           [this, wp] { activate(*wp); });
}

Duration Daemon::draw_burst(const Worker& w, Time now_local) {
  double scale = 1.0;
  if (spec_.accumulates && ever_ran_) {
    // Work denied or delayed piles up: scale with elapsed time since the
    // last completed activation (≥ 1 period => ≥ nominal work).
    const double elapsed =
        static_cast<double>((now_local - last_completion_local_).count());
    const double nominal = static_cast<double>(spec_.period.count());
    scale = std::clamp(elapsed / nominal, 1.0, spec_.accumulation_cap);
  }
  if (ever_ran_ && spec_.cold_fault_factor > 0.0 &&
      now_local - last_completion_local_ >= spec_.cold_threshold) {
    scale *= 1.0 + spec_.cold_fault_factor;
  }
  const double median_ns =
      static_cast<double>(spec_.burst_median.count()) /
      static_cast<double>(spec_.workers);
  const double ns = rng_.lognormal_med(median_ns, spec_.burst_sigma) * scale;
  (void)w;
  return std::max(Duration::us(1), Duration::ns(static_cast<std::int64_t>(ns)));
}

void Daemon::activate(Worker& w) {
  // Exactly one activation is outstanding per worker (the next one is only
  // scheduled when this one completes), so the thread must be idle here.
  PASCHED_ASSERT(w.thread->state() == kern::ThreadState::Blocked);
  w.burst_issued = false;
  w.pending = true;
  ++stats_.activations;
  // The callout runs in tick context on the worker's home CPU.
  kernel_.wake(*w.thread, w.thread->home_cpu());
}

kern::RunDecision Daemon::Worker::next(Time /*now*/) {
  if (!burst_issued) {
    burst_issued = true;
    // The burst is sized when the daemon finally gets the CPU: work denied
    // in the meantime has piled up (§3.1.3's deliberate effect).
    current_burst = parent->draw_burst(*this, parent->kernel_.local_now());
    return kern::RunDecision::compute(current_burst);
  }
  parent->on_worker_done(*this, parent->kernel_.local_now());
  return kern::RunDecision::block();
}

void Daemon::on_worker_done(Worker& w, Time /*now*/) {
  const Time lnow = kernel_.local_now();
  w.pending = false;
  stats_.total_burst += w.current_burst;
  ever_ran_ = true;
  last_completion_local_ = lnow;
  const Duration delay = lnow - w.due_at;
  stats_.max_completion_delay = std::max(stats_.max_completion_delay, delay);
  if (spec_.deadline > Duration::zero()) {
    if (delay > spec_.deadline) {
      // A completion N deadlines late is equivalent to N missed heartbeats
      // in a row — membership services count absence, not tardiness.
      const auto equiv = static_cast<std::uint64_t>(
          std::max<std::int64_t>(1, delay / spec_.deadline));
      stats_.deadline_misses += equiv;
      consecutive_misses_ += equiv;
      stats_.max_consecutive_misses =
          std::max(stats_.max_consecutive_misses, consecutive_misses_);
    } else {
      consecutive_misses_ = 0;
    }
  }
  // Next activation: nominally one period after the *scheduled* time, but
  // never in the past (missed activations coalesce; accumulation covers the
  // lost work).
  const Time next_due =
      std::max(w.due_at + rng_.jittered(spec_.period, spec_.period_jitter),
               lnow + Duration::us(1));
  schedule_activation(w, next_due);
}

double Daemon::duty_fraction() const noexcept {
  return static_cast<double>(spec_.burst_median.count()) /
         static_cast<double>(spec_.period.count());
}

sim::Duration Daemon::worst_pending_delay() const {
  if (spec_.deadline <= Duration::zero()) return Duration::zero();
  const Time lnow = kernel_.local_now();
  Duration worst = Duration::zero();
  for (const auto& w : workers_) {
    if (!w->pending) continue;
    worst = std::max(worst, lnow - w->due_at);
  }
  return worst;
}

bool Daemon::evicted(std::uint64_t tolerance) const noexcept {
  if (stats_.max_consecutive_misses > tolerance) return true;
  // A daemon that has been *unable to finish at all* for several deadlines
  // is just as dead as one that repeatedly missed them ("the only way to
  // recover control was to reboot the node", §4).
  if (spec_.deadline > Duration::zero()) {
    const Duration pending = worst_pending_delay();
    if (pending > spec_.deadline * static_cast<std::int64_t>(tolerance + 1))
      return true;
  }
  return false;
}

}  // namespace pasched::daemons
