#include "daemons/io_service.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pasched::daemons {

using sim::Duration;
using sim::Time;

IoService::IoService(kern::Kernel& kernel, IoServiceConfig cfg)
    : kernel_(kernel), cfg_(cfg) {
  owned_.bind(kernel.context().shard, "daemons.IoService", kernel.node_id());
  kern::ThreadSpec ts;
  ts.name = "mmfsd";
  ts.cls = kern::ThreadClass::Daemon;
  ts.base_priority = cfg_.priority;
  ts.fixed_priority = true;
  ts.home_cpu = cfg_.home_cpu;
  ts.stealable = true;
  thread_ = &kernel_.create_thread(std::move(ts), *this);
}

void IoService::submit(std::size_t bytes, sim::Engine::Callback on_complete) {
  // Remote GPFS shards must ship their requests over the fabric, never
  // enqueue into a peer daemon's queue from their own shard.
  PASCHED_ASSERT_OWNED(owned_, "submit");
  queue_.push_back(Request{bytes, kernel_.engine().now(), std::move(on_complete)});
  ++stats_.requests;
  stats_.bytes += bytes;
  if (thread_->state() == kern::ThreadState::Blocked)
    kernel_.wake(*thread_, kern::kExternalActor);
}

kern::RunDecision IoService::next(Time now) {
  if (servicing_) {
    // Burst for the front request just completed: deliver the completion.
    servicing_ = false;
    PASCHED_ASSERT(!queue_.empty());
    Request req = std::move(queue_.front());
    queue_.pop_front();
    stats_.max_queue_delay =
        std::max(stats_.max_queue_delay, now - req.submitted);
    req.on_complete();
  }
  if (queue_.empty()) return kern::RunDecision::block();
  const Request& front = queue_.front();
  const Duration service =
      cfg_.per_request +
      cfg_.per_byte * static_cast<std::int64_t>(front.bytes);
  stats_.busy += service;
  servicing_ = true;
  return kern::RunDecision::compute(service);
}

}  // namespace pasched::daemons
