#include "daemons/registry.hpp"

#include "util/assert.hpp"

namespace pasched::daemons {

using sim::Duration;

namespace {

DaemonSpec make(const char* name, kern::Priority prio, Duration period,
                Duration burst, double sigma = 0.30, bool accumulates = true) {
  DaemonSpec s;
  s.name = name;
  s.priority = prio;
  s.period = period;
  s.burst_median = burst;
  s.burst_sigma = sigma;
  s.accumulates = accumulates;
  return s;
}

}  // namespace

std::vector<DaemonSpec> standard_daemon_specs() {
  std::vector<DaemonSpec> v;
  // Workload daemons (file system, membership, batch system, monitoring) —
  // the cast of §5.3's trace analysis. Priorities better (lower) than the
  // 90–120 band user processes decay into.
  v.push_back(make("syncd", 60, Duration::sec(60), Duration::ms(300), 0.35));
  v.push_back(make("mld", 50, Duration::ms(500), Duration::us(1500), 0.30));
  v.push_back(make("hatsd", 38, Duration::sec(1), Duration::ms(4), 0.20));
  v.push_back(make("hats_nim", 39, Duration::sec(1), Duration::ms(2), 0.20));
  v.push_back(make("hagsd", 42, Duration::sec(5), Duration::ms(10), 0.30));
  v.push_back(make("inetd", 60, Duration::sec(120), Duration::ms(40), 0.40));
  v.push_back(
      make("LoadL_startd", 58, Duration::sec(30), Duration::ms(150), 0.40));
  v.push_back(make("LoadL_kbdd", 60, Duration::sec(60), Duration::ms(30), 0.40));
  v.push_back(make("hostmibd", 60, Duration::sec(60), Duration::ms(150), 0.40));
  v.push_back(make("snmpd", 60, Duration::sec(30), Duration::ms(60), 0.40));
  v.push_back(make("sendmail", 60, Duration::sec(300), Duration::ms(100), 0.40));
  v.push_back(make("errdemon", 60, Duration::sec(30), Duration::ms(25), 0.30));
  // Interrupt-level work (switch adapter, disk): short, frequent, does not
  // accumulate when skipped.
  v.push_back(make("phxentdd", 36, Duration::ms(100), Duration::us(150), 0.20,
                   /*accumulates=*/false));
  v.push_back(make("caddpin", 36, Duration::ms(200), Duration::us(200), 0.20,
                   /*accumulates=*/false));
  v.push_back(make("gil", 37, Duration::ms(200), Duration::us(500), 0.20,
                   /*accumulates=*/false));
  return v;
}

NodeDaemons::NodeDaemons(kern::Kernel& kernel, const RegistryConfig& cfg,
                         sim::Rng rng) {
  PASCHED_EXPECTS(cfg.intensity > 0.0);
  owned_.bind(kernel.context().shard, "daemons.NodeDaemons",
              kernel.node_id());
  auto specs = standard_daemon_specs();
  kern::CpuId cpu = 0;
  std::uint64_t stream = 0;
  for (auto& spec : specs) {
    spec.burst_median = spec.burst_median * cfg.intensity;
    if (spec.name == "hatsd") spec.deadline = cfg.heartbeat_deadline;
    auto d = std::make_unique<Daemon>(kernel, spec, rng.fork(stream++), cpu);
    if (spec.name == "hatsd") heartbeat_ = d.get();
    daemons_.push_back(std::move(d));
    cpu = (cpu + 1) % kernel.ncpus();
  }
  PASCHED_ASSERT(heartbeat_ != nullptr);
  if (cfg.cron) {
    // The administrative health check: every 15 minutes, Perl scripts and
    // utility commands totalling ~600 ms at priority 56, spread over several
    // child processes (so it can consume >1 CPU briefly).
    DaemonSpec cron = make("cron_health", 56, Duration::sec(900),
                           Duration::ms(600) * cfg.intensity, 0.25,
                           /*accumulates=*/false);
    cron.workers = 4;
    cron.first_due = cfg.cron_first_due;
    auto d = std::make_unique<Daemon>(kernel, cron, rng.fork(stream++), cpu);
    cron_ = d.get();
    daemons_.push_back(std::move(d));
  }
  if (cfg.io_service) io_ = std::make_unique<IoService>(kernel, cfg.io);
}

void NodeDaemons::start() {
  PASCHED_ASSERT_OWNED(owned_, "start");
  for (auto& d : daemons_) d->start();
}

double NodeDaemons::nominal_duty() const {
  double total = 0.0;
  for (const auto& d : daemons_) total += d->duty_fraction();
  return total;
}

bool NodeDaemons::any_evicted() const {
  for (const auto& d : daemons_)
    if (d->spec().deadline > Duration::zero() && d->evicted()) return true;
  return false;
}

}  // namespace pasched::daemons
