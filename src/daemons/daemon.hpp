// Periodic system-daemon model. Each daemon owns one or more kernel threads
// that wake on timer callouts (so activations batch to tick boundaries,
// which is what makes the "big tick" change effective), run a stochastic
// CPU burst at a fixed favored priority, and block again.
//
// Two behaviours matter for fidelity to §3.1.3:
//  * accumulation — workload daemons (syncd, GPFS flushers, ...) that are
//    denied CPU do not lose their work; it piles up and the next burst is
//    proportionally longer (capped). This is why co-scheduling conserves
//    daemon work while still helping the parallel job.
//  * cold-start page faults — a daemon that has not run for a while takes
//    extra faults, inflating its burst (§5.3 observes exactly this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kern/kernel.hpp"
#include "sim/random.hpp"

namespace pasched::daemons {

struct DaemonSpec {
  std::string name;
  kern::Priority priority = 60;
  /// Mean activation period.
  sim::Duration period = sim::Duration::sec(60);
  /// Uniform jitter fraction applied to each period.
  double period_jitter = 0.10;
  /// Median CPU demand per activation (total across workers); lognormal.
  sim::Duration burst_median = sim::Duration::ms(1);
  double burst_sigma = 0.30;
  /// Number of worker threads (cron's Perl + utility children).
  int workers = 1;
  /// Missed/denied activations accumulate into a longer burst (capped).
  bool accumulates = true;
  double accumulation_cap = 3.0;
  /// Extra runtime fraction when the daemon has been idle long enough for
  /// its pages to be evicted.
  double cold_fault_factor = 0.35;
  sim::Duration cold_threshold = sim::Duration::sec(30);
  /// Completion deadline measured from the scheduled activation time;
  /// zero = no deadline (used for hatsd heartbeats).
  sim::Duration deadline = sim::Duration::zero();
  /// First activation offset (local time); negative = randomized phase.
  sim::Duration first_due = sim::Duration::ns(-1);
};

struct DaemonStats {
  std::uint64_t activations = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t max_consecutive_misses = 0;
  sim::Duration total_burst = sim::Duration::zero();
  sim::Duration max_completion_delay = sim::Duration::zero();
};

class Daemon {
 public:
  /// When `first_due` is negative and a sim::ChoiceSource is installed on
  /// the engine, start() asks it for the arrival phase (one of this many
  /// evenly spaced offsets across the period) instead of drawing from the
  /// seeded Rng — making daemon arrival timing an explorable choice point.
  static constexpr std::size_t kArrivalPhaseBuckets = 4;

  /// Worker threads are homed round-robin starting at `first_cpu`.
  Daemon(kern::Kernel& kernel, DaemonSpec spec, sim::Rng rng,
         kern::CpuId first_cpu);
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Schedules the first activation. Call once, before the engine runs.
  void start();

  [[nodiscard]] const DaemonSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const DaemonStats& stats() const noexcept { return stats_; }
  /// True if consecutive deadline misses exceeded the tolerance, or a
  /// pending activation is overdue by more than (tolerance+1) deadlines —
  /// the "membership daemon timed out, node must be rebooted" failure of §4.
  [[nodiscard]] bool evicted(std::uint64_t tolerance = 5) const noexcept;
  /// Longest overdue-ness of a still-unfinished activation (deadline-bearing
  /// daemons only).
  [[nodiscard]] sim::Duration worst_pending_delay() const;
  /// Long-run average CPU demand as a fraction of one CPU.
  [[nodiscard]] double duty_fraction() const noexcept;

 private:
  struct Worker final : kern::ThreadClient {
    Daemon* parent = nullptr;
    int index = 0;
    kern::Thread* thread = nullptr;
    bool burst_issued = false;
    bool pending = false;  // activated but not yet completed
    sim::Duration current_burst = sim::Duration::zero();
    sim::Time due_at{};  // scheduled (local) activation time
    kern::RunDecision next(sim::Time now) override;
  };

  void schedule_activation(Worker& w, sim::Time due_local);
  void activate(Worker& w);
  void on_worker_done(Worker& w, sim::Time now);
  [[nodiscard]] sim::Duration draw_burst(const Worker& w, sim::Time now_local);

  kern::Kernel& kernel_;
  DaemonSpec spec_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Worker>> workers_;
  DaemonStats stats_;
  std::uint64_t consecutive_misses_ = 0;
  sim::Time last_completion_local_{};
  bool ever_ran_ = false;
};

}  // namespace pasched::daemons
