// The canonical interference workload: the AIX daemon population the paper's
// traces identified (syncd, mmfsd, hatsd, hats_nim, inetd, LoadL_startd,
// mld, hostmibd, plus interrupt-level work like caddpin/phxentdd), and the
// 15-minute administrative cron health check whose 600 ms of priority-56
// utility work produced Figure 4's worst outlier.
//
// Parameters are calibrated so that, on an idle 16-way node, background
// activity lands in the 0.2%–1.1%-of-each-CPU band reported in §2
// ([Jones03]); bench/tab_os_overhead measures this.
#pragma once

#include <memory>
#include <vector>

#include "daemons/daemon.hpp"
#include "daemons/io_service.hpp"
#include "race/domain.hpp"

namespace pasched::daemons {

struct RegistryConfig {
  /// Global multiplier on burst sizes — the knob for "quiet" vs "noisy"
  /// machine configurations (1.0 ≈ mid-band).
  double intensity = 1.0;
  /// Install the 15-minute administrative cron health check.
  bool cron = true;
  /// Cron phase: local time of its first run; negative = randomized.
  sim::Duration cron_first_due = sim::Duration::ns(-1);
  /// Heartbeat (hatsd) completion deadline; misses model membership
  /// timeouts. The default is generous because the paper notes daemon
  /// timeout tolerances had to be extended to coexist with co-scheduling.
  sim::Duration heartbeat_deadline = sim::Duration::sec(5);
  /// Install the GPFS-like I/O service daemon (mmfsd).
  bool io_service = true;
  IoServiceConfig io;
};

/// The full daemon population of one node.
class NodeDaemons {
 public:
  NodeDaemons(kern::Kernel& kernel, const RegistryConfig& cfg, sim::Rng rng);
  NodeDaemons(const NodeDaemons&) = delete;
  NodeDaemons& operator=(const NodeDaemons&) = delete;

  /// Schedules all first activations; call before running the engine.
  void start();

  [[nodiscard]] const std::vector<std::unique_ptr<Daemon>>& daemons() const {
    return daemons_;
  }
  /// nullptr when RegistryConfig::io_service is false.
  [[nodiscard]] IoService* io_service() noexcept { return io_.get(); }
  /// The membership heartbeat daemon (for eviction checks); never null.
  [[nodiscard]] const Daemon& heartbeat() const { return *heartbeat_; }
  [[nodiscard]] const Daemon* cron() const noexcept { return cron_; }

  /// Sum of nominal duty fractions (of one CPU) across all daemons.
  [[nodiscard]] double nominal_duty() const;
  /// True if any deadline-bearing daemon exceeded its miss tolerance.
  [[nodiscard]] bool any_evicted() const;

 private:
  race::Owned owned_;
  std::vector<std::unique_ptr<Daemon>> daemons_;
  std::unique_ptr<IoService> io_;
  Daemon* heartbeat_ = nullptr;
  Daemon* cron_ = nullptr;
};

/// The daemon specs used by NodeDaemons, pre-intensity (exposed for tests
/// and the OS-overhead bench).
[[nodiscard]] std::vector<DaemonSpec> standard_daemon_specs();

}  // namespace pasched::daemons
