// The parallel-filesystem I/O daemon (GPFS mmfsd in the paper). Application
// tasks submit I/O requests and block; the daemon needs CPU to service them.
// This is the dependency that made naive co-scheduling *slow down* ALE3D
// (§5.3): deny mmfsd the CPU for 90% of a 5-second window and every
// checkpoint stretches accordingly. The fix — favored task priority placed
// just *above* the daemons but below mmfsd — is exercised against this class.
#pragma once

#include <cstdint>
#include <deque>

#include "kern/kernel.hpp"
#include "race/domain.hpp"
#include "sim/engine.hpp"

namespace pasched::daemons {

struct IoServiceConfig {
  /// mmfsd dispatch priority (fixed). The paper's tuned setup pins this to
  /// 40 and the application's favored priority to 41.
  kern::Priority priority = 40;
  /// Per-request CPU overhead (metadata, buffer management).
  sim::Duration per_request = sim::Duration::us(250);
  /// CPU cost per byte moved (≈100 MB/s effective single-daemon bandwidth).
  sim::Duration per_byte = sim::Duration::ns(10);
  kern::CpuId home_cpu = 0;
};

struct IoServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  sim::Duration busy = sim::Duration::zero();
  sim::Duration max_queue_delay = sim::Duration::zero();
};

class IoService final : private kern::ThreadClient {
 public:
  IoService(kern::Kernel& kernel, IoServiceConfig cfg);

  /// Submits an I/O request; `on_complete` runs (in daemon context) when the
  /// daemon has finished servicing it. Callers typically block their thread
  /// and have on_complete wake it.
  void submit(std::size_t bytes, sim::Engine::Callback on_complete);

  [[nodiscard]] const IoServiceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] kern::Thread& thread() noexcept { return *thread_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }

 private:
  struct Request {
    std::size_t bytes;
    sim::Time submitted;
    sim::Engine::Callback on_complete;
  };

  kern::RunDecision next(sim::Time now) override;

  kern::Kernel& kernel_;
  IoServiceConfig cfg_;
  race::Owned owned_;  // the request queue belongs to the home node's shard
  kern::Thread* thread_ = nullptr;
  std::deque<Request> queue_;
  bool servicing_ = false;  // a request's burst has been issued
  IoServiceStats stats_;
};

}  // namespace pasched::daemons
