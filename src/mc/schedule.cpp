#include "mc/schedule.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace pasched::mc {

std::size_t Schedule::deviations() const noexcept {
  std::size_t n = 0;
  for (const Choice& c : choices_)
    if (c.pick != 0) ++n;
  return n;
}

Schedule Schedule::prefix(std::size_t n) const {
  PASCHED_EXPECTS(n <= choices_.size());
  return Schedule{std::vector<Choice>(choices_.begin(),
                                      choices_.begin() +
                                          static_cast<std::ptrdiff_t>(n))};
}

std::string Schedule::str() const {
  std::ostringstream os;
  for (const Choice& c : choices_)
    os << c.tag << " " << c.arity << " " << c.pick << "\n";
  return os.str();
}

std::string Schedule::serialize() const {
  return "# pasched-mc schedule v1 — replay with pasched-mc --replay or "
         "pasched-lint --trace-run --schedule\n" +
         str();
}

Schedule Schedule::parse(const std::string& text) {
  std::vector<Choice> choices;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    Choice c;
    if (!(ls >> c.tag)) continue;  // blank / comment-only line
    long long arity = -1;
    long long pick = -1;
    std::string extra;
    if (!(ls >> arity >> pick) || (ls >> extra) || arity < 1 || pick < 0 ||
        pick >= arity) {
      throw std::logic_error("schedule line " + std::to_string(lineno) +
                             ": expected 'tag arity pick' with pick < arity");
    }
    c.arity = static_cast<std::size_t>(arity);
    c.pick = static_cast<std::size_t>(pick);
    choices.push_back(std::move(c));
  }
  return Schedule{std::move(choices)};
}

std::size_t GuidedSource::choose(std::size_t n, const char* tag) {
  PASCHED_EXPECTS(n >= 1);
  std::size_t pick = 0;
  const std::size_t i = trace_.size();
  if (i < prefix_.size()) {
    pick = prefix_.at(i).pick;
    if (pick >= n) {
      pick = n - 1;
      clamped_ = true;
    }
  }
  trace_.push_back(Choice{tag, n, pick});
  return pick;
}

std::size_t RecordingTieBreak::pick(
    const std::vector<sim::TieCandidate>& ties) {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(ties.size());
  for (const sim::TieCandidate& c : ties) seqs.push_back(c.seq);
  tie_seqs_.push_back(std::move(seqs));
  return src_.choose(ties.size(), "engine.tiebreak");
}

}  // namespace pasched::mc
