// The system-under-test abstraction for the model checker. A Model owns one
// fresh sim::Engine plus whatever kernels/threads/daemons the scenario
// needs; the explorer re-constructs it for every run (stateless model
// checking by re-execution) and steers all its nondeterminism through the
// engine's ChoiceSource/TieBreak seam.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kern/kernel.hpp"
#include "sim/engine.hpp"
#include "trace/events.hpp"
#include "trace/trace.hpp"

namespace pasched::daemons {
class Daemon;
}

namespace pasched::mc {

class Model {
 public:
  virtual ~Model() = default;

  [[nodiscard]] virtual sim::Engine& engine() = 0;
  [[nodiscard]] virtual trace::EventLog& event_log() = 0;

  /// Arms the model (kernel start(), daemon start(), initial wakes). Called
  /// exactly once, after the explorer has installed its ChoiceSource and
  /// TieBreak on engine() — so setup-time choice points are explorable.
  virtual void setup() = 0;

  /// Events after this time are not executed; liveness/completion verdicts
  /// are rendered at the horizon.
  [[nodiscard]] virtual sim::Time horizon() const = 0;

  /// Hash of the model + engine state at a quiescent point. Two runs whose
  /// hashes collide are treated as having converged (visited-set pruning),
  /// so the hash must cover everything scheduling-relevant and must NOT
  /// cover history artifacts (event seq counters, trace logs).
  [[nodiscard]] virtual std::uint64_t state_hash() const = 0;

  /// Structural invariants, checked at every quiescent point. Throws
  /// check::CheckError on violation (the explorer catches it).
  virtual void check_safety() const = 0;

  /// At the horizon: an error message if some thread that must finish did
  /// not (the lost-wakeup oracle), std::nullopt when all completed.
  [[nodiscard]] virtual std::optional<std::string> check_completion()
      const = 0;

  /// Bounded-liveness window: every Ready thread must be dispatched within
  /// this much simulated time. zero() disables the oracle for this model.
  [[nodiscard]] virtual sim::Duration liveness_window() const {
    return sim::Duration::zero();
  }

  /// Scalar outcome of the run (seconds) for the divergence oracle.
  [[nodiscard]] virtual double outcome() const = 0;

  /// Maximum allowed outcome spread across interleavings before the
  /// divergence oracle fires; <= 0 disables it for this model.
  [[nodiscard]] virtual double divergence_tolerance() const { return 0.0; }

  /// Called after every engine step (quiescent). Default no-op.
  virtual void after_step(sim::Time /*now*/) {}
};

/// Convenience base for kernel-backed scenarios: owns the engine, an event
/// log + tracer mirroring all scheduling events, any number of kernels, and
/// a "must complete" thread set that drives check_completion()/outcome().
class KernelModel : public Model {
 public:
  KernelModel();
  ~KernelModel() override;

  [[nodiscard]] sim::Engine& engine() override { return engine_; }
  [[nodiscard]] trace::EventLog& event_log() override { return elog_; }

  [[nodiscard]] std::uint64_t state_hash() const override;
  void check_safety() const override;
  [[nodiscard]] std::optional<std::string> check_completion() const override;
  /// Completion time of the must-complete set (horizon if it never
  /// completed). Models without required threads report the horizon.
  [[nodiscard]] double outcome() const override;
  void after_step(sim::Time now) override;

 protected:
  /// Creates a kernel for node `node` and registers it with the tracer.
  kern::Kernel& add_kernel(int node, int ncpus, kern::Tunables tun);
  /// Marks a thread as required to reach Done by the horizon.
  void require_done(const kern::Thread& t);
  [[nodiscard]] bool all_required_done() const;

  sim::Engine engine_;
  trace::EventLog elog_;
  trace::Tracer tracer_;
  std::vector<std::unique_ptr<kern::Kernel>> kernels_;
  std::vector<const kern::Thread*> required_;
  sim::Time completion_time_ = sim::Time::max();
};

using ModelFactory = std::function<std::unique_ptr<Model>()>;

}  // namespace pasched::mc
