// A Schedule is the model checker's unit of control: the ordered list of
// bounded decisions (tie-breaks, daemon arrival phases, tick stagger) that a
// run consumed. Replaying the same schedule through a GuidedSource makes any
// counterexample bit-reproducible; extending a prefix with a different pick
// is how the DFS explorer enumerates the choice tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/choice.hpp"

namespace pasched::mc {

/// One recorded decision: at a choice point named `tag` with `arity`
/// alternatives, `pick` was taken.
struct Choice {
  std::string tag;
  std::size_t arity = 0;
  std::size_t pick = 0;
  friend bool operator==(const Choice&, const Choice&) = default;
};

/// An ordered list of decisions. The first size() choice points of a run
/// replay these picks; every later choice point takes the default (0),
/// which reproduces FIFO tie-breaking and phase bucket 0.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<Choice> choices)
      : choices_(std::move(choices)) {}

  [[nodiscard]] std::size_t size() const noexcept { return choices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return choices_.empty(); }
  [[nodiscard]] const Choice& at(std::size_t i) const { return choices_[i]; }
  [[nodiscard]] Choice& at(std::size_t i) { return choices_[i]; }
  [[nodiscard]] const std::vector<Choice>& choices() const noexcept {
    return choices_;
  }
  void push_back(Choice c) { choices_.push_back(std::move(c)); }
  void pop_back() { choices_.pop_back(); }

  /// Number of non-default (pick != 0) decisions — the counterexample's
  /// real complexity; default picks replay for free.
  [[nodiscard]] std::size_t deviations() const noexcept;

  /// The first n choices.
  [[nodiscard]] Schedule prefix(std::size_t n) const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

  /// Human-readable one-choice-per-line form ("tag arity pick").
  [[nodiscard]] std::string str() const;
  /// Same as str() plus a header comment; parse() accepts it back.
  [[nodiscard]] std::string serialize() const;
  /// Parses serialize()/str() output. '#' starts a comment; blank lines are
  /// skipped. Throws std::logic_error on malformed lines or pick >= arity.
  [[nodiscard]] static Schedule parse(const std::string& text);

 private:
  std::vector<Choice> choices_;
};

/// A ChoiceSource that replays a schedule prefix and defaults to 0 beyond
/// it, recording every decision actually made (with the live arity). Replay
/// is lenient about arity drift: a prefix pick is clamped to the live
/// arity - 1, so slightly stale counterexamples still steer the run.
class GuidedSource final : public sim::ChoiceSource {
 public:
  explicit GuidedSource(Schedule prefix) : prefix_(std::move(prefix)) {}

  std::size_t choose(std::size_t n, const char* tag) override;

  /// Everything decided so far (prefix replays + default suffix).
  [[nodiscard]] const Schedule& trace() const noexcept { return trace_; }
  [[nodiscard]] std::size_t decisions() const noexcept {
    return trace_.size();
  }
  /// True if any replayed pick had to be clamped to a smaller live arity.
  [[nodiscard]] bool clamped() const noexcept { return clamped_; }

 private:
  Schedule prefix_;
  Schedule trace_;
  bool clamped_ = false;
};

/// The tie-break the explorer installs: routes the decision to a
/// GuidedSource and remembers each choice point's candidate seq numbers so
/// the DPOR reduction can map alternatives back to trace windows.
class RecordingTieBreak final : public sim::TieBreak {
 public:
  explicit RecordingTieBreak(GuidedSource& src) : src_(src) {}

  std::size_t pick(const std::vector<sim::TieCandidate>& ties) override;
  [[nodiscard]] const char* name() const noexcept override {
    return "mc-recording";
  }

  /// tie_seqs()[k] lists the candidate seqs of the k-th *tie-break* choice
  /// (other choice kinds do not appear here); indexed separately from the
  /// GuidedSource trace, which interleaves all choice kinds.
  [[nodiscard]] const std::vector<std::vector<std::uint64_t>>& tie_seqs()
      const noexcept {
    return tie_seqs_;
  }

 private:
  GuidedSource& src_;
  std::vector<std::vector<std::uint64_t>> tie_seqs_;
};

}  // namespace pasched::mc
