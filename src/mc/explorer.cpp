#include "mc/explorer.hpp"

#include <algorithm>
#include <set>

#include "analysis/hb.hpp"
#include "check/check.hpp"
#include "sim/random.hpp"
#include "util/assert.hpp"

namespace pasched::mc {

namespace {

/// Mixes one decided choice into the running pre-choice hash so that
/// several choices consumed within the same engine step (e.g. during
/// setup) get distinct, path-dependent pre-states for visited pruning.
std::uint64_t mix_choice(std::uint64_t h, const Choice& c) {
  std::uint64_t state = h;
  for (const char ch : c.tag)
    state ^= static_cast<std::uint64_t>(ch) * 0x100000001b3ULL;
  state ^= (static_cast<std::uint64_t>(c.arity) << 32) ^
           static_cast<std::uint64_t>(c.pick);
  return sim::splitmix64(state);
}

constexpr const char* kTieBreakTag = "engine.tiebreak";

}  // namespace

const char* to_string(Oracle o) noexcept {
  switch (o) {
    case Oracle::Safety: return "safety";
    case Oracle::Liveness: return "liveness";
    case Oracle::Completion: return "completion";
    case Oracle::Divergence: return "divergence";
  }
  return "?";
}

Explorer::Explorer(ModelFactory factory, ExploreOptions opts)
    : factory_(std::move(factory)), opts_(opts) {}

sim::Duration Explorer::effective_window(const Model& m) const {
  if (opts_.liveness_window < sim::Duration::zero())
    return m.liveness_window();
  return opts_.liveness_window;  // zero disables
}

double Explorer::effective_tolerance(const Model& m) const {
  if (opts_.divergence_tolerance < 0.0) return m.divergence_tolerance();
  return opts_.divergence_tolerance;  // zero disables
}

RunRecord Explorer::run_schedule(const Schedule& prefix) {
  RunRecord rec;
  GuidedSource src(prefix);
  RecordingTieBreak tb(src);
  std::unique_ptr<Model> model = factory_();
  sim::Engine& eng = model->engine();
  eng.set_choice_source(&src);
  eng.set_tie_break(&tb);
  const sim::Time horizon = model->horizon();
  std::optional<Violation> violation;
  std::size_t decided = 0;
  // Assigns pre-choice hashes for every decision consumed since the last
  // quiescent point, chaining same-step choices together.
  const auto absorb_choices = [&](std::uint64_t quiescent_hash) {
    std::uint64_t h = quiescent_hash;
    for (; decided < src.decisions(); ++decided) {
      rec.pre_hash.push_back(h);
      h = mix_choice(h, src.trace().at(decided));
    }
  };
  try {
    const std::uint64_t h0 = model->state_hash();
    model->setup();
    absorb_choices(h0);
    model->check_safety();
    while (true) {
      const sim::Time next = eng.next_event_time();
      if (next == sim::Time::max() || next > horizon) break;
      const std::uint64_t h = model->state_hash();
      const std::size_t elog_before = model->event_log().size();
      eng.step();
      ++stats_.steps;
      model->after_step(eng.now());
      model->check_safety();
      absorb_choices(h);
      rec.window_of_seq[eng.last_fired_seq()] = {elog_before,
                                                model->event_log().size()};
    }
  } catch (const check::CheckError& e) {
    violation = Violation{Oracle::Safety, e.what(), Schedule{}};
  }
  rec.trace = src.trace();
  rec.pre_hash.resize(rec.trace.size(), 0);
  rec.tie_seqs.resize(rec.trace.size());
  {
    std::size_t k = 0;
    for (std::size_t i = 0; i < rec.trace.size(); ++i) {
      if (rec.trace.at(i).tag == kTieBreakTag && k < tb.tie_seqs().size())
        rec.tie_seqs[i] = tb.tie_seqs()[k++];
    }
  }
  rec.events = model->event_log().events();
  if (!violation) {
    const sim::Duration window = effective_window(*model);
    if (window > sim::Duration::zero())
      violation = check_liveness(rec, window, horizon);
  }
  if (!violation) {
    if (auto msg = model->check_completion())
      violation = Violation{Oracle::Completion, *msg, Schedule{}};
  }
  rec.outcome = model->outcome();
  if (violation) {
    violation->schedule = rec.trace;
    rec.violation = std::move(violation);
  }
  return rec;
}

std::optional<Violation> Explorer::check_liveness(const RunRecord& r,
                                                  sim::Duration window,
                                                  sim::Time horizon) const {
  const std::vector<trace::Event>& ev = r.events;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind != trace::EventKind::Ready) continue;
    sim::Time dispatched_at = horizon;
    for (std::size_t j = i + 1; j < ev.size(); ++j) {
      if (ev[j].kind == trace::EventKind::Dispatch &&
          ev[j].node == ev[i].node && ev[j].tid == ev[i].tid) {
        dispatched_at = ev[j].t;
        break;
      }
    }
    const sim::Duration gap = dispatched_at - ev[i].t;
    if (gap > window) {
      return Violation{
          Oracle::Liveness,
          "thread tid " + std::to_string(ev[i].tid) + " on node " +
              std::to_string(ev[i].node) + " became ready at " +
              ev[i].t.str() + " and was not dispatched within " +
              window.str() + " (starved for " + gap.str() + ")",
          Schedule{}};
    }
  }
  return std::nullopt;
}

bool Explorer::independent_alternative(const RunRecord& r,
                                       std::size_t choice_idx,
                                       std::size_t alt) const {
  const std::vector<std::uint64_t>& seqs = r.tie_seqs[choice_idx];
  const std::size_t taken = r.trace.at(choice_idx).pick;
  if (taken >= seqs.size() || alt >= seqs.size()) return false;
  const auto wa = r.window_of_seq.find(seqs[taken]);
  const auto wb = r.window_of_seq.find(seqs[alt]);
  // A candidate that never fired (cancelled before its turn) cannot be
  // judged from this run — conservatively dependent.
  if (wa == r.window_of_seq.end() || wb == r.window_of_seq.end())
    return false;
  const auto [a0, a1] = wa->second;
  const auto [b0, b1] = wb->second;
  const bool a_empty = a0 == a1;
  const bool b_empty = b0 == b1;
  // Neither step produced an observable scheduling event (typically two
  // ticks with no callout work): treated as commuting. This is the "lite"
  // approximation — internal accounting may still differ, which the
  // divergence oracle cross-checks.
  if (a_empty && b_empty) return true;
  if (a_empty || b_empty) return false;
  // Footprint disjointness over (node, tid) and (node, cpu).
  const auto keys = [&](std::size_t b, std::size_t e) {
    std::set<std::int64_t> s;
    for (std::size_t i = b; i < e; ++i) {
      const trace::Event& ev = r.events[i];
      if (ev.kind != trace::EventKind::Idle)
        s.insert((static_cast<std::int64_t>(ev.node) << 24) | ev.tid);
      if (ev.cpu != kern::kNoCpu)
        s.insert((1LL << 62) | (static_cast<std::int64_t>(ev.node) << 24) |
                 ev.cpu);
    }
    return s;
  };
  const std::set<std::int64_t> ka = keys(a0, a1);
  for (const std::int64_t k : keys(b0, b1))
    if (ka.count(k) != 0) return false;
  // Happens-before concurrence: no causal edge may connect the windows.
  const analysis::HbGraph hb = analysis::HbGraph::build(r.events);
  for (std::size_t a = a0; a < a1; ++a) {
    if (hb.thread_of(a) < 0) continue;
    for (std::size_t b = b0; b < b1; ++b) {
      if (hb.thread_of(b) < 0) continue;
      if (hb.happens_before(a, b) || hb.happens_before(b, a)) return false;
    }
  }
  return true;
}

void Explorer::expand(const RunRecord& r, std::size_t prefix_len,
                      std::vector<Schedule>& stack) {
  std::vector<Schedule> found;
  for (std::size_t i = prefix_len; i < r.trace.size(); ++i) {
    if (opts_.prune && !visited_.insert(r.pre_hash[i]).second) {
      // This state was already expanded from another path; the subtree
      // from here on is identical (modulo hash collisions).
      ++stats_.visited_prunes;
      break;
    }
    if (i >= opts_.max_depth) {
      stats_.clipped = true;
      break;
    }
    const Choice& c = r.trace.at(i);
    for (std::size_t alt = 0; alt < c.arity; ++alt) {
      if (alt == c.pick) continue;
      if (opts_.reduce && !r.tie_seqs[i].empty() &&
          independent_alternative(r, i, alt)) {
        ++stats_.dpor_skips;
        continue;
      }
      ++stats_.branches;
      Schedule s = r.trace.prefix(i + 1);
      s.at(i).pick = alt;
      found.push_back(std::move(s));
    }
  }
  // Push in reverse so the shallowest/leftmost alternative pops first.
  for (auto it = found.rbegin(); it != found.rend(); ++it)
    stack.push_back(std::move(*it));
}

ExploreResult Explorer::explore() {
  stats_ = ExploreStats{};
  visited_.clear();
  ExploreResult res;
  double tol = 0.0;
  {
    const std::unique_ptr<Model> probe = factory_();
    tol = effective_tolerance(*probe);
  }
  bool have_outcome = false;
  std::vector<Schedule> stack;
  stack.push_back(Schedule{});
  while (!stack.empty()) {
    if (stats_.runs >= opts_.max_runs) {
      stats_.clipped = true;
      break;
    }
    const Schedule prefix = std::move(stack.back());
    stack.pop_back();
    const std::size_t prefix_len = prefix.size();
    RunRecord rec = run_schedule(prefix);
    ++stats_.runs;
    if (rec.violation) {
      res.violation = std::move(rec.violation);
      break;
    }
    if (!have_outcome) {
      res.min_outcome = res.max_outcome = rec.outcome;
      have_outcome = true;
    } else {
      res.min_outcome = std::min(res.min_outcome, rec.outcome);
      res.max_outcome = std::max(res.max_outcome, rec.outcome);
    }
    if (tol > 0.0 && res.max_outcome - res.min_outcome > tol) {
      res.violation = Violation{
          Oracle::Divergence,
          "interleavings diverge: outcome spread [" +
              std::to_string(res.min_outcome) + "s, " +
              std::to_string(res.max_outcome) + "s] exceeds tolerance " +
              std::to_string(tol) + "s",
          rec.trace};
      break;
    }
    expand(rec, prefix_len, stack);
  }
  res.stats = stats_;
  return res;
}

Schedule Explorer::shrink(const Schedule& s0, Oracle oracle) {
  if (oracle == Oracle::Divergence) return s0;
  const auto reproduces = [&](const Schedule& s) {
    const RunRecord r = run_schedule(s);
    return r.violation.has_value() && r.violation->oracle == oracle;
  };
  Schedule best = s0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Drop trailing choices while the violation persists (trailing defaults
    // always replay identically, so they go for free).
    while (!best.empty()) {
      Schedule t = best;
      t.pop_back();
      if (!reproduces(t)) break;
      best = std::move(t);
      changed = true;
    }
    // Zero out remaining non-default picks, deepest first.
    for (std::size_t i = best.size(); i-- > 0;) {
      if (best.at(i).pick == 0) continue;
      Schedule t = best;
      t.at(i).pick = 0;
      if (reproduces(t)) {
        best = std::move(t);
        changed = true;
      }
    }
  }
  return best;
}

}  // namespace pasched::mc
