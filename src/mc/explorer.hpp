// Bounded DFS over the choice tree (stateless model checking by
// re-execution, CHESS-style): each run replays a schedule prefix and takes
// defaults beyond it; every choice point discovered in the free suffix
// spawns sibling prefixes. Two reductions keep the tree tractable:
//
//  * visited-set pruning — a run whose pre-choice state hash was already
//    expanded from another path stops branching there (the identical state
//    implies an identical subtree, modulo hash collisions);
//  * DPOR-lite — a tie-break alternative is skipped when the executed run
//    proves the candidate independent of the one actually fired (disjoint
//    thread/CPU trace footprints and happens-before-concurrent, via
//    analysis::HbGraph). Independence is judged from ONE executed run, so
//    this is a heuristic reduction; see DESIGN.md §5.5 for the soundness
//    argument and its limits.
//
// Oracles, per run: safety (every PASCHED_CHECK plus the conservation /
// run-queue audits at every quiescent point), bounded liveness (each Ready
// thread dispatched within a window — the §5.3 mmfsd trap), completion at
// the horizon (lost wakeups), and cross-run outcome divergence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mc/model.hpp"
#include "mc/schedule.hpp"
#include "sim/time.hpp"
#include "trace/events.hpp"

namespace pasched::mc {

enum class Oracle : std::uint8_t { Safety, Liveness, Completion, Divergence };
[[nodiscard]] const char* to_string(Oracle o) noexcept;

struct Violation {
  Oracle oracle = Oracle::Safety;
  std::string message;
  /// Full decision trace of the violating run — replaying it reproduces
  /// the violation deterministically.
  Schedule schedule;
};

struct ExploreOptions {
  /// Hard cap on executed runs; exceeding it sets stats.clipped.
  std::size_t max_runs = 20000;
  /// Choice points deeper than this are not branched on (clips the tree).
  std::size_t max_depth = 256;
  /// Liveness window override: negative = use the model's, zero = disable,
  /// positive = this value.
  sim::Duration liveness_window = sim::Duration::ns(-1);
  /// Divergence tolerance override (seconds): negative = use the model's,
  /// zero = disable, positive = this value.
  double divergence_tolerance = -1.0;
  bool reduce = true;  // DPOR-lite tie-break reduction
  bool prune = true;   // state-hash visited-set pruning
};

struct ExploreStats {
  std::size_t runs = 0;
  std::size_t steps = 0;
  /// Alternative branches actually enqueued for exploration.
  std::size_t branches = 0;
  /// Tie-break alternatives skipped as independent (DPOR-lite).
  std::size_t dpor_skips = 0;
  /// Choice points not expanded because their pre-state was already
  /// expanded from another path.
  std::size_t visited_prunes = 0;
  /// Budget (max_runs / max_depth) cut exploration short — a clean result
  /// is then "no violation found", not "certified".
  bool clipped = false;

  /// States a naive DFS would have branched into, over what this
  /// exploration actually branched into (>= 1; > 1 when reduction helped).
  [[nodiscard]] double reduction_ratio() const noexcept {
    if (branches == 0) return dpor_skips > 0 ? static_cast<double>(dpor_skips) : 1.0;
    return static_cast<double>(branches + dpor_skips) /
           static_cast<double>(branches);
  }
};

struct ExploreResult {
  std::optional<Violation> violation;
  ExploreStats stats;
  double min_outcome = 0.0;
  double max_outcome = 0.0;
  /// Exhaustively explored with no violation — a real certificate (up to
  /// state-hash collisions and the DPOR-lite independence approximation).
  [[nodiscard]] bool certified() const noexcept {
    return !violation.has_value() && !stats.clipped;
  }
};

/// Everything observed in one run — the explorer's expansion input, and the
/// replay/shrink API's output.
struct RunRecord {
  Schedule trace;
  std::optional<Violation> violation;
  double outcome = 0.0;
  /// Per trace index: state hash at the quiescent point before the step
  /// that consumed the choice (setup choices share the pre-setup hash).
  std::vector<std::uint64_t> pre_hash;
  /// Per trace index: candidate seqs when the choice was a tie-break.
  std::vector<std::vector<std::uint64_t>> tie_seqs;
  /// The run's mirrored scheduling events.
  std::vector<trace::Event> events;
  /// Engine seq of a fired event -> [begin, end) index window in `events`.
  std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>>
      window_of_seq;
};

class Explorer {
 public:
  Explorer(ModelFactory factory, ExploreOptions opts);

  /// DFS until a violation, exhaustion, or the budget.
  ExploreResult explore();

  /// Executes a single run under the given schedule prefix (defaults past
  /// it) and evaluates the per-run oracles. Used for replay and shrinking.
  [[nodiscard]] RunRecord run_schedule(const Schedule& prefix);

  /// Greedy counterexample minimization: repeatedly drop trailing choices
  /// and zero out non-default picks while the same oracle still fires.
  /// Divergence violations (a cross-run property) are returned unchanged.
  [[nodiscard]] Schedule shrink(const Schedule& s, Oracle oracle);

  [[nodiscard]] const ExploreStats& stats() const noexcept { return stats_; }

 private:
  void expand(const RunRecord& r, std::size_t prefix_len,
              std::vector<Schedule>& stack);
  [[nodiscard]] bool independent_alternative(const RunRecord& r,
                                             std::size_t choice_idx,
                                             std::size_t alt) const;
  [[nodiscard]] std::optional<Violation> check_liveness(
      const RunRecord& r, sim::Duration window, sim::Time horizon) const;
  [[nodiscard]] sim::Duration effective_window(const Model& m) const;
  [[nodiscard]] double effective_tolerance(const Model& m) const;

  ModelFactory factory_;
  ExploreOptions opts_;
  ExploreStats stats_;
  std::unordered_set<std::uint64_t> visited_;
};

}  // namespace pasched::mc
