#include "mc/configs.hpp"

#include <memory>

#include "daemons/daemon.hpp"
#include "kern/tunables.hpp"
#include "sim/random.hpp"

namespace pasched::mc {

namespace {

using sim::Duration;
using sim::Time;

/// Computes one burst, then exits. The workhorse client of every scenario.
struct BurstExitClient final : kern::ThreadClient {
  Duration burst = Duration::ms(1);
  int calls = 0;
  kern::RunDecision next(Time /*now*/) override {
    if (++calls == 1) return kern::RunDecision::compute(burst);
    return kern::RunDecision::exit();
  }
};

// ---------------------------------------------------------------------------
// lost-wakeup
// ---------------------------------------------------------------------------

/// The planted TOCTOU: the producer reads the consumer's state (sig1) and
/// applies the wake decision (sig2) in two separate same-timestamp engine
/// events. If the consumer's block lands between them, the producer saw
/// Running, decided no wake was needed, and the set flag is never noticed —
/// the consumer blocks forever. Default FIFO order is clean; the explorer
/// must find the one interleaving that loses the wakeup.
class LostWakeupModel final : public KernelModel {
 public:
  LostWakeupModel() {
    kern::Tunables tun;
    tun.cluster_aligned_ticks = true;  // no tick-phase choice point
    tun.context_switch_cost = Duration::zero();  // keep the tie at exactly 2ms
    kernel_ = &add_kernel(/*node=*/0, /*ncpus=*/2, tun);
    kern::ThreadSpec ts;
    ts.name = "consumer";
    ts.cls = kern::ThreadClass::AppTask;
    client_.m = this;
    consumer_ = &kernel_->create_thread(std::move(ts), client_);
    require_done(*consumer_);
  }

  void setup() override {
    kernel_->start();
    kernel_->wake(*consumer_);  // dispatches at t=0, computes until t=2ms
    // Arm the producer from an intermediate event so its heap seq lands
    // *after* the consumer's burst-completion seq: the default FIFO order
    // (block, then read-state, then wake) is then the clean one.
    engine_.schedule_at(at(Duration::us(1500)),
                        [this] { engine_.schedule_at(at(kRace), [this] { sig1(); }); });
  }

  [[nodiscard]] Time horizon() const override { return at(Duration::ms(4)); }

 private:
  static constexpr Duration kRace = Duration::ms(2);
  [[nodiscard]] static Time at(Duration d) { return Time::zero() + d; }

  void sig1() {
    // Time-of-check: is the consumer already asleep?
    need_wake_ = consumer_->state() == kern::ThreadState::Blocked;
    engine_.schedule_at(engine_.now(), [this] { sig2(); });
  }
  void sig2() {
    // Time-of-use: publish the flag; wake only if sig1 saw it blocked.
    flag_ = true;
    if (need_wake_) kernel_->wake(*consumer_);
  }

  struct ConsumerClient final : kern::ThreadClient {
    LostWakeupModel* m = nullptr;
    int calls = 0;
    kern::RunDecision next(Time /*now*/) override {
      if (++calls == 1) return kern::RunDecision::compute(kRace);
      // Re-check the flag only on wakeup — the missing "double check
      // before sleeping" is the planted bug's other half.
      return m->flag_ ? kern::RunDecision::exit()
                      : kern::RunDecision::block();
    }
  };

  kern::Kernel* kernel_ = nullptr;
  kern::Thread* consumer_ = nullptr;
  ConsumerClient client_{};
  bool flag_ = false;
  bool need_wake_ = false;

  friend struct ConsumerClient;
};

// ---------------------------------------------------------------------------
// starvation
// ---------------------------------------------------------------------------

/// §5.3 in miniature: two fixed-priority-30 "favored" threads hog both CPUs
/// from t=2.5ms on; a priority-40 daemon activates at a tick boundary
/// chosen by the arrival-phase choice point (period 8ms / 4 buckets). The
/// phases that activate before the favored threads wake complete cleanly;
/// the one that lands mid-hog leaves the daemon Ready past the liveness
/// window until the horizon — unbounded starvation, found exhaustively.
class StarvationModel final : public KernelModel {
 public:
  StarvationModel() {
    kern::Tunables tun;
    tun.base_tick_interval = Duration::ms(1);
    tun.synchronized_ticks = true;   // both CPUs tick together (more ties)
    tun.cluster_aligned_ticks = true;
    tun.context_switch_cost = Duration::zero();
    kernel_ = &add_kernel(/*node=*/0, /*ncpus=*/2, tun);
    for (int i = 0; i < 2; ++i) {
      auto client = std::make_unique<BurstExitClient>();
      client->burst = Duration::ms(20);  // well past the horizon: a hog
      kern::ThreadSpec ts;
      ts.name = "favored[" + std::to_string(i) + "]";
      ts.cls = kern::ThreadClass::AppTask;
      ts.base_priority = 30;
      ts.fixed_priority = true;
      favored_.push_back(&kernel_->create_thread(std::move(ts), *client));
      clients_.push_back(std::move(client));
    }
    daemons::DaemonSpec ds;
    ds.name = "gpfsd";
    ds.priority = 40;
    ds.period = Duration::ms(8);
    ds.period_jitter = 0.0;
    ds.burst_median = Duration::us(300);
    ds.burst_sigma = 0.05;
    ds.cold_fault_factor = 0.0;
    ds.first_due = Duration::ns(-1);  // negative: arrival-phase choice point
    daemon_ = std::make_unique<daemons::Daemon>(*kernel_, ds, sim::Rng(42),
                                                /*first_cpu=*/0);
  }

  void setup() override {
    kernel_->start();
    daemon_->start();  // consumes the arrival-phase choice
    engine_.schedule_at(Time::zero() + Duration::us(2500), [this] {
      for (kern::Thread* t : favored_) kernel_->wake(*t);
    });
  }

  [[nodiscard]] Time horizon() const override {
    return Time::zero() + Duration::ms(7);
  }
  [[nodiscard]] Duration liveness_window() const override {
    return Duration::ms(2);
  }
  /// Divergence metric: CPU the daemon actually got — zero when starved,
  /// a full burst when it slipped in before the hogs.
  [[nodiscard]] double outcome() const override {
    double s = 0.0;
    for (const kern::Thread* t : kernel_->threads())
      if (t->cls() == kern::ThreadClass::Daemon)
        s += t->total_cpu().to_seconds();
    return s;
  }

 private:
  kern::Kernel* kernel_ = nullptr;
  std::vector<kern::Thread*> favored_;
  std::vector<std::unique_ptr<BurstExitClient>> clients_;
  std::unique_ptr<daemons::Daemon> daemon_;
};

// ---------------------------------------------------------------------------
// clean
// ---------------------------------------------------------------------------

/// 2 nodes × 4 CPUs, two app threads per node plus one daemon with an
/// explorable arrival phase, and synchronized cluster-aligned ticks (so
/// same-timestamp tick ties exist on all 8 CPUs). No planted bug: every
/// interleaving must complete, stay live, and pass the safety audits.
class CleanModel final : public KernelModel {
 public:
  CleanModel() {
    kern::Tunables tun;
    tun.base_tick_interval = Duration::ms(2);
    tun.synchronized_ticks = true;
    tun.cluster_aligned_ticks = true;
    tun.context_switch_cost = Duration::zero();
    for (int node = 0; node < 2; ++node) {
      kern::Kernel& k = add_kernel(node, /*ncpus=*/4, tun);
      nodes_.push_back(&k);
      for (int i = 0; i < 2; ++i) {
        auto client = std::make_unique<BurstExitClient>();
        client->burst = Duration::us(500);
        kern::ThreadSpec ts;
        ts.name = "task[" + std::to_string(node) + "." + std::to_string(i) +
                  "]";
        ts.cls = kern::ThreadClass::AppTask;
        kern::Thread& t = k.create_thread(std::move(ts), *client);
        apps_.push_back(&t);
        require_done(t);
        clients_.push_back(std::move(client));
      }
    }
    daemons::DaemonSpec ds;
    ds.name = "syncd";
    ds.priority = 50;
    ds.period = Duration::ms(10);
    ds.period_jitter = 0.0;
    ds.burst_median = Duration::us(200);
    ds.burst_sigma = 0.05;
    ds.cold_fault_factor = 0.0;
    ds.first_due = Duration::ns(-1);  // explorable arrival phase, all clean
    daemon_ = std::make_unique<daemons::Daemon>(*nodes_[0], ds, sim::Rng(7),
                                                /*first_cpu=*/0);
  }

  void setup() override {
    for (kern::Kernel* k : nodes_) k->start();
    daemon_->start();
    for (std::size_t i = 0; i < apps_.size(); ++i)
      nodes_[i / 2]->wake(*apps_[i]);
  }

  [[nodiscard]] Time horizon() const override {
    return Time::zero() + Duration::ms(5);
  }
  [[nodiscard]] Duration liveness_window() const override {
    return Duration::ms(2);
  }

 private:
  std::vector<kern::Kernel*> nodes_;
  std::vector<kern::Thread*> apps_;
  std::vector<std::unique_ptr<BurstExitClient>> clients_;
  std::unique_ptr<daemons::Daemon> daemon_;
};

}  // namespace

const std::vector<NamedModel>& model_zoo() {
  static const std::vector<NamedModel> zoo = {
      {"lost-wakeup",
       "planted TOCTOU wakeup race (completion oracle must catch it)",
       [] { return std::unique_ptr<Model>(new LostWakeupModel()); }},
      {"starvation",
       "planted favored-vs-daemon starvation, arrival-phase dependent "
       "(liveness oracle must catch it)",
       [] { return std::unique_ptr<Model>(new StarvationModel()); }},
      {"clean",
       "2 nodes x 4 CPUs, app threads + daemon, no planted bug (must "
       "certify exhaustively)",
       [] { return std::unique_ptr<Model>(new CleanModel()); }},
  };
  return zoo;
}

ModelFactory find_model(const std::string& name) {
  for (const NamedModel& m : model_zoo())
    if (m.name == name) return m.make;
  return {};
}

}  // namespace pasched::mc
