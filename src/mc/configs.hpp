// The model zoo: small, fully explorable scenarios for pasched-mc. Two of
// them carry planted order-dependent bugs (regression anchors for the
// explorer's oracles); the third is a clean 2-node × 4-CPU configuration
// the checker must certify exhaustively within the default budget.
#pragma once

#include <string>
#include <vector>

#include "mc/model.hpp"

namespace pasched::mc {

struct NamedModel {
  std::string name;
  std::string description;
  ModelFactory make;
};

/// All shipped scenarios:
///  * "lost-wakeup"  — a producer reads the consumer's state in one engine
///    event and applies the wake decision in a second (the classic TOCTOU
///    window); one same-timestamp ordering loses the wakeup and the
///    consumer blocks forever. Found by the completion oracle.
///  * "starvation"   — the §5.3 trap in miniature: fixed-priority favored
///    threads (30) hog every CPU while a priority-40 daemon sits Ready
///    unboundedly. Whether it starves depends on the daemon's arrival
///    phase, an explorable choice point. Found by the liveness oracle.
///  * "clean"        — 2 nodes × 4 CPUs, app threads plus one daemon, no
///    planted bug: every interleaving completes, stays live, and satisfies
///    the safety audits. Must certify within the default budget.
[[nodiscard]] const std::vector<NamedModel>& model_zoo();

/// Factory for a named scenario; an empty function if the name is unknown.
[[nodiscard]] ModelFactory find_model(const std::string& name);

}  // namespace pasched::mc
