#include "mc/model.hpp"

#include "check/audit.hpp"
#include "sim/random.hpp"

namespace pasched::mc {

namespace {

/// Incremental splitmix64-based mixer for state hashing.
struct Hasher {
  std::uint64_t state = 0x853c49e6748fea9bULL;
  std::uint64_t acc = 0;
  void mix(std::uint64_t v) {
    state ^= v + 0x9e3779b97f4a7c15ULL;
    acc = acc * 1099511628211ULL + sim::splitmix64(state);
  }
};

}  // namespace

KernelModel::KernelModel() : tracer_(/*node_filter=*/-1) {}

KernelModel::~KernelModel() = default;

kern::Kernel& KernelModel::add_kernel(int node, int ncpus,
                                      kern::Tunables tun) {
  kernels_.push_back(std::make_unique<kern::Kernel>(
      engine_, node, ncpus, tun, sim::Duration::zero(),
      /*tick_phase_seed=*/0));
  kern::Kernel& k = *kernels_.back();
  tracer_.attach(k);
  tracer_.set_event_log(&elog_);
  tracer_.enable(engine_.now());
  return k;
}

void KernelModel::require_done(const kern::Thread& t) {
  required_.push_back(&t);
}

bool KernelModel::all_required_done() const {
  for (const kern::Thread* t : required_)
    if (t->state() != kern::ThreadState::Done) return false;
  return true;
}

std::uint64_t KernelModel::state_hash() const {
  Hasher h;
  h.mix(static_cast<std::uint64_t>(engine_.now().count()));
  h.mix(engine_.pending_hash());
  for (const auto& k : kernels_) {
    h.mix(static_cast<std::uint64_t>(k->node_id()));
    for (const kern::Thread* t : k->threads()) {
      h.mix(static_cast<std::uint64_t>(t->tid()));
      h.mix(static_cast<std::uint64_t>(t->state()));
      h.mix(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(t->running_on())));
      h.mix(static_cast<std::uint64_t>(t->effective_priority()));
      h.mix(static_cast<std::uint64_t>(t->total_cpu().count()));
      h.mix(t->dispatch_count());
    }
  }
  return h.acc;
}

void KernelModel::check_safety() const {
  engine_.check_consistent();
  for (const auto& k : kernels_) {
    check::Auditor::verify_runqueues(*k);
    check::Auditor::verify_conservation(*k);
  }
}

std::optional<std::string> KernelModel::check_completion() const {
  std::string missing;
  for (const kern::Thread* t : required_) {
    if (t->state() == kern::ThreadState::Done) continue;
    if (!missing.empty()) missing += ", ";
    missing += t->name() + " (tid " + std::to_string(t->tid()) + ", " +
               kern::to_string(t->state()) + ")";
  }
  if (missing.empty()) return std::nullopt;
  return "not completed by the horizon: " + missing;
}

double KernelModel::outcome() const {
  if (required_.empty() || completion_time_ == sim::Time::max())
    return horizon().to_seconds();
  return completion_time_.to_seconds();
}

void KernelModel::after_step(sim::Time now) {
  if (completion_time_ == sim::Time::max() && !required_.empty() &&
      all_required_done())
    completion_time_ = now;
}

}  // namespace pasched::mc
