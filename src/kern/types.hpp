// Shared vocabulary types for the kernel model.
//
// Priorities follow the AIX convention the paper uses: numerically LOWER is
// MORE favored. Normal user work has base 60 and decays into the 90–120
// band as it accumulates CPU; "real-time" fixed priorities sit in 40–60;
// the co-scheduler parks jobs at favored 30/41 and unfavored 100.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace pasched::kern {

using Priority = int;

inline constexpr Priority kBestPriority = 0;
inline constexpr Priority kWorstPriority = 127;
inline constexpr Priority kNormalUserBase = 60;
/// Maximum penalty added to a decaying thread's base priority.
inline constexpr Priority kMaxUsagePenalty = 60;

using NodeId = int;
using CpuId = int;
inline constexpr CpuId kNoCpu = -1;
/// "Actor" value meaning the action came from outside any CPU context
/// (e.g. a network delivery): never counts as an on-CPU readying operation.
inline constexpr CpuId kExternalActor = -2;

enum class ThreadState : std::uint8_t { Ready, Running, Blocked, Done };

/// Coarse classification used for CPU-time accounting and for scheduling
/// policy decisions (e.g. the prototype kernel forces Daemon work onto the
/// node-global run queue).
enum class ThreadClass : std::uint8_t {
  AppTask,      // an MPI task of the parallel job
  AppAux,       // auxiliary thread of the job (MPI progress engine)
  Daemon,       // system daemon (syncd, mmfsd, cron children, ...)
  CoScheduler,  // the co-scheduler daemon itself
  Other,        // anything else
};

[[nodiscard]] const char* to_string(ThreadClass c) noexcept;
[[nodiscard]] const char* to_string(ThreadState s) noexcept;

/// What a thread wants to do next, returned from ThreadClient::next().
struct RunDecision {
  enum class Kind : std::uint8_t {
    Compute,  // consume `amount` of CPU, then ask again
    Spin,     // busy-wait on CPU until kicked (MPI spin-receive)
    Block,    // give up the CPU until woken
    Exit,     // thread is finished
  };
  Kind kind = Kind::Block;
  sim::Duration amount = sim::Duration::zero();

  [[nodiscard]] static RunDecision compute(sim::Duration d) {
    return {Kind::Compute, d};
  }
  [[nodiscard]] static RunDecision spin() { return {Kind::Spin, {}}; }
  [[nodiscard]] static RunDecision block() { return {Kind::Block, {}}; }
  [[nodiscard]] static RunDecision exit() { return {Kind::Exit, {}}; }
};

class Thread;

/// The program executed by a thread. The kernel calls next() whenever the
/// thread is on a CPU and has no unfinished compute burst. Contract:
/// Compute amounts must be strictly positive.
class ThreadClient {
 public:
  virtual ~ThreadClient() = default;
  virtual RunDecision next(sim::Time now) = 0;
};

/// Observer hooks for tracing and tests. All default to no-ops.
class SchedObserver {
 public:
  virtual ~SchedObserver() = default;
  virtual void on_dispatch(sim::Time, NodeId, CpuId, const Thread&) {}
  virtual void on_preempt(sim::Time, NodeId, CpuId, const Thread& /*out*/) {}
  virtual void on_state(sim::Time, NodeId, const Thread&, ThreadState) {}
  virtual void on_tick(sim::Time, NodeId, CpuId) {}
  virtual void on_ipi(sim::Time, NodeId, CpuId /*target*/) {}
  virtual void on_idle(sim::Time, NodeId, CpuId) {}
};

}  // namespace pasched::kern
