#include "kern/thread.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pasched::kern {

const char* to_string(ThreadClass c) noexcept {
  switch (c) {
    case ThreadClass::AppTask:
      return "app";
    case ThreadClass::AppAux:
      return "aux";
    case ThreadClass::Daemon:
      return "daemon";
    case ThreadClass::CoScheduler:
      return "cosched";
    case ThreadClass::Other:
      return "other";
  }
  return "?";
}

const char* to_string(ThreadState s) noexcept {
  switch (s) {
    case ThreadState::Ready:
      return "ready";
    case ThreadState::Running:
      return "running";
    case ThreadState::Blocked:
      return "blocked";
    case ThreadState::Done:
      return "done";
  }
  return "?";
}

Thread::Thread(int tid, ThreadSpec spec, ThreadClient* client)
    : tid_(tid),
      spec_(std::move(spec)),
      client_(client),
      base_prio_(spec_.base_priority),
      fixed_prio_(spec_.fixed_priority) {
  PASCHED_EXPECTS(client_ != nullptr);
  PASCHED_EXPECTS(base_prio_ >= kBestPriority && base_prio_ <= kWorstPriority);
}

Priority Thread::effective_priority() const noexcept {
  if (fixed_prio_) return base_prio_;
  // One penalty point per penalty-unit of recent CPU, capped
  // (AIX-flavoured usage decay; the unit comes from the kernel tunables).
  const auto penalty = static_cast<Priority>(std::min<std::int64_t>(
      kMaxUsagePenalty, recent_cpu_.count() / penalty_unit_.count()));
  return std::min<Priority>(kWorstPriority, base_prio_ + penalty);
}

}  // namespace pasched::kern
