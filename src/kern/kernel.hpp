// The per-node operating system model: an AIX-flavoured priority scheduler
// over an SMP node's CPUs, with timer ticks, timer callouts, cross-CPU
// preemption (delayed or IPI-forced), idle stealing, and CPU-time
// accounting. The paper's prototype-kernel changes are all policy switches
// in Tunables; the mechanism lives here.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "kern/clock.hpp"
#include "kern/thread.hpp"
#include "kern/tunables.hpp"
#include "kern/types.hpp"
#include "race/domain.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"

namespace pasched::check {
class Auditor;
}

namespace pasched::kern {

inline constexpr std::size_t kThreadClassCount = 5;

/// Per-node CPU-time accounting, split by thread class plus tick overhead.
struct Accounting {
  std::array<sim::Duration, kThreadClassCount> class_cpu{};
  sim::Duration tick_cpu = sim::Duration::zero();
  /// Wall time CPUs spent occupied / unoccupied (closed intervals only; the
  /// conservation audit adds the in-progress interval itself).
  sim::Duration busy_cpu = sim::Duration::zero();
  sim::Duration idle_cpu = sim::Duration::zero();
  /// Tick-handler time that displaced an in-progress burst — the exact gap
  /// between a thread's wall occupancy and its charged CPU time.
  sim::Duration tick_stretch = sim::Duration::zero();
  std::uint64_t ticks_taken = 0;
  std::uint64_t ipis_sent = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t dispatches = 0;

  [[nodiscard]] sim::Duration of(ThreadClass c) const {
    return class_cpu[static_cast<std::size_t>(c)];
  }
};

class Kernel {
 public:
  /// `tick_phase_seed` randomizes where this node's tick pattern starts in
  /// the absence of cluster alignment (real machines boot at different
  /// times). `ctx` is this node's scheduling handle — the engine shard that
  /// owns the node's events (implicitly constructible from a bare Engine&
  /// for single-shard use). Everything the kernel schedules is node-local.
  Kernel(sim::EventContext ctx, NodeId node, int ncpus, Tunables tunables,
         sim::Duration clock_offset, std::uint64_t tick_phase_seed);
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// When a sim::ChoiceSource is installed on the engine and ticks are not
  /// cluster-aligned, start() asks it for the node's tick-stagger phase
  /// (one of this many evenly spaced buckets across the tick interval)
  /// instead of deriving it from tick_phase_seed — turning boot-time tick
  /// skew into an explorable choice point.
  static constexpr std::size_t kTickPhaseBuckets = 4;

  /// Arms the periodic tick machinery. Call once before running the engine.
  void start();

  // -- thread management ------------------------------------------------------
  /// Creates a thread in the Blocked state; call wake() to start it.
  Thread& create_thread(ThreadSpec spec, ThreadClient& client);

  /// Makes a blocked thread runnable. `waker_cpu` identifies the CPU on
  /// which the readying operation happened (preemption there is immediate);
  /// pass kExternalActor for deliveries from outside the node.
  void wake(Thread& t, CpuId waker_cpu = kExternalActor);

  /// Satisfies a spin-wait: if the thread's client returned Spin and the
  /// thread is on a CPU, the client is consulted again immediately. No-op if
  /// the thread is not spin-waiting.
  void kick(Thread& t);

  /// AIX setpri()-style priority change, with the paper's (reverse-)
  /// preemption semantics. `actor_cpu` = CPU the caller is running on.
  void set_priority(Thread& t, Priority prio, bool fixed,
                    CpuId actor_cpu = kExternalActor);

  /// Registers a timer callout: `fn` runs during the first tick interrupt on
  /// `cpu` whose local time is >= `due_local`. This is how timer-driven
  /// daemon wakeups batch to (big-)tick boundaries.
  void schedule_callout(CpuId cpu, sim::Time due_local, sim::Engine::Callback fn);

  // -- queries ----------------------------------------------------------------
  [[nodiscard]] sim::Engine& engine() noexcept { return *ctx_.engine; }
  [[nodiscard]] const sim::Engine& engine() const noexcept {
    return *ctx_.engine;
  }
  [[nodiscard]] const sim::EventContext& context() const noexcept {
    return ctx_;
  }
  [[nodiscard]] NodeId node_id() const noexcept { return node_; }
  [[nodiscard]] int ncpus() const noexcept {
    return static_cast<int>(cpus_.size());
  }
  [[nodiscard]] const Tunables& tunables() const noexcept { return tun_; }
  [[nodiscard]] LocalClock& clock() noexcept { return clock_; }
  [[nodiscard]] const LocalClock& clock() const noexcept { return clock_; }
  [[nodiscard]] sim::Time local_now() const {
    return clock_.local_of(ctx_.now());
  }
  [[nodiscard]] Thread* running_on(CpuId cpu) const;
  [[nodiscard]] const Accounting& accounting() const noexcept { return acct_; }
  [[nodiscard]] std::vector<Thread*> threads() const;
  /// Number of CPUs currently executing a thread of the given class.
  [[nodiscard]] int cpus_running(ThreadClass c) const;
  /// Number of Ready threads across all run queues (node-wide queue depth,
  /// recorded into trace events for the offline analyzers).
  [[nodiscard]] int ready_count() const;

  void set_observer(SchedObserver* obs) noexcept { observer_ = obs; }

  /// The shard-ownership tag (bound to this node's shard at construction).
  [[nodiscard]] const race::Owned& owned() const noexcept { return owned_; }

 private:
  friend class ::pasched::check::Auditor;

  struct Cpu {
    Thread* current = nullptr;
    Thread* last_run = nullptr;  // context-switch cost bookkeeping
    sim::Time run_start{};
    sim::Time idle_since{};  // start of the current idle interval
    bool ipi_pending = false;
    sim::Time next_tick_local{};
    struct Callout {
      sim::Time due_local;
      std::uint64_t seq;
      sim::Engine::Callback fn;
    };
    std::vector<Callout> callouts;
    std::vector<Thread*> runq;  // ready threads queued to this CPU
  };

  // Queue / dispatch machinery.
  void set_state(Thread& t, ThreadState to);
  void enqueue(Thread& t);
  void remove_from_queue(Thread& t);
  [[nodiscard]] Thread* peek_best(CpuId cpu, bool allow_steal) const;
  void dispatch(CpuId cpu);
  void continue_run(CpuId cpu, Thread& t);
  void advance_client(CpuId cpu, Thread& t);
  void arm_burst(CpuId cpu, Thread& t);
  void on_burst_end(CpuId cpu, Thread& t);
  void preempt(CpuId cpu);
  void take_off_cpu(CpuId cpu, bool charge);
  void block_current(CpuId cpu, ThreadState new_state);

  // Preemption notice paths.
  void after_enqueue(Thread& t, CpuId waker_cpu);
  void notice_resched(CpuId cpu);
  void send_preempt_ipi(CpuId target, Thread& on_behalf);
  [[nodiscard]] CpuId find_idle_cpu_for(const Thread& t) const;
  [[nodiscard]] CpuId preferred_target(const Thread& t) const;

  // Tick machinery.
  void arm_tick(CpuId cpu);
  void on_tick(CpuId cpu);
  [[nodiscard]] sim::Duration tick_phase(CpuId cpu) const;
  void decay_priorities();

  // Accounting.
  void charge(Thread& t, sim::Duration amount);

  sim::EventContext ctx_;
  NodeId node_;
  race::Owned owned_;  // always present so layout is validation-agnostic
  Tunables tun_;
  LocalClock clock_;
  sim::Duration unaligned_phase_;  // random tick origin when not aligned
  std::vector<Cpu> cpus_;
  std::vector<Thread*> globalq_;  // ready threads runnable on any CPU
  std::vector<std::unique_ptr<Thread>> threads_;
  sim::Time acct_start_{};  // when busy/idle accounting began (construction)
  sim::Time last_decay_{};
  std::uint64_t seq_ = 0;
  std::uint64_t callout_seq_ = 0;
  // Reused per-tick scratch for due callouts: cleared each on_tick(),
  // capacity persists (grown via util::reserve_cold only), so steady-state
  // tick dispatch is allocation-free.
  std::vector<Cpu::Callout> due_scratch_;
  Accounting acct_;
  SchedObserver* observer_ = nullptr;
  int next_tid_ = 1;
  bool started_ = false;
};

}  // namespace pasched::kern
