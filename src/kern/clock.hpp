// Per-node local clock. Nodes boot with an arbitrary time-of-day offset from
// the (simulated) true global time; the switch-clock synchronization service
// in net/ cancels the offset, which is what lets tick interrupts and
// co-scheduler windows align cluster-wide (§4).
#pragma once

#include "sim/time.hpp"

namespace pasched::kern {

class LocalClock {
 public:
  LocalClock() = default;
  explicit LocalClock(sim::Duration offset) : offset_(offset) {}

  /// local = global + offset.
  [[nodiscard]] sim::Time local_of(sim::Time global) const {
    return global + offset_;
  }
  [[nodiscard]] sim::Time global_of(sim::Time local) const {
    return local - offset_;
  }
  [[nodiscard]] sim::Duration offset() const { return offset_; }

  /// Used by the clock-sync service: adjust so that the node's local time
  /// equals the given reference at this instant (low-order synchronization —
  /// the paper matches only the low-order clock bits, which for scheduling
  /// purposes is equivalent to zeroing the offset).
  void set_offset(sim::Duration offset) { offset_ = offset; }

 private:
  sim::Duration offset_ = sim::Duration::zero();
};

}  // namespace pasched::kern
