// Kernel tunables — the simulated analogue of AIX `schedtune` options plus
// the paper's prototype-kernel switches (§3). The "vanilla" and "prototype"
// presets in core/presets.hpp are just particular values of this struct.
#pragma once

#include "sim/time.hpp"

namespace pasched::kern {

struct Tunables {
  // --- timer ticks ---------------------------------------------------------
  /// Base tick (decrementer) interval; AIX default 10 ms (100 Hz).
  sim::Duration base_tick_interval = sim::Duration::ms(10);
  /// §3.1.1 "big tick": physical ticks fire every base*big_tick; timer-driven
  /// work batches to those boundaries. Paper's final setting: 25 (250 ms).
  int big_tick = 1;
  /// §3.2.1: false = AIX default staggering (CPU i offset by i*interval/ncpus);
  /// true = all CPUs of a node tick at the same instant.
  bool synchronized_ticks = false;
  /// §4 item 1: schedule ticks at exact multiples of the interval in *global*
  /// time, so that (with clock sync) ticks are simultaneous cluster-wide.
  bool cluster_aligned_ticks = false;
  /// CPU cost of processing one tick interrupt.
  sim::Duration tick_cost = sim::Duration::us(4);
  /// With synchronized ticks the handlers contend for shared locks; the
  /// paper notes AIX 5.1's shared (read) lock made this cheap. This factor
  /// inflates tick_cost when ticks are simultaneous (1.0 = free lock).
  double sync_tick_contention = 1.15;

  // --- preemption ----------------------------------------------------------
  /// "Real time scheduling" schedtune option: force an inter-processor
  /// interrupt when a readied thread should preempt a remote CPU.
  bool rt_scheduling = false;
  /// §3 improvement 1: also IPI on "reverse pre-emption" (a running thread's
  /// priority is lowered below that of a waiting ready thread).
  bool rt_reverse_preemption = false;
  /// §3 improvement 2: allow multiple preemption IPIs in flight at once.
  bool rt_multi_ipi = false;
  /// IPI delivery latency ("tenths of a millisecond" per §3).
  sim::Duration ipi_latency = sim::Duration::us(200);

  // --- dispatching ---------------------------------------------------------
  /// §3.1.2: queue daemons to the node-global run queue (maximum dispatch
  /// parallelism) instead of a home CPU (maximum locality).
  bool daemon_global_queue = false;
  /// Runtime inflation for daemon bursts dispatched via the global queue
  /// (cache/locality loss — the paper's 3 ms -> ~3.1 ms example).
  double global_queue_overhead = 0.04;
  /// Round-robin timeslice for equal-priority threads.
  sim::Duration timeslice = sim::Duration::ms(10);
  /// Cost charged when a CPU switches to a different thread.
  sim::Duration context_switch_cost = sim::Duration::us(15);
  /// Idle CPUs may pull ready work queued to other CPUs.
  bool idle_steal = true;

  // --- priority decay ------------------------------------------------------
  /// Recent-CPU bookkeeping halves at this period (AIX decays usage once a
  /// second) and the usage penalty is recent_cpu / penalty_unit points.
  sim::Duration decay_period = sim::Duration::sec(1);
  sim::Duration penalty_unit = sim::Duration::ms(8);

  [[nodiscard]] sim::Duration tick_interval() const {
    return base_tick_interval * static_cast<std::int64_t>(big_tick);
  }
  [[nodiscard]] sim::Duration effective_tick_cost() const {
    if (!synchronized_ticks) return tick_cost;
    return tick_cost * sync_tick_contention;
  }
};

}  // namespace pasched::kern
