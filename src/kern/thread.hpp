// Thread control block. Threads are created and owned by the Kernel; the
// program they execute is supplied as a ThreadClient (non-owning — task
// programs and daemon models outlive their threads).
#pragma once

#include <cstdint>
#include <string>

#include "kern/types.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pasched::check {
class Auditor;
}

namespace pasched::kern {

/// Construction parameters for a thread.
struct ThreadSpec {
  std::string name;
  ThreadClass cls = ThreadClass::Other;
  Priority base_priority = kNormalUserBase;
  /// Fixed priorities never decay (AIX setpri semantics). Decaying threads
  /// degrade by up to kMaxUsagePenalty as they accumulate recent CPU.
  bool fixed_priority = false;
  /// Home CPU for locality-queued work; kNoCpu = node-global queue.
  CpuId home_cpu = kNoCpu;
  /// May an idle CPU other than home run this thread?
  bool stealable = true;
};

class Kernel;

class Thread {
 public:
  Thread(int tid, ThreadSpec spec, ThreadClient* client);

  // Identity -----------------------------------------------------------------
  [[nodiscard]] int tid() const noexcept { return tid_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] ThreadClass cls() const noexcept { return spec_.cls; }
  [[nodiscard]] CpuId home_cpu() const noexcept { return spec_.home_cpu; }
  [[nodiscard]] bool stealable() const noexcept { return spec_.stealable; }

  // Scheduling state ----------------------------------------------------------
  [[nodiscard]] ThreadState state() const noexcept { return state_; }
  [[nodiscard]] CpuId running_on() const noexcept { return running_on_; }
  [[nodiscard]] Priority base_priority() const noexcept { return base_prio_; }
  [[nodiscard]] bool fixed_priority() const noexcept { return fixed_prio_; }

  /// Effective dispatch priority (base plus usage penalty when decaying).
  [[nodiscard]] Priority effective_priority() const noexcept;

  // Accounting ----------------------------------------------------------------
  [[nodiscard]] sim::Duration total_cpu() const noexcept { return total_cpu_; }
  [[nodiscard]] std::uint64_t dispatch_count() const noexcept {
    return dispatches_;
  }
  [[nodiscard]] sim::Duration recent_cpu() const noexcept {
    return recent_cpu_;
  }

 private:
  friend class Kernel;
  friend class ::pasched::check::Auditor;

  int tid_;
  ThreadSpec spec_;
  ThreadClient* client_;
  // Copied from the owning kernel's tunables so effective_priority() needs
  // no back-reference.
  sim::Duration penalty_unit_ = sim::Duration::ms(8);

  // Mutable scheduling fields, managed exclusively by Kernel.
  ThreadState state_ = ThreadState::Blocked;
  CpuId running_on_ = kNoCpu;
  Priority base_prio_;
  bool fixed_prio_;
  sim::Duration recent_cpu_ = sim::Duration::zero();

  sim::Duration residual_ = sim::Duration::zero();  // unfinished burst work
  sim::Duration pending_switch_cost_ = sim::Duration::zero();
  bool spin_waiting_ = false;  // client returned Spin, not yet kicked
  sim::Time spin_start_{};
  sim::EventId burst_event_{};
  sim::Time burst_deadline_{};
  sim::Duration burst_len_ = sim::Duration::zero();

  std::uint64_t enqueue_seq_ = 0;  // FIFO tie-break among equal priorities

  sim::Duration total_cpu_ = sim::Duration::zero();
  std::uint64_t dispatches_ = 0;
};

}  // namespace pasched::kern
