// The administrative face of the kernel options: the paper implemented its
// changes "as options in a production operating system ... by adding options
// to the `schedtune` command of AIX". This module parses a schedtune-style
// option string into Tunables and renders the current settings back — the
// interface a system administrator would script against.
//
// Recognized options (our extensions mirror the paper's):
//   -B <n>   big-tick multiplier                      (§3.1.1)
//   -S <0|1> simultaneous (synchronized) ticks        (§3.2.1)
//   -A <0|1> cluster-aligned tick boundaries          (§4 item 1)
//   -G <0|1> daemon global-queue dispatch             (§3.1.2)
//   -R <0|1> real-time scheduling (forced preemption IPIs)
//   -V <0|1> reverse-preemption IPIs                  (§3 fix 1)
//   -M <0|1> multiple in-flight IPIs                  (§3 fix 2)
//   -t <us>  timeslice, microseconds
//   -i <us>  IPI latency, microseconds
#pragma once

#include <string>
#include <string_view>

#include "kern/tunables.hpp"

namespace pasched::kern {

/// Applies a schedtune option string on top of `t`. Throws std::logic_error
/// on unknown options or malformed values, naming the offending token.
void apply_schedtune(Tunables& t, std::string_view options);

/// Renders the tunables as a schedtune option string (round-trips through
/// apply_schedtune).
[[nodiscard]] std::string render_schedtune(const Tunables& t);

/// Human-readable multi-line listing of every tunable (the view pasched-lint
/// prints next to its diagnostics).
[[nodiscard]] std::string describe_tunables(const Tunables& t);

}  // namespace pasched::kern
