#include "kern/kernel.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "check/transitions.hpp"
#include "sim/choice.hpp"
#include "util/allocgate.hpp"
#include "util/assert.hpp"
#include "util/hotpath.hpp"

namespace pasched::kern {

using sim::Duration;
using sim::Time;

namespace {

/// Dispatch ordering: lower effective priority value wins; FIFO among equals.
bool better(const Thread& a, std::uint64_t seq_a, const Thread& b,
            std::uint64_t seq_b) {
  const Priority pa = a.effective_priority();
  const Priority pb = b.effective_priority();
  if (pa != pb) return pa < pb;
  return seq_a < seq_b;
}

}  // namespace

Kernel::Kernel(sim::EventContext ctx, NodeId node, int ncpus, Tunables tunables,
               Duration clock_offset, std::uint64_t tick_phase_seed)
    : ctx_(ctx), node_(node), tun_(tunables), clock_(clock_offset) {
  PASCHED_EXPECTS(ncpus > 0);
  owned_.bind(ctx_.shard, "kern.Kernel", node);
  PASCHED_EXPECTS(tun_.big_tick >= 1);
  cpus_.resize(static_cast<std::size_t>(ncpus));
  acct_start_ = ctx_.now();
  for (Cpu& c : cpus_) c.idle_since = acct_start_;
  const std::int64_t interval = tun_.tick_interval().count();
  unaligned_phase_ = Duration::ns(
      static_cast<std::int64_t>(tick_phase_seed % static_cast<std::uint64_t>(
                                    interval > 0 ? interval : 1)));
}

Kernel::~Kernel() = default;

void Kernel::start() {
  PASCHED_ASSERT_OWNED(owned_, "start");
  PASCHED_EXPECTS_MSG(!started_, "Kernel::start called twice");
  started_ = true;
  // Tick-stagger choice point: under a model checker the node's boot-time
  // tick skew is one of kTickPhaseBuckets explorable phases rather than a
  // seed-derived accident. Gated on !cluster_aligned_ticks so configs that
  // align ticks (and runs without a ChoiceSource) keep the seeded behavior
  // and contribute no spurious branches to the choice tree.
  if (!tun_.cluster_aligned_ticks && ctx_.choice_source() != nullptr) {
    const std::size_t bucket = ctx_.choice_source()->choose(
        kTickPhaseBuckets, "kern.tick_phase");
    unaligned_phase_ = tun_.tick_interval() *
                       static_cast<std::int64_t>(bucket) /
                       static_cast<std::int64_t>(kTickPhaseBuckets);
  }
  last_decay_ = local_now();
  for (CpuId c = 0; c < ncpus(); ++c) arm_tick(c);
}

Thread& Kernel::create_thread(ThreadSpec spec, ThreadClient& client) {
  PASCHED_EXPECTS(spec.home_cpu == kNoCpu ||
                  (spec.home_cpu >= 0 && spec.home_cpu < ncpus()));
  auto t = std::make_unique<Thread>(next_tid_++, std::move(spec), &client);
  t->penalty_unit_ = tun_.penalty_unit;
  Thread& ref = *t;
  threads_.push_back(std::move(t));
  // Ready queues are bounded by the thread count (a thread sits in at most
  // one queue): pre-size them on this cold path so enqueue()'s push_back
  // never reallocates mid-tick.
  util::reserve_cold(globalq_, threads_.size());
  for (auto& c : cpus_) util::reserve_cold(c.runq, threads_.size());
  return ref;
}

// ---------------------------------------------------------------------------
// Run queues
// ---------------------------------------------------------------------------

namespace {
bool goes_to_global(const Thread& t, const Tunables& tun) {
  if (t.home_cpu() == kNoCpu) return true;
  return t.cls() == ThreadClass::Daemon && tun.daemon_global_queue;
}
}  // namespace

void Kernel::set_state(Thread& t, ThreadState to) {
  PASCHED_CHECK_MSG(check::thread_transition_ok(t.state_, to),
                    "illegal thread-state transition " +
                        check::transition_str(t.state_, to) + " for " +
                        t.name());
  t.state_ = to;
}

PASCHED_HOT void Kernel::enqueue(Thread& t) {
  PASCHED_ASSERT_MSG(t.running_on_ == kNoCpu,
                     "cannot enqueue a thread still occupying a CPU");
  set_state(t, ThreadState::Ready);
  t.enqueue_seq_ = seq_++;
  if (goes_to_global(t, tun_)) {
    globalq_.push_back(&t);
  } else {
    cpus_[static_cast<std::size_t>(t.home_cpu())].runq.push_back(&t);
  }
  if (observer_ != nullptr)
    observer_->on_state(ctx_.now(), node_, t, ThreadState::Ready);
}

PASCHED_HOT void Kernel::remove_from_queue(Thread& t) {
  auto& q = goes_to_global(t, tun_)
                ? globalq_
                : cpus_[static_cast<std::size_t>(t.home_cpu())].runq;
  const auto it = std::find(q.begin(), q.end(), &t);
  PASCHED_ASSERT_MSG(it != q.end(), "thread missing from its run queue");
  q.erase(it);
}

PASCHED_HOT Thread* Kernel::peek_best(CpuId cpu, bool allow_steal) const {
  const Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  Thread* best = nullptr;
  auto consider = [&](Thread* t) {
    if (best == nullptr ||
        better(*t, t->enqueue_seq_, *best, best->enqueue_seq_))
      best = t;
  };
  for (Thread* t : c.runq) consider(t);
  for (Thread* t : globalq_) consider(t);
  if (best == nullptr && allow_steal && tun_.idle_steal) {
    for (const Cpu& other : cpus_) {
      if (&other == &c) continue;
      for (Thread* t : other.runq)
        if (t->stealable()) consider(t);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Dispatch / run / preempt
// ---------------------------------------------------------------------------

PASCHED_HOT void Kernel::dispatch(CpuId cpu) {
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  PASCHED_ASSERT(c.current == nullptr);
  Thread* t = peek_best(cpu, /*allow_steal=*/true);
  if (t == nullptr) {
    if (observer_ != nullptr) observer_->on_idle(ctx_.now(), node_, cpu);
    return;
  }
  remove_from_queue(*t);
  PASCHED_CHECK_MSG(t->running_on_ == kNoCpu,
                    "dispatching a thread that still occupies a CPU");
  set_state(*t, ThreadState::Running);
  t->running_on_ = cpu;
  t->dispatches_++;
  acct_.idle_cpu += ctx_.now() - c.idle_since;
  c.current = t;
  c.run_start = ctx_.now();
  t->pending_switch_cost_ =
      (c.last_run == t) ? Duration::zero() : tun_.context_switch_cost;
  c.last_run = t;
  ++acct_.dispatches;
  if (observer_ != nullptr)
    observer_->on_dispatch(ctx_.now(), node_, cpu, *t);
  continue_run(cpu, *t);
}

PASCHED_HOT void Kernel::continue_run(CpuId cpu, Thread& t) {
  if (t.residual_ > Duration::zero()) {
    arm_burst(cpu, t);
  } else if (t.spin_waiting_) {
    t.spin_start_ = ctx_.now();  // resume spinning; charge from here
  } else {
    advance_client(cpu, t);
  }
}

PASCHED_HOT void Kernel::advance_client(CpuId cpu, Thread& t) {
  PASCHED_ASSERT(cpus_[static_cast<std::size_t>(cpu)].current == &t);
  const RunDecision d = t.client_->next(ctx_.now());
  switch (d.kind) {
    case RunDecision::Kind::Compute: {
      PASCHED_EXPECTS_MSG(d.amount > Duration::zero(),
                          "Compute decisions must be strictly positive");
      Duration amount = d.amount;
      // §3.1.2: global-queue dispatch trades daemon locality for
      // parallelism; the burst runs slightly longer.
      if (t.cls() == ThreadClass::Daemon && tun_.daemon_global_queue)
        amount = amount * (1.0 + tun_.global_queue_overhead);
      t.residual_ = amount;
      arm_burst(cpu, t);
      return;
    }
    case RunDecision::Kind::Spin:
      t.spin_waiting_ = true;
      t.spin_start_ = ctx_.now();
      return;
    case RunDecision::Kind::Block:
      block_current(cpu, ThreadState::Blocked);
      return;
    case RunDecision::Kind::Exit:
      block_current(cpu, ThreadState::Done);
      return;
  }
}

PASCHED_HOT void Kernel::arm_burst(CpuId cpu, Thread& t) {
  const Duration total = t.pending_switch_cost_ + t.residual_;
  t.pending_switch_cost_ = Duration::zero();
  t.burst_len_ = total;
  t.burst_deadline_ = ctx_.now() + total;
  Thread* tp = &t;
  t.burst_event_ = ctx_.schedule_at(
      t.burst_deadline_, [this, cpu, tp] { on_burst_end(cpu, *tp); });
}

PASCHED_HOT void Kernel::on_burst_end(CpuId cpu, Thread& t) {
  PASCHED_ASSERT(cpus_[static_cast<std::size_t>(cpu)].current == &t);
  t.burst_event_ = sim::EventId{};
  charge(t, t.burst_len_);
  t.burst_len_ = Duration::zero();
  t.residual_ = Duration::zero();
  advance_client(cpu, t);
}

PASCHED_HOT void Kernel::take_off_cpu(CpuId cpu, bool charge_time) {
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  Thread* t = c.current;
  PASCHED_ASSERT(t != nullptr);
  if (ctx_.pending(t->burst_event_)) {
    // Tick interrupts push the deadline out, so wall-time-remaining can
    // exceed the nominal work; clamp so work is conserved and the charge
    // stays non-negative. When the thread leaves before the elapsed wall
    // time covers the pushed-out handler cost (e.g. a tick preempts it at
    // the very timestamp of the push), the overhang was booked as
    // tick_stretch but never occupied the CPU — deduct it so the
    // conservation ledger stays exact.
    const Duration raw = t->burst_deadline_ - ctx_.now();
    const Duration remaining =
        std::clamp(raw, Duration::zero(), t->burst_len_);
    if (raw > t->burst_len_) acct_.tick_stretch -= raw - t->burst_len_;
    ctx_.cancel(t->burst_event_);
    t->burst_event_ = sim::EventId{};
    if (charge_time) charge(*t, t->burst_len_ - remaining);
    t->residual_ = remaining;
    t->burst_len_ = Duration::zero();
  } else if (t->spin_waiting_) {
    if (charge_time) charge(*t, ctx_.now() - t->spin_start_);
  }
  t->running_on_ = kNoCpu;
  c.current = nullptr;
  acct_.busy_cpu += ctx_.now() - c.run_start;
  c.idle_since = ctx_.now();
}

PASCHED_HOT void Kernel::preempt(CpuId cpu) {
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  Thread* t = c.current;
  PASCHED_ASSERT(t != nullptr);
  take_off_cpu(cpu, /*charge=*/true);
  enqueue(*t);
  ++acct_.preemptions;
  if (observer_ != nullptr) observer_->on_preempt(ctx_.now(), node_, cpu, *t);
  dispatch(cpu);
  // The displaced thread may immediately continue on an idle CPU (AIX idle
  // processors "beneficially steal" ready work).
  if (t->state_ == ThreadState::Ready) {
    const CpuId idle = find_idle_cpu_for(*t);
    if (idle != kNoCpu) dispatch(idle);
  }
}

void Kernel::block_current(CpuId cpu, ThreadState new_state) {
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  Thread* t = c.current;
  PASCHED_ASSERT(t != nullptr);
  take_off_cpu(cpu, /*charge=*/true);
  set_state(*t, new_state);
  if (observer_ != nullptr)
    observer_->on_state(ctx_.now(), node_, *t, new_state);
  dispatch(cpu);
}

// ---------------------------------------------------------------------------
// Wakeups, kicks, priority changes
// ---------------------------------------------------------------------------

void Kernel::wake(Thread& t, CpuId waker_cpu) {
  PASCHED_ASSERT_OWNED(owned_, "wake");
  PASCHED_EXPECTS_MSG(t.state_ == ThreadState::Blocked,
                      "wake() requires a blocked thread: " + t.name());
  enqueue(t);
  after_enqueue(t, waker_cpu);
}

void Kernel::kick(Thread& t) {
  PASCHED_ASSERT_OWNED(owned_, "kick");
  if (!t.spin_waiting_) return;  // nothing waiting (message already consumed)
  t.spin_waiting_ = false;
  if (t.state_ == ThreadState::Running) {
    charge(t, ctx_.now() - t.spin_start_);
    advance_client(t.running_on_, t);
  }
  // If Ready (preempted while spinning): the next dispatch will consult the
  // client because residual == 0 and spin_waiting is now false.
}

void Kernel::set_priority(Thread& t, Priority prio, bool fixed,
                          CpuId actor_cpu) {
  PASCHED_ASSERT_OWNED(owned_, "set_priority");
  PASCHED_EXPECTS(prio >= kBestPriority && prio <= kWorstPriority);
  t.base_prio_ = prio;
  t.fixed_prio_ = fixed;
  if (t.state_ == ThreadState::Running) {
    const CpuId c = t.running_on_;
    Thread* best = peek_best(c, /*allow_steal=*/false);
    if (best != nullptr &&
        best->effective_priority() < t.effective_priority()) {
      // Reverse pre-emption: the running thread just became less favored
      // than a waiter (§3, deficiency 1 of the stock RT option).
      if (actor_cpu == c) {
        ctx_.schedule_after(Duration::zero(),
                               [this, c] { notice_resched(c); });
      } else if (tun_.rt_scheduling && tun_.rt_reverse_preemption) {
        send_preempt_ipi(c, *best);
      }
      // Otherwise: the busy CPU notices at its next tick / kernel entry.
    }
  } else if (t.state_ == ThreadState::Ready) {
    after_enqueue(t, actor_cpu);
  }
}

void Kernel::after_enqueue(Thread& t, CpuId waker_cpu) {
  const CpuId idle = find_idle_cpu_for(t);
  if (idle != kNoCpu) {
    dispatch(idle);
    return;
  }
  const CpuId target = preferred_target(t);
  if (target == kNoCpu) return;
  Thread* cur = cpus_[static_cast<std::size_t>(target)].current;
  PASCHED_ASSERT(cur != nullptr);
  if (t.effective_priority() >= cur->effective_priority()) return;
  if (waker_cpu == target) {
    // The readying operation happened on the CPU to preempt: the kernel is
    // already entered there, so the switch happens at the next dispatch
    // point (modelled as a zero-delay reschedule).
    const CpuId c = target;
    ctx_.schedule_after(Duration::zero(), [this, c] { notice_resched(c); });
  } else if (tun_.rt_scheduling) {
    send_preempt_ipi(target, t);
  }
  // Without the RT option the busy CPU notices only at its next tick,
  // interrupt, or block — the up-to-10 ms delay of §3.
}

CpuId Kernel::find_idle_cpu_for(const Thread& t) const {
  const bool anywhere = t.stealable() || goes_to_global(t, tun_);
  if (!anywhere) {
    const CpuId h = t.home_cpu();
    if (h != kNoCpu && cpus_[static_cast<std::size_t>(h)].current == nullptr)
      return h;
    return kNoCpu;
  }
  // Prefer the home CPU if idle, else any idle CPU.
  const CpuId h = t.home_cpu();
  if (h != kNoCpu && cpus_[static_cast<std::size_t>(h)].current == nullptr)
    return h;
  for (CpuId c = 0; c < ncpus(); ++c)
    if (cpus_[static_cast<std::size_t>(c)].current == nullptr) return c;
  return kNoCpu;
}

CpuId Kernel::preferred_target(const Thread& t) const {
  if (!goes_to_global(t, tun_)) return t.home_cpu();
  // Global work preempts the CPU running the least favored thread.
  CpuId worst = kNoCpu;
  Priority worst_prio = kBestPriority - 1;
  for (CpuId c = 0; c < ncpus(); ++c) {
    const Thread* cur = cpus_[static_cast<std::size_t>(c)].current;
    if (cur == nullptr) return c;  // idle (shouldn't reach here, but safe)
    const Priority p = cur->effective_priority();
    if (p > worst_prio) {
      worst_prio = p;
      worst = c;
    }
  }
  return worst;
}

void Kernel::send_preempt_ipi(CpuId target, Thread& on_behalf) {
  Cpu& c = cpus_[static_cast<std::size_t>(target)];
  if (c.ipi_pending) return;  // one is already on its way
  if (!tun_.rt_multi_ipi) {
    // Stock RT option (§3, deficiency 2): while any preemption interrupt is
    // in flight, no further one is generated if its target would be eligible
    // to run this thread anyway.
    const bool anywhere = on_behalf.stealable() || goes_to_global(on_behalf, tun_);
    for (CpuId i = 0; i < ncpus(); ++i) {
      if (!cpus_[static_cast<std::size_t>(i)].ipi_pending) continue;
      if (anywhere || on_behalf.home_cpu() == i) return;
    }
  }
  c.ipi_pending = true;
  ++acct_.ipis_sent;
  ctx_.schedule_after(tun_.ipi_latency, [this, target] {
    cpus_[static_cast<std::size_t>(target)].ipi_pending = false;
    if (observer_ != nullptr) observer_->on_ipi(ctx_.now(), node_, target);
    notice_resched(target);
  });
}

void Kernel::notice_resched(CpuId cpu) {
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  if (c.current == nullptr) {
    dispatch(cpu);
    return;
  }
  Thread* best = peek_best(cpu, /*allow_steal=*/false);
  if (best == nullptr) return;
  const Priority bp = best->effective_priority();
  const Priority cp = c.current->effective_priority();
  if (bp < cp) {
    preempt(cpu);
  } else if (bp == cp &&
             ctx_.now() - c.run_start >= tun_.timeslice) {
    preempt(cpu);  // round-robin among equals at timeslice expiry
  }
}

// ---------------------------------------------------------------------------
// Ticks, callouts, decay
// ---------------------------------------------------------------------------

Duration Kernel::tick_phase(CpuId cpu) const {
  if (tun_.synchronized_ticks) return Duration::zero();
  // AIX staggering: CPU i ticks interval/ncpus later than CPU i-1 (§3.2.1).
  return tun_.tick_interval() * static_cast<std::int64_t>(cpu) /
         static_cast<std::int64_t>(ncpus());
}

void Kernel::arm_tick(CpuId cpu) {
  const Duration interval = tun_.tick_interval();
  Duration phase = tick_phase(cpu);
  if (!tun_.cluster_aligned_ticks) phase += unaligned_phase_;
  // Next tick strictly in the future, aligned in *local* time.
  const Time next_local =
      (local_now() + Duration::ns(1)).align_up(interval, phase);
  cpus_[static_cast<std::size_t>(cpu)].next_tick_local = next_local;
  ctx_.schedule_at(clock_.global_of(next_local),
                      [this, cpu] { on_tick(cpu); });
}

PASCHED_HOT void Kernel::on_tick(CpuId cpu) {
  PASCHED_ALLOC_HOT_SCOPE("Kernel::on_tick");
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  ++acct_.ticks_taken;
  const Duration cost = tun_.effective_tick_cost();
  acct_.tick_cpu += cost;
  if (observer_ != nullptr) observer_->on_tick(ctx_.now(), node_, cpu);

  // The interrupt steals time from whatever is running: push an in-progress
  // burst's completion out by the handler cost.
  if (c.current != nullptr && ctx_.pending(c.current->burst_event_)) {
    Thread& t = *c.current;
    ctx_.cancel(t.burst_event_);
    acct_.tick_stretch += cost;
    t.burst_deadline_ += cost;
    Thread* tp = &t;
    t.burst_event_ = ctx_.schedule_at(
        t.burst_deadline_, [this, cpu, tp] { on_burst_end(cpu, *tp); });
  }

  // Fire due timer callouts (batched to tick boundaries — the "big tick"
  // batching effect of §3.1.1 follows directly). The due list is a member
  // scratch buffer (cleared per tick, capacity persists) so steady-state
  // ticks stay allocation-free.
  const Time lnow = local_now();
  auto& callouts = c.callouts;
  due_scratch_.clear();
  util::reserve_cold(due_scratch_, callouts.size());
  for (std::size_t i = 0; i < callouts.size();) {
    if (callouts[i].due_local <= lnow) {
      due_scratch_.push_back(std::move(callouts[i]));
      callouts[i] = std::move(callouts.back());
      callouts.pop_back();
    } else {
      ++i;
    }
  }
  std::sort(due_scratch_.begin(), due_scratch_.end(),
            [](const auto& a, const auto& b) {
              if (a.due_local != b.due_local) return a.due_local < b.due_local;
              return a.seq < b.seq;
            });
  {
    // Callout bodies are client/daemon code: their allocations belong to
    // the workload's dispatch row, not to the kernel's tick accounting.
    PASCHED_ALLOC_DISPATCH_SCOPE("Kernel.callout");
    for (auto& co : due_scratch_) co.fn();
  }

  // Once per decay period (driven by CPU 0), age recent-CPU usage.
  if (cpu == 0 && lnow - last_decay_ >= tun_.decay_period) {
    last_decay_ = lnow;
    decay_priorities();
  }

  notice_resched(cpu);
  arm_tick(cpu);
}

void Kernel::schedule_callout(CpuId cpu, Time due_local,
                              sim::Engine::Callback fn) {
  PASCHED_ASSERT_OWNED(owned_, "schedule_callout");
  PASCHED_EXPECTS(cpu >= 0 && cpu < ncpus());
  cpus_[static_cast<std::size_t>(cpu)].callouts.push_back(
      Cpu::Callout{due_local, callout_seq_++, std::move(fn)});
}

void Kernel::decay_priorities() {
  for (auto& t : threads_) t->recent_cpu_ = t->recent_cpu_ / 2;
}

// ---------------------------------------------------------------------------
// Accounting / queries
// ---------------------------------------------------------------------------

PASCHED_HOT void Kernel::charge(Thread& t, Duration amount) {
  PASCHED_ASSERT(amount >= Duration::zero());
  t.total_cpu_ += amount;
  t.recent_cpu_ += amount;
  acct_.class_cpu[static_cast<std::size_t>(t.cls())] += amount;
}

Thread* Kernel::running_on(CpuId cpu) const {
  PASCHED_EXPECTS(cpu >= 0 && cpu < ncpus());
  return cpus_[static_cast<std::size_t>(cpu)].current;
}

std::vector<Thread*> Kernel::threads() const {
  std::vector<Thread*> out;
  out.reserve(threads_.size());
  for (const auto& t : threads_) out.push_back(t.get());
  return out;
}

int Kernel::ready_count() const {
  std::size_t n = globalq_.size();
  for (const Cpu& c : cpus_) n += c.runq.size();
  return static_cast<int>(n);
}

int Kernel::cpus_running(ThreadClass cls) const {
  int n = 0;
  for (const Cpu& c : cpus_)
    if (c.current != nullptr && c.current->cls() == cls) ++n;
  return n;
}

}  // namespace pasched::kern
