#include "kern/schedtune.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace pasched::kern {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::logic_error("schedtune: " + what);
}

bool parse_flag(const std::string& opt, const std::string& val) {
  const auto b = util::parse_bool(val);
  if (!b) bad("option " + opt + " expects 0|1, got '" + val + "'");
  return *b;
}

long long parse_num(const std::string& opt, const std::string& val) {
  const auto n = util::parse_int(val);
  if (!n) bad("option " + opt + " expects a number, got '" + val + "'");
  return *n;
}

}  // namespace

void apply_schedtune(Tunables& t, std::string_view options) {
  std::vector<std::string> toks;
  for (const auto& raw : util::split(options, ' ')) {
    const std::string tok = util::trim(raw);
    if (!tok.empty()) toks.push_back(tok);
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& opt = toks[i];
    if (opt.size() != 2 || opt[0] != '-') bad("unknown token '" + opt + "'");
    if (i + 1 >= toks.size()) bad("option " + opt + " is missing its value");
    const std::string& val = toks[++i];
    switch (opt[1]) {
      case 'B': {
        const long long n = parse_num(opt, val);
        if (n < 1 || n > 1000) bad("-B out of range [1,1000]");
        t.big_tick = static_cast<int>(n);
        break;
      }
      case 'S':
        t.synchronized_ticks = parse_flag(opt, val);
        break;
      case 'A':
        t.cluster_aligned_ticks = parse_flag(opt, val);
        break;
      case 'G':
        t.daemon_global_queue = parse_flag(opt, val);
        break;
      case 'R':
        t.rt_scheduling = parse_flag(opt, val);
        break;
      case 'V':
        t.rt_reverse_preemption = parse_flag(opt, val);
        break;
      case 'M':
        t.rt_multi_ipi = parse_flag(opt, val);
        break;
      case 't': {
        const long long us = parse_num(opt, val);
        if (us < 100 || us > 10'000'000) bad("-t out of range [100us,10s]");
        t.timeslice = sim::Duration::us(us);
        break;
      }
      case 'i': {
        const long long us = parse_num(opt, val);
        if (us < 1 || us > 100'000) bad("-i out of range [1us,100ms]");
        t.ipi_latency = sim::Duration::us(us);
        break;
      }
      default:
        bad("unknown option '" + opt + "'");
    }
  }
}

std::string render_schedtune(const Tunables& t) {
  std::ostringstream os;
  os << "-B " << t.big_tick << " -S " << (t.synchronized_ticks ? 1 : 0)
     << " -A " << (t.cluster_aligned_ticks ? 1 : 0) << " -G "
     << (t.daemon_global_queue ? 1 : 0) << " -R " << (t.rt_scheduling ? 1 : 0)
     << " -V " << (t.rt_reverse_preemption ? 1 : 0) << " -M "
     << (t.rt_multi_ipi ? 1 : 0) << " -t "
     << t.timeslice.count() / 1000 << " -i " << t.ipi_latency.count() / 1000;
  return os.str();
}

std::string describe_tunables(const Tunables& t) {
  std::ostringstream os;
  os << "base_tick_interval    " << t.base_tick_interval.str() << "\n"
     << "big_tick              " << t.big_tick << " (effective tick "
     << t.tick_interval().str() << ")\n"
     << "synchronized_ticks    " << (t.synchronized_ticks ? "yes" : "no")
     << "\n"
     << "cluster_aligned_ticks " << (t.cluster_aligned_ticks ? "yes" : "no")
     << "\n"
     << "rt_scheduling         " << (t.rt_scheduling ? "yes" : "no") << "\n"
     << "rt_reverse_preemption " << (t.rt_reverse_preemption ? "yes" : "no")
     << "\n"
     << "rt_multi_ipi          " << (t.rt_multi_ipi ? "yes" : "no") << "\n"
     << "ipi_latency           " << t.ipi_latency.str() << "\n"
     << "daemon_global_queue   " << (t.daemon_global_queue ? "yes" : "no")
     << "\n"
     << "timeslice             " << t.timeslice.str() << "\n"
     << "context_switch_cost   " << t.context_switch_cost.str() << "\n"
     << "idle_steal            " << (t.idle_steal ? "yes" : "no") << "\n";
  return os.str();
}

}  // namespace pasched::kern
