// Per-rule fire/silent coverage for pasched-contend over the planted
// fixture corpus (tests/contend/fixtures mirrors the src/ layout the scope
// filter expects), plus the suppression/claim contract: srclint-ok(PSL505)
// silences the WARN but the serialization claim survives for the runtime
// ledger (certify-then-verify).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "contend/locks.hpp"
#include "contend/rules.hpp"
#include "contend/runner.hpp"
#include "srclint/source.hpp"

using namespace pasched;

namespace {

const char* const kFixtureRoot = PASCHED_REPO_ROOT "/tests/contend/fixtures";

contend::ContendReport scan(const std::vector<std::string>& rels) {
  contend::ContendOptions opts;
  opts.root = kFixtureRoot;
  return contend::run_files(opts, rels);
}

std::size_t count_rule(const contend::ContendReport& rep,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(rep.findings.begin(), rep.findings.end(),
                    [&](const analysis::Diagnostic& d) {
                      return d.rule == rule;
                    }));
}

}  // namespace

TEST(ContendRules, AbbaCycleFiresInOneTu) {
  const contend::ContendReport rep = scan({"src/psl501_abba_fire.cxx"});
  EXPECT_EQ(count_rule(rep, "PSL501"), 1u);
  EXPECT_EQ(rep.findings.size(), 1u) << rep.str();
  EXPECT_EQ(rep.stats.cycles, 1u);
}

TEST(ContendRules, ConsistentOrderStaysSilent) {
  const contend::ContendReport rep = scan({"src/psl501_silent.cxx"});
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
  // The edge exists — silence comes from the absence of a cycle, not of
  // extraction.
  EXPECT_EQ(rep.stats.graph_edges, 1u);
}

TEST(ContendRules, CrossTuCycleNeedsBothHalves) {
  const contend::ContendReport half =
      scan({"src/pair.hpp", "src/psl501_cross_a.cxx"});
  EXPECT_EQ(count_rule(half, "PSL501"), 0u) << half.str();

  const contend::ContendReport both = scan(
      {"src/pair.hpp", "src/psl501_cross_a.cxx", "src/psl501_cross_b.cxx"});
  EXPECT_EQ(count_rule(both, "PSL501"), 1u) << both.str();
  EXPECT_EQ(both.stats.cycles, 1u);
}

TEST(ContendRules, LockAcrossBlockingSeamFiresDirectAndViaCall) {
  const contend::ContendReport rep = scan({"src/psl502_fire.cxx"});
  EXPECT_EQ(count_rule(rep, "PSL502"), 2u) << rep.str();
  const bool via_call = std::any_of(
      rep.findings.begin(), rep.findings.end(),
      [](const analysis::Diagnostic& d) {
        return d.message.find("call to `park`") != std::string::npos;
      });
  EXPECT_TRUE(via_call) << rep.str();

  EXPECT_TRUE(scan({"src/psl502_silent.cxx"}).findings.empty());
}

TEST(ContendRules, FalseSharingLayoutFiresOnBothShapes) {
  const contend::ContendReport rep = scan({"src/psl503_fire.cxx"});
  EXPECT_EQ(count_rule(rep, "PSL503"), 2u) << rep.str();
  EXPECT_TRUE(scan({"src/psl503_silent.cxx"}).findings.empty());
}

TEST(ContendRules, ContendedAtomicInLoopFires) {
  const contend::ContendReport rep = scan({"src/psl504_fire.cxx"});
  EXPECT_EQ(count_rule(rep, "PSL504"), 1u) << rep.str();
  EXPECT_TRUE(scan({"src/psl504_silent.cxx"}).findings.empty());
}

TEST(ContendRules, CoarseMutexOverOwnedStateFiresAndClaims) {
  const contend::ContendReport rep = scan({"src/psl505_fire.cxx"});
  EXPECT_EQ(count_rule(rep, "PSL505"), 1u) << rep.str();
  ASSERT_EQ(rep.claims.size(), 1u);
  EXPECT_EQ(rep.claims[0].site, "Queue.qmu_");
  EXPECT_EQ(rep.claims[0].file, "src/psl505_fire.cxx");

  const contend::ContendReport silent = scan({"src/psl505_silent.cxx"});
  EXPECT_TRUE(silent.findings.empty()) << silent.str();
  EXPECT_TRUE(silent.claims.empty());
}

TEST(ContendRules, SuppressionSilencesWarnButClaimSurvives) {
  const std::string code = R"(
struct Hub {
  race::Owned<int> head_;
  // srclint-ok(PSL505): coarse on purpose until the hub rework; the
  // contention ledger still verifies this claim at runtime.
  std::mutex hmu_;
};
)";
  const srclint::SourceFile f = srclint::lex_string(code, "src/sim/hub.cpp");
  const contend::ContendConfig cfg;
  const contend::FileLocks locks = contend::extract_locks(f, cfg);
  std::vector<analysis::Diagnostic> findings;
  std::vector<contend::SerializationClaim> claims;
  contend::FileRuleStats stats;
  contend::run_file_rules(f, locks, cfg, findings, claims, stats);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(stats.suppressions_honored, 1);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].site, "Hub.hmu_");
}

TEST(ContendRules, EveryContendRuleIsRegistered) {
  // --only validation (both tools share analysis::find_rule) must know the
  // PSL50x block, and srclint-ok() comments must parse PSL5xx ids.
  for (const char* id :
       {"PSL501", "PSL502", "PSL503", "PSL504", "PSL505", "PSL506"}) {
    const analysis::RuleInfo* r = analysis::find_rule(id);
    ASSERT_NE(r, nullptr) << id;
    EXPECT_NE(r->invariant[0], '\0') << id;
  }
  const srclint::SourceFile f = srclint::lex_string(
      "// srclint-ok(PSL506): refutation acknowledged\nint x;\n", "src/a.cpp");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].rule, "PSL506");
  EXPECT_TRUE(f.suppressed("PSL506", 2));
}

TEST(ContendRules, OnlyListNarrowsTheScan) {
  contend::ContendOptions opts;
  opts.root = kFixtureRoot;
  opts.cfg.only = {"PSL503"};
  const contend::ContendReport rep =
      contend::run_files(opts, {"src/psl503_fire.cxx", "src/psl504_fire.cxx"});
  EXPECT_EQ(count_rule(rep, "PSL503"), 2u);
  EXPECT_EQ(count_rule(rep, "PSL504"), 0u);
}
