// Kernel scheduler behaviour: dispatch order, delayed vs IPI preemption,
// reverse preemption, idle stealing, tick staggering/batching, priority
// decay, and accounting.
#include <gtest/gtest.h>

#include <vector>

#include "kern/kernel.hpp"
#include "sim/engine.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using kern::Kernel;
using kern::RunDecision;
using kern::Thread;
using kern::ThreadSpec;
using kern::ThreadState;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {

/// Scripted client: a list of decisions consumed one per next() call;
/// when exhausted, blocks (or exits if exit_at_end).
struct Script final : kern::ThreadClient {
  std::vector<RunDecision> steps;
  std::size_t pc = 0;
  bool exit_at_end = false;
  std::vector<Time> call_times;

  RunDecision next(Time now) override {
    call_times.push_back(now);
    if (pc < steps.size()) return steps[pc++];
    return exit_at_end ? RunDecision::exit() : RunDecision::block();
  }
};

kern::Tunables quiet_tunables() {
  kern::Tunables t;
  t.tick_cost = Duration::ns(1);            // negligible
  t.context_switch_cost = Duration::ns(1);  // negligible
  return t;
}

ThreadSpec spec(const char* name, kern::Priority prio, bool fixed,
                kern::CpuId cpu) {
  ThreadSpec s;
  s.name = name;
  s.base_priority = prio;
  s.fixed_priority = fixed;
  s.home_cpu = cpu;
  return s;
}

}  // namespace

TEST(KernSched, RunsSingleThreadToCompletion) {
  Engine e;
  Kernel k(e, 0, 1, quiet_tunables(), Duration::zero(), 0);
  Script c;
  c.steps = {RunDecision::compute(3_ms), RunDecision::compute(2_ms)};
  c.exit_at_end = true;
  Thread& t = k.create_thread(spec("t", 60, true, 0), c);
  k.start();
  k.wake(t);
  e.run_until(Time::zero() + 100_ms);
  EXPECT_EQ(t.state(), ThreadState::Done);
  // 5 ms of work plus one context switch and a few tiny tick costs.
  EXPECT_GE(t.total_cpu().count(), Duration::ms(5).count());
  EXPECT_LT(t.total_cpu().count(), Duration::ms(6).count());
}

TEST(KernSched, BetterPriorityWinsDispatch) {
  Engine e;
  Kernel k(e, 0, 1, quiet_tunables(), Duration::zero(), 0);
  Script lo, hi;
  lo.steps = {RunDecision::compute(1_ms)};
  hi.steps = {RunDecision::compute(1_ms)};
  Thread& tl = k.create_thread(spec("lo", 80, true, 0), lo);
  Thread& th = k.create_thread(spec("hi", 40, true, 0), hi);
  k.start();
  // Both become ready while the CPU is idle; first wake dispatches
  // immediately, but the better-priority thread preempts via the
  // wake-on-same... here waker is external, so use wake order to check
  // queue priority: wake lo first, then hi while lo runs.
  k.wake(tl);
  k.wake(th);  // hi must run before lo finishes its *next* dispatch
  e.run_until(Time::zero() + 50_ms);
  ASSERT_FALSE(hi.call_times.empty());
  ASSERT_FALSE(lo.call_times.empty());
  // lo started first (it was woken onto an idle CPU)...
  EXPECT_LT(lo.call_times.front(), hi.call_times.front());
  // ...but hi still completed its burst before lo got a second call.
  EXPECT_EQ(th.state(), ThreadState::Blocked);
}

TEST(KernSched, WithoutRtSchedulingPreemptionWaitsForTick) {
  Engine e;
  kern::Tunables tun = quiet_tunables();
  tun.rt_scheduling = false;
  Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  Script lo, hi;
  lo.steps = {RunDecision::compute(50_ms)};
  hi.steps = {RunDecision::compute(1_ms)};
  Thread& tl = k.create_thread(spec("lo", 80, true, 0), lo);
  Thread& th = k.create_thread(spec("hi", 40, true, 0), hi);
  k.start();
  k.wake(tl);
  e.run_until(Time::zero() + 2_ms);  // lo is mid-burst
  k.wake(th, kern::kExternalActor);  // remote wake: no IPI without RT option
  EXPECT_EQ(th.state(), ThreadState::Ready);
  // hi waits until the next 10 ms tick boundary.
  e.run_until(Time::zero() + 9_ms);
  EXPECT_EQ(th.state(), ThreadState::Ready);
  e.run_until(Time::zero() + 11_ms);
  EXPECT_EQ(th.state(), ThreadState::Running);
  EXPECT_EQ(tl.state(), ThreadState::Ready);  // preempted
}

TEST(KernSched, RtSchedulingPreemptsViaIpiLatency) {
  Engine e;
  kern::Tunables tun = quiet_tunables();
  tun.rt_scheduling = true;
  tun.ipi_latency = Duration::us(200);
  Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  Script lo, hi;
  lo.steps = {RunDecision::compute(50_ms)};
  hi.steps = {RunDecision::compute(1_ms)};
  Thread& tl = k.create_thread(spec("lo", 80, true, 0), lo);
  Thread& th = k.create_thread(spec("hi", 40, true, 0), hi);
  k.start();
  k.wake(tl);
  e.run_until(Time::zero() + 2_ms);
  k.wake(th, kern::kExternalActor);
  e.run_until(Time::zero() + 2_ms + 150_us);
  EXPECT_EQ(th.state(), ThreadState::Ready);  // IPI still in flight
  e.run_until(Time::zero() + 2_ms + 250_us);
  EXPECT_EQ(th.state(), ThreadState::Running);  // IPI landed, preempted
  EXPECT_EQ(tl.state(), ThreadState::Ready);
  EXPECT_EQ(k.accounting().ipis_sent, 1u);
}

TEST(KernSched, ReversePreemptionRequiresOption) {
  for (const bool reverse : {false, true}) {
    Engine e;
    kern::Tunables tun = quiet_tunables();
    tun.rt_scheduling = true;
    tun.rt_reverse_preemption = reverse;
    Kernel k(e, 0, 1, tun, Duration::zero(), 0);
    Script running, waiting;
    running.steps = {RunDecision::compute(50_ms)};
    waiting.steps = {RunDecision::compute(1_ms)};
    Thread& tr = k.create_thread(spec("running", 40, true, 0), running);
    Thread& tw = k.create_thread(spec("waiting", 60, true, 0), waiting);
    k.start();
    k.wake(tr);
    e.run_until(Time::zero() + 1_ms);
    k.wake(tw, kern::kExternalActor);  // queued behind tr (worse priority)
    e.run_until(Time::zero() + 2_ms);
    EXPECT_EQ(tw.state(), ThreadState::Ready);
    // Lower the running thread below the waiter — reverse preemption.
    k.set_priority(tr, 100, true, kern::kExternalActor);
    e.run_until(Time::zero() + 2_ms + 500_us);
    if (reverse) {
      EXPECT_EQ(tw.state(), ThreadState::Running)
          << "reverse-preemption IPI should land within ~200us";
    } else {
      EXPECT_EQ(tw.state(), ThreadState::Ready)
          << "without the fix the CPU only notices at the next tick";
      e.run_until(Time::zero() + 10_ms + 500_us);  // just past the tick
      EXPECT_EQ(tw.state(), ThreadState::Running);
    }
  }
}

TEST(KernSched, IdleCpuStealsPinnedWork) {
  Engine e;
  Kernel k(e, 0, 2, quiet_tunables(), Duration::zero(), 0);
  Script busy, newcomer;
  busy.steps = {RunDecision::compute(50_ms)};
  newcomer.steps = {RunDecision::compute(1_ms)};
  Thread& tb = k.create_thread(spec("busy", 60, true, 0), busy);
  Thread& tn = k.create_thread(spec("newcomer", 60, true, 0), newcomer);
  k.start();
  k.wake(tb);
  e.run_until(Time::zero() + 1_ms);
  k.wake(tn, kern::kExternalActor);  // pinned to busy CPU 0, CPU 1 idle
  e.run_until(Time::zero() + 1_ms + 10_us);
  EXPECT_EQ(tn.state(), ThreadState::Running);
  EXPECT_EQ(tn.running_on(), 1);  // stolen by the idle CPU
}

TEST(KernSched, NonStealableStaysOnHomeCpu) {
  Engine e;
  Kernel k(e, 0, 2, quiet_tunables(), Duration::zero(), 0);
  Script busy, pinned;
  busy.steps = {RunDecision::compute(30_ms)};
  pinned.steps = {RunDecision::compute(1_ms)};
  ThreadSpec ps = spec("pinned", 60, true, 0);
  ps.stealable = false;
  Thread& tb = k.create_thread(spec("busy", 50, true, 0), busy);
  Thread& tp = k.create_thread(ps, pinned);
  k.start();
  k.wake(tb);
  e.run_until(Time::zero() + 1_ms);
  k.wake(tp, kern::kExternalActor);
  e.run_until(Time::zero() + 5_ms);
  EXPECT_EQ(tp.state(), ThreadState::Ready);  // CPU 1 idle but not eligible
}

TEST(KernSched, EqualPriorityRoundRobinsAtTimeslice) {
  Engine e;
  kern::Tunables tun = quiet_tunables();
  tun.timeslice = Duration::ms(10);
  Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  Script a, b;
  a.steps = {RunDecision::compute(100_ms)};
  b.steps = {RunDecision::compute(100_ms)};
  Thread& ta = k.create_thread(spec("a", 60, true, 0), a);
  Thread& tb = k.create_thread(spec("b", 60, true, 0), b);
  k.start();
  k.wake(ta);
  k.wake(tb);
  e.run_until(Time::zero() + 60_ms);
  // Both made progress: each ran roughly half the elapsed time.
  EXPECT_GT(ta.total_cpu().count(), Duration::ms(15).count());
  EXPECT_GT(tb.total_cpu().count(), Duration::ms(15).count());
  EXPECT_GT(k.accounting().preemptions, 2u);
}

TEST(KernSched, SpinningThreadResumesOnKick) {
  Engine e;
  Kernel k(e, 0, 1, quiet_tunables(), Duration::zero(), 0);
  Script s;
  s.steps = {RunDecision::compute(1_ms), RunDecision::spin(),
             RunDecision::compute(1_ms)};
  s.exit_at_end = true;
  Thread& t = k.create_thread(spec("spinner", 60, true, 0), s);
  k.start();
  k.wake(t);
  e.run_until(Time::zero() + 5_ms);
  EXPECT_EQ(t.state(), ThreadState::Running);  // spinning occupies the CPU
  EXPECT_EQ(s.call_times.size(), 2u);          // compute issued, then spin
  k.kick(t);
  e.run_until(Time::zero() + 7_ms);
  EXPECT_EQ(t.state(), ThreadState::Done);
  // Spin time was charged as CPU time: 1ms + ~4ms spin + 1ms.
  EXPECT_GT(t.total_cpu().count(), Duration::ms(5).count());
}

TEST(KernSched, KickWhilePreemptedIsHonoredOnRedispatch) {
  Engine e;
  kern::Tunables tun = quiet_tunables();
  tun.rt_scheduling = true;
  Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  Script spinner, intruder;
  spinner.steps = {RunDecision::spin(), RunDecision::compute(1_ms)};
  spinner.exit_at_end = true;
  intruder.steps = {RunDecision::compute(5_ms)};
  Thread& ts = k.create_thread(spec("spinner", 60, true, 0), spinner);
  Thread& ti = k.create_thread(spec("intruder", 40, true, 0), intruder);
  k.start();
  k.wake(ts);
  e.run_until(Time::zero() + 1_ms);
  k.wake(ti, kern::kExternalActor);  // preempts the spinner (IPI)
  e.run_until(Time::zero() + 2_ms);
  EXPECT_EQ(ts.state(), ThreadState::Ready);
  k.kick(ts);  // message arrives while off-CPU
  e.run_until(Time::zero() + 20_ms);
  EXPECT_EQ(ts.state(), ThreadState::Done);
}

TEST(KernSched, StaggeredTicksAreSpreadSimultaneousCoincide) {
  for (const bool sync : {false, true}) {
    Engine e;
    kern::Tunables tun = quiet_tunables();
    tun.synchronized_ticks = sync;
    tun.cluster_aligned_ticks = true;  // deterministic phase
    Kernel k(e, 0, 4, tun, Duration::zero(), 0);
    struct TickLog final : kern::SchedObserver {
      std::vector<std::pair<Time, int>> ticks;
      void on_tick(Time t, kern::NodeId, kern::CpuId c) override {
        ticks.emplace_back(t, c);
      }
    } log;
    k.set_observer(&log);
    k.start();
    e.run_until(Time::zero() + 25_ms);
    ASSERT_GE(log.ticks.size(), 8u);
    if (sync) {
      // All CPUs tick at identical instants.
      for (const auto& [t, c] : log.ticks)
        EXPECT_EQ(t.count() % Duration::ms(10).count(), 0);
    } else {
      // CPU i offset by i * interval / ncpus = 2.5 ms.
      for (const auto& [t, c] : log.ticks)
        EXPECT_EQ(t.count() % Duration::ms(10).count(),
                  c * Duration::ms(10).count() / 4);
    }
  }
}

TEST(KernSched, BigTickBatchesCallouts) {
  Engine e;
  kern::Tunables tun = quiet_tunables();
  tun.big_tick = 25;  // 250 ms physical ticks
  tun.cluster_aligned_ticks = true;
  Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  std::vector<Time> fired;
  k.start();
  // Callouts due at 10, 20, ..., 100 ms all fire together at the 250 ms tick.
  for (int i = 1; i <= 10; ++i) {
    k.schedule_callout(0, Time::zero() + Duration::ms(10 * i),
                       [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run_until(Time::zero() + 260_ms);
  ASSERT_EQ(fired.size(), 10u);
  for (const Time& t : fired)
    EXPECT_EQ(t.count(), Duration::ms(250).count());
}

TEST(KernSched, PriorityDecayDegradesCpuHogs) {
  Engine e;
  Kernel k(e, 0, 1, quiet_tunables(), Duration::zero(), 0);
  Script hog;
  hog.steps.assign(100, RunDecision::compute(100_ms));
  Thread& t = k.create_thread(spec("hog", 60, false, 0), hog);
  k.start();
  k.wake(t);
  EXPECT_EQ(t.effective_priority(), 60);
  e.run_until(Time::zero() + 3_s);
  // Sustained CPU use decays well into the 90-120 band.
  EXPECT_GE(t.effective_priority(), 90);
  EXPECT_LE(t.effective_priority(), 120);
}

TEST(KernSched, AccountingSplitsClasses) {
  Engine e;
  Kernel k(e, 0, 2, quiet_tunables(), Duration::zero(), 0);
  Script app, daemon;
  app.steps = {RunDecision::compute(10_ms)};
  daemon.steps = {RunDecision::compute(5_ms)};
  ThreadSpec as = spec("app", 60, true, 0);
  as.cls = kern::ThreadClass::AppTask;
  ThreadSpec ds = spec("d", 50, true, 1);
  ds.cls = kern::ThreadClass::Daemon;
  Thread& ta = k.create_thread(as, app);
  Thread& td = k.create_thread(ds, daemon);
  k.start();
  k.wake(ta);
  k.wake(td);
  e.run_until(Time::zero() + 50_ms);
  const auto& acct = k.accounting();
  EXPECT_NEAR(acct.of(kern::ThreadClass::AppTask).to_ms(), 10.0, 0.5);
  EXPECT_NEAR(acct.of(kern::ThreadClass::Daemon).to_ms(), 5.0, 0.5);
  EXPECT_GT(acct.ticks_taken, 0u);
}

TEST(KernSched, VanillaIpiRuleSuppressesConcurrentIpis) {
  // Two better-priority wakes in quick succession: with the stock RT option
  // only one IPI flies; with multi-IPI both do.
  for (const bool multi : {false, true}) {
    Engine e;
    kern::Tunables tun = quiet_tunables();
    tun.rt_scheduling = true;
    tun.rt_multi_ipi = multi;
    Kernel k(e, 0, 2, tun, Duration::zero(), 0);
    Script b0, b1, h0, h1;
    b0.steps = {RunDecision::compute(50_ms)};
    b1.steps = {RunDecision::compute(50_ms)};
    h0.steps = {RunDecision::compute(1_ms)};
    h1.steps = {RunDecision::compute(1_ms)};
    Thread& tb0 = k.create_thread(spec("b0", 80, true, 0), b0);
    Thread& tb1 = k.create_thread(spec("b1", 80, true, 1), b1);
    Thread& th0 = k.create_thread(spec("h0", 40, true, 0), h0);
    Thread& th1 = k.create_thread(spec("h1", 40, true, 1), h1);
    k.start();
    k.wake(tb0);
    k.wake(tb1);
    e.run_until(Time::zero() + 1_ms);
    k.wake(th0, kern::kExternalActor);
    k.wake(th1, kern::kExternalActor);
    e.run_until(Time::zero() + 1_ms + 300_us);
    const auto ipis = k.accounting().ipis_sent;
    if (multi) {
      EXPECT_EQ(ipis, 2u);
      EXPECT_EQ(th0.state(), ThreadState::Running);
      EXPECT_EQ(th1.state(), ThreadState::Running);
    } else {
      EXPECT_EQ(ipis, 1u);
      // Only one preemption landed promptly; the other waits for a tick.
      EXPECT_EQ((th0.state() == ThreadState::Running) +
                    (th1.state() == ThreadState::Running),
                1);
    }
  }
}
